//! The `pp bench` subcommand: times the simulate+CCT+paths pipeline over
//! the workload suite and records the trajectory in `BENCH_<date>.json`.
//!
//! Every case runs the paper's combined configuration (path profiling
//! *and* a calling context tree with hardware metrics) — the heaviest
//! pipeline the profiler has, and the one the predecoded micro-op arena
//! was built for. When the binary carries the `reference` feature (the
//! default), each case also runs through the pre-predecoding
//! tree-walking interpreter, so the report carries a before/after
//! wall-time comparison of the same profile computation. Wall times are
//! best-of-N (`--repeat`, default 3): the simulation is deterministic,
//! so the minimum over repeats measures the pipeline, not the host's
//! scheduling noise.
//!
//! The JSON file is an append-friendly trajectory: one file per day,
//! each holding the totals plus per-case numbers, so future PRs can
//! diff `BENCH_*.json` files to see whether the hot path got faster.
//! Re-running `pp bench` on the same day *merges* with the existing
//! file when the (date, pipeline, scale) key matches: per-case wall
//! times keep the best over both runs and the repeat count accumulates,
//! so a noisy rerun can only sharpen the trajectory, never blur it.
//! The file also carries a `phases_us` object — per-phase wall time
//! from one extra *untimed* traced pass over the suite, taken after the
//! stopwatch runs so span overhead never contaminates the timed
//! numbers.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use pp::ir::HwEvent;
use pp::obs::Recorder as _;
use pp::profiler::{PpError, Profiler, RunConfig};

/// The `"pipeline"` tag in the trajectory file — part of the merge key.
const PIPELINE: &str = "combined (simulate + CCT + path counters)";

/// What `pp bench` measures for one workload under one pipeline.
#[derive(Clone, Copy, Debug, Default)]
struct PipelineSample {
    /// Host seconds for instrument + simulate + profile.
    wall_s: f64,
    /// Simulated cycles the run retired.
    sim_cycles: u64,
    /// Micro-ops the run dispatched — the denominator of the per-uop
    /// cost the trajectory guards.
    uops: u64,
    /// Simulated bytes of the CCT heap at exit.
    cct_bytes: u64,
    /// CCT records allocated.
    cct_records: u64,
}

/// One workload's measurements: the optimized pipeline and, when the
/// `reference` feature is in, the tree-walking baseline.
struct CaseResult {
    name: String,
    optimized: PipelineSample,
    reference: Option<PipelineSample>,
}

/// Options the CLI hands to [`run_bench`].
pub struct BenchArgs {
    /// Workload scale factor (the suite's `--scale`).
    pub scale: f64,
    /// Smoke mode: tiny scale, no `BENCH_*.json` unless `--out` is given.
    pub smoke: bool,
    /// Explicit output path overriding `BENCH_<date>.json`.
    pub out: Option<String>,
    /// Events on `%pic0` / `%pic1`.
    pub events: (HwEvent, HwEvent),
    /// Times each case this many times and keeps the fastest wall time
    /// per pipeline. The simulation is deterministic, so repeats differ
    /// only by host scheduling noise — best-of-N strips it.
    pub repeat: usize,
    /// Guest resource limits (by default a conservative deadline) so a
    /// wedged case cannot hang the bench; timed runs therefore measure
    /// the hot loop *with* its limit checks armed.
    pub limits: pp::usim::GuestLimits,
    /// Guard mode: compare this run's totals against a prior trajectory
    /// file instead of writing one; exit nonzero on a regression beyond
    /// `tolerance`.
    pub check: Option<String>,
    /// Allowed relative regression in `--check` mode (0.02 = 2%).
    pub tolerance: f64,
    /// Meta-profiling mode: skip the stopwatch entirely; collect the
    /// suite-wide dynamic micro-op mix (the self-hosted PGO input) and
    /// write it to this path as a registry JSON.
    pub emit_meta: Option<String>,
}

fn sample(
    profiler: &Profiler,
    program: &pp::ir::Program,
    config: RunConfig,
    run: impl FnOnce(
        &Profiler,
        &pp::ir::Program,
        RunConfig,
    ) -> Result<pp::profiler::RunOutcome, pp::profiler::ProfileError>,
) -> Result<PipelineSample, PpError> {
    let t = Instant::now();
    let outcome = run(profiler, program, config).map_err(|e| PpError::Usage(e.to_string()))?;
    let wall_s = t.elapsed().as_secs_f64();
    if let Some(fault) = outcome.fault {
        if matches!(fault, pp::usim::ExecError::LimitExceeded(_)) {
            pp::obs::warn!(
                "bench case hit a guest limit ({fault}); \
                 raise --fuel/--deadline or pass --deadline 0"
            );
        }
        return Err(PpError::Aborted(fault));
    }
    let (cct_bytes, cct_records) = outcome
        .cct
        .as_ref()
        .map(|c| (c.heap_bytes(), c.num_records() as u64))
        .unwrap_or((0, 0));
    Ok(PipelineSample {
        wall_s,
        sim_cycles: outcome.cycles(),
        uops: outcome.machine.uops,
        cct_bytes,
        cct_records,
    })
}

/// Runs `sample` `repeat` times and keeps the fastest wall time (the
/// simulated statistics are identical across repeats — the run is
/// deterministic).
fn sample_best(
    repeat: usize,
    profiler: &Profiler,
    program: &pp::ir::Program,
    config: RunConfig,
    run: impl Fn(
        &Profiler,
        &pp::ir::Program,
        RunConfig,
    ) -> Result<pp::profiler::RunOutcome, pp::profiler::ProfileError>,
) -> Result<PipelineSample, PpError> {
    let mut best: Option<PipelineSample> = None;
    for _ in 0..repeat.max(1) {
        let s = sample(profiler, program, config, &run)?;
        best = Some(match best {
            Some(b) if b.wall_s <= s.wall_s => b,
            _ => s,
        });
    }
    Ok(best.expect("at least one repeat"))
}

/// Runs the suite, prints the comparison table, and (outside smoke mode)
/// writes the `BENCH_<date>.json` trajectory entry.
///
/// # Errors
///
/// Any case that fails to instrument, faults mid-run, or cannot write
/// the JSON file fails the whole command — CI's `pp bench --smoke` step
/// relies on that.
pub fn run_bench(args: &BenchArgs) -> Result<(), PpError> {
    let scale = if args.smoke {
        args.scale.min(0.05)
    } else {
        args.scale
    };
    if let Some(path) = &args.emit_meta {
        return emit_meta(args, scale, path);
    }
    let cases = pp::bench::cases_at(scale);
    let profiler =
        Profiler::new(pp::usim::MachineConfig::default()).with_limits(args.limits.clone());
    let config = RunConfig::CombinedHw {
        events: args.events,
    };

    // Cases run strictly one at a time, and each pipeline gets its own
    // pass over the whole suite. Timing under `bench::par_map` would let
    // concurrently scheduled cases steal CPU from whichever pipeline
    // happens to be on the stopwatch, and interleaving the two pipelines
    // per case lets the reference interpreter's much larger allocations
    // perturb the allocator and page state that the optimized pipeline
    // is then timed against.
    let repeat = if args.smoke { 1 } else { args.repeat.max(1) };
    let optimized: Vec<PipelineSample> = cases
        .iter()
        .map(|case| {
            sample_best(repeat, &profiler, &case.program, config, |p, prog, c| {
                p.run(prog, c)
            })
        })
        .collect::<Result<_, _>>()?;
    #[cfg(feature = "reference")]
    let reference: Vec<Option<PipelineSample>> = cases
        .iter()
        .map(|case| {
            sample_best(repeat, &profiler, &case.program, config, |p, prog, c| {
                p.run_reference(prog, c)
            })
            .map(Some)
        })
        .collect::<Result<_, _>>()?;
    #[cfg(not(feature = "reference"))]
    let reference: Vec<Option<PipelineSample>> = vec![None; cases.len()];
    let results: Vec<CaseResult> = cases
        .iter()
        .zip(optimized)
        .zip(reference)
        .map(|((case, optimized), reference)| CaseResult {
            name: case.name.clone(),
            optimized,
            reference,
        })
        .collect();

    // Totals.
    let t = totals(&results);
    let ns_per_uop = t.ns_per_uop();
    let Totals {
        opt_wall,
        ref_wall,
        sim_cycles,
        peak_cct,
        have_ref,
        ..
    } = t;
    let speedup = if have_ref && opt_wall > 0.0 {
        ref_wall / opt_wall
    } else {
        0.0
    };

    println!("== pp bench: combined pipeline (simulate + CCT + path counters), scale {scale} ==");
    println!(
        "{:<14} {:>10} {:>10} {:>8} {:>12} {:>10} {:>8}",
        "benchmark", "wall ms", "ref ms", "speedup", "sim Mcycles", "cct KB", "records"
    );
    for r in &results {
        let (ref_ms, case_speedup) = match r.reference {
            Some(s) => (
                format!("{:.1}", s.wall_s * 1e3),
                format!("{:.2}x", s.wall_s / r.optimized.wall_s.max(1e-12)),
            ),
            None => ("-".to_string(), "-".to_string()),
        };
        println!(
            "{:<14} {:>10.1} {:>10} {:>8} {:>12.1} {:>10.1} {:>8}",
            r.name,
            r.optimized.wall_s * 1e3,
            ref_ms,
            case_speedup,
            r.optimized.sim_cycles as f64 / 1e6,
            r.optimized.cct_bytes as f64 / 1024.0,
            r.optimized.cct_records,
        );
    }
    println!(
        "\ntotals: {:.3}s optimized | {} | {:.1} M simulated cycles/s | {:.1} ns/uop | peak CCT {:.1} KB",
        opt_wall,
        if have_ref {
            format!("{ref_wall:.3}s reference ({speedup:.2}x speedup)")
        } else {
            "reference pipeline not built (enable the `reference` feature)".to_string()
        },
        sim_cycles as f64 / opt_wall.max(1e-12) / 1e6,
        ns_per_uop,
        peak_cct as f64 / 1024.0,
    );

    if let Some(check_path) = &args.check {
        return check_against(
            check_path,
            args.tolerance,
            opt_wall,
            speedup,
            have_ref,
            ns_per_uop,
        );
    }

    let path = match (&args.out, args.smoke) {
        (Some(p), _) => Some(p.clone()),
        (None, true) => None,
        (None, false) => Some(format!("BENCH_{}.json", today_utc())),
    };
    if let Some(path) = path {
        // One extra untimed traced pass: the per-phase breakdown. Taken
        // after every stopwatch run so the timed numbers never carry
        // span-recording overhead.
        let phases = phase_pass(&cases, &profiler, config);

        // Merge with an existing same-day, same-config trajectory:
        // per-case best-of wall times, accumulated repeat count.
        let mut merged = results;
        let mut repeat_total = repeat;
        match read_trajectory(&path) {
            Some(prev)
                if prev.date == today_utc()
                    && prev.pipeline == PIPELINE
                    && (prev.scale - scale).abs() < 1e-12 =>
            {
                merge_cases(&mut merged, &prev);
                repeat_total += prev.repeat;
                pp::obs::info!(
                    "merged with existing {path}: keeping per-case best of {repeat_total} repeats"
                );
            }
            Some(_) => {
                pp::obs::warn!(
                    "existing {path} holds a different (date, pipeline, scale) run; replacing it"
                );
            }
            None => {}
        }
        let t = totals(&merged);
        let json = render_json(scale, repeat_total, &merged, &t, &phases);
        std::fs::write(&path, json).map_err(|e| PpError::io(&path, e))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// Suite-wide aggregates of a result set.
struct Totals {
    opt_wall: f64,
    ref_wall: f64,
    sim_cycles: u64,
    sim_uops: u64,
    peak_cct: u64,
    have_ref: bool,
}

impl Totals {
    /// Host nanoseconds the optimized pipeline spends per simulated
    /// micro-op — the suite-wide unit cost the trajectory guards.
    fn ns_per_uop(&self) -> f64 {
        self.opt_wall * 1e9 / self.sim_uops.max(1) as f64
    }
}

fn totals(results: &[CaseResult]) -> Totals {
    Totals {
        opt_wall: results.iter().map(|r| r.optimized.wall_s).sum(),
        ref_wall: results
            .iter()
            .map(|r| r.reference.map(|s| s.wall_s).unwrap_or(0.0))
            .sum(),
        sim_cycles: results.iter().map(|r| r.optimized.sim_cycles).sum(),
        sim_uops: results.iter().map(|r| r.optimized.uops).sum(),
        peak_cct: results
            .iter()
            .map(|r| r.optimized.cct_bytes)
            .max()
            .unwrap_or(0),
        have_ref: results.iter().all(|r| r.reference.is_some()) && !results.is_empty(),
    }
}

/// One untimed pass over the suite with span recording on, aggregating
/// wall time by phase (instrument / decode / simulate / path_analyze).
fn phase_pass(
    cases: &[pp::profiler::experiment::BenchCase],
    profiler: &Profiler,
    config: RunConfig,
) -> BTreeMap<&'static str, u64> {
    let was_enabled = pp::obs::trace::enabled();
    pp::obs::trace::enable(true);
    let _ = pp::obs::trace::take_events();
    for case in cases {
        let _ = profiler.run(&case.program, config);
    }
    let (events, dropped) = pp::obs::trace::take_events();
    pp::obs::trace::enable(was_enabled);
    if dropped > 0 {
        pp::obs::warn!("phase pass overflowed the trace buffer ({dropped} spans dropped)");
    }
    pp::obs::trace::totals_by_name(&events)
}

/// The merge-relevant slice of an existing trajectory file.
struct PrevTrajectory {
    date: String,
    pipeline: String,
    scale: f64,
    repeat: usize,
    /// Suite total optimized wall seconds.
    wall_s: f64,
    /// Reference-over-optimized speedup, when the file has one.
    speedup: Option<f64>,
    /// Host ns per simulated micro-op; absent in trajectories recorded
    /// before the field existed (the guard then skips that check).
    sim_ns_per_uop: Option<f64>,
    /// name → (wall_s, reference_wall_s).
    cases: BTreeMap<String, (f64, Option<f64>)>,
}

/// Parses an existing `BENCH_*.json`; `None` when the file is missing
/// or does not look like a trajectory (then it is simply overwritten).
fn read_trajectory(path: &str) -> Option<PrevTrajectory> {
    let text = std::fs::read_to_string(path).ok()?;
    let v = pp::obs::json::parse(&text).ok()?;
    let mut cases = BTreeMap::new();
    for case in v.get("cases")?.as_arr()? {
        let name = case.get("name")?.as_str()?.to_string();
        let wall = case.get("wall_s")?.as_f64()?;
        let reference = case.get("reference_wall_s").and_then(|r| r.as_f64());
        cases.insert(name, (wall, reference));
    }
    Some(PrevTrajectory {
        date: v.get("date")?.as_str()?.to_string(),
        pipeline: v.get("pipeline")?.as_str()?.to_string(),
        scale: v.get("scale")?.as_f64()?,
        repeat: v.get("repeat")?.as_f64()? as usize,
        wall_s: v.get("wall_s")?.as_f64()?,
        speedup: v.get("speedup").and_then(|s| s.as_f64()),
        sim_ns_per_uop: v.get("sim_ns_per_uop").and_then(|s| s.as_f64()),
        cases,
    })
}

/// `pp bench --check`: a regression guard. Compares this run's totals
/// against a recorded trajectory and fails beyond `tolerance` — only in
/// the slow direction; getting faster never fails the guard. Never
/// writes the trajectory, so CI can run it against the checked-in
/// `BENCH_*.json` without dirtying the tree.
fn check_against(
    path: &str,
    tolerance: f64,
    cur_wall: f64,
    cur_speedup: f64,
    have_ref: bool,
    cur_ns_per_uop: f64,
) -> Result<(), PpError> {
    let prev = read_trajectory(path).ok_or_else(|| {
        PpError::Usage(format!(
            "--check: `{path}` is not a readable trajectory file"
        ))
    })?;
    let wall_delta = (cur_wall - prev.wall_s) / prev.wall_s.max(1e-12);
    println!(
        "check vs {path}: wall {:.3}s vs {:.3}s recorded ({:+.1}%)",
        cur_wall,
        prev.wall_s,
        wall_delta * 100.0
    );
    let mut failures = Vec::new();
    if wall_delta > tolerance {
        failures.push(format!(
            "wall time regressed {:.1}% (> {:.1}% tolerance)",
            wall_delta * 100.0,
            tolerance * 100.0
        ));
    }
    if let (true, Some(prev_speedup)) = (have_ref, prev.speedup) {
        let drop = (prev_speedup - cur_speedup) / prev_speedup.max(1e-12);
        println!(
            "check vs {path}: speedup {cur_speedup:.2}x vs {prev_speedup:.2}x recorded ({:+.1}%)",
            -drop * 100.0
        );
        if drop > tolerance {
            failures.push(format!(
                "speedup regressed {:.1}% (> {:.1}% tolerance)",
                drop * 100.0,
                tolerance * 100.0
            ));
        }
    }
    // The per-uop unit cost: total wall normalized by simulated work, so
    // the guard keeps meaning even when the suite grows or shrinks.
    if let Some(prev_ns) = prev.sim_ns_per_uop {
        let delta = (cur_ns_per_uop - prev_ns) / prev_ns.max(1e-12);
        println!(
            "check vs {path}: {cur_ns_per_uop:.1} ns/uop vs {prev_ns:.1} recorded ({:+.1}%)",
            delta * 100.0
        );
        if delta > tolerance {
            failures.push(format!(
                "per-uop cost regressed {:.1}% (> {:.1}% tolerance)",
                delta * 100.0,
                tolerance * 100.0
            ));
        }
    }
    if failures.is_empty() {
        println!("check passed (tolerance {:.1}%)", tolerance * 100.0);
        Ok(())
    } else {
        Err(PpError::Usage(format!(
            "bench check failed against {path}: {}",
            failures.join("; ")
        )))
    }
}

/// `pp bench --emit-meta`: regenerates the self-hosted PGO input. Each
/// suite workload is instrumented exactly as the timed bench runs it
/// (the combined pipeline), then replayed unfused with block tracing to
/// project its dynamic micro-op mix; the suite-wide merge is written as
/// registry-JSON `uop.*` / `pair.*` counters. The checked-in copy lives
/// at `crates/usim/meta/uop_meta.json` and is what the dispatch layout
/// and the fusion pattern set are derived from.
fn emit_meta(args: &BenchArgs, scale: f64, path: &str) -> Result<(), PpError> {
    let cases = pp::bench::cases_at(scale);
    let config = RunConfig::CombinedHw {
        events: args.events,
    };
    let mode = config.mode().expect("combined pipeline instruments");
    let mut meta = pp::usim::MetaProfile::default();
    for case in &cases {
        let options =
            pp::instrument::InstrumentOptions::new(mode).with_events(args.events.0, args.events.1);
        let inst = pp::instrument::instrument_program(&case.program, options)
            .map_err(|e| PpError::Usage(format!("{}: {e}", case.name)))?;
        let one = pp::usim::MetaProfile::collect(&inst.program, pp::usim::MachineConfig::default())
            .map_err(PpError::Aborted)?;
        meta.merge(&one);
    }

    let total = meta.total();
    println!("== pp bench --emit-meta: dynamic micro-op mix, scale {scale} ==");
    println!("{:<14} {:>14} {:>7}", "uop", "dispatches", "share");
    for (name, n) in meta.ranked_uops() {
        println!(
            "{:<14} {:>14} {:>6.2}%",
            name,
            n,
            n as f64 / total.max(1) as f64 * 100.0
        );
    }
    println!(
        "\n{:<22} {:>14} {:>7}  (top 15 fusable pairs)",
        "pair", "dispatches", "share"
    );
    for ((a, b), n) in meta.ranked_pairs().into_iter().take(15) {
        println!(
            "{:<22} {:>14} {:>6.2}%",
            format!("{a}+{b}"),
            n,
            n as f64 / total.max(1) as f64 * 100.0
        );
    }

    let mut reg = pp::obs::Registry::new();
    reg.counter("meta.scale_milli", (scale * 1000.0) as u64);
    reg.counter("meta.cases", cases.len() as u64);
    meta.record_to(&mut reg);
    std::fs::write(path, reg.to_json()).map_err(|e| PpError::io(path, e))?;
    println!(
        "\nwrote {path} ({total} dynamic micro-ops over {} cases)",
        cases.len()
    );
    Ok(())
}

/// Folds a previous same-key trajectory into `results`: each case keeps
/// the *fastest* wall time either run saw (the simulated statistics are
/// deterministic, so only the host timings differ).
fn merge_cases(results: &mut [CaseResult], prev: &PrevTrajectory) {
    for r in results.iter_mut() {
        let Some(&(prev_wall, prev_ref)) = prev.cases.get(&r.name) else {
            continue;
        };
        r.optimized.wall_s = r.optimized.wall_s.min(prev_wall);
        if let (Some(s), Some(p)) = (r.reference.as_mut(), prev_ref) {
            s.wall_s = s.wall_s.min(p);
        }
    }
}

fn render_json(
    scale: f64,
    repeat: usize,
    results: &[CaseResult],
    t: &Totals,
    phases: &BTreeMap<&'static str, u64>,
) -> String {
    let (opt_wall, ref_wall) = (t.opt_wall, t.ref_wall);
    let have_ref = results.iter().all(|r| r.reference.is_some()) && !results.is_empty();
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"date\": \"{}\",", today_utc());
    let _ = writeln!(s, "  \"scale\": {scale},");
    let _ = writeln!(s, "  \"repeat\": {repeat},");
    let _ = writeln!(s, "  \"pipeline\": \"{PIPELINE}\",");
    let _ = writeln!(s, "  \"wall_s\": {opt_wall:.6},");
    if have_ref {
        let _ = writeln!(s, "  \"reference_wall_s\": {ref_wall:.6},");
        let _ = writeln!(s, "  \"speedup\": {:.3},", ref_wall / opt_wall.max(1e-12));
    }
    let _ = writeln!(s, "  \"sim_cycles\": {},", t.sim_cycles);
    let _ = writeln!(
        s,
        "  \"sim_cycles_per_sec\": {:.0},",
        t.sim_cycles as f64 / opt_wall.max(1e-12)
    );
    let _ = writeln!(s, "  \"sim_uops\": {},", t.sim_uops);
    let _ = writeln!(s, "  \"sim_ns_per_uop\": {:.3},", t.ns_per_uop());
    let _ = writeln!(s, "  \"peak_cct_bytes\": {},", t.peak_cct);
    s.push_str("  \"phases_us\": {");
    for (i, (phase, ns)) in phases.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{phase}\": {:.1}", *ns as f64 / 1e3);
    }
    s.push_str("},\n");
    s.push_str("  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"wall_s\": {:.6}, ",
            r.name, r.optimized.wall_s
        );
        if let Some(rs) = r.reference {
            let _ = write!(s, "\"reference_wall_s\": {:.6}, ", rs.wall_s);
        }
        let _ = write!(
            s,
            "\"sim_cycles\": {}, \"uops\": {}, \"cct_bytes\": {}, \"cct_records\": {}}}",
            r.optimized.sim_cycles,
            r.optimized.uops,
            r.optimized.cct_bytes,
            r.optimized.cct_records
        );
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock (no external
/// date crates in this container; the civil-from-days conversion is the
/// standard Howard Hinnant algorithm).
fn today_utc() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let z = secs.div_euclid(86_400) + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}
