//! The `pp bench` subcommand: times the simulate+CCT+paths pipeline over
//! the workload suite and records the trajectory in `BENCH_<date>.json`.
//!
//! Every case runs the paper's combined configuration (path profiling
//! *and* a calling context tree with hardware metrics) — the heaviest
//! pipeline the profiler has, and the one the predecoded micro-op arena
//! was built for. When the binary carries the `reference` feature (the
//! default), each case also runs through the pre-predecoding
//! tree-walking interpreter, so the report carries a before/after
//! wall-time comparison of the same profile computation. Wall times are
//! best-of-N (`--repeat`, default 3): the simulation is deterministic,
//! so the minimum over repeats measures the pipeline, not the host's
//! scheduling noise.
//!
//! The JSON file is an append-friendly trajectory: one file per day,
//! each holding the totals plus per-case numbers, so future PRs can
//! diff `BENCH_*.json` files to see whether the hot path got faster.

use std::fmt::Write as _;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use pp::ir::HwEvent;
use pp::profiler::{PpError, Profiler, RunConfig};

/// What `pp bench` measures for one workload under one pipeline.
#[derive(Clone, Copy, Debug, Default)]
struct PipelineSample {
    /// Host seconds for instrument + simulate + profile.
    wall_s: f64,
    /// Simulated cycles the run retired.
    sim_cycles: u64,
    /// Simulated bytes of the CCT heap at exit.
    cct_bytes: u64,
    /// CCT records allocated.
    cct_records: u64,
}

/// One workload's measurements: the optimized pipeline and, when the
/// `reference` feature is in, the tree-walking baseline.
struct CaseResult {
    name: String,
    optimized: PipelineSample,
    reference: Option<PipelineSample>,
}

/// Options the CLI hands to [`run_bench`].
pub struct BenchArgs {
    /// Workload scale factor (the suite's `--scale`).
    pub scale: f64,
    /// Smoke mode: tiny scale, no `BENCH_*.json` unless `--out` is given.
    pub smoke: bool,
    /// Explicit output path overriding `BENCH_<date>.json`.
    pub out: Option<String>,
    /// Events on `%pic0` / `%pic1`.
    pub events: (HwEvent, HwEvent),
    /// Times each case this many times and keeps the fastest wall time
    /// per pipeline. The simulation is deterministic, so repeats differ
    /// only by host scheduling noise — best-of-N strips it.
    pub repeat: usize,
}

fn sample(
    profiler: &Profiler,
    program: &pp::ir::Program,
    config: RunConfig,
    run: impl FnOnce(
        &Profiler,
        &pp::ir::Program,
        RunConfig,
    ) -> Result<pp::profiler::RunOutcome, pp::profiler::ProfileError>,
) -> Result<PipelineSample, PpError> {
    let t = Instant::now();
    let outcome = run(profiler, program, config).map_err(|e| PpError::Usage(e.to_string()))?;
    let wall_s = t.elapsed().as_secs_f64();
    if let Some(fault) = outcome.fault {
        return Err(PpError::Aborted(fault));
    }
    let (cct_bytes, cct_records) = outcome
        .cct
        .as_ref()
        .map(|c| (c.heap_bytes(), c.num_records() as u64))
        .unwrap_or((0, 0));
    Ok(PipelineSample {
        wall_s,
        sim_cycles: outcome.cycles(),
        cct_bytes,
        cct_records,
    })
}

/// Runs `sample` `repeat` times and keeps the fastest wall time (the
/// simulated statistics are identical across repeats — the run is
/// deterministic).
fn sample_best(
    repeat: usize,
    profiler: &Profiler,
    program: &pp::ir::Program,
    config: RunConfig,
    run: impl Fn(
        &Profiler,
        &pp::ir::Program,
        RunConfig,
    ) -> Result<pp::profiler::RunOutcome, pp::profiler::ProfileError>,
) -> Result<PipelineSample, PpError> {
    let mut best: Option<PipelineSample> = None;
    for _ in 0..repeat.max(1) {
        let s = sample(profiler, program, config, &run)?;
        best = Some(match best {
            Some(b) if b.wall_s <= s.wall_s => b,
            _ => s,
        });
    }
    Ok(best.expect("at least one repeat"))
}

/// Runs the suite, prints the comparison table, and (outside smoke mode)
/// writes the `BENCH_<date>.json` trajectory entry.
///
/// # Errors
///
/// Any case that fails to instrument, faults mid-run, or cannot write
/// the JSON file fails the whole command — CI's `pp bench --smoke` step
/// relies on that.
pub fn run_bench(args: &BenchArgs) -> Result<(), PpError> {
    let scale = if args.smoke {
        args.scale.min(0.05)
    } else {
        args.scale
    };
    let cases = pp::bench::cases_at(scale);
    let profiler = Profiler::new(pp::usim::MachineConfig::default());
    let config = RunConfig::CombinedHw {
        events: args.events,
    };

    // Cases run strictly one at a time, and each pipeline gets its own
    // pass over the whole suite. Timing under `bench::par_map` would let
    // concurrently scheduled cases steal CPU from whichever pipeline
    // happens to be on the stopwatch, and interleaving the two pipelines
    // per case lets the reference interpreter's much larger allocations
    // perturb the allocator and page state that the optimized pipeline
    // is then timed against.
    let repeat = if args.smoke { 1 } else { args.repeat.max(1) };
    let optimized: Vec<PipelineSample> = cases
        .iter()
        .map(|case| {
            sample_best(repeat, &profiler, &case.program, config, |p, prog, c| {
                p.run(prog, c)
            })
        })
        .collect::<Result<_, _>>()?;
    #[cfg(feature = "reference")]
    let reference: Vec<Option<PipelineSample>> = cases
        .iter()
        .map(|case| {
            sample_best(repeat, &profiler, &case.program, config, |p, prog, c| {
                p.run_reference(prog, c)
            })
            .map(Some)
        })
        .collect::<Result<_, _>>()?;
    #[cfg(not(feature = "reference"))]
    let reference: Vec<Option<PipelineSample>> = vec![None; cases.len()];
    let results: Vec<CaseResult> = cases
        .iter()
        .zip(optimized)
        .zip(reference)
        .map(|((case, optimized), reference)| CaseResult {
            name: case.name.clone(),
            optimized,
            reference,
        })
        .collect();

    // Totals.
    let total = |get: &dyn Fn(&CaseResult) -> f64| results.iter().map(get).sum::<f64>();
    let opt_wall = total(&|r| r.optimized.wall_s);
    let ref_wall = total(&|r| r.reference.map(|s| s.wall_s).unwrap_or(0.0));
    let sim_cycles: u64 = results.iter().map(|r| r.optimized.sim_cycles).sum();
    let peak_cct = results
        .iter()
        .map(|r| r.optimized.cct_bytes)
        .max()
        .unwrap_or(0);
    let have_ref = results.iter().all(|r| r.reference.is_some()) && !results.is_empty();
    let speedup = if have_ref && opt_wall > 0.0 {
        ref_wall / opt_wall
    } else {
        0.0
    };

    println!("== pp bench: combined pipeline (simulate + CCT + path counters), scale {scale} ==");
    println!(
        "{:<14} {:>10} {:>10} {:>8} {:>12} {:>10} {:>8}",
        "benchmark", "wall ms", "ref ms", "speedup", "sim Mcycles", "cct KB", "records"
    );
    for r in &results {
        let (ref_ms, case_speedup) = match r.reference {
            Some(s) => (
                format!("{:.1}", s.wall_s * 1e3),
                format!("{:.2}x", s.wall_s / r.optimized.wall_s.max(1e-12)),
            ),
            None => ("-".to_string(), "-".to_string()),
        };
        println!(
            "{:<14} {:>10.1} {:>10} {:>8} {:>12.1} {:>10.1} {:>8}",
            r.name,
            r.optimized.wall_s * 1e3,
            ref_ms,
            case_speedup,
            r.optimized.sim_cycles as f64 / 1e6,
            r.optimized.cct_bytes as f64 / 1024.0,
            r.optimized.cct_records,
        );
    }
    println!(
        "\ntotals: {:.3}s optimized | {} | {:.1} M simulated cycles/s | peak CCT {:.1} KB",
        opt_wall,
        if have_ref {
            format!("{ref_wall:.3}s reference ({speedup:.2}x speedup)")
        } else {
            "reference pipeline not built (enable the `reference` feature)".to_string()
        },
        sim_cycles as f64 / opt_wall.max(1e-12) / 1e6,
        peak_cct as f64 / 1024.0,
    );

    let path = match (&args.out, args.smoke) {
        (Some(p), _) => Some(p.clone()),
        (None, true) => None,
        (None, false) => Some(format!("BENCH_{}.json", today_utc())),
    };
    if let Some(path) = path {
        let json = render_json(
            scale, repeat, &results, opt_wall, ref_wall, sim_cycles, peak_cct,
        );
        std::fs::write(&path, json).map_err(|e| PpError::io(&path, e))?;
        println!("wrote {path}");
    }
    Ok(())
}

fn render_json(
    scale: f64,
    repeat: usize,
    results: &[CaseResult],
    opt_wall: f64,
    ref_wall: f64,
    sim_cycles: u64,
    peak_cct: u64,
) -> String {
    let have_ref = results.iter().all(|r| r.reference.is_some()) && !results.is_empty();
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"date\": \"{}\",", today_utc());
    let _ = writeln!(s, "  \"scale\": {scale},");
    let _ = writeln!(s, "  \"repeat\": {repeat},");
    let _ = writeln!(
        s,
        "  \"pipeline\": \"combined (simulate + CCT + path counters)\","
    );
    let _ = writeln!(s, "  \"wall_s\": {opt_wall:.6},");
    if have_ref {
        let _ = writeln!(s, "  \"reference_wall_s\": {ref_wall:.6},");
        let _ = writeln!(s, "  \"speedup\": {:.3},", ref_wall / opt_wall.max(1e-12));
    }
    let _ = writeln!(s, "  \"sim_cycles\": {sim_cycles},");
    let _ = writeln!(
        s,
        "  \"sim_cycles_per_sec\": {:.0},",
        sim_cycles as f64 / opt_wall.max(1e-12)
    );
    let _ = writeln!(s, "  \"peak_cct_bytes\": {peak_cct},");
    s.push_str("  \"cases\": [\n");
    for (i, r) in results.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"name\": \"{}\", \"wall_s\": {:.6}, ",
            r.name, r.optimized.wall_s
        );
        if let Some(rs) = r.reference {
            let _ = write!(s, "\"reference_wall_s\": {:.6}, ", rs.wall_s);
        }
        let _ = write!(
            s,
            "\"sim_cycles\": {}, \"cct_bytes\": {}, \"cct_records\": {}}}",
            r.optimized.sim_cycles, r.optimized.cct_bytes, r.optimized.cct_records
        );
        s.push_str(if i + 1 < results.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Today's UTC date as `YYYY-MM-DD`, from the system clock (no external
/// date crates in this container; the civil-from-days conversion is the
/// standard Howard Hinnant algorithm).
fn today_utc() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs() as i64)
        .unwrap_or(0);
    let z = secs.div_euclid(86_400) + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}
