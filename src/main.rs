//! `pp` — the command-line profiler.
//!
//! ```text
//! pp list                                   list the benchmark suite
//! pp run <target> [options]                 profile and summarize
//! pp hot <target> [options]                 hot paths and procedures
//! pp report <target> [options]              full report: overheads, hot
//!                                           paths, procedures, CCT stats
//! pp cct <target> [--out FILE] [options]    build a CCT, print stats
//! pp stats <file.cct>                       stats of a saved CCT profile
//! pp stats <target> [options]               overhead accounting: per-phase
//!                                           wall times, internals metrics,
//!                                           instrumented-vs-base dilation
//!                                           (the paper's Table 5 analogue)
//! pp annotate <target> <proc> [options]     annotated block listing
//! pp decode <target> <proc> <sum>           decode a path sum to blocks
//! pp bench [--smoke] [--out FILE] [options] time the combined pipeline
//!                                           over the suite; write
//!                                           BENCH_<date>.json
//! pp batch [targets...] [options]           supervised campaign over the
//!                                           suite (or the given targets):
//!                                           worker threads, guest limits,
//!                                           retries, crash-safe
//!                                           checkpoint/resume
//! pp merge <shards...> --out FILE [options] fold N CCT shard profiles
//!                                           (files and/or checkpoint
//!                                           dirs) into one deterministic
//!                                           fleet profile; corrupt
//!                                           shards quarantine (--strict
//!                                           fails fast, exit 3);
//!                                           --checkpoint-dir/--resume
//!                                           make the fold crash-safe
//! pp verify <file|dir|target> [options]     integrity verification: flow
//!                                           conservation, CCT structure,
//!                                           counter-wrap sanity, envelope
//!                                           CRCs; exit 2 on any violation
//! pp serve [options]                        profile-as-a-service daemon on
//!                                           a Unix socket (and, with
//!                                           --listen, TCP): bounded
//!                                           admission, per-client quotas,
//!                                           connection caps and idle/frame
//!                                           deadlines, drain-on-signal,
//!                                           crash-safe journal + checkpoint
//!                                           recovery
//! pp submit <target> [options]              send one job to a daemon
//! pp status [job-id] [options]              query a daemon's jobs/metrics
//!                                           (live when the daemon answers;
//!                                           stale-labeled checkpoint state
//!                                           otherwise; --metrics/--prom for
//!                                           the full registry)
//! pp fetch [artifact] [options]             pull a stored artifact (or,
//!                                           by default, the merged
//!                                           fleet profile) off a daemon
//!                                           over the socket, CRC
//!                                           verified; --out renames it
//! pp watch [options]                        tail the daemon's event bus:
//!                                           per-job lifecycle, phase
//!                                           changes, metrics snapshots;
//!                                           filter with --job/--client/
//!                                           --events/--since, --json for
//!                                           raw NDJSON frames
//! pp chaos [options]                        deterministic fault-injecting
//!                                           TCP proxy for transport soak
//!                                           tests: --listen, --upstream,
//!                                           --plan ok,delay:MS,throttle:N,
//!                                           tear:K,reset:M,blackhole,
//!                                           assigned by accept order
//!                                           (rotated by --seed)
//!
//! <target> is a suite benchmark name (see `pp list`) or a path to a
//! textual IR file (see pp_ir::parse).
//!
//! options:
//!   --config base|edge|flow|flow-hw|context-hw|context-flow|combined
//!   --events <ev0>,<ev1>      counter selection (default insts,dc_miss)
//!   --scale <f64>             suite workload scale (default 1.0)
//!   --threshold <f64>         hot threshold (default 0.01)
//!   --cct-cap <u32>           cap CCT records; overflow collapses
//!                             DCG-style (default unlimited)
//!   --max-uops <u64>          abort runs after this many micro-ops
//!                             (partial profile, exit code 2)
//!   --fuel <u64>              guest µop budget; a run that exhausts it
//!                             stops with a typed limit error (batch
//!                             default 1e9; elsewhere unlimited)
//!   --deadline <secs>         guest wall-clock deadline; 0 disables
//!                             (stats/bench default 120s, else none)
//!   --jobs <n>                (batch) worker threads (default: up to 4)
//!   --retries <n>             (batch/serve) transient-failure retry
//!                             budget per job; (submit/status/fetch/
//!                             watch) reconnect/retry budget (default 2)
//!   --seed <u64>              (batch/serve) backoff-jitter seed, stored
//!                             in the manifest; (client verbs/chaos)
//!                             retry-jitter / plan-rotation seed
//!                             (default 0)
//!   --checkpoint-dir <DIR>    (batch) persist the manifest + finished
//!                             profiles there after each completion;
//!                             (merge) commit a resumable fold
//!                             checkpoint every --checkpoint-every
//!                             shards
//!   --resume <DIR>            (batch) resume an interrupted campaign
//!                             from DIR's manifest; (merge) resume an
//!                             interrupted fold — the result is
//!                             byte-identical to an uninterrupted run
//!   --strict                  (merge) first corrupt/alien shard fails
//!                             the merge (exit 3) instead of
//!                             quarantining it
//!   --inject <spec>           (batch) fault injection: comma-separated
//!                             hang@I | panic@I[:N] | transient@I[:N] |
//!                             corrupt@I[:N] | truncate@W[:KEEP] | halt@W
//!   --quarantine-cap <n>      (batch/serve) keep at most n quarantined
//!                             attempt-sets, evicting oldest-first
//!                             (default 0 = keep everything)
//!   --socket <PATH>           (serve/submit/status) daemon address: a
//!                             Unix socket path, `unix:PATH`,
//!                             `tcp:HOST:PORT`, or a bare `HOST:PORT`
//!                             (default pp.sock)
//!   --listen <HOST:PORT>      (serve) also listen on TCP; `:0` picks an
//!                             ephemeral port, reported on stdout;
//!                             (chaos) the proxy's listen address
//!   --max-conns <n>           (serve) concurrent-connection cap; excess
//!                             connections get a typed `overloaded`
//!                             refusal with retry_after_ms (default 64;
//!                             0 = unlimited)
//!   --idle-timeout <secs>     (serve) close connections idle between
//!                             requests, with a typed `idle-timeout`
//!                             frame (default 300; 0 = never)
//!   --io-timeout <secs>       (serve) per-frame read / per-write
//!                             deadline — the slow-loris cutoff
//!                             (default 10; 0 = none)
//!   --timeout <secs>          (submit/status/fetch/watch) per-reply
//!                             deadline; an unresponsive daemon is a
//!                             typed transport failure, exit 4
//!                             (default 30)
//!   --upstream <ADDR>         (chaos) the real daemon the proxy
//!                             forwards to (`tcp:HOST:PORT`)
//!   --plan <SPEC>             (chaos) comma-separated fault plan:
//!                             ok | delay:MS | throttle:BYTES | tear:K |
//!                             reset:M | blackhole (default ok)
//!   --queue-cap <n>           (serve) bounded admission queue; a full
//!                             queue rejects with `overloaded`, exit 4
//!   --quota <n>               (serve) max in-flight jobs per client
//!                             (default 0 = unlimited)
//!   --checkpoint-every <n>    (serve) terminal jobs between checkpoint
//!                             manifest writes (default 8)
//!   --inject-every <spec>     (serve) soak-test faults: comma-separated
//!                             panic=N | transient=N | corrupt=N, hitting
//!                             every N-th job's first attempt
//!   --client <NAME>           (submit) client name for quota accounting;
//!                             (watch) only that client's events
//!   --wait                    (submit) block until the job is terminal
//!   --wait-idle               (status) block until the daemon is idle
//!   --metrics                 (status) print every counter, gauge, and
//!                             histogram of the daemon's registry
//!   --prom                    (status) Prometheus text exposition of
//!                             the same registry (implies --metrics)
//!   --job <id>                (watch) only that job's events
//!   --since <seq>             (watch) replay retained events from that
//!                             bus sequence number first (0 = all)
//!   --json                    (watch) raw NDJSON frames, one per line
//!                             (for watch, --events takes a comma list
//!                             of kinds: admitted,queued,started,
//!                             retrying,quarantined,done,state,metrics)
//!   --against <target>        (verify) the program a flow profile was
//!                             collected from, enabling the
//!                             flow-conservation walk
//!   --clobber-pics <read>     (verify) seed a counter clobber at that
//!                             read index — the unreconcilable-wrap
//!                             fault the wrap checks must catch
//!   --smoke                   (bench) tiny scale, no BENCH file unless
//!                             --out is given — the CI execution check
//!   --repeat <n>              (bench) time each case n times, report the
//!                             best (default 3; noise rejection)
//!   --check <FILE>            (bench) regression guard: compare totals
//!                             against a recorded BENCH_*.json and exit
//!                             nonzero on a slowdown beyond --tolerance;
//!                             never writes the trajectory
//!   --tolerance <f>           (bench) allowed relative regression for
//!                             --check (default 0.02 = 2%)
//!   --emit-meta <FILE>        (bench) write the suite-wide dynamic
//!                             micro-op mix (the self-hosted PGO input;
//!                             checked in at crates/usim/meta/uop_meta.json)
//!   --trace                   record pipeline spans; print a collapsed
//!                             flamegraph stack to stderr at exit
//!                             (PP_TRACE=1 does the same)
//!   --trace-out <FILE>        write recorded spans as Chrome trace_event
//!                             JSON (chrome://tracing, Perfetto)
//!   --quiet                   suppress all stderr diagnostics
//!                             (PP_LOG=warn|info|debug sets the level)
//!
//! exit codes: 0 success; 1 usage or instrumentation error; 2 run
//! aborted (partial profile) or integrity violation; 3 I/O error or
//! corrupt profile; 4 service unavailable (overloaded, quota
//! exhausted, draining, or an unreachable/unresponsive daemon on
//! either transport — back off and resubmit).
//! ```

mod batch_cmd;
mod bench_cmd;
mod chaos_cmd;
mod merge_cmd;
#[cfg(unix)]
mod serve_cmd;
mod signals;
mod verify_cmd;

use std::process::ExitCode;
use std::time::{Duration, Instant};

use pp::cct::{CctStats, SerializeError};
use pp::ir::{HwEvent, ProcId, Program};
use pp::profiler::{analysis, annotate, IntegrityError, PpError, Profiler, RunConfig, RunOutcome};
use pp::usim::{ExecError, GuestLimits, MachineConfig};

/// Default wall-clock deadline for the long-running accounting commands
/// (`pp stats`, `pp bench`): generous enough that no legitimate run on
/// any plausible host gets near it, but a wedged guest no longer hangs
/// CI forever. `--deadline 0` disables it.
const ACCOUNTING_DEADLINE_S: f64 = 120.0;

struct Options {
    config: String,
    /// Was `--config` given explicitly? (`pp stats` defaults to the
    /// combined pipeline, unlike the other commands.)
    config_set: bool,
    events: (HwEvent, HwEvent),
    /// The raw `--events` value. Most commands parse it as an
    /// `ev0,ev1` counter pair into `events`; `pp watch` reads it as a
    /// comma-separated event-kind filter instead.
    events_spec: Option<String>,
    scale: f64,
    threshold: f64,
    out: Option<String>,
    cct_cap: u32,
    max_uops: Option<u64>,
    fuel: Option<u64>,
    deadline: Option<f64>,
    jobs: usize,
    retries: u32,
    seed: u64,
    checkpoint_dir: Option<String>,
    resume: Option<String>,
    inject: Option<String>,
    against: Option<String>,
    clobber_pics: Option<u64>,
    smoke: bool,
    repeat: usize,
    check: Option<String>,
    tolerance: f64,
    emit_meta: Option<String>,
    trace: bool,
    trace_out: Option<String>,
    quiet: bool,
    socket: String,
    listen: Option<String>,
    max_conns: usize,
    idle_timeout: f64,
    io_timeout: f64,
    timeout: Option<f64>,
    upstream: Option<String>,
    plan: String,
    client: String,
    /// Was `--client` given explicitly? (`pp watch` only filters by
    /// client when it was.)
    client_set: bool,
    wait: bool,
    wait_idle: bool,
    metrics: bool,
    prom: bool,
    job: Option<u64>,
    since: Option<u64>,
    json: bool,
    queue_cap: usize,
    quota: usize,
    checkpoint_every: u32,
    quarantine_cap: usize,
    inject_every: Option<String>,
    strict: bool,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            config: "flow-hw".to_string(),
            config_set: false,
            events: (HwEvent::Insts, HwEvent::DcMiss),
            events_spec: None,
            scale: 1.0,
            threshold: 0.01,
            out: None,
            cct_cap: 0,
            max_uops: None,
            fuel: None,
            deadline: None,
            jobs: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .min(4),
            retries: 2,
            seed: 0,
            checkpoint_dir: None,
            resume: None,
            inject: None,
            against: None,
            clobber_pics: None,
            smoke: false,
            repeat: 3,
            check: None,
            tolerance: 0.02,
            emit_meta: None,
            trace: false,
            trace_out: None,
            quiet: false,
            socket: "pp.sock".to_string(),
            listen: None,
            max_conns: 64,
            idle_timeout: 300.0,
            io_timeout: 10.0,
            timeout: None,
            upstream: None,
            plan: "ok".to_string(),
            client: "cli".to_string(),
            client_set: false,
            wait: false,
            wait_idle: false,
            metrics: false,
            prom: false,
            job: None,
            since: None,
            json: false,
            queue_cap: 64,
            quota: 0,
            checkpoint_every: 8,
            quarantine_cap: 0,
            inject_every: None,
            strict: false,
        }
    }
}

impl Options {
    fn profiler(&self) -> Profiler {
        let mut mc = MachineConfig::default();
        if let Some(uops) = self.max_uops {
            mc.max_instructions = uops;
        }
        Profiler::new(mc)
            .with_cct_record_cap(self.cct_cap)
            .with_limits(self.guest_limits(0.0))
    }

    /// The guest resource limits the flags ask for. Commands that want a
    /// conservative safety net (`pp stats`, `pp bench`) pass a non-zero
    /// `default_deadline_s`, applied only when `--deadline` was absent;
    /// an explicit `--deadline 0` always means "no deadline".
    fn guest_limits(&self, default_deadline_s: f64) -> GuestLimits {
        let mut limits = GuestLimits::none();
        if let Some(fuel) = self.fuel {
            limits = limits.with_fuel(fuel);
        }
        let deadline = self.deadline.unwrap_or(default_deadline_s);
        if deadline > 0.0 {
            limits = limits.with_deadline(Duration::from_secs_f64(deadline));
        }
        limits
    }
}

fn usage_err(msg: impl Into<String>) -> PpError {
    PpError::Usage(msg.into())
}

fn parse_event(name: &str) -> Result<HwEvent, PpError> {
    HwEvent::ALL
        .iter()
        .copied()
        .find(|e| e.mnemonic() == name)
        .ok_or_else(|| {
            let all: Vec<&str> = HwEvent::ALL.iter().map(|e| e.mnemonic()).collect();
            usage_err(format!(
                "unknown event `{name}`; one of: {}",
                all.join(", ")
            ))
        })
}

/// Parses a non-negative seconds value (`--timeout`, `--idle-timeout`,
/// `--io-timeout`; 0 always means "disabled").
fn parse_seconds(flag: &str, text: String) -> Result<f64, PpError> {
    let s: f64 = text
        .parse()
        .map_err(|_| usage_err(format!("bad {flag} value (expect seconds)")))?;
    if s < 0.0 || !s.is_finite() {
        return Err(usage_err(format!("{flag} must be a non-negative number")));
    }
    Ok(s)
}

fn parse_options(args: &[String]) -> Result<(Vec<String>, Options), PpError> {
    let mut opts = Options::default();
    let mut positional = Vec::new();
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<'_, String>| {
        it.next()
            .cloned()
            .ok_or_else(|| usage_err(format!("{flag} needs a value")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--config" => {
                opts.config = value("--config", &mut it)?;
                opts.config_set = true;
            }
            "--events" => {
                // Stored raw: `pp watch` reads a kind filter here, every
                // other command a counter pair (parsed in main()).
                opts.events_spec = Some(value("--events", &mut it)?);
            }
            "--scale" => {
                opts.scale = value("--scale", &mut it)?
                    .parse()
                    .map_err(|_| usage_err("bad --scale value"))?;
            }
            "--threshold" => {
                opts.threshold = value("--threshold", &mut it)?
                    .parse()
                    .map_err(|_| usage_err("bad --threshold value"))?;
            }
            "--out" => opts.out = Some(value("--out", &mut it)?),
            "--cct-cap" => {
                opts.cct_cap = value("--cct-cap", &mut it)?
                    .parse()
                    .map_err(|_| usage_err("bad --cct-cap value (expect a u32)"))?;
            }
            "--max-uops" => {
                opts.max_uops = Some(
                    value("--max-uops", &mut it)?
                        .parse()
                        .map_err(|_| usage_err("bad --max-uops value (expect a u64)"))?,
                );
            }
            "--fuel" => {
                opts.fuel = Some(
                    value("--fuel", &mut it)?
                        .parse()
                        .map_err(|_| usage_err("bad --fuel value (expect a u64)"))?,
                );
            }
            "--deadline" => {
                let d: f64 = value("--deadline", &mut it)?
                    .parse()
                    .map_err(|_| usage_err("bad --deadline value (expect seconds)"))?;
                if d < 0.0 || !d.is_finite() {
                    return Err(usage_err("--deadline must be a non-negative number"));
                }
                opts.deadline = Some(d);
            }
            "--jobs" => {
                opts.jobs = value("--jobs", &mut it)?
                    .parse()
                    .map_err(|_| usage_err("bad --jobs value (expect a positive integer)"))?;
                if opts.jobs == 0 {
                    return Err(usage_err("--jobs must be at least 1"));
                }
            }
            "--retries" => {
                opts.retries = value("--retries", &mut it)?
                    .parse()
                    .map_err(|_| usage_err("bad --retries value (expect a u32)"))?;
            }
            "--seed" => {
                opts.seed = value("--seed", &mut it)?
                    .parse()
                    .map_err(|_| usage_err("bad --seed value (expect a u64)"))?;
            }
            "--checkpoint-dir" => {
                opts.checkpoint_dir = Some(value("--checkpoint-dir", &mut it)?);
            }
            "--resume" => opts.resume = Some(value("--resume", &mut it)?),
            "--inject" => opts.inject = Some(value("--inject", &mut it)?),
            "--against" => opts.against = Some(value("--against", &mut it)?),
            "--clobber-pics" => {
                opts.clobber_pics =
                    Some(value("--clobber-pics", &mut it)?.parse().map_err(|_| {
                        usage_err("bad --clobber-pics value (expect a read index)")
                    })?);
            }
            "--socket" => opts.socket = value("--socket", &mut it)?,
            "--listen" => opts.listen = Some(value("--listen", &mut it)?),
            "--max-conns" => {
                opts.max_conns = value("--max-conns", &mut it)?.parse().map_err(|_| {
                    usage_err("bad --max-conns value (expect an integer; 0 = unlimited)")
                })?;
            }
            "--idle-timeout" => {
                opts.idle_timeout =
                    parse_seconds("--idle-timeout", value("--idle-timeout", &mut it)?)?;
            }
            "--io-timeout" => {
                opts.io_timeout = parse_seconds("--io-timeout", value("--io-timeout", &mut it)?)?;
            }
            "--timeout" => {
                opts.timeout = Some(parse_seconds("--timeout", value("--timeout", &mut it)?)?);
            }
            "--upstream" => opts.upstream = Some(value("--upstream", &mut it)?),
            "--plan" => opts.plan = value("--plan", &mut it)?,
            "--client" => {
                opts.client = value("--client", &mut it)?;
                opts.client_set = true;
            }
            "--wait" => opts.wait = true,
            "--wait-idle" => opts.wait_idle = true,
            "--metrics" => opts.metrics = true,
            "--prom" => opts.prom = true,
            "--json" => opts.json = true,
            "--job" => {
                opts.job = Some(
                    value("--job", &mut it)?
                        .parse()
                        .map_err(|_| usage_err("bad --job value (expect a job id)"))?,
                );
            }
            "--since" => {
                opts.since = Some(
                    value("--since", &mut it)?
                        .parse()
                        .map_err(|_| usage_err("bad --since value (expect a sequence number)"))?,
                );
            }
            "--queue-cap" => {
                opts.queue_cap = value("--queue-cap", &mut it)?
                    .parse()
                    .map_err(|_| usage_err("bad --queue-cap value (expect a positive integer)"))?;
                if opts.queue_cap == 0 {
                    return Err(usage_err("--queue-cap must be at least 1"));
                }
            }
            "--quota" => {
                opts.quota = value("--quota", &mut it)?.parse().map_err(|_| {
                    usage_err("bad --quota value (expect an integer; 0 = unlimited)")
                })?;
            }
            "--checkpoint-every" => {
                opts.checkpoint_every = value("--checkpoint-every", &mut it)?
                    .parse()
                    .map_err(|_| usage_err("bad --checkpoint-every value (expect a u32)"))?;
                if opts.checkpoint_every == 0 {
                    return Err(usage_err("--checkpoint-every must be at least 1"));
                }
            }
            "--quarantine-cap" => {
                opts.quarantine_cap =
                    value("--quarantine-cap", &mut it)?.parse().map_err(|_| {
                        usage_err("bad --quarantine-cap value (expect an integer; 0 = unbounded)")
                    })?;
            }
            "--inject-every" => {
                opts.inject_every = Some(value("--inject-every", &mut it)?);
            }
            "--strict" => opts.strict = true,
            "--smoke" => opts.smoke = true,
            "--trace" => opts.trace = true,
            "--trace-out" => opts.trace_out = Some(value("--trace-out", &mut it)?),
            "--quiet" => opts.quiet = true,
            "--repeat" => {
                opts.repeat = value("--repeat", &mut it)?
                    .parse()
                    .map_err(|_| usage_err("bad --repeat value (expect a positive integer)"))?;
                if opts.repeat == 0 {
                    return Err(usage_err("--repeat must be at least 1"));
                }
            }
            "--check" => opts.check = Some(value("--check", &mut it)?),
            "--tolerance" => {
                opts.tolerance = value("--tolerance", &mut it)?.parse().map_err(|_| {
                    usage_err("bad --tolerance value (expect a fraction, e.g. 0.02)")
                })?;
                if opts.tolerance.is_nan() || opts.tolerance < 0.0 {
                    return Err(usage_err("--tolerance must be non-negative"));
                }
            }
            "--emit-meta" => opts.emit_meta = Some(value("--emit-meta", &mut it)?),
            other if other.starts_with("--") => {
                return Err(usage_err(format!("unknown option {other}")))
            }
            other => positional.push(other.to_string()),
        }
    }
    Ok((positional, opts))
}

fn load_target(target: &str, scale: f64) -> Result<(String, Program), PpError> {
    if pp::workloads::SUITE_NAMES.contains(&target) {
        let spec = pp::workloads::spec_for(target)
            .expect("suite name has a spec")
            .scaled(scale);
        return Ok((target.to_string(), pp::workloads::build(&spec)));
    }
    if std::path::Path::new(target).exists() {
        let text = std::fs::read_to_string(target).map_err(|e| PpError::io(target, e))?;
        let program =
            pp::ir::parse::parse_program(&text).map_err(|e| usage_err(format!("{target}: {e}")))?;
        return Ok((target.to_string(), program));
    }
    Err(usage_err(format!(
        "`{target}` is neither a suite benchmark (try `pp list`) nor an IR file"
    )))
}

/// Maps a `--config` name (or a service job spec's `config=` key) onto
/// a [`RunConfig`] with the given counter selection.
fn config_by_name(name: &str, events: (HwEvent, HwEvent)) -> Result<RunConfig, PpError> {
    Ok(match name {
        "base" => RunConfig::Base,
        "edge" => RunConfig::EdgeFreq,
        "flow" => RunConfig::FlowFreq,
        "flow-hw" => RunConfig::FlowHw { events },
        "context-hw" => RunConfig::ContextHw { events },
        "context-flow" => RunConfig::ContextFlow,
        "combined" => RunConfig::CombinedHw { events },
        other => return Err(usage_err(format!("unknown config `{other}`"))),
    })
}

fn run_config(opts: &Options) -> Result<RunConfig, PpError> {
    config_by_name(&opts.config, opts.events)
}

fn find_proc(program: &Program, name: &str) -> Result<ProcId, PpError> {
    program
        .find_procedure(name)
        .ok_or_else(|| usage_err(format!("no procedure named `{name}`")))
}

/// Runs `program` under `config`. An aborted run is not an immediate
/// error: a warning goes to stderr, the first fault is stashed in
/// `fault`, and the partial report comes back so the command can finish
/// printing before the process exits with code 2.
fn profiled(
    profiler: &Profiler,
    program: &Program,
    config: RunConfig,
    fault: &mut Option<ExecError>,
) -> Result<RunOutcome, PpError> {
    let run = profiler.run(program, config)?;
    note_fault(&run, fault);
    Ok(run)
}

/// Warns about (and stashes) the fault of an aborted run, if any.
fn note_fault(run: &RunOutcome, fault: &mut Option<ExecError>) {
    if let Some(e) = &run.fault {
        let hint = if matches!(e, ExecError::LimitExceeded(_)) {
            " — raise --fuel/--deadline, or pass 0 to disable the limit"
        } else {
            ""
        };
        pp::obs::warn!(
            "{} run aborted ({e}{hint}); reporting the partial profile",
            run.config
        );
        fault.get_or_insert_with(|| e.clone());
    }
}

/// Ends a command: exit code 2 when any run was cut short.
fn finish(fault: Option<ExecError>) -> Result<(), PpError> {
    match fault {
        None => Ok(()),
        Some(e) => Err(PpError::Aborted(e)),
    }
}

fn cmd_list() {
    println!("{:<14} {:>5}  description", "benchmark", "suite");
    for name in pp::workloads::SUITE_NAMES {
        let spec = pp::workloads::spec_for(name).expect("known");
        println!(
            "{:<14} {:>5}  {} kernels, {} mids, bias {}%, {} diamonds{}",
            name,
            if spec.cint { "CINT" } else { "CFP" },
            spec.num_kernels,
            spec.num_mids,
            spec.hot_bias,
            spec.diamonds,
            if spec.recursion_depth > 0 {
                ", recursive"
            } else {
                ""
            },
        );
    }
}

fn cmd_run(target: &str, opts: &Options) -> Result<(), PpError> {
    let (name, program) = load_target(target, opts.scale)?;
    let profiler = opts.profiler();
    let mut fault = None;
    let base = profiled(&profiler, &program, RunConfig::Base, &mut fault)?;
    let config = run_config(opts)?;
    let run = profiled(&profiler, &program, config, &mut fault)?;
    println!("== {name} under {} ==", run.config);
    if !run.is_complete() {
        println!("(partial profile: the run was aborted)");
    }
    println!(
        "cycles:       {} ({:.2}x base)",
        run.cycles(),
        run.cycles() as f64 / base.cycles().max(1) as f64
    );
    println!("instructions: {}", run.machine.metrics.get(HwEvent::Insts));
    println!("L1 D-misses:  {}", run.machine.metrics.get(HwEvent::DcMiss));
    if let Some(flow) = &run.flow {
        println!("paths:        {} executed", flow.total_paths_executed());
    }
    if let Some(cct) = &run.cct {
        let stats = CctStats::compute(cct);
        println!(
            "cct:          {} records, {} bytes, height {} max",
            stats.nodes, stats.file_size, stats.height_max
        );
        if cct.overflow_enters() > 0 {
            println!(
                "              (record cap hit: {} enters collapsed onto {} overflow records)",
                cct.overflow_enters(),
                cct.num_overflow_records()
            );
        }
    }
    finish(fault)
}

fn cmd_hot(target: &str, opts: &Options) -> Result<(), PpError> {
    let (name, program) = load_target(target, opts.scale)?;
    let profiler = opts.profiler();
    let mut fault = None;
    let run = profiled(
        &profiler,
        &program,
        RunConfig::FlowHw {
            events: (HwEvent::Insts, HwEvent::DcMiss),
        },
        &mut fault,
    )?;
    let flow = run.flow.as_ref().expect("flow profile");
    let inst = run.instrumented.as_ref().expect("manifest");
    let paths = analysis::hot_paths(flow, opts.threshold);
    println!(
        "== {name}: {} hot paths (>= {:.2}% of {} misses) cover {:.1}% ==",
        paths.hot.len(),
        100.0 * opts.threshold,
        paths.total_miss,
        100.0 * paths.hot_miss_fraction()
    );
    for p in paths.hot.iter().take(20) {
        let blocks = inst
            .decode_path(p.proc, p.sum)
            .map(|(bs, _)| {
                bs.iter()
                    .map(|b| b.0.to_string())
                    .collect::<Vec<_>>()
                    .join("-")
            })
            .unwrap_or_default();
        println!(
            "  {:<14} sum={:<6} freq={:<8} miss={:<8} {:?}  [{blocks}]",
            program.procedure(p.proc).name,
            p.sum,
            p.freq,
            p.miss,
            p.class
        );
    }
    let procs = analysis::hot_procedures(flow, &program, opts.threshold);
    let hot: Vec<&analysis::ProcStat> = procs.hot.iter().collect();
    println!(
        "\n{} hot procedures cover {:.1}% of misses (avg {:.1} paths each)",
        hot.len(),
        100.0 * procs.miss_fraction(&hot),
        analysis::HotProcReport::avg_paths(&hot)
    );
    finish(fault)
}

fn cmd_report(target: &str, opts: &Options) -> Result<(), PpError> {
    let (name, program) = load_target(target, opts.scale)?;
    let profiler = opts.profiler();
    let mut fault = None;
    let base = profiled(&profiler, &program, RunConfig::Base, &mut fault)?;
    println!("================================================================");
    println!("PP profile report: {name}");
    println!("================================================================");
    println!(
        "base: {} cycles, {} instructions, {} L1 D-misses
",
        base.cycles(),
        base.machine.metrics.get(HwEvent::Insts),
        base.machine.metrics.get(HwEvent::DcMiss)
    );

    // Overheads of the main configurations.
    println!("-- profiling overheads (x base cycles) --");
    for config in [
        RunConfig::EdgeFreq,
        RunConfig::FlowFreq,
        RunConfig::FlowHw {
            events: (HwEvent::Insts, HwEvent::DcMiss),
        },
        RunConfig::ContextHw {
            events: (HwEvent::Insts, HwEvent::DcMiss),
        },
        RunConfig::ContextFlow,
    ] {
        let cycles = profiled(&profiler, &program, config, &mut fault)?.cycles();
        println!(
            "  {:<18} {:.2}x",
            config.to_string(),
            cycles as f64 / base.cycles().max(1) as f64
        );
    }

    // Hot paths and procedures.
    let run = profiled(
        &profiler,
        &program,
        RunConfig::FlowHw {
            events: (HwEvent::Insts, HwEvent::DcMiss),
        },
        &mut fault,
    )?;
    let flow = run.flow.as_ref().expect("profile");
    let inst = run.instrumented.as_ref().expect("manifest");
    let paths = analysis::hot_paths(flow, opts.threshold);
    println!(
        "
-- hot paths ({} of {} executed cover {:.1}% of misses) --",
        paths.hot.len(),
        paths.executed,
        100.0 * paths.hot_miss_fraction()
    );
    for p in paths.hot.iter().take(8) {
        println!(
            "  {:<16} sum={:<5} freq={:<7} miss={:<7} {:?}",
            program.procedure(p.proc).name,
            p.sum,
            p.freq,
            p.miss,
            p.class
        );
    }
    let procs = analysis::hot_procedures(flow, &program, opts.threshold);
    let hot_refs: Vec<&analysis::ProcStat> = procs.hot.iter().collect();
    println!(
        "
-- hot procedures ({} cover {:.1}% of misses, {:.1} paths each) --",
        procs.hot.len(),
        100.0 * procs.miss_fraction(&hot_refs),
        analysis::HotProcReport::avg_paths(&hot_refs)
    );
    for p in procs.hot.iter().take(8) {
        println!(
            "  {:<16} inst={:<9} miss={:<7} paths={}",
            p.name, p.inst, p.miss, p.paths_executed
        );
    }
    println!(
        "
-- section 6.4.3 -- blocks on hot paths lie on {:.1} executed paths each",
        analysis::block_path_multiplicity(inst, flow, &paths)
    );

    // CCT summary.
    let cct_run = profiled(
        &profiler,
        &program,
        RunConfig::CombinedHw {
            events: (HwEvent::Insts, HwEvent::DcMiss),
        },
        &mut fault,
    )?;
    let stats = CctStats::compute(cct_run.cct.as_ref().expect("cct"));
    println!(
        "
-- calling context tree -- {} records, {} bytes, height {} max,          {} of {} sites one-path",
        stats.nodes,
        stats.file_size,
        stats.height_max,
        stats.call_sites_one_path,
        stats.call_sites_used
    );

    // The combination: hot (context, path) pairs — the interprocedural
    // approximation.
    // Threshold 0: rank every pair, display the top handful.
    let (ctx_paths, _) = analysis::hot_context_paths(cct_run.cct.as_ref().expect("cct"), 0.0);
    println!("\n-- hot (context, path) pairs (interprocedural approximation) --");
    for cp in ctx_paths.iter().take(6) {
        let chain: Vec<String> = cp
            .context
            .iter()
            .map(|&p| program.procedure(pp::ir::ProcId(p)).name.clone())
            .collect();
        println!(
            "  {} [path {}] freq={} miss={}",
            chain.join(" -> "),
            cp.sum,
            cp.freq,
            cp.m1
        );
    }
    finish(fault)
}

fn cmd_cct(target: &str, opts: &Options) -> Result<(), PpError> {
    let (name, program) = load_target(target, opts.scale)?;
    let profiler = opts.profiler();
    let mut fault = None;
    let run = profiled(
        &profiler,
        &program,
        RunConfig::CombinedHw {
            events: opts.events,
        },
        &mut fault,
    )?;
    let cct = run.cct.as_ref().expect("cct");
    let stats = CctStats::compute(cct);
    println!("== calling context tree of {name} ==");
    println!("records:         {}", stats.nodes);
    println!("file size:       {} bytes", stats.file_size);
    println!("avg node size:   {:.1} bytes", stats.avg_node_size);
    println!("avg out degree:  {:.1}", stats.avg_out_degree);
    println!(
        "height:          {:.1} avg / {} max",
        stats.height_avg, stats.height_max
    );
    println!("max replication: {}", stats.max_replication);
    println!(
        "call sites:      {} used / {} one-path",
        stats.call_sites_used, stats.call_sites_one_path
    );
    if cct.overflow_enters() > 0 {
        println!(
            "record cap:      {} enters collapsed onto {} overflow records",
            cct.overflow_enters(),
            cct.num_overflow_records()
        );
    }
    if let Some(path) = &opts.out {
        let mut file = std::fs::File::create(path).map_err(|e| PpError::io(path, e))?;
        pp::cct::write_cct(cct, &mut file)?;
        println!("wrote profile to {path}");
    }
    finish(fault)
}

/// `pp stats` wears two hats: handed a saved `.cct` file it prints the
/// profile's statistics; handed a workload it runs the overhead
/// accounting (per-phase wall times, internals metrics, and the
/// instrumented-vs-base dilation table — the paper's Table 5 analogue).
fn cmd_stats(arg: &str, opts: &Options) -> Result<(), PpError> {
    match sniff_stats_input(arg) {
        StatsInput::CctProfile => cmd_stats_file(arg),
        StatsInput::Opaque(reason) => Err(PpError::Integrity(IntegrityError::Artifact(
            SerializeError::Format(format!("{arg}: {reason}")),
        ))),
        StatsInput::Target => cmd_stats_overhead(arg, opts),
    }
}

/// How `pp stats` should treat its argument.
enum StatsInput {
    /// A serialized CCT profile (`PPCCT` magic): print its statistics.
    CctProfile,
    /// A file that is neither a readable profile nor plausible IR text
    /// (empty, wrong magic, or opaque binary): a typed integrity error,
    /// never a parser panic or a misleading usage message.
    Opaque(String),
    /// A suite name or IR file: run the overhead accounting.
    Target,
}

/// Classifies the `pp stats` argument by sniffing the file's leading
/// bytes, so corrupt or mislabeled profiles surface as integrity
/// errors (exit 2) instead of falling into the IR parser.
fn sniff_stats_input(path: &str) -> StatsInput {
    if !std::path::Path::new(path).is_file() {
        return StatsInput::Target; // suite names are not files
    }
    let Ok(head) = read_head(path, 512) else {
        return StatsInput::Target; // unreadable: let target mode report I/O
    };
    if head.is_empty() {
        return StatsInput::Opaque("empty file is not a profile or IR program".into());
    }
    if head.starts_with(b"PPCCT") {
        return StatsInput::CctProfile;
    }
    if head.starts_with(b"PPFLOW") || head.starts_with(b"PPBAT") {
        let magic = String::from_utf8_lossy(&head[..head.len().min(7)]).into_owned();
        return StatsInput::Opaque(format!(
            "{} artifact is not a CCT profile (try `pp verify`)",
            magic.trim_end()
        ));
    }
    if head.starts_with(b"PP") || head.contains(&0) {
        return StatsInput::Opaque("unrecognized binary file (bad or truncated magic)".into());
    }
    StatsInput::Target
}

/// Reads up to `limit` leading bytes of `path` for magic sniffing.
fn read_head(path: &str, limit: usize) -> std::io::Result<Vec<u8>> {
    use std::io::Read as _;
    let mut head = Vec::with_capacity(limit);
    std::fs::File::open(path)?
        .take(limit as u64)
        .read_to_end(&mut head)?;
    Ok(head)
}

fn cmd_stats_file(path: &str) -> Result<(), PpError> {
    let mut file = std::fs::File::open(path).map_err(|e| PpError::io(path, e))?;
    // A file that says it is a CCT profile but fails to decode is an
    // integrity finding (exit 2), not an I/O accident.
    let cct = pp::cct::read_cct(&mut file).map_err(|e| match e {
        SerializeError::Io(src) => PpError::io(path, src),
        other => PpError::Integrity(IntegrityError::Artifact(other)),
    })?;
    let stats = CctStats::compute(&cct);
    println!("== {path} ==");
    println!("records:         {}", stats.nodes);
    println!("file size:       {} bytes (payload model)", stats.file_size);
    println!("avg out degree:  {:.1}", stats.avg_out_degree);
    println!(
        "height:          {:.1} avg / {} max",
        stats.height_avg, stats.height_max
    );
    println!(
        "call sites:      {} used / {} one-path",
        stats.call_sites_used, stats.call_sites_one_path
    );
    if cct.config().max_records != 0 {
        println!("record cap:      {}", cct.config().max_records);
    }
    Ok(())
}

/// The overhead-accounting mode of `pp stats`: run `target` once
/// uninstrumented and once under the profiling pipeline, and report
/// where the time goes (tracing spans), what the internals did (the
/// metrics registry), and how much each hardware metric dilated — the
/// reproduction's analogue of the paper's Table 5 methodology.
fn cmd_stats_overhead(target: &str, opts: &Options) -> Result<(), PpError> {
    // The per-phase table needs spans whether or not --trace was given.
    pp::obs::trace::enable(true);
    let _ = pp::obs::trace::take_events(); // start from a clean buffer

    let (name, program) = {
        let _span = pp::obs::span!("load");
        load_target(target, opts.scale)?
    };
    {
        let _span = pp::obs::span!("verify");
        pp::ir::verify::verify_program(&program).map_err(|e| usage_err(format!("{name}: {e}")))?;
    }
    let (setup_events, _) = pp::obs::trace::take_events();

    // A conservative safety-net deadline: accounting runs are long, and
    // without a bound a wedged guest would hang the command forever.
    let profiler = opts
        .profiler()
        .with_limits(opts.guest_limits(ACCOUNTING_DEADLINE_S));
    // Unlike the other commands, stats defaults to the combined pipeline
    // so the report covers the CCT and path tables too.
    let config = if opts.config_set {
        run_config(opts)?
    } else {
        RunConfig::CombinedHw {
            events: opts.events,
        }
    };
    let mut fault = None;

    // The uninstrumented baseline, wall-timed.
    let t = Instant::now();
    let base = profiled(&profiler, &program, RunConfig::Base, &mut fault)?;
    let base_wall = t.elapsed().as_secs_f64();
    let (base_events, _) = pp::obs::trace::take_events();

    // The instrumented run, observed: the sink records hot-path metrics
    // into the registry, the pipeline records its phase spans.
    let mut reg = pp::obs::Registry::new();
    let t = Instant::now();
    let run = profiler.run_observed(&program, config, &mut reg)?;
    let inst_wall = t.elapsed().as_secs_f64();
    note_fault(&run, &mut fault);

    // Post-run analyses, each its own phase.
    if let Some(flow) = &run.flow {
        let _span = pp::obs::span!("path_regen");
        let _ = analysis::hot_paths(flow, opts.threshold);
    }
    if let Some(cct) = &run.cct {
        let _span = pp::obs::span!("cct_stats");
        let _ = CctStats::compute(cct);
    }
    {
        let _span = pp::obs::span!("serialize");
        pp::profiler::observe::record_outcome(&mut reg, &run);
    }
    let (run_events, dropped) = pp::obs::trace::take_events();
    if dropped > 0 {
        pp::obs::warn!("trace buffer dropped {dropped} oldest spans");
    }
    // The loss is a metric too, so `--out` JSON and the internals
    // snapshot carry it alongside the phase totals.
    pp::obs::Recorder::counter(&mut reg, "trace.dropped", dropped);

    println!(
        "== pp stats: {name} under {} (scale {}) ==",
        run.config, opts.scale
    );
    if !run.is_complete() {
        println!("(partial profile: the run was aborted)");
    }

    // Per-phase wall time: setup plus the instrumented pipeline (the
    // base run's spans are excluded so phases describe one pipeline).
    let mut phase_events = setup_events.clone();
    phase_events.extend_from_slice(&run_events);
    let phases = pp::obs::trace::totals_by_name(&phase_events);
    println!("\n-- per-phase wall time (instrumented pipeline) --");
    for (phase, ns) in &phases {
        println!("  {:<14} {:>10.3} ms", phase, *ns as f64 / 1e6);
    }

    // The dilation table.
    let dilation = |b: f64, i: f64| if b > 0.0 { i / b } else { 0.0 };
    let mut events_of_interest = vec![HwEvent::Cycles, HwEvent::Insts];
    for ev in [opts.events.0, opts.events.1] {
        if !events_of_interest.contains(&ev) {
            events_of_interest.push(ev);
        }
    }
    println!("\n-- dilation vs uninstrumented base run (Table 5 analogue) --");
    println!(
        "  {:<14} {:>14} {:>14} {:>9}",
        "metric", "base", "instrumented", "dilation"
    );
    println!(
        "  {:<14} {:>11.3} ms {:>11.3} ms {:>8.2}x",
        "wall",
        base_wall * 1e3,
        inst_wall * 1e3,
        dilation(base_wall, inst_wall)
    );
    println!(
        "  {:<14} {:>14} {:>14} {:>8.2}x",
        "uops",
        base.machine.uops,
        run.machine.uops,
        dilation(base.machine.uops as f64, run.machine.uops as f64)
    );
    for ev in &events_of_interest {
        let (b, i) = (base.machine.metrics.get(*ev), run.machine.metrics.get(*ev));
        println!(
            "  {:<14} {:>14} {:>14} {:>8.2}x",
            ev.mnemonic(),
            b,
            i,
            dilation(b as f64, i as f64)
        );
    }

    println!("\n-- internals metrics --");
    print!("{}", reg.snapshot());

    if let Some(path) = &opts.out {
        let json = stats_json(
            &name, &run, &base, opts, base_wall, inst_wall, &phases, &reg,
        );
        std::fs::write(path, json).map_err(|e| PpError::io(path, e))?;
        println!("\nwrote stats to {path}");
    }

    // Everything recorded, in chronological order, for --trace-out.
    let mut all_events = setup_events;
    all_events.extend_from_slice(&base_events);
    all_events.extend_from_slice(&run_events);
    emit_trace(opts, &all_events, dropped)?;
    finish(fault)
}

/// Renders the machine-readable form of the overhead report (`pp stats
/// --out`); the schema round-trips through `pp::obs::json`.
#[allow(clippy::too_many_arguments)]
fn stats_json(
    name: &str,
    run: &RunOutcome,
    base: &RunOutcome,
    opts: &Options,
    base_wall: f64,
    inst_wall: f64,
    phases: &std::collections::BTreeMap<&'static str, u64>,
    reg: &pp::obs::Registry,
) -> String {
    use pp::obs::Json;
    let dilation = |b: f64, i: f64| Json::Num(if b > 0.0 { i / b } else { 0.0 });
    let mut dilations = vec![(
        "uops".to_string(),
        dilation(base.machine.uops as f64, run.machine.uops as f64),
    )];
    let mut events_of_interest = vec![HwEvent::Cycles, HwEvent::Insts];
    for ev in [opts.events.0, opts.events.1] {
        if !events_of_interest.contains(&ev) {
            events_of_interest.push(ev);
        }
    }
    for ev in &events_of_interest {
        let (b, i) = (base.machine.metrics.get(*ev), run.machine.metrics.get(*ev));
        dilations.push((ev.mnemonic().to_string(), dilation(b as f64, i as f64)));
    }
    let phases_us: Vec<(String, Json)> = phases
        .iter()
        .map(|(k, ns)| (k.to_string(), Json::Num(*ns as f64 / 1e3)))
        .collect();
    let metrics = pp::obs::json::parse(&reg.to_json()).unwrap_or(Json::Null);
    let doc = Json::Obj(vec![
        ("target".to_string(), Json::Str(name.to_string())),
        ("config".to_string(), Json::Str(run.config.to_string())),
        ("scale".to_string(), Json::Num(opts.scale)),
        ("complete".to_string(), Json::Bool(run.is_complete())),
        (
            "wall".to_string(),
            Json::Obj(vec![
                ("base_s".to_string(), Json::Num(base_wall)),
                ("instrumented_s".to_string(), Json::Num(inst_wall)),
                ("dilation".to_string(), dilation(base_wall, inst_wall)),
            ]),
        ),
        ("dilation".to_string(), Json::Obj(dilations)),
        ("phases_us".to_string(), Json::Obj(phases_us)),
        ("metrics".to_string(), metrics),
    ]);
    let mut text = doc.render();
    text.push('\n');
    text
}

/// Renders any recorded spans the way the trace flags asked for:
/// `--trace-out FILE` writes Chrome trace_event JSON, `--trace` prints
/// the collapsed flamegraph stacks to stderr. `dropped` is the ring
/// buffer's overflow count; both renderings surface it so a truncated
/// trace never reads as a complete one.
fn emit_trace(opts: &Options, events: &[pp::obs::SpanEvent], dropped: u64) -> Result<(), PpError> {
    if let Some(path) = &opts.trace_out {
        let json = pp::obs::trace::chrome_trace(events, dropped);
        std::fs::write(path, json).map_err(|e| PpError::io(path, e))?;
        pp::obs::info!("wrote {} trace events to {path}", events.len());
    }
    if opts.trace {
        eprint!("{}", pp::obs::trace::collapsed_stacks(events, dropped));
    }
    Ok(())
}

fn cmd_annotate(target: &str, proc_name: &str, opts: &Options) -> Result<(), PpError> {
    let (_, program) = load_target(target, opts.scale)?;
    let pid = find_proc(&program, proc_name)?;
    let profiler = opts.profiler();
    let mut fault = None;
    let run = profiled(
        &profiler,
        &program,
        RunConfig::FlowHw {
            events: (HwEvent::Insts, HwEvent::DcMiss),
        },
        &mut fault,
    )?;
    let attr = annotate::block_attribution(
        run.instrumented.as_ref().expect("manifest"),
        run.flow.as_ref().expect("profile"),
    );
    print!(
        "{}",
        annotate::annotated_listing(program.procedure(pid), pid, &attr)
    );
    println!(
        "\n(avg top-path share across profile: {:.2} — block numbers rarely \
         identify a single responsible path)",
        annotate::avg_top_path_share(&attr)
    );
    finish(fault)
}

fn cmd_decode(
    target: &str,
    proc_name: &str,
    sum_text: &str,
    opts: &Options,
) -> Result<(), PpError> {
    let (_, program) = load_target(target, opts.scale)?;
    let pid = find_proc(&program, proc_name)?;
    let sum: u64 = sum_text.parse().map_err(|_| usage_err("bad path sum"))?;
    let paths = pp::pathprof::ProcPaths::analyze(program.procedure(pid))
        .map_err(|e| usage_err(e.to_string()))?;
    if sum >= paths.num_paths() {
        return Err(usage_err(format!(
            "path sum {sum} out of range ({} potential paths)",
            paths.num_paths()
        )));
    }
    let (blocks, kind) = paths.decode_blocks(sum);
    println!(
        "{proc_name} has {} potential paths; sum {sum} is {:?}:",
        paths.num_paths(),
        kind
    );
    for b in blocks {
        let block = &program.procedure(pid).blocks[b.index()];
        println!("  b{}:", b.0);
        for i in &block.instrs {
            println!("    {i}");
        }
        println!("    {}", block.term);
    }
    Ok(())
}

fn usage() -> &'static str {
    "usage: pp <list|run|report|hot|cct|stats|merge|verify|annotate|decode|bench|batch|serve|submit|status|watch|fetch|chaos> [target] [options]\n\
     run `pp list` to see the benchmark suite; see crate docs for options\n\
     batch: --jobs N --retries N --fuel N --deadline S --seed N --quarantine-cap N\n\
            --checkpoint-dir DIR | --resume DIR  --inject hang@I,corrupt@I,...\n\
     merge: <shards|dirs...> --out FILE [--strict] [--checkpoint-every N]\n\
            [--checkpoint-dir DIR | --resume DIR] [--inject halt@N] [--metrics]\n\
     serve: --socket PATH [--listen HOST:PORT] --checkpoint-dir DIR --jobs N\n\
            --queue-cap N --quota N --max-conns N --idle-timeout S --io-timeout S\n\
            --checkpoint-every N --quarantine-cap N --inject-every panic=N,corrupt=N\n\
     submit: <target> --socket ADDR [--client NAME] [--wait] [--timeout S]\n\
             [--retries N] [--seed N]   (ADDR: path | unix:PATH | tcp:HOST:PORT)\n\
     status: [job-id] --socket ADDR [--wait-idle] [--metrics] [--prom] [--timeout S]\n\
     watch: --socket ADDR [--job ID] [--client NAME] [--events k1,k2] [--since SEQ]\n\
            [--json] [--deadline S]\n\
     chaos: --listen HOST:PORT --upstream ADDR [--seed N]\n\
            [--plan ok,delay:MS,throttle:N,tear:K,reset:M,blackhole]\n\
     verify: <profile|checkpoint-dir|target> [--against TARGET] [--clobber-pics READ]\n\
     observability: --trace, --trace-out FILE, --quiet (also PP_TRACE, PP_LOG)\n\
     exit codes: 0 ok, 1 usage, 2 aborted run or integrity violation,\n\
                 3 i/o or corrupt profile, 4 service unavailable\n\
                 (overloaded/quota/draining/unreachable)"
}

/// The client-verb options shared by `pp submit`, `pp status`, and
/// `pp watch`.
#[cfg(unix)]
fn client_args(opts: &Options) -> serve_cmd::ClientArgs {
    serve_cmd::ClientArgs {
        socket: opts.socket.clone(),
        client: opts.client.clone(),
        dir: opts
            .checkpoint_dir
            .clone()
            .unwrap_or_else(|| "pp-serve-state".to_string()),
        wait: opts.wait,
        wait_idle: opts.wait_idle,
        deadline_s: opts.deadline,
        timeout_s: opts.timeout,
        retries: opts.retries,
        seed: opts.seed,
    }
}

/// `println!` panics when stdout is a closed pipe (`pp list | head`);
/// detect that payload so we can die quietly like any Unix filter.
fn is_broken_pipe(payload: &(dyn std::any::Any + Send)) -> bool {
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied());
    msg.is_some_and(|m| m.contains("Broken pipe"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        eprintln!("{}", usage());
        return ExitCode::from(1);
    };
    let run = || -> Result<(), PpError> {
        let (positional, mut opts) = parse_options(&args[1..])?;
        // `pp watch` reads `--events` as an event-kind filter; everyone
        // else as the hardware-counter pair.
        if cmd != "watch" {
            if let Some(spec) = &opts.events_spec {
                let (a, b) = spec
                    .split_once(',')
                    .ok_or_else(|| usage_err("--events expects `ev0,ev1`"))?;
                opts.events = (parse_event(a.trim())?, parse_event(b.trim())?);
            }
        }
        if opts.quiet {
            pp::obs::log::set_level(pp::obs::Level::Quiet);
        }
        pp::obs::trace::init_from_env();
        if pp::obs::trace::enabled() {
            opts.trace = true; // PP_TRACE=1 behaves exactly like --trace
        }
        if opts.trace || opts.trace_out.is_some() {
            pp::obs::trace::enable(true);
        }
        let result = match (cmd.as_str(), positional.as_slice()) {
            ("list", _) => {
                cmd_list();
                Ok(())
            }
            ("run", [t]) => cmd_run(t, &opts),
            ("report", [t]) => cmd_report(t, &opts),
            ("hot", [t]) => cmd_hot(t, &opts),
            ("cct", [t]) => cmd_cct(t, &opts),
            ("stats", [f]) => cmd_stats(f, &opts),
            ("verify", [t]) => {
                // Like stats/batch, verify defaults to the combined
                // pipeline so every artifact class gets exercised.
                let config = if opts.config_set {
                    run_config(&opts)?
                } else {
                    RunConfig::CombinedHw {
                        events: opts.events,
                    }
                };
                verify_cmd::run_verify(&verify_cmd::VerifyArgs {
                    target: t.clone(),
                    against: opts.against.clone(),
                    clobber_pics: opts.clobber_pics,
                    config,
                    scale: opts.scale,
                    cct_cap: opts.cct_cap,
                    profiler: opts.profiler(),
                })
            }
            ("merge", inputs) => merge_cmd::run_merge_cmd(&merge_cmd::MergeArgs {
                inputs: inputs.to_vec(),
                out: opts.out.clone(),
                strict: opts.strict,
                checkpoint_dir: opts.resume.clone().or_else(|| opts.checkpoint_dir.clone()),
                resume: opts.resume.is_some(),
                checkpoint_every: opts.checkpoint_every,
                inject: opts.inject.clone(),
                metrics: opts.metrics,
            }),
            ("annotate", [t, p]) => cmd_annotate(t, p, &opts),
            ("decode", [t, p, s]) => cmd_decode(t, p, s, &opts),
            ("bench", []) => bench_cmd::run_bench(&bench_cmd::BenchArgs {
                scale: opts.scale,
                smoke: opts.smoke,
                out: opts.out.clone(),
                events: opts.events,
                repeat: opts.repeat,
                limits: opts.guest_limits(ACCOUNTING_DEADLINE_S),
                check: opts.check.clone(),
                tolerance: opts.tolerance,
                emit_meta: opts.emit_meta.clone(),
            }),
            ("batch", targets) => {
                // Batch defaults to the combined pipeline so checkpoints
                // carry both the flow and the CCT profile.
                let (config, config_name) = if opts.config_set {
                    (run_config(&opts)?, opts.config.clone())
                } else {
                    (
                        RunConfig::CombinedHw {
                            events: opts.events,
                        },
                        "combined".to_string(),
                    )
                };
                batch_cmd::run_batch(&batch_cmd::BatchArgs {
                    targets: targets.to_vec(),
                    config,
                    config_name,
                    scale: opts.scale,
                    workers: opts.jobs,
                    retries: opts.retries,
                    seed: opts.seed,
                    fuel: opts.fuel.unwrap_or(batch_cmd::DEFAULT_FUEL),
                    deadline_s: opts.deadline,
                    checkpoint_dir: opts.resume.clone().or_else(|| opts.checkpoint_dir.clone()),
                    resume: opts.resume.is_some(),
                    inject: opts.inject.clone(),
                    quarantine_cap: opts.quarantine_cap,
                    profiler: opts.profiler(),
                })
            }
            #[cfg(unix)]
            ("serve", []) => serve_cmd::run_serve(&serve_cmd::ServeArgs {
                socket: opts.socket.clone(),
                listen: opts.listen.clone(),
                dir: opts
                    .checkpoint_dir
                    .clone()
                    .unwrap_or_else(|| "pp-serve-state".to_string()),
                workers: opts.jobs,
                queue_cap: opts.queue_cap,
                quota: opts.quota,
                max_conns: opts.max_conns,
                idle_timeout_s: opts.idle_timeout,
                io_timeout_s: opts.io_timeout,
                retries: opts.retries,
                seed: opts.seed,
                checkpoint_every: opts.checkpoint_every,
                quarantine_cap: opts.quarantine_cap,
                inject_every: opts.inject_every.clone(),
                fuel: opts.fuel.unwrap_or(batch_cmd::DEFAULT_FUEL),
                deadline_s: opts.deadline,
                profiler: opts.profiler(),
            }),
            #[cfg(unix)]
            ("submit", [t]) => {
                // Like batch, service jobs default to the combined
                // pipeline so artifacts carry flow and CCT profiles.
                let config_name = if opts.config_set {
                    opts.config.clone()
                } else {
                    "combined".to_string()
                };
                serve_cmd::run_submit(
                    &client_args(&opts),
                    t,
                    opts.scale,
                    &config_name,
                    opts.events,
                )
            }
            #[cfg(unix)]
            ("status", []) => {
                serve_cmd::run_status(&client_args(&opts), None, opts.metrics, opts.prom)
            }
            #[cfg(unix)]
            ("status", [id]) => {
                let id = id
                    .parse()
                    .map_err(|_| usage_err(format!("bad job id `{id}`")))?;
                serve_cmd::run_status(&client_args(&opts), Some(id), opts.metrics, opts.prom)
            }
            #[cfg(unix)]
            ("fetch", []) => serve_cmd::run_fetch(&client_args(&opts), None, opts.out.as_deref()),
            #[cfg(unix)]
            ("fetch", [name]) => {
                serve_cmd::run_fetch(&client_args(&opts), Some(name), opts.out.as_deref())
            }
            ("chaos", []) => {
                let listen = opts
                    .listen
                    .clone()
                    .ok_or_else(|| usage_err("pp chaos needs --listen HOST:PORT"))?;
                let upstream = opts
                    .upstream
                    .clone()
                    .ok_or_else(|| usage_err("pp chaos needs --upstream ADDR"))?;
                chaos_cmd::run_chaos(&listen, &upstream, &opts.plan, opts.seed)
            }
            #[cfg(unix)]
            ("watch", []) => serve_cmd::run_watch(
                &client_args(&opts),
                &serve_cmd::WatchArgs {
                    job: opts.job,
                    client_filter: opts.client_set.then(|| opts.client.clone()),
                    kinds: opts.events_spec.clone(),
                    since: opts.since,
                    json: opts.json,
                },
            ),
            _ => Err(PpError::Usage(usage().to_string())),
        };
        // Spans a command recorded but did not render itself (`pp
        // stats` drains its own buffer, so this is a no-op there).
        let (events, dropped) = pp::obs::trace::take_events();
        let trace_result = if events.is_empty() && dropped == 0 {
            Ok(())
        } else {
            emit_trace(&opts, &events, dropped)
        };
        if dropped > 0 {
            pp::obs::warn!("trace buffer dropped {dropped} oldest spans");
        }
        result.and(trace_result)
    };
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !is_broken_pipe(info.payload()) {
            default_hook(info);
        }
    }));
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
        Ok(Ok(())) => ExitCode::SUCCESS,
        Ok(Err(e)) => {
            // Plain `eprintln!` panics on EPIPE, and this line runs
            // outside the catch_unwind above — write fallibly so a
            // closed stderr cannot turn an error report into a panic.
            use std::io::Write;
            let _ = writeln!(std::io::stderr(), "error: {e}");
            ExitCode::from(e.exit_code())
        }
        Err(payload) if is_broken_pipe(payload.as_ref()) => {
            // The conventional status of a filter killed by SIGPIPE.
            ExitCode::from(141)
        }
        Err(payload) => std::panic::resume_unwind(payload),
    }
}
