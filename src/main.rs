//! `pp` — the command-line profiler.
//!
//! ```text
//! pp list                                   list the benchmark suite
//! pp run <target> [options]                 profile and summarize
//! pp hot <target> [options]                 hot paths and procedures
//! pp report <target> [options]              full report: overheads, hot
//!                                           paths, procedures, CCT stats
//! pp cct <target> [--out FILE] [options]    build a CCT, print stats
//! pp stats <file.cct>                       stats of a saved CCT profile
//! pp annotate <target> <proc> [options]     annotated block listing
//! pp decode <target> <proc> <sum>           decode a path sum to blocks
//! pp bench [--smoke] [--out FILE] [options] time the combined pipeline
//!                                           over the suite; write
//!                                           BENCH_<date>.json
//!
//! <target> is a suite benchmark name (see `pp list`) or a path to a
//! textual IR file (see pp_ir::parse).
//!
//! options:
//!   --config base|edge|flow|flow-hw|context-hw|context-flow|combined
//!   --events <ev0>,<ev1>      counter selection (default insts,dc_miss)
//!   --scale <f64>             suite workload scale (default 1.0)
//!   --threshold <f64>         hot threshold (default 0.01)
//!   --cct-cap <u32>           cap CCT records; overflow collapses
//!                             DCG-style (default unlimited)
//!   --max-uops <u64>          abort runs after this many micro-ops
//!                             (partial profile, exit code 2)
//!   --smoke                   (bench) tiny scale, no BENCH file unless
//!                             --out is given — the CI execution check
//!   --repeat <n>              (bench) time each case n times, report the
//!                             best (default 3; noise rejection)
//!
//! exit codes: 0 success; 1 usage or instrumentation error; 2 run
//! aborted, partial profile reported; 3 I/O error or corrupt profile.
//! ```

mod bench_cmd;

use std::process::ExitCode;

use pp::cct::CctStats;
use pp::ir::{HwEvent, ProcId, Program};
use pp::profiler::{analysis, annotate, PpError, Profiler, RunConfig, RunOutcome};
use pp::usim::{ExecError, MachineConfig};

struct Options {
    config: String,
    events: (HwEvent, HwEvent),
    scale: f64,
    threshold: f64,
    out: Option<String>,
    cct_cap: u32,
    max_uops: Option<u64>,
    smoke: bool,
    repeat: usize,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            config: "flow-hw".to_string(),
            events: (HwEvent::Insts, HwEvent::DcMiss),
            scale: 1.0,
            threshold: 0.01,
            out: None,
            cct_cap: 0,
            max_uops: None,
            smoke: false,
            repeat: 3,
        }
    }
}

impl Options {
    fn profiler(&self) -> Profiler {
        let mut mc = MachineConfig::default();
        if let Some(uops) = self.max_uops {
            mc.max_instructions = uops;
        }
        Profiler::new(mc).with_cct_record_cap(self.cct_cap)
    }
}

fn usage_err(msg: impl Into<String>) -> PpError {
    PpError::Usage(msg.into())
}

fn parse_event(name: &str) -> Result<HwEvent, PpError> {
    HwEvent::ALL
        .iter()
        .copied()
        .find(|e| e.mnemonic() == name)
        .ok_or_else(|| {
            let all: Vec<&str> = HwEvent::ALL.iter().map(|e| e.mnemonic()).collect();
            usage_err(format!(
                "unknown event `{name}`; one of: {}",
                all.join(", ")
            ))
        })
}

fn parse_options(args: &[String]) -> Result<(Vec<String>, Options), PpError> {
    let mut opts = Options::default();
    let mut positional = Vec::new();
    let mut it = args.iter();
    let value = |flag: &str, it: &mut std::slice::Iter<'_, String>| {
        it.next()
            .cloned()
            .ok_or_else(|| usage_err(format!("{flag} needs a value")))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--config" => opts.config = value("--config", &mut it)?,
            "--events" => {
                let v = value("--events", &mut it)?;
                let (a, b) = v
                    .split_once(',')
                    .ok_or_else(|| usage_err("--events expects `ev0,ev1`"))?;
                opts.events = (parse_event(a.trim())?, parse_event(b.trim())?);
            }
            "--scale" => {
                opts.scale = value("--scale", &mut it)?
                    .parse()
                    .map_err(|_| usage_err("bad --scale value"))?;
            }
            "--threshold" => {
                opts.threshold = value("--threshold", &mut it)?
                    .parse()
                    .map_err(|_| usage_err("bad --threshold value"))?;
            }
            "--out" => opts.out = Some(value("--out", &mut it)?),
            "--cct-cap" => {
                opts.cct_cap = value("--cct-cap", &mut it)?
                    .parse()
                    .map_err(|_| usage_err("bad --cct-cap value (expect a u32)"))?;
            }
            "--max-uops" => {
                opts.max_uops = Some(
                    value("--max-uops", &mut it)?
                        .parse()
                        .map_err(|_| usage_err("bad --max-uops value (expect a u64)"))?,
                );
            }
            "--smoke" => opts.smoke = true,
            "--repeat" => {
                opts.repeat = value("--repeat", &mut it)?
                    .parse()
                    .map_err(|_| usage_err("bad --repeat value (expect a positive integer)"))?;
                if opts.repeat == 0 {
                    return Err(usage_err("--repeat must be at least 1"));
                }
            }
            other if other.starts_with("--") => {
                return Err(usage_err(format!("unknown option {other}")))
            }
            other => positional.push(other.to_string()),
        }
    }
    Ok((positional, opts))
}

fn load_target(target: &str, scale: f64) -> Result<(String, Program), PpError> {
    if pp::workloads::SUITE_NAMES.contains(&target) {
        let spec = pp::workloads::spec_for(target)
            .expect("suite name has a spec")
            .scaled(scale);
        return Ok((target.to_string(), pp::workloads::build(&spec)));
    }
    if std::path::Path::new(target).exists() {
        let text = std::fs::read_to_string(target).map_err(|e| PpError::io(target, e))?;
        let program =
            pp::ir::parse::parse_program(&text).map_err(|e| usage_err(format!("{target}: {e}")))?;
        return Ok((target.to_string(), program));
    }
    Err(usage_err(format!(
        "`{target}` is neither a suite benchmark (try `pp list`) nor an IR file"
    )))
}

fn run_config(opts: &Options) -> Result<RunConfig, PpError> {
    Ok(match opts.config.as_str() {
        "base" => RunConfig::Base,
        "edge" => RunConfig::EdgeFreq,
        "flow" => RunConfig::FlowFreq,
        "flow-hw" => RunConfig::FlowHw {
            events: opts.events,
        },
        "context-hw" => RunConfig::ContextHw {
            events: opts.events,
        },
        "context-flow" => RunConfig::ContextFlow,
        "combined" => RunConfig::CombinedHw {
            events: opts.events,
        },
        other => return Err(usage_err(format!("unknown config `{other}`"))),
    })
}

fn find_proc(program: &Program, name: &str) -> Result<ProcId, PpError> {
    program
        .find_procedure(name)
        .ok_or_else(|| usage_err(format!("no procedure named `{name}`")))
}

/// Runs `program` under `config`. An aborted run is not an immediate
/// error: a warning goes to stderr, the first fault is stashed in
/// `fault`, and the partial report comes back so the command can finish
/// printing before the process exits with code 2.
fn profiled(
    profiler: &Profiler,
    program: &Program,
    config: RunConfig,
    fault: &mut Option<ExecError>,
) -> Result<RunOutcome, PpError> {
    let run = profiler.run(program, config)?;
    if let Some(e) = &run.fault {
        eprintln!(
            "warning: {} run aborted ({e}); reporting the partial profile",
            run.config
        );
        fault.get_or_insert_with(|| e.clone());
    }
    Ok(run)
}

/// Ends a command: exit code 2 when any run was cut short.
fn finish(fault: Option<ExecError>) -> Result<(), PpError> {
    match fault {
        None => Ok(()),
        Some(e) => Err(PpError::Aborted(e)),
    }
}

fn cmd_list() {
    println!("{:<14} {:>5}  description", "benchmark", "suite");
    for name in pp::workloads::SUITE_NAMES {
        let spec = pp::workloads::spec_for(name).expect("known");
        println!(
            "{:<14} {:>5}  {} kernels, {} mids, bias {}%, {} diamonds{}",
            name,
            if spec.cint { "CINT" } else { "CFP" },
            spec.num_kernels,
            spec.num_mids,
            spec.hot_bias,
            spec.diamonds,
            if spec.recursion_depth > 0 {
                ", recursive"
            } else {
                ""
            },
        );
    }
}

fn cmd_run(target: &str, opts: &Options) -> Result<(), PpError> {
    let (name, program) = load_target(target, opts.scale)?;
    let profiler = opts.profiler();
    let mut fault = None;
    let base = profiled(&profiler, &program, RunConfig::Base, &mut fault)?;
    let config = run_config(opts)?;
    let run = profiled(&profiler, &program, config, &mut fault)?;
    println!("== {name} under {} ==", run.config);
    if !run.is_complete() {
        println!("(partial profile: the run was aborted)");
    }
    println!(
        "cycles:       {} ({:.2}x base)",
        run.cycles(),
        run.cycles() as f64 / base.cycles().max(1) as f64
    );
    println!("instructions: {}", run.machine.metrics.get(HwEvent::Insts));
    println!("L1 D-misses:  {}", run.machine.metrics.get(HwEvent::DcMiss));
    if let Some(flow) = &run.flow {
        println!("paths:        {} executed", flow.total_paths_executed());
    }
    if let Some(cct) = &run.cct {
        let stats = CctStats::compute(cct);
        println!(
            "cct:          {} records, {} bytes, height {} max",
            stats.nodes, stats.file_size, stats.height_max
        );
        if cct.overflow_enters() > 0 {
            println!(
                "              (record cap hit: {} enters collapsed onto {} overflow records)",
                cct.overflow_enters(),
                cct.num_overflow_records()
            );
        }
    }
    finish(fault)
}

fn cmd_hot(target: &str, opts: &Options) -> Result<(), PpError> {
    let (name, program) = load_target(target, opts.scale)?;
    let profiler = opts.profiler();
    let mut fault = None;
    let run = profiled(
        &profiler,
        &program,
        RunConfig::FlowHw {
            events: (HwEvent::Insts, HwEvent::DcMiss),
        },
        &mut fault,
    )?;
    let flow = run.flow.as_ref().expect("flow profile");
    let inst = run.instrumented.as_ref().expect("manifest");
    let paths = analysis::hot_paths(flow, opts.threshold);
    println!(
        "== {name}: {} hot paths (>= {:.2}% of {} misses) cover {:.1}% ==",
        paths.hot.len(),
        100.0 * opts.threshold,
        paths.total_miss,
        100.0 * paths.hot_miss_fraction()
    );
    for p in paths.hot.iter().take(20) {
        let blocks = inst
            .decode_path(p.proc, p.sum)
            .map(|(bs, _)| {
                bs.iter()
                    .map(|b| b.0.to_string())
                    .collect::<Vec<_>>()
                    .join("-")
            })
            .unwrap_or_default();
        println!(
            "  {:<14} sum={:<6} freq={:<8} miss={:<8} {:?}  [{blocks}]",
            program.procedure(p.proc).name,
            p.sum,
            p.freq,
            p.miss,
            p.class
        );
    }
    let procs = analysis::hot_procedures(flow, &program, opts.threshold);
    let hot: Vec<&analysis::ProcStat> = procs.hot.iter().collect();
    println!(
        "\n{} hot procedures cover {:.1}% of misses (avg {:.1} paths each)",
        hot.len(),
        100.0 * procs.miss_fraction(&hot),
        analysis::HotProcReport::avg_paths(&hot)
    );
    finish(fault)
}

fn cmd_report(target: &str, opts: &Options) -> Result<(), PpError> {
    let (name, program) = load_target(target, opts.scale)?;
    let profiler = opts.profiler();
    let mut fault = None;
    let base = profiled(&profiler, &program, RunConfig::Base, &mut fault)?;
    println!("================================================================");
    println!("PP profile report: {name}");
    println!("================================================================");
    println!(
        "base: {} cycles, {} instructions, {} L1 D-misses
",
        base.cycles(),
        base.machine.metrics.get(HwEvent::Insts),
        base.machine.metrics.get(HwEvent::DcMiss)
    );

    // Overheads of the main configurations.
    println!("-- profiling overheads (x base cycles) --");
    for config in [
        RunConfig::EdgeFreq,
        RunConfig::FlowFreq,
        RunConfig::FlowHw {
            events: (HwEvent::Insts, HwEvent::DcMiss),
        },
        RunConfig::ContextHw {
            events: (HwEvent::Insts, HwEvent::DcMiss),
        },
        RunConfig::ContextFlow,
    ] {
        let cycles = profiled(&profiler, &program, config, &mut fault)?.cycles();
        println!(
            "  {:<18} {:.2}x",
            config.to_string(),
            cycles as f64 / base.cycles().max(1) as f64
        );
    }

    // Hot paths and procedures.
    let run = profiled(
        &profiler,
        &program,
        RunConfig::FlowHw {
            events: (HwEvent::Insts, HwEvent::DcMiss),
        },
        &mut fault,
    )?;
    let flow = run.flow.as_ref().expect("profile");
    let inst = run.instrumented.as_ref().expect("manifest");
    let paths = analysis::hot_paths(flow, opts.threshold);
    println!(
        "
-- hot paths ({} of {} executed cover {:.1}% of misses) --",
        paths.hot.len(),
        paths.executed,
        100.0 * paths.hot_miss_fraction()
    );
    for p in paths.hot.iter().take(8) {
        println!(
            "  {:<16} sum={:<5} freq={:<7} miss={:<7} {:?}",
            program.procedure(p.proc).name,
            p.sum,
            p.freq,
            p.miss,
            p.class
        );
    }
    let procs = analysis::hot_procedures(flow, &program, opts.threshold);
    let hot_refs: Vec<&analysis::ProcStat> = procs.hot.iter().collect();
    println!(
        "
-- hot procedures ({} cover {:.1}% of misses, {:.1} paths each) --",
        procs.hot.len(),
        100.0 * procs.miss_fraction(&hot_refs),
        analysis::HotProcReport::avg_paths(&hot_refs)
    );
    for p in procs.hot.iter().take(8) {
        println!(
            "  {:<16} inst={:<9} miss={:<7} paths={}",
            p.name, p.inst, p.miss, p.paths_executed
        );
    }
    println!(
        "
-- section 6.4.3 -- blocks on hot paths lie on {:.1} executed paths each",
        analysis::block_path_multiplicity(inst, flow, &paths)
    );

    // CCT summary.
    let cct_run = profiled(
        &profiler,
        &program,
        RunConfig::CombinedHw {
            events: (HwEvent::Insts, HwEvent::DcMiss),
        },
        &mut fault,
    )?;
    let stats = CctStats::compute(cct_run.cct.as_ref().expect("cct"));
    println!(
        "
-- calling context tree -- {} records, {} bytes, height {} max,          {} of {} sites one-path",
        stats.nodes,
        stats.file_size,
        stats.height_max,
        stats.call_sites_one_path,
        stats.call_sites_used
    );

    // The combination: hot (context, path) pairs — the interprocedural
    // approximation.
    // Threshold 0: rank every pair, display the top handful.
    let (ctx_paths, _) = analysis::hot_context_paths(cct_run.cct.as_ref().expect("cct"), 0.0);
    println!("\n-- hot (context, path) pairs (interprocedural approximation) --");
    for cp in ctx_paths.iter().take(6) {
        let chain: Vec<String> = cp
            .context
            .iter()
            .map(|&p| program.procedure(pp::ir::ProcId(p)).name.clone())
            .collect();
        println!(
            "  {} [path {}] freq={} miss={}",
            chain.join(" -> "),
            cp.sum,
            cp.freq,
            cp.m1
        );
    }
    finish(fault)
}

fn cmd_cct(target: &str, opts: &Options) -> Result<(), PpError> {
    let (name, program) = load_target(target, opts.scale)?;
    let profiler = opts.profiler();
    let mut fault = None;
    let run = profiled(
        &profiler,
        &program,
        RunConfig::CombinedHw {
            events: opts.events,
        },
        &mut fault,
    )?;
    let cct = run.cct.as_ref().expect("cct");
    let stats = CctStats::compute(cct);
    println!("== calling context tree of {name} ==");
    println!("records:         {}", stats.nodes);
    println!("file size:       {} bytes", stats.file_size);
    println!("avg node size:   {:.1} bytes", stats.avg_node_size);
    println!("avg out degree:  {:.1}", stats.avg_out_degree);
    println!(
        "height:          {:.1} avg / {} max",
        stats.height_avg, stats.height_max
    );
    println!("max replication: {}", stats.max_replication);
    println!(
        "call sites:      {} used / {} one-path",
        stats.call_sites_used, stats.call_sites_one_path
    );
    if cct.overflow_enters() > 0 {
        println!(
            "record cap:      {} enters collapsed onto {} overflow records",
            cct.overflow_enters(),
            cct.num_overflow_records()
        );
    }
    if let Some(path) = &opts.out {
        let mut file = std::fs::File::create(path).map_err(|e| PpError::io(path, e))?;
        pp::cct::write_cct(cct, &mut file)?;
        println!("wrote profile to {path}");
    }
    finish(fault)
}

fn cmd_stats(path: &str) -> Result<(), PpError> {
    let mut file = std::fs::File::open(path).map_err(|e| PpError::io(path, e))?;
    let cct = pp::cct::read_cct(&mut file)?;
    let stats = CctStats::compute(&cct);
    println!("== {path} ==");
    println!("records:         {}", stats.nodes);
    println!("file size:       {} bytes (payload model)", stats.file_size);
    println!("avg out degree:  {:.1}", stats.avg_out_degree);
    println!(
        "height:          {:.1} avg / {} max",
        stats.height_avg, stats.height_max
    );
    println!(
        "call sites:      {} used / {} one-path",
        stats.call_sites_used, stats.call_sites_one_path
    );
    if cct.config().max_records != 0 {
        println!("record cap:      {}", cct.config().max_records);
    }
    Ok(())
}

fn cmd_annotate(target: &str, proc_name: &str, opts: &Options) -> Result<(), PpError> {
    let (_, program) = load_target(target, opts.scale)?;
    let pid = find_proc(&program, proc_name)?;
    let profiler = opts.profiler();
    let mut fault = None;
    let run = profiled(
        &profiler,
        &program,
        RunConfig::FlowHw {
            events: (HwEvent::Insts, HwEvent::DcMiss),
        },
        &mut fault,
    )?;
    let attr = annotate::block_attribution(
        run.instrumented.as_ref().expect("manifest"),
        run.flow.as_ref().expect("profile"),
    );
    print!(
        "{}",
        annotate::annotated_listing(program.procedure(pid), pid, &attr)
    );
    println!(
        "\n(avg top-path share across profile: {:.2} — block numbers rarely \
         identify a single responsible path)",
        annotate::avg_top_path_share(&attr)
    );
    finish(fault)
}

fn cmd_decode(
    target: &str,
    proc_name: &str,
    sum_text: &str,
    opts: &Options,
) -> Result<(), PpError> {
    let (_, program) = load_target(target, opts.scale)?;
    let pid = find_proc(&program, proc_name)?;
    let sum: u64 = sum_text.parse().map_err(|_| usage_err("bad path sum"))?;
    let paths = pp::pathprof::ProcPaths::analyze(program.procedure(pid))
        .map_err(|e| usage_err(e.to_string()))?;
    if sum >= paths.num_paths() {
        return Err(usage_err(format!(
            "path sum {sum} out of range ({} potential paths)",
            paths.num_paths()
        )));
    }
    let (blocks, kind) = paths.decode_blocks(sum);
    println!(
        "{proc_name} has {} potential paths; sum {sum} is {:?}:",
        paths.num_paths(),
        kind
    );
    for b in blocks {
        let block = &program.procedure(pid).blocks[b.index()];
        println!("  b{}:", b.0);
        for i in &block.instrs {
            println!("    {i}");
        }
        println!("    {}", block.term);
    }
    Ok(())
}

fn usage() -> &'static str {
    "usage: pp <list|run|report|hot|cct|stats|annotate|decode|bench> [target] [options]\n\
     run `pp list` to see the benchmark suite; see crate docs for options\n\
     exit codes: 0 ok, 1 usage, 2 aborted run (partial profile), 3 i/o or corrupt profile"
}

/// `println!` panics when stdout is a closed pipe (`pp list | head`);
/// detect that payload so we can die quietly like any Unix filter.
fn is_broken_pipe(payload: &(dyn std::any::Any + Send)) -> bool {
    let msg = payload
        .downcast_ref::<String>()
        .map(String::as_str)
        .or_else(|| payload.downcast_ref::<&str>().copied());
    msg.is_some_and(|m| m.contains("Broken pipe"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        eprintln!("{}", usage());
        return ExitCode::from(1);
    };
    let run = || -> Result<(), PpError> {
        let (positional, opts) = parse_options(&args[1..])?;
        match (cmd.as_str(), positional.as_slice()) {
            ("list", _) => {
                cmd_list();
                Ok(())
            }
            ("run", [t]) => cmd_run(t, &opts),
            ("report", [t]) => cmd_report(t, &opts),
            ("hot", [t]) => cmd_hot(t, &opts),
            ("cct", [t]) => cmd_cct(t, &opts),
            ("stats", [f]) => cmd_stats(f),
            ("annotate", [t, p]) => cmd_annotate(t, p, &opts),
            ("decode", [t, p, s]) => cmd_decode(t, p, s, &opts),
            ("bench", []) => bench_cmd::run_bench(&bench_cmd::BenchArgs {
                scale: opts.scale,
                smoke: opts.smoke,
                out: opts.out.clone(),
                events: opts.events,
                repeat: opts.repeat,
            }),
            _ => Err(PpError::Usage(usage().to_string())),
        }
    };
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        if !is_broken_pipe(info.payload()) {
            default_hook(info);
        }
    }));
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(run)) {
        Ok(Ok(())) => ExitCode::SUCCESS,
        Ok(Err(e)) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
        Err(payload) if is_broken_pipe(payload.as_ref()) => {
            // The conventional status of a filter killed by SIGPIPE.
            ExitCode::from(141)
        }
        Err(payload) => std::panic::resume_unwind(payload),
    }
}
