//! `pp` — the command-line profiler.
//!
//! ```text
//! pp list                                   list the benchmark suite
//! pp run <target> [options]                 profile and summarize
//! pp hot <target> [options]                 hot paths and procedures
//! pp report <target> [options]              full report: overheads, hot
//!                                           paths, procedures, CCT stats
//! pp cct <target> [--out FILE] [options]    build a CCT, print stats
//! pp annotate <target> <proc> [options]     annotated block listing
//! pp decode <target> <proc> <sum>           decode a path sum to blocks
//!
//! <target> is a suite benchmark name (see `pp list`) or a path to a
//! textual IR file (see pp_ir::parse).
//!
//! options:
//!   --config base|edge|flow|flow-hw|context-hw|context-flow|combined
//!   --events <ev0>,<ev1>      counter selection (default insts,dc_miss)
//!   --scale <f64>             suite workload scale (default 1.0)
//!   --threshold <f64>         hot threshold (default 0.01)
//! ```

use std::process::ExitCode;

use pp::cct::CctStats;
use pp::ir::{HwEvent, ProcId, Program};
use pp::profiler::{analysis, annotate, Profiler, RunConfig};

struct Options {
    config: String,
    events: (HwEvent, HwEvent),
    scale: f64,
    threshold: f64,
    out: Option<String>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            config: "flow-hw".to_string(),
            events: (HwEvent::Insts, HwEvent::DcMiss),
            scale: 1.0,
            threshold: 0.01,
            out: None,
        }
    }
}

fn parse_event(name: &str) -> Result<HwEvent, String> {
    HwEvent::ALL
        .iter()
        .copied()
        .find(|e| e.mnemonic() == name)
        .ok_or_else(|| {
            let all: Vec<&str> = HwEvent::ALL.iter().map(|e| e.mnemonic()).collect();
            format!("unknown event `{name}`; one of: {}", all.join(", "))
        })
}

fn parse_options(args: &[String]) -> Result<(Vec<String>, Options), String> {
    let mut opts = Options::default();
    let mut positional = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--config" => opts.config = it.next().ok_or("--config needs a value")?.clone(),
            "--events" => {
                let v = it.next().ok_or("--events needs a value")?;
                let (a, b) = v
                    .split_once(',')
                    .ok_or("--events expects `ev0,ev1`")?;
                opts.events = (parse_event(a.trim())?, parse_event(b.trim())?);
            }
            "--scale" => {
                opts.scale = it
                    .next()
                    .ok_or("--scale needs a value")?
                    .parse()
                    .map_err(|_| "bad --scale value")?;
            }
            "--threshold" => {
                opts.threshold = it
                    .next()
                    .ok_or("--threshold needs a value")?
                    .parse()
                    .map_err(|_| "bad --threshold value")?;
            }
            "--out" => opts.out = Some(it.next().ok_or("--out needs a value")?.clone()),
            other if other.starts_with("--") => return Err(format!("unknown option {other}")),
            other => positional.push(other.to_string()),
        }
    }
    Ok((positional, opts))
}

fn load_target(target: &str, scale: f64) -> Result<(String, Program), String> {
    if pp::workloads::SUITE_NAMES.contains(&target) {
        let spec = pp::workloads::spec_for(target)
            .expect("suite name has a spec")
            .scaled(scale);
        return Ok((target.to_string(), pp::workloads::build(&spec)));
    }
    if std::path::Path::new(target).exists() {
        let text = std::fs::read_to_string(target).map_err(|e| format!("{target}: {e}"))?;
        let program = pp::ir::parse::parse_program(&text).map_err(|e| format!("{target}: {e}"))?;
        return Ok((target.to_string(), program));
    }
    Err(format!(
        "`{target}` is neither a suite benchmark (try `pp list`) nor an IR file"
    ))
}

fn run_config(opts: &Options) -> Result<RunConfig, String> {
    Ok(match opts.config.as_str() {
        "base" => RunConfig::Base,
        "edge" => RunConfig::EdgeFreq,
        "flow" => RunConfig::FlowFreq,
        "flow-hw" => RunConfig::FlowHw {
            events: opts.events,
        },
        "context-hw" => RunConfig::ContextHw {
            events: opts.events,
        },
        "context-flow" => RunConfig::ContextFlow,
        "combined" => RunConfig::CombinedHw {
            events: opts.events,
        },
        other => return Err(format!("unknown config `{other}`")),
    })
}

fn find_proc(program: &Program, name: &str) -> Result<ProcId, String> {
    program
        .find_procedure(name)
        .ok_or_else(|| format!("no procedure named `{name}`"))
}

fn cmd_list() {
    println!("{:<14} {:>5}  description", "benchmark", "suite");
    for name in pp::workloads::SUITE_NAMES {
        let spec = pp::workloads::spec_for(name).expect("known");
        println!(
            "{:<14} {:>5}  {} kernels, {} mids, bias {}%, {} diamonds{}",
            name,
            if spec.cint { "CINT" } else { "CFP" },
            spec.num_kernels,
            spec.num_mids,
            spec.hot_bias,
            spec.diamonds,
            if spec.recursion_depth > 0 {
                ", recursive"
            } else {
                ""
            },
        );
    }
}

fn cmd_run(target: &str, opts: &Options) -> Result<(), String> {
    let (name, program) = load_target(target, opts.scale)?;
    let profiler = Profiler::default();
    let base = profiler
        .run(&program, RunConfig::Base)
        .map_err(|e| e.to_string())?;
    let config = run_config(opts)?;
    let run = profiler.run(&program, config).map_err(|e| e.to_string())?;
    println!("== {name} under {} ==", run.config);
    println!(
        "cycles:       {} ({:.2}x base)",
        run.cycles(),
        run.cycles() as f64 / base.cycles() as f64
    );
    println!("instructions: {}", run.machine.metrics.get(HwEvent::Insts));
    println!("L1 D-misses:  {}", run.machine.metrics.get(HwEvent::DcMiss));
    if let Some(flow) = &run.flow {
        println!("paths:        {} executed", flow.total_paths_executed());
    }
    if let Some(cct) = &run.cct {
        let stats = CctStats::compute(cct);
        println!(
            "cct:          {} records, {} bytes, height {} max",
            stats.nodes, stats.file_size, stats.height_max
        );
    }
    Ok(())
}

fn cmd_hot(target: &str, opts: &Options) -> Result<(), String> {
    let (name, program) = load_target(target, opts.scale)?;
    let profiler = Profiler::default();
    let run = profiler
        .run(
            &program,
            RunConfig::FlowHw {
                events: (HwEvent::Insts, HwEvent::DcMiss),
            },
        )
        .map_err(|e| e.to_string())?;
    let flow = run.flow.as_ref().expect("flow profile");
    let inst = run.instrumented.as_ref().expect("manifest");
    let paths = analysis::hot_paths(flow, opts.threshold);
    println!(
        "== {name}: {} hot paths (>= {:.2}% of {} misses) cover {:.1}% ==",
        paths.hot.len(),
        100.0 * opts.threshold,
        paths.total_miss,
        100.0 * paths.hot_miss_fraction()
    );
    for p in paths.hot.iter().take(20) {
        let blocks = inst
            .decode_path(p.proc, p.sum)
            .map(|(bs, _)| {
                bs.iter()
                    .map(|b| b.0.to_string())
                    .collect::<Vec<_>>()
                    .join("-")
            })
            .unwrap_or_default();
        println!(
            "  {:<14} sum={:<6} freq={:<8} miss={:<8} {:?}  [{blocks}]",
            program.procedure(p.proc).name,
            p.sum,
            p.freq,
            p.miss,
            p.class
        );
    }
    let procs = analysis::hot_procedures(flow, &program, opts.threshold);
    let hot: Vec<&analysis::ProcStat> = procs.hot.iter().collect();
    println!(
        "\n{} hot procedures cover {:.1}% of misses (avg {:.1} paths each)",
        hot.len(),
        100.0 * procs.miss_fraction(&hot),
        analysis::HotProcReport::avg_paths(&hot)
    );
    Ok(())
}

fn cmd_report(target: &str, opts: &Options) -> Result<(), String> {
    let (name, program) = load_target(target, opts.scale)?;
    let profiler = Profiler::default();
    let base = profiler
        .run(&program, RunConfig::Base)
        .map_err(|e| e.to_string())?;
    println!("================================================================");
    println!("PP profile report: {name}");
    println!("================================================================");
    println!(
        "base: {} cycles, {} instructions, {} L1 D-misses
",
        base.cycles(),
        base.machine.metrics.get(HwEvent::Insts),
        base.machine.metrics.get(HwEvent::DcMiss)
    );

    // Overheads of the main configurations.
    println!("-- profiling overheads (x base cycles) --");
    for config in [
        RunConfig::EdgeFreq,
        RunConfig::FlowFreq,
        RunConfig::FlowHw {
            events: (HwEvent::Insts, HwEvent::DcMiss),
        },
        RunConfig::ContextHw {
            events: (HwEvent::Insts, HwEvent::DcMiss),
        },
        RunConfig::ContextFlow,
    ] {
        let cycles = profiler
            .run(&program, config)
            .map_err(|e| e.to_string())?
            .cycles();
        println!(
            "  {:<18} {:.2}x",
            config.to_string(),
            cycles as f64 / base.cycles() as f64
        );
    }

    // Hot paths and procedures.
    let run = profiler
        .run(
            &program,
            RunConfig::FlowHw {
                events: (HwEvent::Insts, HwEvent::DcMiss),
            },
        )
        .map_err(|e| e.to_string())?;
    let flow = run.flow.as_ref().expect("profile");
    let inst = run.instrumented.as_ref().expect("manifest");
    let paths = analysis::hot_paths(flow, opts.threshold);
    println!(
        "
-- hot paths ({} of {} executed cover {:.1}% of misses) --",
        paths.hot.len(),
        paths.executed,
        100.0 * paths.hot_miss_fraction()
    );
    for p in paths.hot.iter().take(8) {
        println!(
            "  {:<16} sum={:<5} freq={:<7} miss={:<7} {:?}",
            program.procedure(p.proc).name,
            p.sum,
            p.freq,
            p.miss,
            p.class
        );
    }
    let procs = analysis::hot_procedures(flow, &program, opts.threshold);
    let hot_refs: Vec<&analysis::ProcStat> = procs.hot.iter().collect();
    println!(
        "
-- hot procedures ({} cover {:.1}% of misses, {:.1} paths each) --",
        procs.hot.len(),
        100.0 * procs.miss_fraction(&hot_refs),
        analysis::HotProcReport::avg_paths(&hot_refs)
    );
    for p in procs.hot.iter().take(8) {
        println!(
            "  {:<16} inst={:<9} miss={:<7} paths={}",
            p.name, p.inst, p.miss, p.paths_executed
        );
    }
    println!(
        "
-- section 6.4.3 -- blocks on hot paths lie on {:.1} executed paths each",
        analysis::block_path_multiplicity(inst, flow, &paths)
    );

    // CCT summary.
    let cct_run = profiler
        .run(
            &program,
            RunConfig::CombinedHw {
                events: (HwEvent::Insts, HwEvent::DcMiss),
            },
        )
        .map_err(|e| e.to_string())?;
    let stats = CctStats::compute(cct_run.cct.as_ref().expect("cct"));
    println!(
        "
-- calling context tree -- {} records, {} bytes, height {} max,          {} of {} sites one-path",
        stats.nodes,
        stats.file_size,
        stats.height_max,
        stats.call_sites_one_path,
        stats.call_sites_used
    );

    // The combination: hot (context, path) pairs — the interprocedural
    // approximation.
    // Threshold 0: rank every pair, display the top handful.
    let (ctx_paths, _) = analysis::hot_context_paths(cct_run.cct.as_ref().expect("cct"), 0.0);
    println!("\n-- hot (context, path) pairs (interprocedural approximation) --");
    for cp in ctx_paths.iter().take(6) {
        let chain: Vec<String> = cp
            .context
            .iter()
            .map(|&p| program.procedure(pp::ir::ProcId(p)).name.clone())
            .collect();
        println!(
            "  {} [path {}] freq={} miss={}",
            chain.join(" -> "),
            cp.sum,
            cp.freq,
            cp.m1
        );
    }
    Ok(())
}

fn cmd_cct(target: &str, opts: &Options) -> Result<(), String> {
    let (name, program) = load_target(target, opts.scale)?;
    let profiler = Profiler::default();
    let run = profiler
        .run(
            &program,
            RunConfig::CombinedHw {
                events: opts.events,
            },
        )
        .map_err(|e| e.to_string())?;
    let cct = run.cct.as_ref().expect("cct");
    let stats = CctStats::compute(cct);
    println!("== calling context tree of {name} ==");
    println!("records:         {}", stats.nodes);
    println!("file size:       {} bytes", stats.file_size);
    println!("avg node size:   {:.1} bytes", stats.avg_node_size);
    println!("avg out degree:  {:.1}", stats.avg_out_degree);
    println!("height:          {:.1} avg / {} max", stats.height_avg, stats.height_max);
    println!("max replication: {}", stats.max_replication);
    println!(
        "call sites:      {} used / {} one-path",
        stats.call_sites_used, stats.call_sites_one_path
    );
    if let Some(path) = &opts.out {
        let mut file = std::fs::File::create(path).map_err(|e| format!("{path}: {e}"))?;
        pp::cct::write_cct(cct, &mut file).map_err(|e| e.to_string())?;
        println!("wrote profile to {path}");
    }
    Ok(())
}

fn cmd_annotate(target: &str, proc_name: &str, opts: &Options) -> Result<(), String> {
    let (_, program) = load_target(target, opts.scale)?;
    let pid = find_proc(&program, proc_name)?;
    let profiler = Profiler::default();
    let run = profiler
        .run(
            &program,
            RunConfig::FlowHw {
                events: (HwEvent::Insts, HwEvent::DcMiss),
            },
        )
        .map_err(|e| e.to_string())?;
    let attr = annotate::block_attribution(
        run.instrumented.as_ref().expect("manifest"),
        run.flow.as_ref().expect("profile"),
    );
    print!(
        "{}",
        annotate::annotated_listing(program.procedure(pid), pid, &attr)
    );
    println!(
        "\n(avg top-path share across profile: {:.2} — block numbers rarely \
         identify a single responsible path)",
        annotate::avg_top_path_share(&attr)
    );
    Ok(())
}

fn cmd_decode(target: &str, proc_name: &str, sum_text: &str, opts: &Options) -> Result<(), String> {
    let (_, program) = load_target(target, opts.scale)?;
    let pid = find_proc(&program, proc_name)?;
    let sum: u64 = sum_text.parse().map_err(|_| "bad path sum")?;
    let paths = pp::pathprof::ProcPaths::analyze(program.procedure(pid))
        .map_err(|e| e.to_string())?;
    if sum >= paths.num_paths() {
        return Err(format!(
            "path sum {sum} out of range ({} potential paths)",
            paths.num_paths()
        ));
    }
    let (blocks, kind) = paths.decode_blocks(sum);
    println!(
        "{proc_name} has {} potential paths; sum {sum} is {:?}:",
        paths.num_paths(),
        kind
    );
    for b in blocks {
        let block = &program.procedure(pid).blocks[b.index()];
        println!("  b{}:", b.0);
        for i in &block.instrs {
            println!("    {i}");
        }
        println!("    {}", block.term);
    }
    Ok(())
}

fn usage() -> &'static str {
    "usage: pp <list|run|report|hot|cct|annotate|decode> [target] [options]\n\
     run `pp list` to see the benchmark suite; see crate docs for options"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let (positional, opts) = match parse_options(&args[1..]) {
        Ok(x) => x,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let result = match (cmd.as_str(), positional.as_slice()) {
        ("list", _) => {
            cmd_list();
            Ok(())
        }
        ("run", [t]) => cmd_run(t, &opts),
        ("report", [t]) => cmd_report(t, &opts),
        ("hot", [t]) => cmd_hot(t, &opts),
        ("cct", [t]) => cmd_cct(t, &opts),
        ("annotate", [t, p]) => cmd_annotate(t, p, &opts),
        ("decode", [t, p, s]) => cmd_decode(t, p, s, &opts),
        _ => Err(usage().to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
