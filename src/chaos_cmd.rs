//! The hidden `pp chaos` subcommand: a deterministic fault-injecting
//! TCP proxy ([`pp::profiler::ChaosProxy`]) for soak-testing the serve
//! transport. Point clients at `--listen`, point the proxy at the real
//! daemon with `--upstream`, and give it a `--plan` of faults assigned
//! round-robin by accept order (rotated by `--seed`):
//!
//! ```text
//! pp chaos --listen 127.0.0.1:0 --upstream tcp:127.0.0.1:7070 \
//!     --plan ok,delay:25,tear:80,reset:1,blackhole --seed 3
//! ```
//!
//! The proxy prints its bound address (so `--listen :0` works in
//! scripts), then runs until SIGINT/SIGTERM. Faults only ever touch the
//! transport — bytes that do arrive are unmodified — so a client
//! surviving the plan must do it with retries and typed errors, not
//! luck.

use std::io::Write as _;
use std::time::Duration;

use pp::profiler::chaos::{ChaosProxy, FaultPlan};
use pp::profiler::{BindAddr, PpError};
use pp::usim::CancelToken;

/// Runs the proxy until a signal arrives.
///
/// # Errors
///
/// [`PpError::Usage`] for an unparsable plan, [`PpError::Io`] when the
/// listen address cannot be bound.
pub fn run_chaos(listen: &str, upstream: &str, plan: &str, seed: u64) -> Result<(), PpError> {
    let plan = FaultPlan::parse(plan).map_err(PpError::Usage)?;
    let upstream = BindAddr::parse(upstream);
    let mut proxy = ChaosProxy::start(listen, upstream.clone(), plan.clone(), seed)
        .map_err(|e| PpError::io(listen, e))?;
    println!(
        "chaos proxy on tcp://{} -> {upstream} (seed {seed})",
        proxy.addr()
    );
    for (i, fault) in plan.faults().iter().enumerate() {
        println!("  slot {i}: {fault}");
    }
    let _ = std::io::stdout().flush();

    let stop = CancelToken::new();
    crate::signals::install(stop.clone(), stop.clone());
    while !stop.is_cancelled() {
        std::thread::sleep(Duration::from_millis(50));
    }
    let accepted = proxy.accepted();
    proxy.stop();
    println!("chaos proxy stopped after {accepted} connection(s)");
    Ok(())
}
