//! The `pp verify` subcommand: end-to-end integrity verification of
//! every profile artifact the pipeline emits.
//!
//! Three argument shapes, dispatched by sniffing rather than flags so a
//! CI loop can point it at anything:
//!
//! * **a profile file** (`PPFLOW2`/`PPCCT02` magic) — envelope
//!   validation plus the semantic invariant walkers: CCT structure for
//!   `.cct` files; flow conservation for `.flow` files when `--against
//!   <target>` names the program they were collected from (without it,
//!   only the envelope is checkable);
//! * **a checkpoint directory** (or a `PPBAT01` manifest file) — the
//!   batch manifest is validated, every referenced profile's stored
//!   CRC is re-checked, and each profile's bytes run through the full
//!   verification above;
//! * **a workload target** (suite name or IR file) — the pipeline runs
//!   under `--config` (default combined) and the live outcome is
//!   verified: flow conservation, CCT structure, metric sanity against
//!   the machine's ground-truth totals, serialized round-trips, and
//!   dense-vs-hashed path-table agreement at the Section 4.2 threshold
//!   boundary. `--clobber-pics <read>` seeds a mid-run counter clobber
//!   (the unreconcilable-wrap fault) so the detection path itself can
//!   be exercised from the command line.
//!
//! Exit codes follow the taxonomy: 0 clean, 2 for any violated
//! invariant ([`PpError::Integrity`]), 3 for unreadable inputs.

use std::path::Path;

use pp::cct::SerializeError;
use pp::instrument::{InstrumentOptions, Mode};
use pp::ir::Program;
use pp::profiler::integrity::{self, IntegrityError, IntegrityReport};
use pp::profiler::merge::{self, MergeManifest, ShardStatus};
use pp::profiler::{
    BatchManifest, FlowProfile, PpError, ProfileRef, Profiler, RunConfig, RunOutcome,
};
use pp::usim::FaultPlan;

/// The counter values a `--clobber-pics` injection plants: just below
/// the 32-bit wrap, so the next interval delta explodes past any honest
/// total.
const CLOBBER_VALUES: (u32, u32) = (u32::MAX - 10, u32::MAX - 5);

/// Options the CLI hands to [`run_verify`].
pub struct VerifyArgs {
    /// What to verify: profile file, checkpoint directory, or target.
    pub target: String,
    /// Workload the flow profile was collected from (`--against`);
    /// required for flow-conservation checks on `.flow` files.
    pub against: Option<String>,
    /// Seed an unreconcilable counter clobber at this read index
    /// (`--clobber-pics`; target mode only).
    pub clobber_pics: Option<u64>,
    /// Pipeline configuration for target mode.
    pub config: RunConfig,
    /// Workload scale factor.
    pub scale: f64,
    /// CCT record cap (`--cct-cap`), mirrored into the hashed parity
    /// run so both storage strategies degrade identically.
    pub cct_cap: u32,
    /// The base profiler (machine config, CCT cap) from the shared
    /// options.
    pub profiler: Profiler,
}

/// What kind of artifact a file's magic says it is.
enum ArtifactKind {
    Flow,
    Cct,
    Manifest,
    MergeManifest,
}

/// Reads the 8-byte magic of `path` and classifies it. `None` means
/// "not a PP artifact" — the argument falls through to target mode.
fn sniff_magic(path: &Path) -> Option<ArtifactKind> {
    use std::io::Read as _;
    if !path.is_file() {
        return None;
    }
    let mut magic = [0u8; 8];
    let mut file = std::fs::File::open(path).ok()?;
    file.read_exact(&mut magic).ok()?;
    match &magic {
        m if m.starts_with(b"PPFLOW") => Some(ArtifactKind::Flow),
        m if m.starts_with(b"PPCCT") => Some(ArtifactKind::Cct),
        m if m.starts_with(b"PPBAT") => Some(ArtifactKind::Manifest),
        m if m.starts_with(b"PPMRG") => Some(ArtifactKind::MergeManifest),
        _ => None,
    }
}

/// Runs the verification and reports: every violation on stdout, then
/// `verify: OK` or a typed [`PpError::Integrity`] (exit code 2) built
/// from the first violation.
pub fn run_verify(args: &VerifyArgs) -> Result<(), PpError> {
    let path = Path::new(&args.target);
    let (what, report) = if path.is_dir() {
        // A directory can hold a batch/service checkpoint (PPBAT01
        // manifest) or a merge checkpoint (PPMRG01 manifest); a batch
        // manifest wins when both are present since merge state inside
        // a service dir is derived from the batch artifacts.
        if !path.join("manifest.ppb").is_file() && path.join(merge::MERGE_MANIFEST_FILE).is_file() {
            (
                format!("merge checkpoint directory {}", args.target),
                verify_merge_dir(path)?,
            )
        } else {
            (
                format!("checkpoint directory {}", args.target),
                verify_checkpoint_dir(path)?,
            )
        }
    } else {
        match sniff_magic(path) {
            Some(ArtifactKind::Flow) => (
                format!("flow profile {}", args.target),
                verify_flow_file(path, args)?,
            ),
            Some(ArtifactKind::Cct) => (
                format!("CCT profile {}", args.target),
                verify_cct_file(path)?,
            ),
            Some(ArtifactKind::Manifest) => {
                let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
                (
                    format!("batch manifest {}", args.target),
                    verify_checkpoint_dir(dir.unwrap_or(Path::new(".")))?,
                )
            }
            Some(ArtifactKind::MergeManifest) => {
                let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
                (
                    format!("merge manifest {}", args.target),
                    verify_merge_dir(dir.unwrap_or(Path::new(".")))?,
                )
            }
            None => (format!("target {}", args.target), verify_target(args)?),
        }
    };
    println!(
        "verify: {what}: {} checks, {} violation{}",
        report.checks,
        report.violations.len(),
        if report.violations.len() == 1 {
            ""
        } else {
            "s"
        }
    );
    for v in &report.violations {
        println!("  violation: {v}");
    }
    match report.violations.into_iter().next() {
        None => {
            println!("verify: OK");
            Ok(())
        }
        Some(first) => Err(PpError::Integrity(first)),
    }
}

/// Reads a file for verification; unreadable input is I/O (exit 3),
/// not an integrity finding.
fn read_bytes(path: &Path) -> Result<Vec<u8>, PpError> {
    std::fs::read(path).map_err(|e| PpError::io(path.display().to_string(), e))
}

/// Verifies a serialized CCT profile: envelope plus structural walker.
fn verify_cct_file(path: &Path) -> Result<IntegrityReport, PpError> {
    Ok(integrity::verify_cct_bytes(&read_bytes(path)?))
}

/// Verifies a serialized flow profile. With `--against`, the full
/// flow-conservation walk runs against the named program; without it
/// only the envelope is checkable (conservation needs the CFG).
fn verify_flow_file(path: &Path, args: &VerifyArgs) -> Result<IntegrityReport, PpError> {
    let bytes = read_bytes(path)?;
    if let Some(target) = &args.against {
        let (_, program) = crate::load_target(target, args.scale)?;
        return Ok(integrity::verify_flow_bytes(&program, &bytes));
    }
    pp::obs::warn!(
        "no --against <target>: checking the envelope only \
         (flow conservation needs the program)"
    );
    Ok(flow_envelope_only(&bytes))
}

/// Envelope-only validation of flow bytes (used when no program is
/// available to regenerate paths against).
fn flow_envelope_only(bytes: &[u8]) -> IntegrityReport {
    let mut report = IntegrityReport::default();
    report.checks += 1;
    if let Err(e) = FlowProfile::read_from(&mut &bytes[..]) {
        report.violations.push(IntegrityError::Artifact(e));
    }
    report
}

/// Verifies a batch checkpoint directory: the manifest itself, every
/// referenced profile's stored CRC, and each profile's bytes through
/// the full per-artifact verification. A torn manifest is itself an
/// integrity finding (exit 2); a missing one is I/O (exit 3).
fn verify_checkpoint_dir(dir: &Path) -> Result<IntegrityReport, PpError> {
    let mut report = IntegrityReport::default();
    report.checks += 1;
    let manifest = match BatchManifest::load(dir) {
        Ok(m) => m,
        Err(SerializeError::Io(e)) => {
            return Err(PpError::io(format!("{}/manifest.ppb", dir.display()), e))
        }
        Err(e) => {
            report.violations.push(IntegrityError::Artifact(e));
            return Ok(report);
        }
    };
    for entry in &manifest.jobs {
        for (r, kind) in entry
            .flow
            .iter()
            .map(|r| (r, ArtifactKind::Flow))
            .chain(entry.cct.iter().map(|r| (r, ArtifactKind::Cct)))
        {
            report.checks += 1;
            if !r.validates(dir) {
                report
                    .violations
                    .push(IntegrityError::Artifact(SerializeError::Format(format!(
                        "{}: bytes do not match the CRC stored in the manifest",
                        r.file
                    ))));
                continue;
            }
            let bytes = read_bytes(&dir.join(&r.file))?;
            report.merge(match kind {
                // Each job may target a different program, so flow
                // conservation is not checkable here; the manifest CRC
                // plus envelope still catch corruption at rest.
                ArtifactKind::Flow => flow_envelope_only(&bytes),
                ArtifactKind::Cct => integrity::verify_cct_bytes(&bytes),
                ArtifactKind::Manifest | ArtifactKind::MergeManifest => {
                    unreachable!("refs are flow/cct")
                }
            });
        }
    }
    quarantine_note(dir, "pp batch");
    Ok(report)
}

/// Mentions a non-empty quarantine subdirectory; held files are kept
/// evidence, not fresh violations, so this is a note rather than a
/// finding.
fn quarantine_note(dir: &Path, tool: &str) {
    let quarantine = dir.join("quarantine");
    if quarantine.is_dir() {
        let held = std::fs::read_dir(&quarantine)
            .map(|d| d.count())
            .unwrap_or(0);
        if held > 0 {
            println!(
                "note: {} file(s) held in {} (quarantined by {tool})",
                held,
                quarantine.display()
            );
        }
    }
}

/// Verifies a merge checkpoint directory: the `PPMRG01` manifest's own
/// envelope, the partial (or final) fleet profile's stored CRC plus the
/// full CCT structural walk, and every resolved shard's recorded bytes
/// against what is on disk now. A shard that has vanished since the
/// checkpoint is a note, not a violation — the merge result does not
/// depend on it anymore — but one that *changed* invalidates the
/// checkpoint's provenance and is flagged.
fn verify_merge_dir(dir: &Path) -> Result<IntegrityReport, PpError> {
    let mut report = IntegrityReport::default();
    report.checks += 1;
    let manifest = match MergeManifest::load(dir) {
        Ok(m) => m,
        Err(SerializeError::Io(e)) => {
            return Err(PpError::io(
                format!("{}/{}", dir.display(), merge::MERGE_MANIFEST_FILE),
                e,
            ))
        }
        Err(e) => {
            report.violations.push(IntegrityError::Artifact(e));
            return Ok(report);
        }
    };
    match &manifest.merged {
        Some(r) => {
            report.checks += 1;
            if !r.validates(dir) {
                report
                    .violations
                    .push(IntegrityError::Artifact(SerializeError::Format(format!(
                        "{}: bytes do not match the fingerprint stored in the merge manifest",
                        r.file
                    ))));
            } else {
                let bytes = read_bytes(&dir.join(&r.file))?;
                report.merge(integrity::verify_cct_bytes(&bytes));
            }
        }
        None => println!("note: checkpoint has no fleet profile yet (no shard had merged cleanly)"),
    }
    let mut missing = 0usize;
    for shard in &manifest.shards {
        if shard.status == ShardStatus::Pending {
            continue;
        }
        report.checks += 1;
        match std::fs::read(&shard.path) {
            Err(_) => {
                // The fold already consumed it; absence is expected in
                // a fleet where shards are collected then reaped.
                missing += 1;
            }
            Ok(bytes) => {
                let now = ProfileRef::for_bytes(shard.path.clone(), &bytes);
                if now.len != shard.len || now.crc != shard.crc {
                    report
                        .violations
                        .push(IntegrityError::Artifact(SerializeError::Format(format!(
                            "{}: shard bytes changed since the merge checkpoint \
                             (recorded {} bytes fingerprint {:#010x}, found {} bytes fingerprint {:#010x})",
                            shard.path, shard.len, shard.crc, now.len, now.crc
                        ))));
                }
            }
        }
    }
    if missing > 0 {
        println!("note: {missing} recorded shard(s) no longer on disk (checked manifest only)");
    }
    let quarantined = manifest
        .shards
        .iter()
        .filter(|s| matches!(s.status, ShardStatus::Quarantined(_)))
        .count();
    if quarantined > 0 {
        println!("note: manifest records {quarantined} quarantined shard(s) — profile is partial");
    }
    quarantine_note(dir, "pp merge");
    Ok(report)
}

/// Target mode: run the pipeline live and verify the outcome against
/// the machine's ground truth, plus the serialized round-trips and the
/// Section 4.2 dense/hashed boundary.
fn verify_target(args: &VerifyArgs) -> Result<IntegrityReport, PpError> {
    let (name, program) = crate::load_target(&args.target, args.scale)?;
    let mut profiler = args.profiler.clone();
    if let Some(read) = args.clobber_pics {
        pp::obs::warn!("seeding a counter clobber at read {read} (expect a wrap violation)");
        profiler = profiler.with_fault_plan(FaultPlan::default().clobber_pics_at_read(
            read,
            CLOBBER_VALUES.0,
            CLOBBER_VALUES.1,
        ));
    }
    let run = profiler.run(&program, args.config)?;
    if !run.is_complete() {
        pp::obs::warn!("{name}: run was cut short; verifying the partial profile");
    }
    let mut report = integrity::verify_outcome(&program, &run);
    if let Some(flow) = &run.flow {
        let mut bytes = Vec::new();
        flow.write_to(&mut bytes)?;
        report.merge(integrity::verify_flow_bytes(&program, &bytes));
    }
    if let Some(cct) = &run.cct {
        let mut bytes = Vec::new();
        pp::cct::write_cct(cct, &mut bytes)?;
        report.merge(integrity::verify_cct_bytes(&bytes));
    }
    if let RunConfig::CombinedHw { events } = args.config {
        if let Some(dense) = &run.cct {
            report.merge(compare_against_hashed(
                &profiler,
                &program,
                args.config,
                events,
                args.cct_cap,
                dense,
            )?);
        }
    }
    Ok(report)
}

/// Re-runs the combined pipeline with the path-array threshold forced
/// to zero — every procedure hashes its path sums — and checks the two
/// storage strategies agree on every (context, path, frequency) triple
/// (the Section 4.2 boundary invariant).
fn compare_against_hashed(
    profiler: &Profiler,
    program: &Program,
    config: RunConfig,
    events: (pp::ir::HwEvent, pp::ir::HwEvent),
    cct_cap: u32,
    dense: &pp::cct::CctRuntime,
) -> Result<IntegrityReport, PpError> {
    let options = InstrumentOptions::new(Mode::CombinedHw).with_events(events.0, events.1);
    let hashed_cfg = pp::cct::CctConfig {
        num_metrics: 2,
        path_tables: true,
        path_array_threshold: 0,
        max_records: cct_cap,
        ..pp::cct::CctConfig::default()
    };
    let hashed: RunOutcome = profiler.run_full(program, config, options, Some(hashed_cfg))?;
    let hashed_cct = hashed.cct.as_ref().expect("combined run builds a CCT");
    Ok(integrity::compare_ccts(dense, hashed_cct))
}
