//! The `pp batch` subcommand: a supervised campaign of profiling jobs
//! over the workload suite.
//!
//! Wraps [`pp::profiler::Supervisor`]: N panic-isolated workers, guest
//! resource limits (fuel, wall-clock deadline), transient-failure
//! retries with deterministic backoff, and crash-safe checkpointing
//! (`--checkpoint-dir`, `--resume`). SIGINT or SIGTERM asks for a
//! graceful stop — scheduling halts, in-flight jobs drain, a final
//! manifest is written; a second signal also cancels the running
//! guests (see [`crate::signals`]).
//!
//! `--inject` drives the supervisor's fault plan from the command line
//! (hang / panic / transient / truncate / halt), which is how the CI
//! crash-and-resume check and the acceptance campaign exercise the
//! recovery paths without patching the binary.

use std::time::Duration;

use pp::ir::build::ProgramBuilder;
use pp::ir::Program;
use pp::profiler::{BatchFaultPlan, JobSpec, JobStatus, PpError, Profiler, RunConfig, Supervisor};
use pp::usim::{CancelToken, ExecError, GuestLimits, LimitKind};

/// Fuel budget when `--fuel` is not given: far above anything the suite
/// needs at its default scale, small enough that an injected infinite
/// loop burns out in seconds instead of wedging a worker forever.
pub const DEFAULT_FUEL: u64 = 1_000_000_000;

/// Options the CLI hands to [`run_batch`].
pub struct BatchArgs {
    /// Job targets (suite names or IR files); empty means the whole
    /// suite.
    pub targets: Vec<String>,
    /// The profiling configuration every job runs under.
    pub config: RunConfig,
    /// The `--config` string, recorded in the campaign-params tag.
    pub config_name: String,
    /// Workload scale factor.
    pub scale: f64,
    /// Worker thread count (`--jobs`).
    pub workers: usize,
    /// Retry budget for transient failures (`--retries`).
    pub retries: u32,
    /// Backoff-jitter seed, stored in the manifest (`--seed`).
    pub seed: u64,
    /// Per-job µop budget (`--fuel`, default [`DEFAULT_FUEL`]).
    pub fuel: u64,
    /// Per-job wall-clock deadline in seconds (`--deadline`; 0 or
    /// absent means none).
    pub deadline_s: Option<f64>,
    /// Checkpoint directory (`--checkpoint-dir` or `--resume`).
    pub checkpoint_dir: Option<String>,
    /// Resume from the checkpoint directory's manifest.
    pub resume: bool,
    /// Fault-injection spec (`--inject`).
    pub inject: Option<String>,
    /// Cap on quarantined attempt-sets kept on disk (`--quarantine-cap`;
    /// 0 keeps everything).
    pub quarantine_cap: usize,
    /// The base profiler (machine config, CCT cap) from the shared
    /// options; batch adds the guest limits on top.
    pub profiler: Profiler,
}

/// Parsed `--inject` spec. Hangs swap a job's program for an infinite
/// loop (terminated by the fuel budget); the rest map directly onto the
/// supervisor's [`BatchFaultPlan`].
#[derive(Default)]
struct InjectPlan {
    hangs: Vec<usize>,
    fault_plan: BatchFaultPlan,
    /// The tokens that change what the campaign *computes* (hang swaps
    /// a program; panic/transient change persisted attempt counts), in
    /// canonical form for the manifest's params tag. `truncate`/`halt`
    /// stay out: they are exactly the crashes `--resume` recovers from,
    /// so a resume without them must still match the checkpoint.
    params_tag: Vec<String>,
}

impl InjectPlan {
    /// Parses `hang@I`, `panic@I[:N]`, `transient@I[:N]`,
    /// `corrupt@I[:N]`, `truncate@W[:KEEP]`, `halt@W`, comma-separated.
    fn parse(spec: Option<&str>, num_jobs: usize) -> Result<InjectPlan, PpError> {
        let mut plan = InjectPlan::default();
        let Some(spec) = spec else {
            return Ok(plan);
        };
        for token in spec.split(',').filter(|t| !t.is_empty()) {
            let (kind, rest) = token.split_once('@').ok_or_else(|| {
                PpError::Usage(format!("--inject token `{token}` needs `kind@index`"))
            })?;
            let (at, n) = match rest.split_once(':') {
                Some((at, n)) => (at, Some(n)),
                None => (rest, None),
            };
            let at: usize = at
                .parse()
                .map_err(|_| PpError::Usage(format!("--inject `{token}`: bad index `{at}`")))?;
            let count = |default: u32| -> Result<u32, PpError> {
                n.map_or(Ok(default), |n| {
                    n.parse()
                        .map_err(|_| PpError::Usage(format!("--inject `{token}`: bad count `{n}`")))
                })
            };
            match kind {
                "hang" | "panic" | "transient" | "corrupt" if at >= num_jobs => {
                    return Err(PpError::Usage(format!(
                        "--inject `{token}`: job index {at} out of range ({num_jobs} jobs)"
                    )));
                }
                "hang" => {
                    plan.hangs.push(at);
                    plan.params_tag.push(format!("hang@{at}"));
                }
                "panic" => {
                    let n = count(u32::MAX)?;
                    plan.fault_plan = plan.fault_plan.panic_on_job(at, n);
                    plan.params_tag.push(format!("panic@{at}:{n}"));
                }
                "transient" => {
                    let n = count(1)?;
                    plan.fault_plan = plan.fault_plan.transient_on_job(at, n);
                    plan.params_tag.push(format!("transient@{at}:{n}"));
                }
                "corrupt" => {
                    let n = count(u32::MAX)?;
                    plan.fault_plan = plan.fault_plan.corrupt_on_job(at, n);
                    plan.params_tag.push(format!("corrupt@{at}:{n}"));
                }
                "truncate" => {
                    plan.fault_plan = plan
                        .fault_plan
                        .truncate_checkpoint(at as u32, u64::from(count(16)?));
                }
                "halt" => {
                    plan.fault_plan = plan.fault_plan.halt_after_checkpoints(at as u32);
                }
                other => {
                    return Err(PpError::Usage(format!(
                        "--inject: unknown kind `{other}` \
                         (hang|panic|transient|corrupt|truncate|halt)"
                    )));
                }
            }
        }
        Ok(plan)
    }
}

/// A well-formed CFG whose exit edge is dead at run time: `i` starts at
/// 0, the header loops while `i < 1`, and nothing ever increments `i`.
/// Instrumentation sees an ordinary two-path loop, so the hang rides
/// through every pipeline; only the fuel budget (or a deadline) stops
/// it.
fn hang_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.procedure("main");
    let e = f.entry_block();
    let h = f.new_block();
    let body = f.new_block();
    let x = f.new_block();
    let i = f.new_reg();
    let c = f.new_reg();
    f.block(e).mov(i, 0i64).jump(h);
    f.block(h).cmp_lt(c, i, 1i64).branch(c, body, x);
    f.block(body).nop().jump(h);
    f.block(x).ret();
    let id = f.finish();
    pb.finish(id)
}

/// Runs the campaign and prints the per-job table plus the
/// `supervisor.*` metrics summary.
///
/// # Errors
///
/// [`PpError::Usage`] for bad specs or mismatched resume state;
/// [`PpError::Corrupt`] for a torn checkpoint manifest;
/// [`PpError::Io`] when checkpointing fails; [`PpError::Aborted`] when
/// the campaign stops with jobs still pending (cancellation or an
/// injected halt) — per-job *failures* are reported in the table and do
/// not fail the command.
pub fn run_batch(args: &BatchArgs) -> Result<(), PpError> {
    let names: Vec<String> = if args.targets.is_empty() {
        pp::workloads::SUITE_NAMES
            .iter()
            .map(|s| s.to_string())
            .collect()
    } else {
        args.targets.clone()
    };
    let inject = InjectPlan::parse(args.inject.as_deref(), names.len())?;

    let mut jobs = Vec::with_capacity(names.len());
    for (i, name) in names.iter().enumerate() {
        let program = if inject.hangs.contains(&i) {
            hang_program()
        } else {
            crate::load_target(name, args.scale)?.1
        };
        jobs.push(JobSpec::new(name.clone(), program, args.config));
    }

    // Two-stage shutdown: the first SIGINT or SIGTERM cancels the
    // supervisor (drain in-flight, write the final manifest); the
    // second also cancels the guests, so even a long-fueled job stops
    // promptly.
    let graceful = CancelToken::new();
    let hard = CancelToken::new();
    crate::signals::install(graceful.clone(), hard.clone());

    let mut limits = GuestLimits::none()
        .with_fuel(args.fuel)
        .with_cancel(hard.clone());
    if let Some(d) = args.deadline_s.filter(|d| *d > 0.0) {
        limits = limits.with_deadline(Duration::from_secs_f64(d));
    }
    let profiler = args.profiler.clone().with_limits(limits);

    // Everything that changes what a job computes goes into the params
    // tag, so `--resume` refuses a checkpoint from a different campaign.
    let params = format!(
        "config={} scale={} fuel={} deadline={} inject={}",
        args.config_name,
        args.scale,
        args.fuel,
        args.deadline_s.unwrap_or(0.0),
        if inject.params_tag.is_empty() {
            "-".to_string()
        } else {
            inject.params_tag.join(",")
        },
    );

    let mut supervisor = Supervisor::new(profiler)
        .with_workers(args.workers)
        .with_max_retries(args.retries)
        .with_seed(args.seed)
        .with_params(&params)
        .with_cancel(graceful.clone())
        .with_quarantine_cap(args.quarantine_cap)
        .with_fault_plan(inject.fault_plan);
    if let Some(dir) = &args.checkpoint_dir {
        supervisor = supervisor.with_checkpoint_dir(dir);
    }

    println!(
        "== pp batch: {} jobs on {} workers (seed {}, fuel {}{}) ==",
        jobs.len(),
        args.workers,
        args.seed,
        args.fuel,
        match args.deadline_s.filter(|d| *d > 0.0) {
            Some(d) => format!(", deadline {d}s"),
            None => String::new(),
        },
    );
    let report = supervisor.run(&jobs, args.resume)?;

    let mut registry = pp::obs::Registry::new();
    report.record_metrics(&mut registry);

    println!(
        "{:<14} {:<8} {:>8} {:>12} {:>12}  detail",
        "job", "status", "attempts", "cycles", "uops"
    );
    for entry in &report.manifest.jobs {
        let status = match entry.status {
            JobStatus::Pending => "pending",
            JobStatus::Done => "done",
            JobStatus::Failed => "FAILED",
        };
        println!(
            "{:<14} {:<8} {:>8} {:>12} {:>12}  {}",
            entry.name, status, entry.attempts, entry.cycles, entry.uops, entry.detail
        );
    }
    let (pending, done, failed) = report.manifest.counts();
    println!(
        "\nsummary: {done} done, {failed} failed, {pending} pending | \
         {} retries, {} panics caught, {} limit stops, {} checkpoint writes, \
         {} resumed skips, {} quarantined",
        report.retries,
        report.panics,
        report.limit_stops,
        report.checkpoint_writes,
        report.resumed_skips,
        report.quarantined,
    );

    if pending == 0 {
        println!(
            "batch complete: all {} jobs finished ({done} done, {failed} failed)",
            report.manifest.jobs.len()
        );
        Ok(())
    } else {
        let hint = match &args.checkpoint_dir {
            Some(dir) => format!("; resume with `pp batch --resume {dir}`"),
            None => " (no --checkpoint-dir, progress was not persisted)".to_string(),
        };
        println!(
            "batch interrupted: {pending} of {} jobs still pending{hint}",
            report.manifest.jobs.len()
        );
        Err(PpError::Aborted(ExecError::LimitExceeded(
            LimitKind::Cancelled,
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_spec_parses_every_kind() {
        let p = InjectPlan::parse(
            Some("hang@2,panic@3,transient@5:2,truncate@4:20,halt@7"),
            10,
        )
        .unwrap();
        assert_eq!(p.hangs, vec![2]);
        assert_eq!(p.fault_plan.panic_on_job, Some((3, u32::MAX)));
        assert_eq!(p.fault_plan.transient_on_job, Some((5, 2)));
        assert_eq!(p.fault_plan.truncate_checkpoint, Some((4, 20)));
        assert_eq!(p.fault_plan.halt_after_checkpoints, Some(7));
        // Only the result-affecting tokens reach the params tag.
        assert_eq!(
            p.params_tag,
            vec!["hang@2", "panic@3:4294967295", "transient@5:2"]
        );
    }

    #[test]
    fn inject_spec_rejects_garbage() {
        for bad in ["nope@1", "panic", "panic@x", "panic@1:y", "hang@99"] {
            assert!(
                InjectPlan::parse(Some(bad), 10).is_err(),
                "`{bad}` should not parse"
            );
        }
    }

    #[test]
    fn hang_program_is_instrumentable_and_fuel_bounded() {
        let program = hang_program();
        pp::ir::verify::verify_program(&program).expect("well-formed CFG");
        let profiler = Profiler::default().with_limits(GuestLimits::none().with_fuel(20_000));
        let run = profiler
            .run(&program, RunConfig::FlowFreq)
            .expect("instrumentation succeeds");
        match run.fault {
            Some(ExecError::LimitExceeded(LimitKind::Fuel { .. })) => {}
            other => panic!("expected a fuel stop, got {other:?}"),
        }
    }
}
