//! Shared SIGINT/SIGTERM handling for the long-running commands
//! (`pp batch`, `pp serve`) without a signal crate: a raw `signal(2)`
//! binding whose handler only touches atomics (async-signal-safe).
//!
//! Both signals feed the same two-stage shutdown: the *first* delivery
//! of either cancels the graceful token (drain in-flight work, write a
//! final checkpoint, refuse new intake); any *second* delivery also
//! cancels the hard token, which is wired into the guest limits so even
//! a long-fueled job stops promptly. SIGTERM matters because service
//! managers and CI runners stop daemons with it — a `pp serve` under
//! systemd or a `timeout`-wrapped `pp batch` must drain and checkpoint,
//! not die mid-write.

#[cfg(unix)]
pub use unix::install;

#[cfg(unix)]
mod unix {
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::OnceLock;

    use pp::usim::CancelToken;

    static TOKENS: OnceLock<(CancelToken, CancelToken)> = OnceLock::new();
    static HITS: AtomicUsize = AtomicUsize::new(0);

    extern "C" fn on_signal(_sig: i32) {
        // Counted across both signals: SIGINT then SIGTERM (or two of
        // either) escalates, exactly like a double Ctrl-C.
        let hits = HITS.fetch_add(1, Ordering::Relaxed);
        if let Some((graceful, hard)) = TOKENS.get() {
            graceful.cancel();
            if hits >= 1 {
                hard.cancel();
            }
        }
    }

    /// Installs the two-stage handler for SIGINT and SIGTERM. Only the
    /// first call's tokens win; later calls are ignored (the handler is
    /// process-global).
    pub fn install(graceful: CancelToken, hard: CancelToken) {
        const SIGINT: i32 = 2;
        const SIGTERM: i32 = 15;
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        let _ = TOKENS.set((graceful, hard));
        unsafe {
            signal(SIGINT, on_signal as *const () as usize);
            signal(SIGTERM, on_signal as *const () as usize);
        }
    }
}

#[cfg(not(unix))]
pub fn install(_graceful: pp::usim::CancelToken, _hard: pp::usim::CancelToken) {}
