//! The `pp serve` / `pp submit` / `pp status` subcommands: the CLI face
//! of the profile service ([`pp::profiler::Service`]).
//!
//! `pp serve` binds a Unix-domain socket (and, with `--listen`, a TCP
//! endpoint) and speaks the newline-delimited JSON protocol of
//! [`pp::profiler::server`] over both — one request object per line,
//! one response object per line, canonical `pp::obs::json` rendering.
//! Jobs are named by spec strings — `target=<suite|file> scale=<f>
//! config=<name> events=<a>,<b>` — resolved server-side, so a thin
//! client never loads a program. The daemon owns the service lifecycle:
//! SIGINT/SIGTERM enters the drain phase (intake refused with a typed
//! `draining` rejection, in-flight jobs finish, a final checkpoint is
//! written); a second signal hard-cancels the running guests. A
//! `kill -9` instead leaves the intake journal and last checkpoint
//! behind, and the next `pp serve` over the same directory recovers
//! from them.
//!
//! Connection governance (cap, idle timeout, slow-frame deadline,
//! shed-on-drain) lives in [`pp::profiler::server`]; the `--max-conns`,
//! `--idle-timeout`, and `--io-timeout` flags configure it here.
//!
//! Every client verb (`submit`, `status`, `watch`, `fetch`) speaks
//! through the one shared [`pp::profiler::Client`]: deterministic
//! jittered reconnect/retry on connect-refused and mid-stream reset,
//! `retry_after_ms` pacing on `overloaded`/`draining` refusals, and
//! strict no-resend for the non-idempotent `submit` once its bytes have
//! left the socket. An unreachable or unresponsive daemon maps to
//! [`PpError::Unavailable`] — exit code 4 on both transports — distinct
//! from a failed run; `--timeout` bounds every reply wait.

use std::io::Write as _;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use pp::ir::HwEvent;
use pp::obs::json::Json;
use pp::profiler::server;
use pp::profiler::transport::refusal_error;
use pp::profiler::{
    BindAddr, Client, ClientConfig, Listener, PpError, ProfileRef, Profiler, RetryPolicy,
    ServerConfig, Service, ServiceConfig, ServiceFaultPlan,
};
use pp::usim::{CancelToken, GuestLimits};

/// Options the CLI hands to [`run_serve`].
pub struct ServeArgs {
    /// Unix-domain socket path to bind.
    pub socket: String,
    /// Optional TCP listen address (`--listen host:port`; `:0` picks an
    /// ephemeral port, reported on stdout).
    pub listen: Option<String>,
    /// Service state directory (intake journal, checkpoints, artifacts).
    pub dir: String,
    /// Worker thread count (`--jobs`).
    pub workers: usize,
    /// Admission queue capacity (`--queue-cap`).
    pub queue_cap: usize,
    /// Per-client in-flight quota (`--quota`; 0 = unlimited).
    pub quota: usize,
    /// Concurrent-connection cap (`--max-conns`; 0 = unlimited).
    pub max_conns: usize,
    /// Idle-connection timeout in seconds (`--idle-timeout`; 0 = off).
    pub idle_timeout_s: f64,
    /// Per-frame/per-write deadline in seconds (`--io-timeout`; 0 = off).
    pub io_timeout_s: f64,
    /// Transient-failure retry budget per job (`--retries`).
    pub retries: u32,
    /// Backoff-jitter seed (`--seed`).
    pub seed: u64,
    /// Terminal states between checkpoints (`--checkpoint-every`).
    pub checkpoint_every: u32,
    /// Quarantine rotation cap (`--quarantine-cap`; 0 = unbounded).
    pub quarantine_cap: usize,
    /// Periodic fault injection (`--inject-every`), for soak tests.
    pub inject_every: Option<String>,
    /// Per-job µop budget (`--fuel`).
    pub fuel: u64,
    /// Per-job wall-clock deadline in seconds (`--deadline`).
    pub deadline_s: Option<f64>,
    /// The base profiler from the shared options.
    pub profiler: Profiler,
}

/// Options for the client verbs ([`run_submit`], [`run_status`],
/// [`run_watch`]).
pub struct ClientArgs {
    /// Address of the `pp serve` daemon: a socket path, `unix:PATH`,
    /// `tcp:HOST:PORT`, or a bare `HOST:PORT`.
    pub socket: String,
    /// Client name for quota accounting (`--client`).
    pub client: String,
    /// Service state directory (`--checkpoint-dir`), for the offline
    /// `pp status` fallback.
    pub dir: String,
    /// Block until the submitted job is terminal (`--wait`).
    pub wait: bool,
    /// Block until the server is idle (`--wait-idle`).
    pub wait_idle: bool,
    /// Wait budget in seconds (`--deadline`; default 600).
    pub deadline_s: Option<f64>,
    /// Per-reply deadline in seconds (`--timeout`; default 30).
    pub timeout_s: Option<f64>,
    /// Reconnect/retry budget (`--retries`).
    pub retries: u32,
    /// Retry-jitter seed (`--seed`).
    pub seed: u64,
}

/// Options for `pp watch` beyond the shared [`ClientArgs`].
#[derive(Default)]
pub struct WatchArgs {
    /// Only this job's events (`--job`).
    pub job: Option<u64>,
    /// Only this submitting client's events (`--client` when it was
    /// given explicitly — the default client name is not a filter).
    pub client_filter: Option<String>,
    /// Comma-separated event kinds (`--events`), e.g. `done,retrying`.
    pub kinds: Option<String>,
    /// Replay retained history from this sequence number (`--since`).
    pub since: Option<u64>,
    /// Emit raw NDJSON frames instead of the human tail (`--json`).
    pub json: bool,
}

impl ClientArgs {
    fn wait_budget(&self) -> Duration {
        Duration::from_secs_f64(self.deadline_s.filter(|d| *d > 0.0).unwrap_or(600.0))
    }

    fn op_timeout(&self) -> Duration {
        Duration::from_secs_f64(self.timeout_s.filter(|t| *t > 0.0).unwrap_or(30.0))
    }

    /// The one shared client every verb speaks through.
    fn open(&self) -> Client {
        Client::new(
            BindAddr::parse(&self.socket),
            ClientConfig {
                op_timeout: self.op_timeout(),
                tick: Duration::from_millis(250),
                retry: RetryPolicy {
                    attempts: self.retries,
                    seed: self.seed,
                    ..RetryPolicy::default()
                },
            },
        )
    }
}

/// Parses `--inject-every panic=N,transient=N,corrupt=N` (any subset).
fn parse_inject_every(spec: Option<&str>) -> Result<ServiceFaultPlan, PpError> {
    let mut plan = ServiceFaultPlan::default();
    let Some(spec) = spec else {
        return Ok(plan);
    };
    for token in spec.split(',').filter(|t| !t.is_empty()) {
        let (kind, every) = token.split_once('=').ok_or_else(|| {
            PpError::Usage(format!("--inject-every token `{token}` needs `kind=N`"))
        })?;
        let every: u64 = every.parse().map_err(|_| {
            PpError::Usage(format!("--inject-every `{token}`: bad period `{every}`"))
        })?;
        match kind {
            "panic" => plan.panic_every = every,
            "transient" => plan.transient_every = every,
            "corrupt" => plan.corrupt_every = every,
            other => {
                return Err(PpError::Usage(format!(
                    "--inject-every: unknown kind `{other}` (panic|transient|corrupt)"
                )));
            }
        }
    }
    Ok(plan)
}

/// Builds the job spec string a client sends for `target` under the
/// shared CLI options; [`spec_resolver`] is its server-side inverse.
pub fn spec_string(target: &str, scale: f64, config: &str, events: (HwEvent, HwEvent)) -> String {
    format!(
        "target={target} scale={scale} config={config} events={},{}",
        events.0.mnemonic(),
        events.1.mnemonic()
    )
}

/// The server-side [`pp::profiler::SpecResolver`]: parses a spec string
/// back into a loaded program and run configuration. Every error is a
/// string — the service turns them into typed `bad-spec` rejections.
pub fn spec_resolver() -> pp::profiler::SpecResolver {
    Arc::new(|spec: &str| {
        let mut target = None;
        let mut scale = 1.0f64;
        let mut config = "combined".to_string();
        let mut events = (HwEvent::Insts, HwEvent::DcMiss);
        for token in spec.split_whitespace() {
            let (k, v) = token
                .split_once('=')
                .ok_or_else(|| format!("spec token `{token}` needs key=value"))?;
            match k {
                "target" => target = Some(v.to_string()),
                "scale" => scale = v.parse().map_err(|_| format!("bad scale `{v}`"))?,
                "config" => config = v.to_string(),
                "events" => {
                    let (a, b) = v
                        .split_once(',')
                        .ok_or_else(|| format!("events `{v}` need `ev0,ev1`"))?;
                    events = (
                        crate::parse_event(a).map_err(|e| e.to_string())?,
                        crate::parse_event(b).map_err(|e| e.to_string())?,
                    );
                }
                other => return Err(format!("unknown spec key `{other}`")),
            }
        }
        let target = target.ok_or("spec lacks target=")?;
        if !(scale.is_finite() && scale > 0.0) {
            return Err(format!("bad scale {scale}"));
        }
        let (_, program) = crate::load_target(&target, scale).map_err(|e| e.to_string())?;
        let run_config = crate::config_by_name(&config, events).map_err(|e| e.to_string())?;
        Ok((program, run_config))
    })
}

/// Runs the daemon until SIGINT/SIGTERM, then drains, checkpoints, and
/// reports. See the module docs for the lifecycle.
///
/// # Errors
///
/// [`PpError::Io`] for socket or checkpoint failures;
/// [`PpError::Usage`]/[`PpError::Corrupt`] when recovery refuses the
/// state directory (foreign campaign, torn journal, lying manifest).
pub fn run_serve(args: &ServeArgs) -> Result<(), PpError> {
    let fault_plan = parse_inject_every(args.inject_every.as_deref())?;
    // Everything that changes what a job computes goes into the params
    // tag; recovery refuses a state directory written under different
    // parameters. (config/scale/events live in each job's spec.)
    let params = format!(
        "service fuel={} deadline={} inject={}",
        args.fuel,
        args.deadline_s.unwrap_or(0.0),
        args.inject_every.as_deref().unwrap_or("-"),
    );
    let mut limits = GuestLimits::none().with_fuel(args.fuel);
    if let Some(d) = args.deadline_s.filter(|d| *d > 0.0) {
        limits = limits.with_deadline(Duration::from_secs_f64(d));
    }
    let config = ServiceConfig {
        workers: args.workers,
        queue_capacity: args.queue_cap,
        per_client_quota: args.quota,
        max_retries: args.retries,
        seed: args.seed,
        params,
        checkpoint_every: args.checkpoint_every,
        quarantine_cap: args.quarantine_cap,
        fault_plan,
        ..ServiceConfig::default()
    };
    let profiler = args.profiler.clone().with_limits(limits);
    let service = Arc::new(Service::start(
        config,
        profiler,
        spec_resolver(),
        &args.dir,
    )?);

    // First signal: stop accepting, drain, checkpoint. Second: also
    // cancel the running guests.
    let graceful = CancelToken::new();
    crate::signals::install(graceful.clone(), service.hard_cancel_token());

    // One Listener per transport behind the same accept loop (the bind
    // removes a stale socket file a killed daemon left behind).
    let unix_addr = BindAddr::parse(&args.socket);
    let mut listeners = vec![Listener::bind(&unix_addr).map_err(|e| PpError::io(&args.socket, e))?];
    if let Some(listen) = &args.listen {
        let tcp_addr = BindAddr::parse(listen);
        listeners.push(Listener::bind(&tcp_addr).map_err(|e| PpError::io(listen, e))?);
    }
    let (queued, running, done, failed) = service.counts();
    println!(
        "== pp serve: {} on {} workers (queue {}, quota {}, max-conns {}, seed {}) ==",
        args.socket,
        args.workers,
        args.queue_cap,
        if args.quota == 0 {
            "unlimited".to_string()
        } else {
            args.quota.to_string()
        },
        if args.max_conns == 0 {
            "unlimited".to_string()
        } else {
            args.max_conns.to_string()
        },
        args.seed,
    );
    // The actual bound addresses, so scripts and tests can discover an
    // ephemeral `--listen :0` port.
    for listener in &listeners {
        println!("listening on {}", listener.local_display());
    }
    let _ = std::io::stdout().flush();
    if queued + running + done + failed > 0 {
        println!(
            "recovered state: {queued} queued, {running} running, {done} done, {failed} failed"
        );
    }

    let server_config = ServerConfig {
        max_conns: args.max_conns,
        idle_timeout: Duration::from_secs_f64(args.idle_timeout_s.max(0.0)),
        io_timeout: Duration::from_secs_f64(args.io_timeout_s.max(0.0)),
        ..ServerConfig::default()
    };
    server::run_accept_loop(&service, &listeners, &server_config, &graceful);
    drop(listeners);
    if let BindAddr::Unix(path) = &unix_addr {
        let _ = std::fs::remove_file(path);
    }

    println!("serve: draining (in-flight jobs finishing, intake refused)");
    let report = service.shutdown()?;
    let (pending, done, failed) = report.manifest.counts();
    let mut registry = pp::obs::Registry::new();
    report.metrics.record_metrics(&mut registry);
    print!("{}", registry.snapshot());
    println!(
        "serve stopped: {done} done, {failed} failed, {pending} pending \
         (pending jobs re-queue on the next `pp serve` over {})",
        args.dir
    );
    Ok(())
}

/// Renders one job object from the wire as a report table row.
fn print_job_row(job: &Json) {
    let s = |key: &str| job.get(key).and_then(Json::as_str).unwrap_or("");
    let n = |key: &str| job.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    println!(
        "{:>6} {:<20} {:<8} {:>8} {:>12} {:>12}  {}",
        n("id"),
        s("name"),
        s("state"),
        n("attempts"),
        n("cycles"),
        n("uops"),
        s("detail"),
    );
}

/// `pp submit`: sends one job, optionally waits for its terminal state.
/// The submit itself is non-idempotent — the client retries connect
/// failures and typed shed refusals (which prove non-admission), but
/// never resends after the request has left the socket.
///
/// # Errors
///
/// [`PpError::Unavailable`] (exit 4) for typed admission refusals and
/// for an unreachable or unresponsive daemon on either transport.
pub fn run_submit(
    args: &ClientArgs,
    target: &str,
    scale: f64,
    config: &str,
    events: (HwEvent, HwEvent),
) -> Result<(), PpError> {
    let spec = spec_string(target, scale, config, events);
    let mut client = args.open();
    let reply = client.request_once(&Json::Obj(vec![
        ("op".to_string(), Json::Str("submit".to_string())),
        ("client".to_string(), Json::Str(args.client.clone())),
        ("name".to_string(), Json::Str(target.to_string())),
        ("spec".to_string(), Json::Str(spec)),
    ]))?;
    if reply.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(refusal_error(&reply));
    }
    let id = reply.get("id").and_then(Json::as_f64).unwrap_or(-1.0);
    println!("submitted job {id} ({target}) as client {}", args.client);
    if args.wait {
        let budget = args.wait_budget();
        // The server blocks up to the whole budget before replying, so
        // the read deadline must outlast it — not the per-op timeout.
        let reply = client.request_deadline(
            &Json::Obj(vec![
                ("op".to_string(), Json::Str("wait".to_string())),
                ("id".to_string(), Json::Num(id)),
                ("timeout_s".to_string(), Json::Num(budget.as_secs_f64())),
            ]),
            budget + Duration::from_secs(5),
        )?;
        let Some(job) = reply.get("job") else {
            return Err(refusal_error(&reply));
        };
        print_job_row(job);
        let state = job.get("state").and_then(Json::as_str).unwrap_or("?");
        if !matches!(state, "done" | "failed") {
            return Err(PpError::io(
                &args.socket,
                std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("job {id} still {state} after the wait budget"),
                ),
            ));
        }
    }
    Ok(())
}

/// `pp fetch`: pulls a stored artifact (default: the merged fleet
/// profile) off the daemon, reassembles its base64 chunk frames, and
/// verifies length + CRC before writing it.
///
/// # Errors
///
/// [`PpError::Unavailable`] (exit 4) when the daemon is unreachable or
/// the stream tears/stalls; [`PpError::Corrupt`] (exit 3) when the
/// reassembled bytes fail the advertised CRC; typed refusals map as
/// usual.
pub fn run_fetch(args: &ClientArgs, name: Option<&str>, out: Option<&str>) -> Result<(), PpError> {
    let mut client = args.open();
    let (file, bytes) = client.fetch(name)?;
    let dest = out.unwrap_or(&file);
    std::fs::write(dest, &bytes).map_err(|e| PpError::io(dest, e))?;
    let r = ProfileRef::for_bytes(file.clone(), &bytes);
    let chunks = bytes.len().div_ceil(server::FETCH_CHUNK_RAW);
    println!(
        "fetched {file} -> {dest} ({} bytes, fingerprint {:#010x}, {chunks} chunk(s))",
        r.len, r.crc
    );
    Ok(())
}

/// Renders one registry JSON object (counters/gauges as plain numbers,
/// histograms as `count/sum/max/mean`) in wire order, which the server
/// already sorts.
fn print_registry(registry: &Json) {
    let Json::Obj(fields) = registry else { return };
    for (name, value) in fields {
        match value {
            Json::Num(v) => println!("{name:<36} {v}"),
            Json::Obj(_) => {
                let h = |key: &str| value.get(key).and_then(Json::as_f64).unwrap_or(0.0);
                println!(
                    "{name:<36} count={} sum={} max={} mean={}",
                    h("count"),
                    h("sum"),
                    h("max"),
                    h("mean"),
                );
            }
            _ => {}
        }
    }
}

/// One `pp status` line about the merged fleet profile: present (with
/// size and age) or absent. The file appears when a `pp merge
/// --checkpoint-dir` fold runs over this state directory, so operators
/// can see at a glance whether a fleet rollup exists and how stale it
/// is.
fn merged_profile_line(dir: &Path) {
    let path = dir.join(pp::profiler::merge::MERGED_PROFILE_FILE);
    match std::fs::metadata(&path) {
        Err(_) => println!(
            "merged fleet profile: none (run `pp merge {} --checkpoint-dir {} --out ...`)",
            dir.display(),
            dir.display()
        ),
        Ok(meta) => {
            let age = meta
                .modified()
                .ok()
                .and_then(|t| t.elapsed().ok())
                .map(|d| format!(", {}s old", d.as_secs()))
                .unwrap_or_default();
            println!(
                "merged fleet profile: {} ({} bytes{age})",
                path.display(),
                meta.len()
            );
        }
    }
}

/// The offline `pp status` path: when no daemon answers on the socket,
/// report the last checkpointed state from the service directory —
/// clearly labeled as stale, never dressed up as live.
fn status_from_disk(args: &ClientArgs) -> Result<(), PpError> {
    use pp::profiler::service::JOURNAL_FILE;
    let dir = Path::new(&args.dir);
    let manifest = pp::profiler::BatchManifest::load(dir).map_err(PpError::Corrupt)?;
    let intake_lines = std::fs::read_to_string(dir.join(JOURNAL_FILE))
        .map(|s| s.lines().filter(|l| !l.trim().is_empty()).count())
        .unwrap_or(0);
    println!(
        "daemon not reachable on {}; stale state from last checkpoint in {}:",
        args.socket, args.dir
    );
    println!(
        "{:>6} {:<20} {:<8} {:>8} {:>12} {:>12}  detail",
        "id", "name", "state", "attempts", "cycles", "uops"
    );
    for (id, job) in manifest.jobs.iter().enumerate() {
        let state = match job.status {
            pp::profiler::JobStatus::Pending => "pending",
            pp::profiler::JobStatus::Done => "done",
            pp::profiler::JobStatus::Failed => "failed",
        };
        println!(
            "{:>6} {:<20} {:<8} {:>8} {:>12} {:>12}  {}",
            id, job.name, state, job.attempts, job.cycles, job.uops, job.detail,
        );
    }
    let (pending, done, failed) = manifest.counts();
    println!(
        "\nphase: unknown (stale) | {pending} pending, {done} done, {failed} failed \
         | {intake_lines} journaled admissions",
    );
    merged_profile_line(dir);
    println!("start `pp serve` over {} for live state", args.dir);
    Ok(())
}

/// `pp status`: one job, the whole table, `--wait-idle`, or the fleet
/// metrics surface (`--metrics`, `--prom`). With no daemon on the
/// socket, the full-table form falls back to the last checkpoint on
/// disk, clearly labeled stale.
///
/// # Errors
///
/// [`PpError::Unavailable`] (exit 4) when the daemon is unreachable and
/// the request needs one (single job, `--wait-idle`, metrics);
/// [`PpError::Io`] (exit 3) when the wait budget expires.
pub fn run_status(
    args: &ClientArgs,
    id: Option<u64>,
    metrics: bool,
    prom: bool,
) -> Result<(), PpError> {
    let mut client = args.open();
    if let Err(e) = client.connect() {
        // Only the plain table view has a meaningful offline answer.
        if id.is_none() && !args.wait_idle && !metrics && !prom {
            return status_from_disk(args);
        }
        return Err(e);
    }
    if metrics || prom {
        let reply = client.request(&Json::Obj(vec![(
            "op".to_string(),
            Json::Str("metrics".to_string()),
        )]))?;
        if reply.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(refusal_error(&reply));
        }
        if prom {
            print!("{}", reply.get("prom").and_then(Json::as_str).unwrap_or(""));
        } else if let Some(registry) = reply.get("registry") {
            print_registry(registry);
        }
        return Ok(());
    }
    if args.wait_idle {
        let deadline = std::time::Instant::now() + args.wait_budget();
        loop {
            // Each poll blocks server-side for up to 10 s; read under a
            // deadline that outlasts that, not the per-op timeout.
            let reply = client.request_deadline(
                &Json::Obj(vec![
                    ("op".to_string(), Json::Str("wait-idle".to_string())),
                    ("timeout_s".to_string(), Json::Num(10.0)),
                ]),
                Duration::from_secs(15),
            )?;
            if reply.get("idle").and_then(Json::as_bool) == Some(true) {
                println!("server is idle");
                break;
            }
            if std::time::Instant::now() >= deadline {
                return Err(PpError::io(
                    &args.socket,
                    std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "server still busy after the wait budget",
                    ),
                ));
            }
        }
        if id.is_none() {
            return Ok(());
        }
    }
    match id {
        Some(id) => {
            let reply = client.request(&Json::Obj(vec![
                ("op".to_string(), Json::Str("status".to_string())),
                ("id".to_string(), Json::Num(id as f64)),
            ]))?;
            let Some(job) = reply.get("job") else {
                return Err(refusal_error(&reply));
            };
            print_job_row(job);
        }
        None => {
            let reply = client.request(&Json::Obj(vec![(
                "op".to_string(),
                Json::Str("status".to_string()),
            )]))?;
            if reply.get("ok").and_then(Json::as_bool) != Some(true) {
                return Err(refusal_error(&reply));
            }
            let phase = reply.get("phase").and_then(Json::as_str).unwrap_or("?");
            let jobs = reply.get("jobs").and_then(Json::as_arr).unwrap_or(&[]);
            println!(
                "{:>6} {:<20} {:<8} {:>8} {:>12} {:>12}  detail",
                "id", "name", "state", "attempts", "cycles", "uops"
            );
            for job in jobs {
                print_job_row(job);
            }
            let count = |state: &str| {
                jobs.iter()
                    .filter(|j| j.get("state").and_then(Json::as_str) == Some(state))
                    .count()
            };
            println!(
                "\nphase: {phase} | {} queued, {} running, {} done, {} failed",
                count("queued"),
                count("running"),
                count("done"),
                count("failed"),
            );
            let reply = client.request(&Json::Obj(vec![(
                "op".to_string(),
                Json::Str("metrics".to_string()),
            )]))?;
            if let Some(metrics) = reply.get("metrics") {
                println!("metrics: {}", metrics.render());
            }
            merged_profile_line(Path::new(&args.dir));
        }
    }
    Ok(())
}

/// Renders one event frame as a human tail line.
fn frame_line(frame: &Json) -> String {
    let s = |key: &str| frame.get(key).and_then(Json::as_str).unwrap_or("");
    let n = |key: &str| frame.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    let kind = s("event");
    let mut line = format!("#{:<6} ", n("seq"));
    if frame.get("job").is_some() {
        line.push_str(&format!("job {:<4} {:<12} ", n("job"), s("name")));
    } else {
        line.push_str(&format!("{:<21} ", "service"));
    }
    let body = match kind {
        "admitted" => format!("admitted (client {})", s("client")),
        "queued" => format!("queued (depth {})", n("depth")),
        "started" => format!("started on worker {}", n("worker")),
        "retrying" => format!(
            "retrying attempt {} ({}, backoff {} ms)",
            n("attempt"),
            s("class"),
            n("delay_ms"),
        ),
        "quarantined" => format!("quarantined attempt {}: {}", n("attempt"), s("reason")),
        "done" => format!(
            "{} in {} µs after {} attempt(s)",
            s("outcome"),
            n("wall_us"),
            n("attempts"),
        ),
        "state" => format!("phase -> {}", s("phase")),
        "metrics" => {
            let m = |key: &str| {
                frame
                    .get("metrics")
                    .and_then(|m| m.get(key))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0)
            };
            format!(
                "metrics: {} done, {} failed, {} published events",
                m("service.jobs.done"),
                m("service.jobs.failed"),
                m("events.published"),
            )
        }
        other => format!("{other}?"),
    };
    line.push_str(&body);
    if frame.get("replay").and_then(Json::as_bool) == Some(true) {
        line.push_str(" [replay]");
    }
    let dropped = n("dropped_since_last");
    if dropped > 0.0 {
        line.push_str(&format!("  (+{dropped} dropped)"));
    }
    line
}

/// `pp watch`: subscribes to the daemon's event bus and tails it until
/// the stream ends or `--deadline` elapses. `--json` passes the NDJSON
/// frames through untouched for tooling.
///
/// # Errors
///
/// [`PpError::Unavailable`] (exit 4) when the daemon is unreachable;
/// [`PpError::Usage`] (exit 1) when the server refuses the filter.
pub fn run_watch(args: &ClientArgs, watch: &WatchArgs) -> Result<(), PpError> {
    let mut fields = vec![("op".to_string(), Json::Str("subscribe".to_string()))];
    if let Some(job) = watch.job {
        fields.push(("job".to_string(), Json::Num(job as f64)));
    }
    if let Some(client) = &watch.client_filter {
        fields.push(("client".to_string(), Json::Str(client.clone())));
    }
    if let Some(kinds) = &watch.kinds {
        fields.push(("events".to_string(), Json::Str(kinds.clone())));
    }
    if let Some(since) = watch.since {
        fields.push(("since".to_string(), Json::Num(since as f64)));
    }
    let mut client = args.open();
    let ack = client.request(&Json::Obj(fields))?;
    if ack.get("subscribed").and_then(Json::as_bool) != Some(true) {
        return Err(refusal_error(&ack));
    }
    if !watch.json {
        println!(
            "watching {} (phase {}, next seq {})",
            args.socket,
            ack.get("phase").and_then(Json::as_str).unwrap_or("?"),
            ack.get("next_seq").and_then(Json::as_f64).unwrap_or(0.0),
        );
    }
    let budget = args
        .deadline_s
        .filter(|d| *d > 0.0)
        .map(Duration::from_secs_f64);
    let started = std::time::Instant::now();
    // Tick-bounded polls: `--deadline` terminates the tail even when
    // the server goes silent mid-frame, and an end of stream (server
    // drained, subscriber dropped) ends the watch cleanly.
    loop {
        if let Some(budget) = budget {
            if started.elapsed() >= budget {
                return Ok(());
            }
        }
        match client.poll_stream_frame()? {
            Some(frame) => {
                if watch.json {
                    println!("{}", frame.render());
                } else {
                    println!("{}", frame_line(&frame));
                }
            }
            None => {
                if !client.stream_open() {
                    return Ok(());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp::profiler::{AdmitError, RunConfig};

    #[test]
    fn inject_every_parses_and_rejects() {
        let plan = parse_inject_every(Some("panic=5,corrupt=11")).unwrap();
        assert_eq!(plan.panic_every, 5);
        assert_eq!(plan.transient_every, 0);
        assert_eq!(plan.corrupt_every, 11);
        for bad in ["panic", "panic=x", "nope=3"] {
            assert!(parse_inject_every(Some(bad)).is_err(), "`{bad}`");
        }
    }

    #[test]
    fn spec_string_round_trips_through_the_resolver() {
        let spec = spec_string(
            "129.compress",
            0.25,
            "flow-hw",
            (HwEvent::Insts, HwEvent::DcMiss),
        );
        let (program, config) = spec_resolver()(&spec).expect("resolves");
        assert!(!program.procedures().is_empty());
        assert!(matches!(config, RunConfig::FlowHw { .. }));
        assert!(spec_resolver()("scale=1").is_err(), "missing target");
        assert!(spec_resolver()("target=129.compress config=nope").is_err());
    }

    #[test]
    fn refusals_map_to_the_error_taxonomy() {
        let overloaded = server::error_json("overloaded", "queue full");
        let e = refusal_error(&overloaded);
        assert!(
            matches!(e, PpError::Unavailable(AdmitError::Overloaded { .. })),
            "{e}"
        );
        assert_eq!(e.exit_code(), 4);
        let bad = server::error_json("bad-spec", "no such target");
        assert_eq!(refusal_error(&bad).exit_code(), 1);
        // The client-manufactured transport failure sits in the same
        // exit-4 bucket on both transports.
        let e = PpError::Unavailable(AdmitError::Transport("tcp://x: connect failed".into()));
        assert_eq!(e.exit_code(), 4);
    }

    #[test]
    fn client_args_build_the_shared_client() {
        let args = ClientArgs {
            socket: "tcp:127.0.0.1:7777".to_string(),
            client: "cli".to_string(),
            dir: "pp-serve-state".to_string(),
            wait: false,
            wait_idle: false,
            deadline_s: None,
            timeout_s: Some(2.5),
            retries: 4,
            seed: 9,
        };
        assert_eq!(args.op_timeout(), Duration::from_secs_f64(2.5));
        let client = args.open();
        assert_eq!(
            client.addr(),
            &BindAddr::Tcp("127.0.0.1:7777".to_string()),
            "tcp: prefix parses to a TCP address"
        );
        assert_eq!(
            BindAddr::parse("pp.sock"),
            BindAddr::Unix(std::path::PathBuf::from("pp.sock")),
            "a bare socket path stays a Unix address"
        );
    }
}
