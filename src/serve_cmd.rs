//! The `pp serve` / `pp submit` / `pp status` subcommands: the CLI face
//! of the profile service ([`pp::profiler::Service`]).
//!
//! `pp serve` binds a Unix-domain socket and speaks a newline-delimited
//! JSON protocol (one request object per line, one response object per
//! line, canonical `pp::obs::json` rendering). Jobs are named by spec
//! strings — `target=<suite|file> scale=<f> config=<name>
//! events=<a>,<b>` — resolved server-side, so a thin client never loads
//! a program. The daemon owns the service lifecycle: SIGINT/SIGTERM
//! enters the drain phase (intake refused with a typed `draining`
//! rejection, in-flight jobs finish, a final checkpoint is written); a
//! second signal hard-cancels the running guests. A `kill -9` instead
//! leaves the intake journal and last checkpoint behind, and the next
//! `pp serve` over the same directory recovers from them.
//!
//! Protocol ops: `submit`, `status`, `wait`, `wait-idle`, `metrics`,
//! `drain`, `ping`. Refusals carry the admission taxonomy on the wire
//! (`overloaded`, `quota-exceeded`, `draining`, …) and the client maps
//! them back onto [`AdmitError`] — so `pp submit` against a saturated
//! server exits with code 4, distinct from a failed run.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use pp::ir::HwEvent;
use pp::obs::json::{self, Json};
use pp::profiler::{
    AdmitError, PpError, Profiler, Service, ServiceConfig, ServiceFaultPlan, ServicePhase,
};
use pp::usim::{CancelToken, GuestLimits};

/// Options the CLI hands to [`run_serve`].
pub struct ServeArgs {
    /// Unix-domain socket path to bind.
    pub socket: String,
    /// Service state directory (intake journal, checkpoints, artifacts).
    pub dir: String,
    /// Worker thread count (`--jobs`).
    pub workers: usize,
    /// Admission queue capacity (`--queue-cap`).
    pub queue_cap: usize,
    /// Per-client in-flight quota (`--quota`; 0 = unlimited).
    pub quota: usize,
    /// Transient-failure retry budget per job (`--retries`).
    pub retries: u32,
    /// Backoff-jitter seed (`--seed`).
    pub seed: u64,
    /// Terminal states between checkpoints (`--checkpoint-every`).
    pub checkpoint_every: u32,
    /// Quarantine rotation cap (`--quarantine-cap`; 0 = unbounded).
    pub quarantine_cap: usize,
    /// Periodic fault injection (`--inject-every`), for soak tests.
    pub inject_every: Option<String>,
    /// Per-job µop budget (`--fuel`).
    pub fuel: u64,
    /// Per-job wall-clock deadline in seconds (`--deadline`).
    pub deadline_s: Option<f64>,
    /// The base profiler from the shared options.
    pub profiler: Profiler,
}

/// Options for the client verbs ([`run_submit`], [`run_status`]).
pub struct ClientArgs {
    /// Socket of the `pp serve` daemon.
    pub socket: String,
    /// Client name for quota accounting (`--client`).
    pub client: String,
    /// Block until the submitted job is terminal (`--wait`).
    pub wait: bool,
    /// Block until the server is idle (`--wait-idle`).
    pub wait_idle: bool,
    /// Wait budget in seconds (`--deadline`; default 600).
    pub deadline_s: Option<f64>,
}

impl ClientArgs {
    fn wait_budget(&self) -> Duration {
        Duration::from_secs_f64(self.deadline_s.filter(|d| *d > 0.0).unwrap_or(600.0))
    }
}

/// Parses `--inject-every panic=N,transient=N,corrupt=N` (any subset).
fn parse_inject_every(spec: Option<&str>) -> Result<ServiceFaultPlan, PpError> {
    let mut plan = ServiceFaultPlan::default();
    let Some(spec) = spec else {
        return Ok(plan);
    };
    for token in spec.split(',').filter(|t| !t.is_empty()) {
        let (kind, every) = token.split_once('=').ok_or_else(|| {
            PpError::Usage(format!("--inject-every token `{token}` needs `kind=N`"))
        })?;
        let every: u64 = every.parse().map_err(|_| {
            PpError::Usage(format!("--inject-every `{token}`: bad period `{every}`"))
        })?;
        match kind {
            "panic" => plan.panic_every = every,
            "transient" => plan.transient_every = every,
            "corrupt" => plan.corrupt_every = every,
            other => {
                return Err(PpError::Usage(format!(
                    "--inject-every: unknown kind `{other}` (panic|transient|corrupt)"
                )));
            }
        }
    }
    Ok(plan)
}

/// Builds the job spec string a client sends for `target` under the
/// shared CLI options; [`spec_resolver`] is its server-side inverse.
pub fn spec_string(target: &str, scale: f64, config: &str, events: (HwEvent, HwEvent)) -> String {
    format!(
        "target={target} scale={scale} config={config} events={},{}",
        events.0.mnemonic(),
        events.1.mnemonic()
    )
}

/// The server-side [`pp::profiler::SpecResolver`]: parses a spec string
/// back into a loaded program and run configuration. Every error is a
/// string — the service turns them into typed `bad-spec` rejections.
pub fn spec_resolver() -> pp::profiler::SpecResolver {
    Arc::new(|spec: &str| {
        let mut target = None;
        let mut scale = 1.0f64;
        let mut config = "combined".to_string();
        let mut events = (HwEvent::Insts, HwEvent::DcMiss);
        for token in spec.split_whitespace() {
            let (k, v) = token
                .split_once('=')
                .ok_or_else(|| format!("spec token `{token}` needs key=value"))?;
            match k {
                "target" => target = Some(v.to_string()),
                "scale" => scale = v.parse().map_err(|_| format!("bad scale `{v}`"))?,
                "config" => config = v.to_string(),
                "events" => {
                    let (a, b) = v
                        .split_once(',')
                        .ok_or_else(|| format!("events `{v}` need `ev0,ev1`"))?;
                    events = (
                        crate::parse_event(a).map_err(|e| e.to_string())?,
                        crate::parse_event(b).map_err(|e| e.to_string())?,
                    );
                }
                other => return Err(format!("unknown spec key `{other}`")),
            }
        }
        let target = target.ok_or("spec lacks target=")?;
        if !(scale.is_finite() && scale > 0.0) {
            return Err(format!("bad scale {scale}"));
        }
        let (_, program) = crate::load_target(&target, scale).map_err(|e| e.to_string())?;
        let run_config = crate::config_by_name(&config, events).map_err(|e| e.to_string())?;
        Ok((program, run_config))
    })
}

fn phase_str(phase: ServicePhase) -> &'static str {
    match phase {
        ServicePhase::Accepting => "accepting",
        ServicePhase::Draining => "draining",
        ServicePhase::Stopped => "stopped",
    }
}

/// Runs the daemon until SIGINT/SIGTERM, then drains, checkpoints, and
/// reports. See the module docs for the lifecycle.
///
/// # Errors
///
/// [`PpError::Io`] for socket or checkpoint failures;
/// [`PpError::Usage`]/[`PpError::Corrupt`] when recovery refuses the
/// state directory (foreign campaign, torn journal, lying manifest).
pub fn run_serve(args: &ServeArgs) -> Result<(), PpError> {
    let fault_plan = parse_inject_every(args.inject_every.as_deref())?;
    // Everything that changes what a job computes goes into the params
    // tag; recovery refuses a state directory written under different
    // parameters. (config/scale/events live in each job's spec.)
    let params = format!(
        "service fuel={} deadline={} inject={}",
        args.fuel,
        args.deadline_s.unwrap_or(0.0),
        args.inject_every.as_deref().unwrap_or("-"),
    );
    let mut limits = GuestLimits::none().with_fuel(args.fuel);
    if let Some(d) = args.deadline_s.filter(|d| *d > 0.0) {
        limits = limits.with_deadline(Duration::from_secs_f64(d));
    }
    let config = ServiceConfig {
        workers: args.workers,
        queue_capacity: args.queue_cap,
        per_client_quota: args.quota,
        max_retries: args.retries,
        seed: args.seed,
        params,
        checkpoint_every: args.checkpoint_every,
        quarantine_cap: args.quarantine_cap,
        fault_plan,
        ..ServiceConfig::default()
    };
    let profiler = args.profiler.clone().with_limits(limits);
    let service = Arc::new(Service::start(
        config,
        profiler,
        spec_resolver(),
        &args.dir,
    )?);

    // First signal: stop accepting, drain, checkpoint. Second: also
    // cancel the running guests.
    let graceful = CancelToken::new();
    crate::signals::install(graceful.clone(), service.hard_cancel_token());

    // A stale socket file from a killed daemon would fail the bind.
    if Path::new(&args.socket).exists() {
        std::fs::remove_file(&args.socket).map_err(|e| PpError::io(&args.socket, e))?;
    }
    let listener = UnixListener::bind(&args.socket).map_err(|e| PpError::io(&args.socket, e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| PpError::io(&args.socket, e))?;
    let (queued, running, done, failed) = service.counts();
    println!(
        "== pp serve: {} on {} workers (queue {}, quota {}, seed {}) ==",
        args.socket,
        args.workers,
        args.queue_cap,
        if args.quota == 0 {
            "unlimited".to_string()
        } else {
            args.quota.to_string()
        },
        args.seed,
    );
    if queued + running + done + failed > 0 {
        println!(
            "recovered state: {queued} queued, {running} running, {done} done, {failed} failed"
        );
    }

    // Accept loop: poll so the graceful token is observed promptly even
    // with no clients connecting.
    while !graceful.is_cancelled() {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(&service);
                std::thread::spawn(move || handle_client(&service, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                pp::obs::warn!("serve: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    drop(listener);
    let _ = std::fs::remove_file(&args.socket);

    println!("serve: draining (in-flight jobs finishing, intake refused)");
    let report = service.shutdown()?;
    let (pending, done, failed) = report.manifest.counts();
    let mut registry = pp::obs::Registry::new();
    report.metrics.record_metrics(&mut registry);
    print!("{}", registry.snapshot());
    println!(
        "serve stopped: {done} done, {failed} failed, {pending} pending \
         (pending jobs re-queue on the next `pp serve` over {})",
        args.dir
    );
    Ok(())
}

/// Serves one client connection: a loop of NDJSON request/response
/// pairs until the peer hangs up. Malformed requests get a typed
/// `bad-request` reply, never a dropped connection.
fn handle_client(service: &Service, stream: UnixStream) {
    // Accepted sockets can inherit the listener's nonblocking mode on
    // some platforms; the handler wants plain blocking reads.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let Ok(peer) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(peer);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { return };
        if line.trim().is_empty() {
            continue;
        }
        let response = match json::parse(&line) {
            Ok(request) => handle_request(service, &request),
            Err(e) => error_json("bad-request", &format!("unparsable request: {e}")),
        };
        if writeln!(writer, "{}", response.render())
            .and_then(|()| writer.flush())
            .is_err()
        {
            return;
        }
    }
}

/// `{"ok":false,"error":kind,"detail":detail}`.
fn error_json(kind: &str, detail: &str) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str(kind.to_string())),
        ("detail".to_string(), Json::Str(detail.to_string())),
    ])
}

/// Dispatches one parsed request object to the service.
fn handle_request(service: &Service, request: &Json) -> Json {
    let str_field = |key: &str| request.get(key).and_then(Json::as_str);
    let num_field = |key: &str| request.get(key).and_then(Json::as_f64);
    let ok = |mut fields: Vec<(String, Json)>| {
        fields.insert(0, ("ok".to_string(), Json::Bool(true)));
        Json::Obj(fields)
    };
    match str_field("op") {
        Some("ping") => ok(vec![(
            "phase".to_string(),
            Json::Str(phase_str(service.phase()).to_string()),
        )]),
        Some("submit") => {
            let Some(spec) = str_field("spec") else {
                return error_json("bad-request", "submit needs \"spec\"");
            };
            let client = str_field("client").unwrap_or("anon");
            let name = str_field("name").unwrap_or(spec);
            match service.submit(client, name, spec) {
                Ok(id) => ok(vec![("id".to_string(), Json::Num(id as f64))]),
                Err(e) => {
                    let mut reply = match error_json(e.kind(), &e.to_string()) {
                        Json::Obj(fields) => fields,
                        _ => unreachable!(),
                    };
                    // Structured fields so the client can rebuild the
                    // exact AdmitError, not just its message.
                    match &e {
                        AdmitError::Overloaded { capacity } => {
                            reply.push(("capacity".to_string(), Json::Num(*capacity as f64)));
                        }
                        AdmitError::QuotaExceeded { quota, .. } => {
                            reply.push(("quota".to_string(), Json::Num(*quota as f64)));
                        }
                        _ => {}
                    }
                    Json::Obj(reply)
                }
            }
        }
        Some("status") => match num_field("id") {
            Some(id) => match service.status(id as u64) {
                Some(job) => ok(vec![("job".to_string(), job.to_json())]),
                None => error_json("unknown-job", &format!("no job {id}")),
            },
            None => {
                let jobs: Vec<Json> = service.jobs().iter().map(|j| j.to_json()).collect();
                ok(vec![
                    (
                        "phase".to_string(),
                        Json::Str(phase_str(service.phase()).to_string()),
                    ),
                    ("jobs".to_string(), Json::Arr(jobs)),
                ])
            }
        },
        Some("wait") => {
            let Some(id) = num_field("id") else {
                return error_json("bad-request", "wait needs \"id\"");
            };
            let timeout = Duration::from_secs_f64(num_field("timeout_s").unwrap_or(600.0));
            match service.wait(id as u64, timeout) {
                Some(job) => ok(vec![("job".to_string(), job.to_json())]),
                None => error_json("unknown-job", &format!("no job {id}")),
            }
        }
        Some("wait-idle") => {
            let timeout = Duration::from_secs_f64(num_field("timeout_s").unwrap_or(60.0));
            let idle = service.wait_idle(timeout);
            ok(vec![("idle".to_string(), Json::Bool(idle))])
        }
        Some("metrics") => ok(vec![("metrics".to_string(), service.metrics().to_json())]),
        Some("drain") => {
            service.drain();
            ok(vec![(
                "phase".to_string(),
                Json::Str(phase_str(service.phase()).to_string()),
            )])
        }
        Some(other) => error_json("bad-request", &format!("unknown op `{other}`")),
        None => error_json("bad-request", "request lacks \"op\""),
    }
}

/// One client connection speaking the NDJSON protocol.
struct Conn {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
    socket: String,
}

impl Conn {
    /// Connects to the daemon. A refused/absent socket is an I/O error
    /// (exit 3): the server is not there, which is different from a
    /// server that answered "no" (exit 4).
    fn open(socket: &str) -> Result<Conn, PpError> {
        let stream = UnixStream::connect(socket).map_err(|e| PpError::io(socket, e))?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| PpError::io(socket, e))?);
        Ok(Conn {
            writer: stream,
            reader,
            socket: socket.to_string(),
        })
    }

    /// Sends one request line and reads one response line.
    fn request(&mut self, request: &Json) -> Result<Json, PpError> {
        writeln!(self.writer, "{}", request.render())
            .and_then(|()| self.writer.flush())
            .map_err(|e| PpError::io(&self.socket, e))?;
        let mut line = String::new();
        self.reader
            .read_line(&mut line)
            .map_err(|e| PpError::io(&self.socket, e))?;
        if line.is_empty() {
            return Err(PpError::io(
                &self.socket,
                std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ),
            ));
        }
        json::parse(line.trim()).map_err(|e| {
            PpError::Corrupt(pp::cct::SerializeError::Format(format!(
                "unparsable server reply: {e}"
            )))
        })
    }
}

/// Maps a refusal reply back onto the typed error taxonomy: admission
/// refusals become [`PpError::Unavailable`] (exit 4), an unusable spec
/// is a usage error (exit 1).
fn refusal_error(reply: &Json) -> PpError {
    let kind = reply.get("error").and_then(Json::as_str).unwrap_or("?");
    let detail = reply
        .get("detail")
        .and_then(Json::as_str)
        .unwrap_or("no detail")
        .to_string();
    let num = |key: &str| reply.get(key).and_then(Json::as_f64).unwrap_or(0.0) as usize;
    match kind {
        "overloaded" => PpError::Unavailable(AdmitError::Overloaded {
            capacity: num("capacity"),
        }),
        "quota-exceeded" => PpError::Unavailable(AdmitError::QuotaExceeded {
            client: String::new(),
            quota: num("quota"),
        }),
        "draining" => PpError::Unavailable(AdmitError::Draining),
        "stopped" => PpError::Unavailable(AdmitError::Stopped),
        "io" => PpError::Unavailable(AdmitError::Io(detail)),
        "bad-spec" | "bad-request" => PpError::Usage(detail),
        other => PpError::Usage(format!("server refused ({other}): {detail}")),
    }
}

/// Renders one job object from the wire as a report table row.
fn print_job_row(job: &Json) {
    let s = |key: &str| job.get(key).and_then(Json::as_str).unwrap_or("");
    let n = |key: &str| job.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    println!(
        "{:>6} {:<20} {:<8} {:>8} {:>12} {:>12}  {}",
        n("id"),
        s("name"),
        s("state"),
        n("attempts"),
        n("cycles"),
        n("uops"),
        s("detail"),
    );
}

/// `pp submit`: sends one job, optionally waits for its terminal state.
///
/// # Errors
///
/// [`PpError::Unavailable`] (exit 4) for typed admission refusals;
/// [`PpError::Io`] (exit 3) when the daemon is unreachable.
pub fn run_submit(
    args: &ClientArgs,
    target: &str,
    scale: f64,
    config: &str,
    events: (HwEvent, HwEvent),
) -> Result<(), PpError> {
    let spec = spec_string(target, scale, config, events);
    let mut conn = Conn::open(&args.socket)?;
    let reply = conn.request(&Json::Obj(vec![
        ("op".to_string(), Json::Str("submit".to_string())),
        ("client".to_string(), Json::Str(args.client.clone())),
        ("name".to_string(), Json::Str(target.to_string())),
        ("spec".to_string(), Json::Str(spec)),
    ]))?;
    if reply.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(refusal_error(&reply));
    }
    let id = reply.get("id").and_then(Json::as_f64).unwrap_or(-1.0);
    println!("submitted job {id} ({target}) as client {}", args.client);
    if args.wait {
        let reply = conn.request(&Json::Obj(vec![
            ("op".to_string(), Json::Str("wait".to_string())),
            ("id".to_string(), Json::Num(id)),
            (
                "timeout_s".to_string(),
                Json::Num(args.wait_budget().as_secs_f64()),
            ),
        ]))?;
        let Some(job) = reply.get("job") else {
            return Err(refusal_error(&reply));
        };
        print_job_row(job);
        let state = job.get("state").and_then(Json::as_str).unwrap_or("?");
        if !matches!(state, "done" | "failed") {
            return Err(PpError::io(
                &args.socket,
                std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("job {id} still {state} after the wait budget"),
                ),
            ));
        }
    }
    Ok(())
}

/// `pp status`: one job, the whole table, or `--wait-idle`.
///
/// # Errors
///
/// [`PpError::Io`] (exit 3) when the daemon is unreachable or the wait
/// budget expires.
pub fn run_status(args: &ClientArgs, id: Option<u64>) -> Result<(), PpError> {
    let mut conn = Conn::open(&args.socket)?;
    if args.wait_idle {
        let deadline = std::time::Instant::now() + args.wait_budget();
        loop {
            let reply = conn.request(&Json::Obj(vec![
                ("op".to_string(), Json::Str("wait-idle".to_string())),
                ("timeout_s".to_string(), Json::Num(10.0)),
            ]))?;
            if reply.get("idle").and_then(Json::as_bool) == Some(true) {
                println!("server is idle");
                break;
            }
            if std::time::Instant::now() >= deadline {
                return Err(PpError::io(
                    &args.socket,
                    std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "server still busy after the wait budget",
                    ),
                ));
            }
        }
        if id.is_none() {
            return Ok(());
        }
    }
    match id {
        Some(id) => {
            let reply = conn.request(&Json::Obj(vec![
                ("op".to_string(), Json::Str("status".to_string())),
                ("id".to_string(), Json::Num(id as f64)),
            ]))?;
            let Some(job) = reply.get("job") else {
                return Err(refusal_error(&reply));
            };
            print_job_row(job);
        }
        None => {
            let reply = conn.request(&Json::Obj(vec![(
                "op".to_string(),
                Json::Str("status".to_string()),
            )]))?;
            if reply.get("ok").and_then(Json::as_bool) != Some(true) {
                return Err(refusal_error(&reply));
            }
            let phase = reply.get("phase").and_then(Json::as_str).unwrap_or("?");
            let jobs = reply.get("jobs").and_then(Json::as_arr).unwrap_or(&[]);
            println!(
                "{:>6} {:<20} {:<8} {:>8} {:>12} {:>12}  detail",
                "id", "name", "state", "attempts", "cycles", "uops"
            );
            for job in jobs {
                print_job_row(job);
            }
            let count = |state: &str| {
                jobs.iter()
                    .filter(|j| j.get("state").and_then(Json::as_str) == Some(state))
                    .count()
            };
            println!(
                "\nphase: {phase} | {} queued, {} running, {} done, {} failed",
                count("queued"),
                count("running"),
                count("done"),
                count("failed"),
            );
            let reply = conn.request(&Json::Obj(vec![(
                "op".to_string(),
                Json::Str("metrics".to_string()),
            )]))?;
            if let Some(metrics) = reply.get("metrics") {
                println!("metrics: {}", metrics.render());
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp::profiler::RunConfig;

    #[test]
    fn inject_every_parses_and_rejects() {
        let plan = parse_inject_every(Some("panic=5,corrupt=11")).unwrap();
        assert_eq!(plan.panic_every, 5);
        assert_eq!(plan.transient_every, 0);
        assert_eq!(plan.corrupt_every, 11);
        for bad in ["panic", "panic=x", "nope=3"] {
            assert!(parse_inject_every(Some(bad)).is_err(), "`{bad}`");
        }
    }

    #[test]
    fn spec_string_round_trips_through_the_resolver() {
        let spec = spec_string(
            "129.compress",
            0.25,
            "flow-hw",
            (HwEvent::Insts, HwEvent::DcMiss),
        );
        let (program, config) = spec_resolver()(&spec).expect("resolves");
        assert!(!program.procedures().is_empty());
        assert!(matches!(config, RunConfig::FlowHw { .. }));
        assert!(spec_resolver()("scale=1").is_err(), "missing target");
        assert!(spec_resolver()("target=129.compress config=nope").is_err());
    }

    #[test]
    fn refusals_map_to_the_error_taxonomy() {
        let overloaded = error_json("overloaded", "queue full");
        let e = refusal_error(&overloaded);
        assert!(
            matches!(e, PpError::Unavailable(AdmitError::Overloaded { .. })),
            "{e}"
        );
        assert_eq!(e.exit_code(), 4);
        let bad = error_json("bad-spec", "no such target");
        assert_eq!(refusal_error(&bad).exit_code(), 1);
    }
}
