//! The `pp serve` / `pp submit` / `pp status` subcommands: the CLI face
//! of the profile service ([`pp::profiler::Service`]).
//!
//! `pp serve` binds a Unix-domain socket and speaks a newline-delimited
//! JSON protocol (one request object per line, one response object per
//! line, canonical `pp::obs::json` rendering). Jobs are named by spec
//! strings — `target=<suite|file> scale=<f> config=<name>
//! events=<a>,<b>` — resolved server-side, so a thin client never loads
//! a program. The daemon owns the service lifecycle: SIGINT/SIGTERM
//! enters the drain phase (intake refused with a typed `draining`
//! rejection, in-flight jobs finish, a final checkpoint is written); a
//! second signal hard-cancels the running guests. A `kill -9` instead
//! leaves the intake journal and last checkpoint behind, and the next
//! `pp serve` over the same directory recovers from them.
//!
//! Protocol ops: `submit`, `status`, `wait`, `wait-idle`, `metrics`,
//! `drain`, `ping`, `subscribe`, `fetch`. Refusals carry the admission
//! taxonomy
//! on the wire (`overloaded`, `quota-exceeded`, `draining`, …) and the
//! client maps them back onto [`AdmitError`] — so `pp submit` against a
//! saturated server exits with code 4, distinct from a failed run.
//!
//! Request frames are bounded (64 KiB): an oversized line earns a typed
//! `frame-too-large` reply and the rest of the line is discarded, so a
//! hostile or broken client can neither balloon server memory nor wedge
//! the connection. `subscribe` switches the connection into streaming
//! mode: one ack, then NDJSON event frames (see
//! [`pp::obs::events`]) until the subscriber hangs up or the service
//! stops — that is the `pp watch` transport.
//!
//! `fetch` serves a stored artifact (a job's `.flow`/`.cct`, or the
//! latest merged fleet profile) over the same socket without breaking
//! the 64 KiB frame rule: one ack carrying length/CRC/chunk count, then
//! base64 chunk frames of [`FETCH_CHUNK_RAW`] raw bytes each, then a
//! `done` frame — after which the connection keeps serving requests.
//! That is the `pp fetch` transport.

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::Arc;
use std::time::{Duration, Instant};

use pp::ir::HwEvent;
use pp::obs::events::{EventFilter, DEFAULT_SUBSCRIBER_CAPACITY, EVENT_KINDS};
use pp::obs::json::{self, Json};
use pp::profiler::{
    AdmitError, PpError, ProfileRef, Profiler, Service, ServiceConfig, ServiceFaultPlan,
    ServicePhase,
};
use pp::usim::{CancelToken, GuestLimits};

/// Bound on one NDJSON request frame; longer lines get a typed
/// `frame-too-large` reply and are discarded up to the next newline.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

/// Raw bytes per `fetch` chunk frame. Base64 expands by 4/3, so a chunk
/// frame is ~43 KiB of payload plus framing — comfortably under the
/// 64 KiB frame rule that bounds every line on this protocol.
const FETCH_CHUNK_RAW: usize = 32 * 1024;

/// Options the CLI hands to [`run_serve`].
pub struct ServeArgs {
    /// Unix-domain socket path to bind.
    pub socket: String,
    /// Service state directory (intake journal, checkpoints, artifacts).
    pub dir: String,
    /// Worker thread count (`--jobs`).
    pub workers: usize,
    /// Admission queue capacity (`--queue-cap`).
    pub queue_cap: usize,
    /// Per-client in-flight quota (`--quota`; 0 = unlimited).
    pub quota: usize,
    /// Transient-failure retry budget per job (`--retries`).
    pub retries: u32,
    /// Backoff-jitter seed (`--seed`).
    pub seed: u64,
    /// Terminal states between checkpoints (`--checkpoint-every`).
    pub checkpoint_every: u32,
    /// Quarantine rotation cap (`--quarantine-cap`; 0 = unbounded).
    pub quarantine_cap: usize,
    /// Periodic fault injection (`--inject-every`), for soak tests.
    pub inject_every: Option<String>,
    /// Per-job µop budget (`--fuel`).
    pub fuel: u64,
    /// Per-job wall-clock deadline in seconds (`--deadline`).
    pub deadline_s: Option<f64>,
    /// The base profiler from the shared options.
    pub profiler: Profiler,
}

/// Options for the client verbs ([`run_submit`], [`run_status`],
/// [`run_watch`]).
pub struct ClientArgs {
    /// Socket of the `pp serve` daemon.
    pub socket: String,
    /// Client name for quota accounting (`--client`).
    pub client: String,
    /// Service state directory (`--checkpoint-dir`), for the offline
    /// `pp status` fallback.
    pub dir: String,
    /// Block until the submitted job is terminal (`--wait`).
    pub wait: bool,
    /// Block until the server is idle (`--wait-idle`).
    pub wait_idle: bool,
    /// Wait budget in seconds (`--deadline`; default 600).
    pub deadline_s: Option<f64>,
}

/// Options for `pp watch` beyond the shared [`ClientArgs`].
#[derive(Default)]
pub struct WatchArgs {
    /// Only this job's events (`--job`).
    pub job: Option<u64>,
    /// Only this submitting client's events (`--client` when it was
    /// given explicitly — the default client name is not a filter).
    pub client_filter: Option<String>,
    /// Comma-separated event kinds (`--events`), e.g. `done,retrying`.
    pub kinds: Option<String>,
    /// Replay retained history from this sequence number (`--since`).
    pub since: Option<u64>,
    /// Emit raw NDJSON frames instead of the human tail (`--json`).
    pub json: bool,
}

impl ClientArgs {
    fn wait_budget(&self) -> Duration {
        Duration::from_secs_f64(self.deadline_s.filter(|d| *d > 0.0).unwrap_or(600.0))
    }
}

/// Parses `--inject-every panic=N,transient=N,corrupt=N` (any subset).
fn parse_inject_every(spec: Option<&str>) -> Result<ServiceFaultPlan, PpError> {
    let mut plan = ServiceFaultPlan::default();
    let Some(spec) = spec else {
        return Ok(plan);
    };
    for token in spec.split(',').filter(|t| !t.is_empty()) {
        let (kind, every) = token.split_once('=').ok_or_else(|| {
            PpError::Usage(format!("--inject-every token `{token}` needs `kind=N`"))
        })?;
        let every: u64 = every.parse().map_err(|_| {
            PpError::Usage(format!("--inject-every `{token}`: bad period `{every}`"))
        })?;
        match kind {
            "panic" => plan.panic_every = every,
            "transient" => plan.transient_every = every,
            "corrupt" => plan.corrupt_every = every,
            other => {
                return Err(PpError::Usage(format!(
                    "--inject-every: unknown kind `{other}` (panic|transient|corrupt)"
                )));
            }
        }
    }
    Ok(plan)
}

/// Builds the job spec string a client sends for `target` under the
/// shared CLI options; [`spec_resolver`] is its server-side inverse.
pub fn spec_string(target: &str, scale: f64, config: &str, events: (HwEvent, HwEvent)) -> String {
    format!(
        "target={target} scale={scale} config={config} events={},{}",
        events.0.mnemonic(),
        events.1.mnemonic()
    )
}

/// The server-side [`pp::profiler::SpecResolver`]: parses a spec string
/// back into a loaded program and run configuration. Every error is a
/// string — the service turns them into typed `bad-spec` rejections.
pub fn spec_resolver() -> pp::profiler::SpecResolver {
    Arc::new(|spec: &str| {
        let mut target = None;
        let mut scale = 1.0f64;
        let mut config = "combined".to_string();
        let mut events = (HwEvent::Insts, HwEvent::DcMiss);
        for token in spec.split_whitespace() {
            let (k, v) = token
                .split_once('=')
                .ok_or_else(|| format!("spec token `{token}` needs key=value"))?;
            match k {
                "target" => target = Some(v.to_string()),
                "scale" => scale = v.parse().map_err(|_| format!("bad scale `{v}`"))?,
                "config" => config = v.to_string(),
                "events" => {
                    let (a, b) = v
                        .split_once(',')
                        .ok_or_else(|| format!("events `{v}` need `ev0,ev1`"))?;
                    events = (
                        crate::parse_event(a).map_err(|e| e.to_string())?,
                        crate::parse_event(b).map_err(|e| e.to_string())?,
                    );
                }
                other => return Err(format!("unknown spec key `{other}`")),
            }
        }
        let target = target.ok_or("spec lacks target=")?;
        if !(scale.is_finite() && scale > 0.0) {
            return Err(format!("bad scale {scale}"));
        }
        let (_, program) = crate::load_target(&target, scale).map_err(|e| e.to_string())?;
        let run_config = crate::config_by_name(&config, events).map_err(|e| e.to_string())?;
        Ok((program, run_config))
    })
}

fn phase_str(phase: ServicePhase) -> &'static str {
    match phase {
        ServicePhase::Accepting => "accepting",
        ServicePhase::Draining => "draining",
        ServicePhase::Stopped => "stopped",
    }
}

/// Runs the daemon until SIGINT/SIGTERM, then drains, checkpoints, and
/// reports. See the module docs for the lifecycle.
///
/// # Errors
///
/// [`PpError::Io`] for socket or checkpoint failures;
/// [`PpError::Usage`]/[`PpError::Corrupt`] when recovery refuses the
/// state directory (foreign campaign, torn journal, lying manifest).
pub fn run_serve(args: &ServeArgs) -> Result<(), PpError> {
    let fault_plan = parse_inject_every(args.inject_every.as_deref())?;
    // Everything that changes what a job computes goes into the params
    // tag; recovery refuses a state directory written under different
    // parameters. (config/scale/events live in each job's spec.)
    let params = format!(
        "service fuel={} deadline={} inject={}",
        args.fuel,
        args.deadline_s.unwrap_or(0.0),
        args.inject_every.as_deref().unwrap_or("-"),
    );
    let mut limits = GuestLimits::none().with_fuel(args.fuel);
    if let Some(d) = args.deadline_s.filter(|d| *d > 0.0) {
        limits = limits.with_deadline(Duration::from_secs_f64(d));
    }
    let config = ServiceConfig {
        workers: args.workers,
        queue_capacity: args.queue_cap,
        per_client_quota: args.quota,
        max_retries: args.retries,
        seed: args.seed,
        params,
        checkpoint_every: args.checkpoint_every,
        quarantine_cap: args.quarantine_cap,
        fault_plan,
        ..ServiceConfig::default()
    };
    let profiler = args.profiler.clone().with_limits(limits);
    let service = Arc::new(Service::start(
        config,
        profiler,
        spec_resolver(),
        &args.dir,
    )?);

    // First signal: stop accepting, drain, checkpoint. Second: also
    // cancel the running guests.
    let graceful = CancelToken::new();
    crate::signals::install(graceful.clone(), service.hard_cancel_token());

    // A stale socket file from a killed daemon would fail the bind.
    if Path::new(&args.socket).exists() {
        std::fs::remove_file(&args.socket).map_err(|e| PpError::io(&args.socket, e))?;
    }
    let listener = UnixListener::bind(&args.socket).map_err(|e| PpError::io(&args.socket, e))?;
    listener
        .set_nonblocking(true)
        .map_err(|e| PpError::io(&args.socket, e))?;
    let (queued, running, done, failed) = service.counts();
    println!(
        "== pp serve: {} on {} workers (queue {}, quota {}, seed {}) ==",
        args.socket,
        args.workers,
        args.queue_cap,
        if args.quota == 0 {
            "unlimited".to_string()
        } else {
            args.quota.to_string()
        },
        args.seed,
    );
    if queued + running + done + failed > 0 {
        println!(
            "recovered state: {queued} queued, {running} running, {done} done, {failed} failed"
        );
    }

    // Accept loop: poll so the graceful token is observed promptly even
    // with no clients connecting. The same loop is the metrics ticker:
    // once a second the full registry goes onto the event bus as a
    // `metrics` snapshot frame for subscribers.
    let mut last_snapshot = Instant::now();
    while !graceful.is_cancelled() {
        if last_snapshot.elapsed() >= Duration::from_secs(1) {
            service.publish_metrics_snapshot();
            last_snapshot = Instant::now();
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(&service);
                std::thread::spawn(move || handle_client(&service, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => {
                pp::obs::warn!("serve: accept failed: {e}");
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
    drop(listener);
    let _ = std::fs::remove_file(&args.socket);

    println!("serve: draining (in-flight jobs finishing, intake refused)");
    let report = service.shutdown()?;
    let (pending, done, failed) = report.manifest.counts();
    let mut registry = pp::obs::Registry::new();
    report.metrics.record_metrics(&mut registry);
    print!("{}", registry.snapshot());
    println!(
        "serve stopped: {done} done, {failed} failed, {pending} pending \
         (pending jobs re-queue on the next `pp serve` over {})",
        args.dir
    );
    Ok(())
}

/// One bounded read of the NDJSON transport.
enum FrameRead {
    /// A complete line within the frame bound.
    Line(String),
    /// The line exceeded [`MAX_FRAME_BYTES`]; its bytes were discarded
    /// up to (and including) the newline, so the connection can keep
    /// serving.
    TooLarge,
    /// Peer hung up. A torn (newline-less) tail is dropped — it was
    /// never a complete request, mirroring the intake journal's
    /// torn-tail rule.
    Eof,
    /// Transport error.
    Failed,
}

/// Reads one newline-terminated frame without ever buffering more than
/// [`MAX_FRAME_BYTES`] of it.
fn read_frame(reader: &mut impl BufRead) -> FrameRead {
    let mut line: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let (consumed, complete) = {
            let chunk = match reader.fill_buf() {
                Ok(chunk) => chunk,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => return FrameRead::Failed,
            };
            if chunk.is_empty() {
                return FrameRead::Eof;
            }
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if !oversized {
                        line.extend_from_slice(&chunk[..pos]);
                    }
                    (pos + 1, true)
                }
                None => {
                    if !oversized {
                        line.extend_from_slice(chunk);
                    }
                    (chunk.len(), false)
                }
            }
        };
        reader.consume(consumed);
        if line.len() > MAX_FRAME_BYTES {
            oversized = true;
            line.clear();
        }
        if complete {
            return if oversized {
                FrameRead::TooLarge
            } else {
                FrameRead::Line(String::from_utf8_lossy(&line).into_owned())
            };
        }
    }
}

/// Serves one client connection: a loop of bounded NDJSON
/// request/response pairs until the peer hangs up. Malformed requests
/// get a typed `bad-request` reply and oversized ones a typed
/// `frame-too-large` reply — never a panic, never a dropped connection.
/// A `subscribe` request switches the connection into streaming mode
/// and it stays there until one side hangs up.
fn handle_client(service: &Service, stream: UnixStream) {
    // Accepted sockets can inherit the listener's nonblocking mode on
    // some platforms; the handler wants plain blocking reads.
    if stream.set_nonblocking(false).is_err() {
        return;
    }
    let Ok(peer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(peer);
    let mut writer = stream;
    let send = |writer: &mut UnixStream, response: &Json| {
        writeln!(writer, "{}", response.render())
            .and_then(|()| writer.flush())
            .is_ok()
    };
    loop {
        let line = match read_frame(&mut reader) {
            FrameRead::Line(line) => line,
            FrameRead::TooLarge => {
                let response = error_json(
                    "frame-too-large",
                    &format!("request frames are capped at {MAX_FRAME_BYTES} bytes"),
                );
                if !send(&mut writer, &response) {
                    return;
                }
                continue;
            }
            FrameRead::Eof | FrameRead::Failed => return,
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match json::parse(&line) {
            Ok(request) => request,
            Err(e) => {
                let response = error_json("bad-request", &format!("unparsable request: {e}"));
                if !send(&mut writer, &response) {
                    return;
                }
                continue;
            }
        };
        if request.get("op").and_then(Json::as_str) == Some("subscribe") {
            stream_events(service, &mut writer, &request);
            return;
        }
        if request.get("op").and_then(Json::as_str) == Some("fetch") {
            // Unlike subscribe, fetch is a bounded burst: stream the
            // artifact, then fall back into the request loop.
            if !stream_fetch(service, &mut writer, &request) {
                return;
            }
            continue;
        }
        let response = handle_request(service, &request);
        if !send(&mut writer, &response) {
            return;
        }
    }
}

/// Serves a `subscribe` request: one ack object, then NDJSON event
/// frames until the subscriber hangs up or the service stops. A slow
/// subscriber only ever blocks its own connection thread; its bounded
/// bus queue drops oldest events with exact accounting
/// (`dropped_since_last`), and the daemon never waits on it.
fn stream_events(service: &Service, writer: &mut UnixStream, request: &Json) {
    let num = |key: &str| request.get(key).and_then(Json::as_f64);
    let text = |key: &str| request.get(key).and_then(Json::as_str);
    let mut kinds: Option<Vec<String>> = None;
    if let Some(spec) = text("events") {
        let list: Vec<String> = spec
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        for kind in &list {
            if !EVENT_KINDS.contains(&kind.as_str()) {
                let response = error_json(
                    "bad-request",
                    &format!(
                        "unknown event kind `{kind}` (expected one of: {})",
                        EVENT_KINDS.join(", ")
                    ),
                );
                let _ = writeln!(writer, "{}", response.render());
                return;
            }
        }
        if !list.is_empty() {
            kinds = Some(list);
        }
    }
    let filter = EventFilter {
        job: num("job").map(|j| j as u64),
        client: text("client").map(str::to_string),
        kinds,
        since: num("since").map(|s| s as u64),
    };
    let capacity = num("capacity")
        .map(|c| c as usize)
        .filter(|c| *c > 0)
        .unwrap_or(DEFAULT_SUBSCRIBER_CAPACITY);
    let subscription = service.subscribe(filter, capacity);
    let ack = Json::Obj(vec![
        ("ok".to_string(), Json::Bool(true)),
        ("subscribed".to_string(), Json::Bool(true)),
        (
            "phase".to_string(),
            Json::Str(phase_str(service.phase()).to_string()),
        ),
        (
            "next_seq".to_string(),
            Json::Num(service.events().next_seq() as f64),
        ),
        ("capacity".to_string(), Json::Num(capacity as f64)),
    ]);
    if writeln!(writer, "{}", ack.render())
        .and_then(|()| writer.flush())
        .is_err()
    {
        return;
    }
    loop {
        match subscription.recv(Duration::from_millis(250)) {
            Some(frame) => {
                if writeln!(writer, "{}", frame.to_json().render())
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    // Subscriber gone; dropping the subscription
                    // unregisters it from the bus.
                    return;
                }
            }
            None => {
                if subscription.is_closed() || service.phase() == ServicePhase::Stopped {
                    return;
                }
            }
        }
    }
}

/// The standard base64 alphabet, hand-rolled because artifact bytes
/// must cross a line-oriented JSON protocol and the toolchain carries
/// no dependencies.
const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 with `=` padding.
fn b64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let n = (u32::from(chunk[0]) << 16)
            | (u32::from(chunk.get(1).copied().unwrap_or(0)) << 8)
            | u32::from(chunk.get(2).copied().unwrap_or(0));
        out.push(B64_ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(B64_ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            B64_ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64_ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Inverse of [`b64_encode`]; `None` on any malformed input (bad
/// length, alien characters, interior padding).
fn b64_decode(s: &str) -> Option<Vec<u8>> {
    let val = |c: u8| -> Option<u32> {
        Some(match c {
            b'A'..=b'Z' => u32::from(c - b'A'),
            b'a'..=b'z' => u32::from(c - b'a') + 26,
            b'0'..=b'9' => u32::from(c - b'0') + 52,
            b'+' => 62,
            b'/' => 63,
            _ => return None,
        })
    };
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, q) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = q.iter().filter(|&&c| c == b'=').count();
        // Padding is only legal in the final quad's tail positions.
        if pad > 0
            && (!last || pad > 2 || q[0] == b'=' || q[1] == b'=' || q[2] == b'=' && q[3] != b'=')
        {
            return None;
        }
        let n = (val(q[0])? << 18)
            | (val(q[1])? << 12)
            | if q[2] == b'=' { 0 } else { val(q[2])? << 6 }
            | if q[3] == b'=' { 0 } else { val(q[3])? };
        out.push((n >> 16) as u8);
        if q[2] != b'=' {
            out.push((n >> 8) as u8);
        }
        if q[3] != b'=' {
            out.push(n as u8);
        }
    }
    Some(out)
}

/// Is `name` an artifact this daemon is willing to serve? Only files
/// the service itself wrote qualify: each job's persisted flow/CCT
/// profile, plus the merged fleet profile a `pp merge` checkpointed
/// into the state directory.
fn fetch_allowed(service: &Service, name: &str) -> bool {
    name == pp::profiler::merge::MERGED_PROFILE_FILE
        || service
            .jobs()
            .iter()
            .any(|j| j.flow.as_deref() == Some(name) || j.cct.as_deref() == Some(name))
}

/// Serves one `fetch` request: ack, chunk frames, done frame. Returns
/// whether the connection is still usable (a write failure means the
/// peer hung up). Errors are typed replies, never dropped connections:
/// a traversal attempt or unknown name is refused before any I/O.
fn stream_fetch(service: &Service, writer: &mut UnixStream, request: &Json) -> bool {
    let send = |writer: &mut UnixStream, response: &Json| {
        writeln!(writer, "{}", response.render())
            .and_then(|()| writer.flush())
            .is_ok()
    };
    let name = request
        .get("file")
        .and_then(Json::as_str)
        .unwrap_or(pp::profiler::merge::MERGED_PROFILE_FILE);
    // The served namespace is flat: artifact basenames inside the state
    // directory, nothing else on the filesystem.
    if name.contains('/') || name.contains('\\') || name.contains("..") || name.is_empty() {
        return send(
            writer,
            &error_json("bad-request", "fetch file must be a bare artifact name"),
        );
    }
    if !fetch_allowed(service, name) {
        return send(
            writer,
            &error_json(
                "unknown-artifact",
                &format!("`{name}` is not a stored artifact of this daemon"),
            ),
        );
    }
    let bytes = match std::fs::read(service.dir().join(name)) {
        Ok(bytes) => bytes,
        Err(e) => {
            return send(writer, &error_json("io", &format!("{name}: {e}")));
        }
    };
    let r = ProfileRef::for_bytes(name, &bytes);
    let chunks = bytes.len().div_ceil(FETCH_CHUNK_RAW);
    let ack = Json::Obj(vec![
        ("ok".to_string(), Json::Bool(true)),
        ("file".to_string(), Json::Str(name.to_string())),
        ("len".to_string(), Json::Num(r.len as f64)),
        ("crc".to_string(), Json::Num(f64::from(r.crc))),
        ("chunks".to_string(), Json::Num(chunks as f64)),
    ]);
    if !send(writer, &ack) {
        return false;
    }
    for (i, chunk) in bytes.chunks(FETCH_CHUNK_RAW).enumerate() {
        let frame = Json::Obj(vec![
            ("chunk".to_string(), Json::Num(i as f64)),
            ("data".to_string(), Json::Str(b64_encode(chunk))),
        ]);
        if !send(writer, &frame) {
            return false;
        }
    }
    send(
        writer,
        &Json::Obj(vec![
            ("done".to_string(), Json::Bool(true)),
            ("chunks".to_string(), Json::Num(chunks as f64)),
        ]),
    )
}

/// `{"ok":false,"error":kind,"detail":detail}`.
fn error_json(kind: &str, detail: &str) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str(kind.to_string())),
        ("detail".to_string(), Json::Str(detail.to_string())),
    ])
}

/// Dispatches one parsed request object to the service.
fn handle_request(service: &Service, request: &Json) -> Json {
    let str_field = |key: &str| request.get(key).and_then(Json::as_str);
    let num_field = |key: &str| request.get(key).and_then(Json::as_f64);
    let ok = |mut fields: Vec<(String, Json)>| {
        fields.insert(0, ("ok".to_string(), Json::Bool(true)));
        Json::Obj(fields)
    };
    match str_field("op") {
        Some("ping") => {
            let (queued, running, done, failed) = service.counts();
            ok(vec![
                (
                    "phase".to_string(),
                    Json::Str(phase_str(service.phase()).to_string()),
                ),
                ("queued".to_string(), Json::Num(queued as f64)),
                ("running".to_string(), Json::Num(running as f64)),
                ("done".to_string(), Json::Num(done as f64)),
                ("failed".to_string(), Json::Num(failed as f64)),
            ])
        }
        Some("submit") => {
            let Some(spec) = str_field("spec") else {
                return error_json("bad-request", "submit needs \"spec\"");
            };
            let client = str_field("client").unwrap_or("anon");
            let name = str_field("name").unwrap_or(spec);
            match service.submit(client, name, spec) {
                Ok(id) => ok(vec![("id".to_string(), Json::Num(id as f64))]),
                Err(e) => {
                    let mut reply = match error_json(e.kind(), &e.to_string()) {
                        Json::Obj(fields) => fields,
                        _ => unreachable!(),
                    };
                    // Structured fields so the client can rebuild the
                    // exact AdmitError, not just its message.
                    match &e {
                        AdmitError::Overloaded { capacity } => {
                            reply.push(("capacity".to_string(), Json::Num(*capacity as f64)));
                        }
                        AdmitError::QuotaExceeded { quota, .. } => {
                            reply.push(("quota".to_string(), Json::Num(*quota as f64)));
                        }
                        _ => {}
                    }
                    Json::Obj(reply)
                }
            }
        }
        Some("status") => match num_field("id") {
            Some(id) => match service.status(id as u64) {
                Some(job) => ok(vec![("job".to_string(), job.to_json())]),
                None => error_json("unknown-job", &format!("no job {id}")),
            },
            None => {
                let jobs: Vec<Json> = service.jobs().iter().map(|j| j.to_json()).collect();
                ok(vec![
                    (
                        "phase".to_string(),
                        Json::Str(phase_str(service.phase()).to_string()),
                    ),
                    ("jobs".to_string(), Json::Arr(jobs)),
                ])
            }
        },
        Some("wait") => {
            let Some(id) = num_field("id") else {
                return error_json("bad-request", "wait needs \"id\"");
            };
            let timeout = Duration::from_secs_f64(num_field("timeout_s").unwrap_or(600.0));
            match service.wait(id as u64, timeout) {
                Some(job) => ok(vec![("job".to_string(), job.to_json())]),
                None => error_json("unknown-job", &format!("no job {id}")),
            }
        }
        Some("wait-idle") => {
            let timeout = Duration::from_secs_f64(num_field("timeout_s").unwrap_or(60.0));
            let idle = service.wait_idle(timeout);
            ok(vec![("idle".to_string(), Json::Bool(idle))])
        }
        Some("metrics") => {
            let registry = service.registry();
            // The registry renders itself; parse it back so it embeds as
            // an object rather than a string.
            let registry_json =
                json::parse(&registry.to_json()).unwrap_or_else(|_| Json::Obj(Vec::new()));
            ok(vec![
                ("metrics".to_string(), service.metrics().to_json()),
                ("registry".to_string(), registry_json),
                ("prom".to_string(), Json::Str(registry.prom_text())),
            ])
        }
        Some("drain") => {
            service.drain();
            ok(vec![(
                "phase".to_string(),
                Json::Str(phase_str(service.phase()).to_string()),
            )])
        }
        Some(other) => error_json("bad-request", &format!("unknown op `{other}`")),
        None => error_json("bad-request", "request lacks \"op\""),
    }
}

/// One client connection speaking the NDJSON protocol.
struct Conn {
    writer: UnixStream,
    reader: BufReader<UnixStream>,
    socket: String,
}

impl Conn {
    /// Connects to the daemon. A refused/absent socket is an I/O error
    /// (exit 3): the server is not there, which is different from a
    /// server that answered "no" (exit 4).
    fn open(socket: &str) -> Result<Conn, PpError> {
        let stream = UnixStream::connect(socket).map_err(|e| PpError::io(socket, e))?;
        let reader = BufReader::new(stream.try_clone().map_err(|e| PpError::io(socket, e))?);
        Ok(Conn {
            writer: stream,
            reader,
            socket: socket.to_string(),
        })
    }

    /// Sends one request line and reads one response line.
    fn request(&mut self, request: &Json) -> Result<Json, PpError> {
        writeln!(self.writer, "{}", request.render())
            .and_then(|()| self.writer.flush())
            .map_err(|e| PpError::io(&self.socket, e))?;
        let mut line = String::new();
        self.reader
            .read_line(&mut line)
            .map_err(|e| PpError::io(&self.socket, e))?;
        if line.is_empty() {
            return Err(PpError::io(
                &self.socket,
                std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ),
            ));
        }
        json::parse(line.trim()).map_err(|e| {
            PpError::Corrupt(pp::cct::SerializeError::Format(format!(
                "unparsable server reply: {e}"
            )))
        })
    }

    /// Reads one more response line without sending anything — the
    /// streaming half of `fetch` and `subscribe`.
    fn read_json_line(&mut self) -> Result<Json, PpError> {
        let mut line = String::new();
        self.reader
            .read_line(&mut line)
            .map_err(|e| PpError::io(&self.socket, e))?;
        if line.is_empty() {
            return Err(PpError::io(
                &self.socket,
                std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed the connection mid-stream",
                ),
            ));
        }
        json::parse(line.trim()).map_err(|e| {
            PpError::Corrupt(pp::cct::SerializeError::Format(format!(
                "unparsable server frame: {e}"
            )))
        })
    }
}

/// Maps a refusal reply back onto the typed error taxonomy: admission
/// refusals become [`PpError::Unavailable`] (exit 4), an unusable spec
/// is a usage error (exit 1).
fn refusal_error(reply: &Json) -> PpError {
    let kind = reply.get("error").and_then(Json::as_str).unwrap_or("?");
    let detail = reply
        .get("detail")
        .and_then(Json::as_str)
        .unwrap_or("no detail")
        .to_string();
    let num = |key: &str| reply.get(key).and_then(Json::as_f64).unwrap_or(0.0) as usize;
    match kind {
        "overloaded" => PpError::Unavailable(AdmitError::Overloaded {
            capacity: num("capacity"),
        }),
        "quota-exceeded" => PpError::Unavailable(AdmitError::QuotaExceeded {
            client: String::new(),
            quota: num("quota"),
        }),
        "draining" => PpError::Unavailable(AdmitError::Draining),
        "stopped" => PpError::Unavailable(AdmitError::Stopped),
        "io" => PpError::Unavailable(AdmitError::Io(detail)),
        "bad-spec" | "bad-request" => PpError::Usage(detail),
        other => PpError::Usage(format!("server refused ({other}): {detail}")),
    }
}

/// Renders one job object from the wire as a report table row.
fn print_job_row(job: &Json) {
    let s = |key: &str| job.get(key).and_then(Json::as_str).unwrap_or("");
    let n = |key: &str| job.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    println!(
        "{:>6} {:<20} {:<8} {:>8} {:>12} {:>12}  {}",
        n("id"),
        s("name"),
        s("state"),
        n("attempts"),
        n("cycles"),
        n("uops"),
        s("detail"),
    );
}

/// `pp submit`: sends one job, optionally waits for its terminal state.
///
/// # Errors
///
/// [`PpError::Unavailable`] (exit 4) for typed admission refusals;
/// [`PpError::Io`] (exit 3) when the daemon is unreachable.
pub fn run_submit(
    args: &ClientArgs,
    target: &str,
    scale: f64,
    config: &str,
    events: (HwEvent, HwEvent),
) -> Result<(), PpError> {
    let spec = spec_string(target, scale, config, events);
    let mut conn = Conn::open(&args.socket)?;
    let reply = conn.request(&Json::Obj(vec![
        ("op".to_string(), Json::Str("submit".to_string())),
        ("client".to_string(), Json::Str(args.client.clone())),
        ("name".to_string(), Json::Str(target.to_string())),
        ("spec".to_string(), Json::Str(spec)),
    ]))?;
    if reply.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(refusal_error(&reply));
    }
    let id = reply.get("id").and_then(Json::as_f64).unwrap_or(-1.0);
    println!("submitted job {id} ({target}) as client {}", args.client);
    if args.wait {
        let reply = conn.request(&Json::Obj(vec![
            ("op".to_string(), Json::Str("wait".to_string())),
            ("id".to_string(), Json::Num(id)),
            (
                "timeout_s".to_string(),
                Json::Num(args.wait_budget().as_secs_f64()),
            ),
        ]))?;
        let Some(job) = reply.get("job") else {
            return Err(refusal_error(&reply));
        };
        print_job_row(job);
        let state = job.get("state").and_then(Json::as_str).unwrap_or("?");
        if !matches!(state, "done" | "failed") {
            return Err(PpError::io(
                &args.socket,
                std::io::Error::new(
                    std::io::ErrorKind::TimedOut,
                    format!("job {id} still {state} after the wait budget"),
                ),
            ));
        }
    }
    Ok(())
}

/// `pp fetch`: pulls a stored artifact (default: the merged fleet
/// profile) off the daemon over the NDJSON socket, reassembles its
/// base64 chunk frames, and verifies length + CRC before writing it.
///
/// # Errors
///
/// [`PpError::Io`] (exit 3) when the daemon is unreachable or the
/// stream tears; [`PpError::Corrupt`] (exit 3) when the reassembled
/// bytes fail the advertised CRC; typed refusals map as usual.
pub fn run_fetch(args: &ClientArgs, name: Option<&str>, out: Option<&str>) -> Result<(), PpError> {
    let mut conn = Conn::open(&args.socket)?;
    let mut request = vec![("op".to_string(), Json::Str("fetch".to_string()))];
    if let Some(name) = name {
        request.push(("file".to_string(), Json::Str(name.to_string())));
    }
    let ack = conn.request(&Json::Obj(request))?;
    if ack.get("ok").and_then(Json::as_bool) != Some(true) {
        return Err(refusal_error(&ack));
    }
    let file = ack
        .get("file")
        .and_then(Json::as_str)
        .unwrap_or("artifact")
        .to_string();
    let len = ack.get("len").and_then(Json::as_f64).unwrap_or(0.0) as u64;
    let crc = ack.get("crc").and_then(Json::as_f64).unwrap_or(0.0) as u32;
    let chunks = ack.get("chunks").and_then(Json::as_f64).unwrap_or(0.0) as usize;
    let corrupt = |detail: String| {
        PpError::Corrupt(pp::cct::SerializeError::Format(format!(
            "fetch {file}: {detail}"
        )))
    };
    let mut bytes: Vec<u8> = Vec::with_capacity(len as usize);
    for i in 0..chunks {
        let frame = conn.read_json_line()?;
        if frame.get("chunk").and_then(Json::as_f64) != Some(i as f64) {
            return Err(corrupt(format!(
                "expected chunk {i}, got {}",
                frame.render()
            )));
        }
        let data = frame.get("data").and_then(Json::as_str).unwrap_or("");
        let chunk =
            b64_decode(data).ok_or_else(|| corrupt(format!("chunk {i} is not valid base64")))?;
        bytes.extend_from_slice(&chunk);
    }
    let done = conn.read_json_line()?;
    if done.get("done").and_then(Json::as_bool) != Some(true) {
        return Err(corrupt("stream ended without a done frame".to_string()));
    }
    let got = ProfileRef::for_bytes(file.clone(), &bytes);
    if got.len != len || got.crc != crc {
        return Err(corrupt(format!(
            "advertised {len} bytes fingerprint {crc:#010x}, received {} bytes fingerprint {:#010x}",
            got.len, got.crc
        )));
    }
    let dest = out.unwrap_or(&file);
    std::fs::write(dest, &bytes).map_err(|e| PpError::io(dest, e))?;
    println!("fetched {file} -> {dest} ({len} bytes, fingerprint {crc:#010x}, {chunks} chunk(s))");
    Ok(())
}

/// Renders one registry JSON object (counters/gauges as plain numbers,
/// histograms as `count/sum/max/mean`) in wire order, which the server
/// already sorts.
fn print_registry(registry: &Json) {
    let Json::Obj(fields) = registry else { return };
    for (name, value) in fields {
        match value {
            Json::Num(v) => println!("{name:<36} {v}"),
            Json::Obj(_) => {
                let h = |key: &str| value.get(key).and_then(Json::as_f64).unwrap_or(0.0);
                println!(
                    "{name:<36} count={} sum={} max={} mean={}",
                    h("count"),
                    h("sum"),
                    h("max"),
                    h("mean"),
                );
            }
            _ => {}
        }
    }
}

/// One `pp status` line about the merged fleet profile: present (with
/// size and age) or absent. The file appears when a `pp merge
/// --checkpoint-dir` fold runs over this state directory, so operators
/// can see at a glance whether a fleet rollup exists and how stale it
/// is.
fn merged_profile_line(dir: &Path) {
    let path = dir.join(pp::profiler::merge::MERGED_PROFILE_FILE);
    match std::fs::metadata(&path) {
        Err(_) => println!(
            "merged fleet profile: none (run `pp merge {} --checkpoint-dir {} --out ...`)",
            dir.display(),
            dir.display()
        ),
        Ok(meta) => {
            let age = meta
                .modified()
                .ok()
                .and_then(|t| t.elapsed().ok())
                .map(|d| format!(", {}s old", d.as_secs()))
                .unwrap_or_default();
            println!(
                "merged fleet profile: {} ({} bytes{age})",
                path.display(),
                meta.len()
            );
        }
    }
}

/// The offline `pp status` path: when no daemon answers on the socket,
/// report the last checkpointed state from the service directory —
/// clearly labeled as stale, never dressed up as live.
fn status_from_disk(args: &ClientArgs) -> Result<(), PpError> {
    use pp::profiler::service::JOURNAL_FILE;
    let dir = Path::new(&args.dir);
    let manifest = pp::profiler::BatchManifest::load(dir).map_err(PpError::Corrupt)?;
    let intake_lines = std::fs::read_to_string(dir.join(JOURNAL_FILE))
        .map(|s| s.lines().filter(|l| !l.trim().is_empty()).count())
        .unwrap_or(0);
    println!(
        "daemon not reachable on {}; stale state from last checkpoint in {}:",
        args.socket, args.dir
    );
    println!(
        "{:>6} {:<20} {:<8} {:>8} {:>12} {:>12}  detail",
        "id", "name", "state", "attempts", "cycles", "uops"
    );
    for (id, job) in manifest.jobs.iter().enumerate() {
        let state = match job.status {
            pp::profiler::JobStatus::Pending => "pending",
            pp::profiler::JobStatus::Done => "done",
            pp::profiler::JobStatus::Failed => "failed",
        };
        println!(
            "{:>6} {:<20} {:<8} {:>8} {:>12} {:>12}  {}",
            id, job.name, state, job.attempts, job.cycles, job.uops, job.detail,
        );
    }
    let (pending, done, failed) = manifest.counts();
    println!(
        "\nphase: unknown (stale) | {pending} pending, {done} done, {failed} failed \
         | {intake_lines} journaled admissions",
    );
    merged_profile_line(dir);
    println!("start `pp serve` over {} for live state", args.dir);
    Ok(())
}

/// `pp status`: one job, the whole table, `--wait-idle`, or the fleet
/// metrics surface (`--metrics`, `--prom`). With no daemon on the
/// socket, the full-table form falls back to the last checkpoint on
/// disk, clearly labeled stale.
///
/// # Errors
///
/// [`PpError::Io`] (exit 3) when the daemon is unreachable and the
/// request needs one (single job, `--wait-idle`, metrics), or the wait
/// budget expires.
pub fn run_status(
    args: &ClientArgs,
    id: Option<u64>,
    metrics: bool,
    prom: bool,
) -> Result<(), PpError> {
    let mut conn = match Conn::open(&args.socket) {
        Ok(conn) => conn,
        Err(e) => {
            // Only the plain table view has a meaningful offline answer.
            if id.is_none() && !args.wait_idle && !metrics && !prom {
                return status_from_disk(args);
            }
            return Err(e);
        }
    };
    if metrics || prom {
        let reply = conn.request(&Json::Obj(vec![(
            "op".to_string(),
            Json::Str("metrics".to_string()),
        )]))?;
        if reply.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(refusal_error(&reply));
        }
        if prom {
            print!("{}", reply.get("prom").and_then(Json::as_str).unwrap_or(""));
        } else if let Some(registry) = reply.get("registry") {
            print_registry(registry);
        }
        return Ok(());
    }
    if args.wait_idle {
        let deadline = std::time::Instant::now() + args.wait_budget();
        loop {
            let reply = conn.request(&Json::Obj(vec![
                ("op".to_string(), Json::Str("wait-idle".to_string())),
                ("timeout_s".to_string(), Json::Num(10.0)),
            ]))?;
            if reply.get("idle").and_then(Json::as_bool) == Some(true) {
                println!("server is idle");
                break;
            }
            if std::time::Instant::now() >= deadline {
                return Err(PpError::io(
                    &args.socket,
                    std::io::Error::new(
                        std::io::ErrorKind::TimedOut,
                        "server still busy after the wait budget",
                    ),
                ));
            }
        }
        if id.is_none() {
            return Ok(());
        }
    }
    match id {
        Some(id) => {
            let reply = conn.request(&Json::Obj(vec![
                ("op".to_string(), Json::Str("status".to_string())),
                ("id".to_string(), Json::Num(id as f64)),
            ]))?;
            let Some(job) = reply.get("job") else {
                return Err(refusal_error(&reply));
            };
            print_job_row(job);
        }
        None => {
            let reply = conn.request(&Json::Obj(vec![(
                "op".to_string(),
                Json::Str("status".to_string()),
            )]))?;
            if reply.get("ok").and_then(Json::as_bool) != Some(true) {
                return Err(refusal_error(&reply));
            }
            let phase = reply.get("phase").and_then(Json::as_str).unwrap_or("?");
            let jobs = reply.get("jobs").and_then(Json::as_arr).unwrap_or(&[]);
            println!(
                "{:>6} {:<20} {:<8} {:>8} {:>12} {:>12}  detail",
                "id", "name", "state", "attempts", "cycles", "uops"
            );
            for job in jobs {
                print_job_row(job);
            }
            let count = |state: &str| {
                jobs.iter()
                    .filter(|j| j.get("state").and_then(Json::as_str) == Some(state))
                    .count()
            };
            println!(
                "\nphase: {phase} | {} queued, {} running, {} done, {} failed",
                count("queued"),
                count("running"),
                count("done"),
                count("failed"),
            );
            let reply = conn.request(&Json::Obj(vec![(
                "op".to_string(),
                Json::Str("metrics".to_string()),
            )]))?;
            if let Some(metrics) = reply.get("metrics") {
                println!("metrics: {}", metrics.render());
            }
            merged_profile_line(Path::new(&args.dir));
        }
    }
    Ok(())
}

/// Renders one event frame as a human tail line.
fn frame_line(frame: &Json) -> String {
    let s = |key: &str| frame.get(key).and_then(Json::as_str).unwrap_or("");
    let n = |key: &str| frame.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    let kind = s("event");
    let mut line = format!("#{:<6} ", n("seq"));
    if frame.get("job").is_some() {
        line.push_str(&format!("job {:<4} {:<12} ", n("job"), s("name")));
    } else {
        line.push_str(&format!("{:<21} ", "service"));
    }
    let body = match kind {
        "admitted" => format!("admitted (client {})", s("client")),
        "queued" => format!("queued (depth {})", n("depth")),
        "started" => format!("started on worker {}", n("worker")),
        "retrying" => format!(
            "retrying attempt {} ({}, backoff {} ms)",
            n("attempt"),
            s("class"),
            n("delay_ms"),
        ),
        "quarantined" => format!("quarantined attempt {}: {}", n("attempt"), s("reason")),
        "done" => format!(
            "{} in {} µs after {} attempt(s)",
            s("outcome"),
            n("wall_us"),
            n("attempts"),
        ),
        "state" => format!("phase -> {}", s("phase")),
        "metrics" => {
            let m = |key: &str| {
                frame
                    .get("metrics")
                    .and_then(|m| m.get(key))
                    .and_then(Json::as_f64)
                    .unwrap_or(0.0)
            };
            format!(
                "metrics: {} done, {} failed, {} published events",
                m("service.jobs.done"),
                m("service.jobs.failed"),
                m("events.published"),
            )
        }
        other => format!("{other}?"),
    };
    line.push_str(&body);
    if frame.get("replay").and_then(Json::as_bool) == Some(true) {
        line.push_str(" [replay]");
    }
    let dropped = n("dropped_since_last");
    if dropped > 0.0 {
        line.push_str(&format!("  (+{dropped} dropped)"));
    }
    line
}

/// `pp watch`: subscribes to the daemon's event bus and tails it until
/// the stream ends or `--deadline` elapses. `--json` passes the NDJSON
/// frames through untouched for tooling.
///
/// # Errors
///
/// [`PpError::Io`] (exit 3) when the daemon is unreachable;
/// [`PpError::Usage`] (exit 1) when the server refuses the filter.
pub fn run_watch(args: &ClientArgs, watch: &WatchArgs) -> Result<(), PpError> {
    let io_err = |e| PpError::io(&args.socket, e);
    let stream = UnixStream::connect(&args.socket).map_err(io_err)?;
    let mut fields = vec![("op".to_string(), Json::Str("subscribe".to_string()))];
    if let Some(job) = watch.job {
        fields.push(("job".to_string(), Json::Num(job as f64)));
    }
    if let Some(client) = &watch.client_filter {
        fields.push(("client".to_string(), Json::Str(client.clone())));
    }
    if let Some(kinds) = &watch.kinds {
        fields.push(("events".to_string(), Json::Str(kinds.clone())));
    }
    if let Some(since) = watch.since {
        fields.push(("since".to_string(), Json::Num(since as f64)));
    }
    let mut writer = stream.try_clone().map_err(io_err)?;
    writeln!(writer, "{}", Json::Obj(fields).render())
        .and_then(|()| writer.flush())
        .map_err(io_err)?;
    // Short read timeouts bound every wait so `--deadline` terminates
    // the tail even when the server goes silent mid-frame.
    stream
        .set_read_timeout(Some(Duration::from_millis(250)))
        .map_err(io_err)?;
    let budget = args
        .deadline_s
        .filter(|d| *d > 0.0)
        .map(Duration::from_secs_f64);
    let started = Instant::now();
    let mut reader = BufReader::new(stream);
    // read_until keeps partial bytes across timeouts, so a frame torn
    // by the 250 ms tick is finished on the next read, not lost.
    let mut buf: Vec<u8> = Vec::new();
    let mut acked = false;
    loop {
        if let Some(budget) = budget {
            if started.elapsed() >= budget {
                return Ok(());
            }
        }
        match reader.read_until(b'\n', &mut buf) {
            Ok(0) => return Ok(()),                          // server closed the stream
            Ok(_) if buf.last() != Some(&b'\n') => continue, // torn, keep reading
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(e) => return Err(io_err(e)),
        }
        let line = String::from_utf8_lossy(&buf).trim().to_string();
        buf.clear();
        if line.is_empty() {
            continue;
        }
        let frame = json::parse(&line).map_err(|e| {
            PpError::Corrupt(pp::cct::SerializeError::Format(format!(
                "unparsable event frame: {e}"
            )))
        })?;
        if !acked {
            acked = true;
            if frame.get("subscribed").and_then(Json::as_bool) != Some(true) {
                return Err(refusal_error(&frame));
            }
            if !watch.json {
                println!(
                    "watching {} (phase {}, next seq {})",
                    args.socket,
                    frame.get("phase").and_then(Json::as_str).unwrap_or("?"),
                    frame.get("next_seq").and_then(Json::as_f64).unwrap_or(0.0),
                );
            }
            continue;
        }
        if watch.json {
            println!("{line}");
        } else {
            println!("{}", frame_line(&frame));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp::profiler::RunConfig;

    #[test]
    fn inject_every_parses_and_rejects() {
        let plan = parse_inject_every(Some("panic=5,corrupt=11")).unwrap();
        assert_eq!(plan.panic_every, 5);
        assert_eq!(plan.transient_every, 0);
        assert_eq!(plan.corrupt_every, 11);
        for bad in ["panic", "panic=x", "nope=3"] {
            assert!(parse_inject_every(Some(bad)).is_err(), "`{bad}`");
        }
    }

    #[test]
    fn spec_string_round_trips_through_the_resolver() {
        let spec = spec_string(
            "129.compress",
            0.25,
            "flow-hw",
            (HwEvent::Insts, HwEvent::DcMiss),
        );
        let (program, config) = spec_resolver()(&spec).expect("resolves");
        assert!(!program.procedures().is_empty());
        assert!(matches!(config, RunConfig::FlowHw { .. }));
        assert!(spec_resolver()("scale=1").is_err(), "missing target");
        assert!(spec_resolver()("target=129.compress config=nope").is_err());
    }

    #[test]
    fn refusals_map_to_the_error_taxonomy() {
        let overloaded = error_json("overloaded", "queue full");
        let e = refusal_error(&overloaded);
        assert!(
            matches!(e, PpError::Unavailable(AdmitError::Overloaded { .. })),
            "{e}"
        );
        assert_eq!(e.exit_code(), 4);
        let bad = error_json("bad-spec", "no such target");
        assert_eq!(refusal_error(&bad).exit_code(), 1);
    }

    // ---- protocol framing fuzz: torn, oversized, and interleaved
    // frames must earn typed errors on a connection that keeps serving,
    // never a panic or a hang. ----

    use std::path::PathBuf;

    /// A service whose resolver refuses everything — protocol tests
    /// exercise the transport, not job execution.
    fn proto_service(tag: &str) -> (std::sync::Arc<Service>, PathBuf) {
        let dir = std::env::temp_dir().join(format!("pp-serve-proto-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let resolver: pp::profiler::SpecResolver =
            Arc::new(|_spec: &str| Err("protocol tests resolve nothing".to_string()));
        let config = ServiceConfig {
            workers: 1,
            params: "proto-test".to_string(),
            ..ServiceConfig::default()
        };
        let service =
            Service::start(config, Profiler::default(), resolver, &dir).expect("service starts");
        (Arc::new(service), dir)
    }

    /// Wires a raw client socket to a live `handle_client` thread.
    fn proto_conn(
        service: &Arc<Service>,
    ) -> (
        UnixStream,
        BufReader<UnixStream>,
        std::thread::JoinHandle<()>,
    ) {
        let (client, server) = UnixStream::pair().expect("socketpair");
        let svc = Arc::clone(service);
        let handler = std::thread::spawn(move || handle_client(&svc, server));
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let reader = BufReader::new(client.try_clone().expect("clone"));
        (client, reader, handler)
    }

    fn read_reply(reader: &mut BufReader<UnixStream>) -> Json {
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply line");
        json::parse(line.trim()).expect("reply parses")
    }

    #[test]
    fn base64_round_trips_and_rejects_malformed_input() {
        for len in [0usize, 1, 2, 3, 4, 31, 32, 33, 1000] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let encoded = b64_encode(&data);
            assert_eq!(encoded.len() % 4, 0);
            assert_eq!(
                b64_decode(&encoded).as_deref(),
                Some(&data[..]),
                "len {len}"
            );
        }
        assert_eq!(
            b64_encode(b"any carnal pleasure."),
            "YW55IGNhcm5hbCBwbGVhc3VyZS4="
        );
        for bad in ["A", "AB!=", "====", "=AAA", "AB=A", "AA==BB==", "AB=="] {
            // `AB==` decodes under lenient decoders but encodes no
            // canonical byte; we only need never-panic + None on junk.
            let _ = b64_decode(bad);
        }
        assert_eq!(b64_decode("AB!="), None);
        assert_eq!(b64_decode("A"), None);
        assert_eq!(b64_decode("=AAA"), None);
        assert_eq!(b64_decode("AA==BB=="), None, "interior padding");
    }

    #[test]
    fn fetch_streams_chunked_artifact_and_connection_survives() {
        let (service, dir) = proto_service("fetch");
        // Big enough for three chunk frames, awkwardly misaligned.
        let artifact: Vec<u8> = (0..2 * FETCH_CHUNK_RAW + 777)
            .map(|i| (i % 251) as u8)
            .collect();
        std::fs::write(
            dir.join(pp::profiler::merge::MERGED_PROFILE_FILE),
            &artifact,
        )
        .expect("write artifact");
        let (mut client, mut reader, handler) = proto_conn(&service);

        // Traversal and unknown names are refused without touching disk.
        for (request, want) in [
            (
                "{\"op\":\"fetch\",\"file\":\"../../etc/passwd\"}",
                "bad-request",
            ),
            (
                "{\"op\":\"fetch\",\"file\":\"job-000001.cct\"}",
                "unknown-artifact",
            ),
        ] {
            client.write_all(request.as_bytes()).expect("request");
            client.write_all(b"\n").expect("newline");
            client.flush().expect("flush");
            let reply = read_reply(&mut reader);
            assert_eq!(
                reply.get("error").and_then(Json::as_str),
                Some(want),
                "{request}"
            );
        }

        // Default fetch = the merged fleet profile, in order, CRC-true.
        client.write_all(b"{\"op\":\"fetch\"}\n").expect("fetch");
        client.flush().expect("flush");
        let ack = read_reply(&mut reader);
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true), "{ack:?}");
        assert_eq!(
            ack.get("len").and_then(Json::as_f64),
            Some(artifact.len() as f64)
        );
        let chunks = ack.get("chunks").and_then(Json::as_f64).expect("chunks") as usize;
        assert_eq!(chunks, 3);
        let mut got = Vec::new();
        for i in 0..chunks {
            let frame = read_reply(&mut reader);
            assert_eq!(frame.get("chunk").and_then(Json::as_f64), Some(i as f64));
            let data = frame.get("data").and_then(Json::as_str).expect("data");
            assert!(
                data.len() < MAX_FRAME_BYTES,
                "chunk frames obey the frame rule"
            );
            got.extend(b64_decode(data).expect("valid base64"));
        }
        let done = read_reply(&mut reader);
        assert_eq!(done.get("done").and_then(Json::as_bool), Some(true));
        assert_eq!(got, artifact, "reassembled bytes match");
        let want_crc = ProfileRef::for_bytes("x", &artifact).crc;
        assert_eq!(
            ack.get("crc").and_then(Json::as_f64),
            Some(f64::from(want_crc))
        );

        // The connection keeps serving plain requests afterwards.
        client.write_all(b"{\"op\":\"ping\"}\n").expect("ping");
        client.flush().expect("flush");
        let ping = read_reply(&mut reader);
        assert_eq!(ping.get("ok").and_then(Json::as_bool), Some(true));
        drop(client);
        drop(reader);
        handler.join().expect("handler exits");
        service.shutdown().expect("shutdown");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_frame_gets_typed_error_and_connection_survives() {
        let (service, dir) = proto_service("oversized");
        let (mut client, mut reader, handler) = proto_conn(&service);
        let mut huge = vec![b'a'; MAX_FRAME_BYTES + 512];
        huge.push(b'\n');
        client.write_all(&huge).expect("oversized frame");
        client
            .write_all(b"{\"op\":\"ping\"}\n")
            .expect("ping after");
        client.flush().expect("flush");
        let first = read_reply(&mut reader);
        assert_eq!(
            first.get("error").and_then(Json::as_str),
            Some("frame-too-large"),
            "{first:?}"
        );
        let second = read_reply(&mut reader);
        assert_eq!(second.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            second.get("phase").and_then(Json::as_str),
            Some("accepting"),
            "the connection keeps serving after the oversized frame"
        );
        drop(client);
        drop(reader);
        handler.join().expect("handler exits");
        service.shutdown().expect("shutdown");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_and_garbage_frames_never_panic_or_wedge() {
        let (service, dir) = proto_service("torn");
        let (mut client, mut reader, handler) = proto_conn(&service);
        // Interleaved garbage: binary junk, an empty line, unparsable
        // JSON — each complete frame earns one typed reply.
        client
            .write_all(b"\x00\xfe\x01 binary junk\n")
            .expect("junk");
        client.write_all(b"\n").expect("blank");
        client
            .write_all(b"{\"op\": \"ping\"")
            .expect("half an object");
        client.write_all(b" oops}\n").expect("rest of the line");
        client
            .write_all(b"{\"op\":\"ping\"}\n")
            .expect("valid ping");
        client.flush().expect("flush");
        let junk_reply = read_reply(&mut reader);
        assert_eq!(
            junk_reply.get("error").and_then(Json::as_str),
            Some("bad-request")
        );
        let torn_json_reply = read_reply(&mut reader);
        assert_eq!(
            torn_json_reply.get("error").and_then(Json::as_str),
            Some("bad-request")
        );
        let ping_reply = read_reply(&mut reader);
        assert_eq!(ping_reply.get("ok").and_then(Json::as_bool), Some(true));
        // A torn final frame (no newline) at hangup is dropped silently:
        // it was never a complete request.
        client.write_all(b"{\"op\":\"stat").expect("torn tail");
        client
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut rest = String::new();
        reader.read_line(&mut rest).expect("eof");
        assert!(rest.is_empty(), "no reply to a torn tail: {rest:?}");
        drop(client);
        drop(reader);
        handler.join().expect("handler exits cleanly");
        service.shutdown().expect("shutdown");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_ops_and_missing_fields_get_typed_refusals() {
        let (service, dir) = proto_service("badops");
        let (mut client, mut reader, handler) = proto_conn(&service);
        for (request, want) in [
            ("{\"op\":\"warp\"}", "bad-request"),
            ("{\"no_op\":1}", "bad-request"),
            ("{\"op\":\"submit\"}", "bad-request"),
            ("{\"op\":\"submit\",\"spec\":\"x\"}", "bad-spec"),
        ] {
            client
                .write_all(format!("{request}\n").as_bytes())
                .expect("request");
            client.flush().expect("flush");
            let reply = read_reply(&mut reader);
            assert_eq!(
                reply.get("error").and_then(Json::as_str),
                Some(want),
                "{request} -> {reply:?}"
            );
        }
        drop(client);
        drop(reader);
        handler.join().expect("handler exits");
        service.shutdown().expect("shutdown");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn subscribe_validates_kinds_then_streams_frames() {
        let (service, dir) = proto_service("subscribe");
        // A bad kind is refused before any subscription exists.
        {
            let (mut client, mut reader, handler) = proto_conn(&service);
            client
                .write_all(b"{\"op\":\"subscribe\",\"events\":\"nonsense\"}\n")
                .expect("bad subscribe");
            client.flush().expect("flush");
            let reply = read_reply(&mut reader);
            assert_eq!(
                reply.get("error").and_then(Json::as_str),
                Some("bad-request")
            );
            drop(client);
            drop(reader);
            handler.join().expect("handler exits");
        }
        assert_eq!(service.events().subscriber_count(), 0);
        // The happy path: ack, then frames as events are published.
        let (client, mut reader, handler) = proto_conn(&service);
        {
            let mut w = client.try_clone().expect("clone");
            w.write_all(b"{\"op\":\"subscribe\",\"since\":0}\n")
                .expect("subscribe");
            w.flush().expect("flush");
        }
        let ack = read_reply(&mut reader);
        assert_eq!(ack.get("subscribed").and_then(Json::as_bool), Some(true));
        let seq = service.events().publish(pp::obs::events::Event::job_event(
            3,
            "ci",
            "tiny",
            pp::obs::events::Payload::Queued { depth: 1 },
        ));
        let frame = read_reply(&mut reader);
        assert_eq!(frame.get("seq").and_then(Json::as_f64), Some(seq as f64));
        assert_eq!(frame.get("event").and_then(Json::as_str), Some("queued"));
        assert_eq!(
            frame.get("dropped_since_last").and_then(Json::as_f64),
            Some(0.0)
        );
        // Hanging up unregisters the subscriber: the next delivery's
        // write fails with EPIPE and the stream loop exits.
        drop(client);
        drop(reader);
        service
            .events()
            .publish(pp::obs::events::Event::service_event(
                pp::obs::events::Payload::StateChanged {
                    phase: "accepting".to_string(),
                },
            ));
        handler.join().expect("stream handler exits");
        assert_eq!(service.events().subscriber_count(), 0);
        service.shutdown().expect("shutdown");
        std::fs::remove_dir_all(&dir).ok();
    }
}
