#![warn(missing_docs)]

//! # pp — flow and context sensitive profiling with hardware counters
//!
//! A Rust reproduction of Ammons, Ball & Larus, *"Exploiting Hardware
//! Performance Counters with Flow and Context Sensitive Profiling"*
//! (PLDI 1997): Ball–Larus path profiling generalized to hardware
//! metrics, the calling context tree, and their combination — together
//! with the machine simulator, instrumentation engine, workload suite and
//! baselines needed to regenerate every table of the paper's evaluation.
//!
//! This facade crate re-exports the whole stack:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`ir`] | `pp-ir` | the CFG-based IR, builders, analyses |
//! | [`pathprof`] | `pp-pathprof` | Ball–Larus labelling, regeneration, placement |
//! | [`cct`] | `pp-cct` | calling context tree, DCT, DCG, statistics |
//! | [`usim`] | `pp-usim` | the simulated UltraSPARC with counters |
//! | [`instrument`] | `pp-instrument` | the PP instrumentation passes |
//! | [`profiler`] | `pp-core` | run configurations, reports, analyses |
//! | [`workloads`] | `pp-workloads` | the synthetic SPEC95-analog suite |
//! | [`baselines`] | `pp-baselines` | gprof-style, edge, Hall profilers |
//! | [`obs`] | `pp-obs` | self-observability: spans, metrics registry, logging |
//!
//! ## Quick start
//!
//! ```
//! use pp::profiler::{Profiler, RunConfig};
//! use pp::ir::HwEvent;
//!
//! // Generate a small benchmark and profile its L1 misses per path.
//! let workload = &pp::workloads::suite(0.05)[3]; // 129.compress analog
//! let profiler = Profiler::default();
//! let report = profiler
//!     .run(
//!         &workload.program,
//!         RunConfig::FlowHw { events: (HwEvent::Insts, HwEvent::DcMiss) },
//!     )
//!     .unwrap();
//! let flow = report.flow.as_ref().unwrap();
//! let hot = pp::profiler::analysis::hot_paths(flow, 0.01);
//! assert!(hot.hot_miss_fraction() > 0.3, "a few paths carry the misses");
//! ```

pub use pp_baselines as baselines;
pub use pp_bench as bench;
pub use pp_cct as cct;
pub use pp_core as profiler;
pub use pp_instrument as instrument;
pub use pp_ir as ir;
pub use pp_obs as obs;
pub use pp_pathprof as pathprof;
pub use pp_usim as usim;
pub use pp_workloads as workloads;
