//! `pp merge` — fold a fleet of CCT shard profiles into one profile.
//!
//! Thin CLI shell over [`pp::profiler::merge::run_merge`]: parse the
//! fault-injection spec, run the fold, render the per-shard disposition
//! report, and write the canonical fleet profile atomically. Exit-code
//! policy mirrors the rest of the tool: quarantined shards are a
//! *degraded success* (exit 0 with a PARTIAL warning) unless `--strict`
//! escalates the first one to exit 3.

use pp::profiler::merge::{MergeOptions, MergeOutcome, ShardStatus};
use pp::profiler::supervisor::manifest::write_atomic;
use pp::profiler::{PpError, ProfileRef};
use std::path::{Path, PathBuf};

/// Everything `pp merge` needs from the command line.
pub struct MergeArgs {
    /// Shard files and/or checkpoint directories to fold.
    pub inputs: Vec<String>,
    /// `--out FILE` — where the fleet profile lands (required).
    pub out: Option<String>,
    /// `--strict` — first bad shard fails the merge (exit 3).
    pub strict: bool,
    /// `--checkpoint-dir DIR` / `--resume DIR`.
    pub checkpoint_dir: Option<String>,
    /// Was `--resume` (rather than `--checkpoint-dir`) given?
    pub resume: bool,
    /// `--checkpoint-every N` shards between checkpoint commits.
    pub checkpoint_every: u32,
    /// `--inject halt@N` — die (abort, no cleanup) right after the N-th
    /// checkpoint commit; the crash-recovery tests' kill -9 stand-in.
    pub inject: Option<String>,
    /// `--metrics` — dump the merge's own metrics registry.
    pub metrics: bool,
}

/// The only `--inject` token `pp merge` understands is `halt@N`; the
/// richer batch vocabulary (panic/transient/corrupt) targets job
/// execution, which a merge does not do.
fn parse_inject(spec: &str) -> Result<u32, PpError> {
    let n = spec
        .strip_prefix("halt@")
        .and_then(|n| n.parse::<u32>().ok())
        .filter(|n| *n > 0)
        .ok_or_else(|| {
            PpError::Usage(format!(
                "bad --inject `{spec}` for merge (expect halt@N, N >= 1)"
            ))
        })?;
    Ok(n)
}

/// Runs `pp merge` end to end.
///
/// # Errors
///
/// Usage errors for a missing `--out` or a bad `--inject`; otherwise
/// whatever [`pp::profiler::merge::run_merge`] or the final profile
/// write surfaces.
pub fn run_merge_cmd(args: &MergeArgs) -> Result<(), PpError> {
    let out = args
        .out
        .as_deref()
        .ok_or_else(|| PpError::Usage("pp merge needs --out FILE for the fleet profile".into()))?;
    let halt = args.inject.as_deref().map(parse_inject).transpose()?;
    if halt.is_some() && args.checkpoint_dir.is_none() {
        return Err(PpError::Usage(
            "--inject halt@N needs --checkpoint-dir (nothing would survive the halt)".into(),
        ));
    }
    let opts = MergeOptions {
        strict: args.strict,
        checkpoint_dir: args.checkpoint_dir.as_ref().map(PathBuf::from),
        checkpoint_every: args.checkpoint_every,
        resume: args.resume,
        halt_after_checkpoints: halt.unwrap_or(0),
    };
    let mut registry = pp::obs::Registry::new();
    let report = match pp::profiler::merge::run_merge(&args.inputs, &opts, &mut registry)? {
        MergeOutcome::Halted { report } => {
            // The kill -9 stand-in: no destructors, no flushing — the
            // checkpoint on disk is all a resumed merge gets, exactly
            // like a real power cut.
            eprintln!(
                "merge halted by fault injection after {} checkpoints; aborting",
                report.checkpoints
            );
            std::process::abort();
        }
        MergeOutcome::Complete { bytes, report } => {
            write_atomic(Path::new(out), &bytes).map_err(|e| PpError::io(out.to_string(), e))?;
            let r = ProfileRef::for_bytes(out.to_string(), &bytes);
            print_report(&report, &r);
            report
        }
    };
    if args.metrics {
        println!("{}", registry.snapshot());
    }
    let quarantined = report.quarantined_count();
    if quarantined > 0 {
        pp::obs::warn!(
            "fleet profile is PARTIAL: {quarantined} shard(s) quarantined \
             (rerun with --strict to fail fast instead)"
        );
    }
    Ok(())
}

fn print_report(report: &pp::profiler::MergeReport, out: &ProfileRef) {
    println!("== pp merge: {} shards ==", report.shards.len());
    for shard in &report.shards {
        match &shard.status {
            ShardStatus::Merged => println!("  {:<40} merged", shard.path),
            ShardStatus::Quarantined(e) => {
                println!("  {:<40} QUARANTINED [{}]: {e}", shard.path, e.kind());
            }
            // Unreachable on a Complete outcome; printed for honesty if
            // the report shape ever changes.
            ShardStatus::Pending => println!("  {:<40} pending", shard.path),
        }
    }
    println!(
        "summary: {} folded, {} quarantined, {} duplicate path(s) dropped, \
         {} adopted from checkpoint, {} checkpoint write(s)",
        report.merged_count(),
        report.quarantined_count(),
        report.dedup_dropped,
        report.resumed,
        report.checkpoints,
    );
    println!(
        "wrote {} ({} bytes, fingerprint {:#010x})",
        out.file, out.len, out.crc
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inject_accepts_only_halt() {
        assert_eq!(parse_inject("halt@2").unwrap(), 2);
        for bad in ["halt@0", "halt@x", "panic@1", "halt", ""] {
            assert!(parse_inject(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn missing_out_is_a_usage_error() {
        let args = MergeArgs {
            inputs: vec!["whatever.cct".to_string()],
            out: None,
            strict: false,
            checkpoint_dir: None,
            resume: false,
            checkpoint_every: 8,
            inject: None,
            metrics: false,
        };
        assert!(matches!(run_merge_cmd(&args), Err(PpError::Usage(_))));
    }

    #[test]
    fn halt_without_checkpoint_dir_is_refused() {
        let args = MergeArgs {
            inputs: vec!["whatever.cct".to_string()],
            out: Some("out.cct".to_string()),
            strict: false,
            checkpoint_dir: None,
            resume: false,
            checkpoint_every: 8,
            inject: Some("halt@1".to_string()),
            metrics: false,
        };
        assert!(matches!(run_merge_cmd(&args), Err(PpError::Usage(_))));
    }
}
