/root/repo/target/release/deps/pp_instrument-24d4bb872b8059b8.d: crates/instrument/src/lib.rs crates/instrument/src/modes.rs crates/instrument/src/rewrite.rs

/root/repo/target/release/deps/libpp_instrument-24d4bb872b8059b8.rlib: crates/instrument/src/lib.rs crates/instrument/src/modes.rs crates/instrument/src/rewrite.rs

/root/repo/target/release/deps/libpp_instrument-24d4bb872b8059b8.rmeta: crates/instrument/src/lib.rs crates/instrument/src/modes.rs crates/instrument/src/rewrite.rs

crates/instrument/src/lib.rs:
crates/instrument/src/modes.rs:
crates/instrument/src/rewrite.rs:
