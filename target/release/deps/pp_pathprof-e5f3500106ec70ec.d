/root/repo/target/release/deps/pp_pathprof-e5f3500106ec70ec.d: crates/pathprof/src/lib.rs crates/pathprof/src/graph.rs crates/pathprof/src/label.rs crates/pathprof/src/place.rs crates/pathprof/src/proc_paths.rs crates/pathprof/src/regen.rs

/root/repo/target/release/deps/libpp_pathprof-e5f3500106ec70ec.rlib: crates/pathprof/src/lib.rs crates/pathprof/src/graph.rs crates/pathprof/src/label.rs crates/pathprof/src/place.rs crates/pathprof/src/proc_paths.rs crates/pathprof/src/regen.rs

/root/repo/target/release/deps/libpp_pathprof-e5f3500106ec70ec.rmeta: crates/pathprof/src/lib.rs crates/pathprof/src/graph.rs crates/pathprof/src/label.rs crates/pathprof/src/place.rs crates/pathprof/src/proc_paths.rs crates/pathprof/src/regen.rs

crates/pathprof/src/lib.rs:
crates/pathprof/src/graph.rs:
crates/pathprof/src/label.rs:
crates/pathprof/src/place.rs:
crates/pathprof/src/proc_paths.rs:
crates/pathprof/src/regen.rs:
