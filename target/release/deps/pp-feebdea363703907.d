/root/repo/target/release/deps/pp-feebdea363703907.d: src/lib.rs

/root/repo/target/release/deps/libpp-feebdea363703907.rlib: src/lib.rs

/root/repo/target/release/deps/libpp-feebdea363703907.rmeta: src/lib.rs

src/lib.rs:
