/root/repo/target/release/deps/pp_workloads-6f62956415afd91f.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/random.rs crates/workloads/src/rng.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs

/root/repo/target/release/deps/libpp_workloads-6f62956415afd91f.rlib: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/random.rs crates/workloads/src/rng.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs

/root/repo/target/release/deps/libpp_workloads-6f62956415afd91f.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/random.rs crates/workloads/src/rng.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/random.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/suite.rs:
