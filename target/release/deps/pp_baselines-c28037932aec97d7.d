/root/repo/target/release/deps/pp_baselines-c28037932aec97d7.d: crates/baselines/src/lib.rs crates/baselines/src/edges.rs crates/baselines/src/gprof.rs crates/baselines/src/hall.rs crates/baselines/src/sampling.rs

/root/repo/target/release/deps/libpp_baselines-c28037932aec97d7.rlib: crates/baselines/src/lib.rs crates/baselines/src/edges.rs crates/baselines/src/gprof.rs crates/baselines/src/hall.rs crates/baselines/src/sampling.rs

/root/repo/target/release/deps/libpp_baselines-c28037932aec97d7.rmeta: crates/baselines/src/lib.rs crates/baselines/src/edges.rs crates/baselines/src/gprof.rs crates/baselines/src/hall.rs crates/baselines/src/sampling.rs

crates/baselines/src/lib.rs:
crates/baselines/src/edges.rs:
crates/baselines/src/gprof.rs:
crates/baselines/src/hall.rs:
crates/baselines/src/sampling.rs:
