/root/repo/target/release/deps/pp_cct-3f28966dfb8db152.d: crates/cct/src/lib.rs crates/cct/src/checksum.rs crates/cct/src/config.rs crates/cct/src/dcg.rs crates/cct/src/dct.rs crates/cct/src/runtime.rs crates/cct/src/serialize.rs crates/cct/src/stats.rs

/root/repo/target/release/deps/libpp_cct-3f28966dfb8db152.rlib: crates/cct/src/lib.rs crates/cct/src/checksum.rs crates/cct/src/config.rs crates/cct/src/dcg.rs crates/cct/src/dct.rs crates/cct/src/runtime.rs crates/cct/src/serialize.rs crates/cct/src/stats.rs

/root/repo/target/release/deps/libpp_cct-3f28966dfb8db152.rmeta: crates/cct/src/lib.rs crates/cct/src/checksum.rs crates/cct/src/config.rs crates/cct/src/dcg.rs crates/cct/src/dct.rs crates/cct/src/runtime.rs crates/cct/src/serialize.rs crates/cct/src/stats.rs

crates/cct/src/lib.rs:
crates/cct/src/checksum.rs:
crates/cct/src/config.rs:
crates/cct/src/dcg.rs:
crates/cct/src/dct.rs:
crates/cct/src/runtime.rs:
crates/cct/src/serialize.rs:
crates/cct/src/stats.rs:
