/root/repo/target/release/deps/pp_usim-ff5af7c1e9f5092c.d: crates/usim/src/lib.rs crates/usim/src/cache.rs crates/usim/src/config.rs crates/usim/src/fault.rs crates/usim/src/layout.rs crates/usim/src/machine.rs crates/usim/src/mem.rs crates/usim/src/metrics.rs crates/usim/src/predict.rs crates/usim/src/sink.rs

/root/repo/target/release/deps/libpp_usim-ff5af7c1e9f5092c.rlib: crates/usim/src/lib.rs crates/usim/src/cache.rs crates/usim/src/config.rs crates/usim/src/fault.rs crates/usim/src/layout.rs crates/usim/src/machine.rs crates/usim/src/mem.rs crates/usim/src/metrics.rs crates/usim/src/predict.rs crates/usim/src/sink.rs

/root/repo/target/release/deps/libpp_usim-ff5af7c1e9f5092c.rmeta: crates/usim/src/lib.rs crates/usim/src/cache.rs crates/usim/src/config.rs crates/usim/src/fault.rs crates/usim/src/layout.rs crates/usim/src/machine.rs crates/usim/src/mem.rs crates/usim/src/metrics.rs crates/usim/src/predict.rs crates/usim/src/sink.rs

crates/usim/src/lib.rs:
crates/usim/src/cache.rs:
crates/usim/src/config.rs:
crates/usim/src/fault.rs:
crates/usim/src/layout.rs:
crates/usim/src/machine.rs:
crates/usim/src/mem.rs:
crates/usim/src/metrics.rs:
crates/usim/src/predict.rs:
crates/usim/src/sink.rs:
