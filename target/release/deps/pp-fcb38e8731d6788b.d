/root/repo/target/release/deps/pp-fcb38e8731d6788b.d: src/main.rs

/root/repo/target/release/deps/pp-fcb38e8731d6788b: src/main.rs

src/main.rs:
