/root/repo/target/release/deps/pp_core-95cee7a1861348ef.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/annotate.rs crates/core/src/error.rs crates/core/src/experiment.rs crates/core/src/profile.rs crates/core/src/profiler.rs crates/core/src/report.rs crates/core/src/sink_impl.rs

/root/repo/target/release/deps/libpp_core-95cee7a1861348ef.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/annotate.rs crates/core/src/error.rs crates/core/src/experiment.rs crates/core/src/profile.rs crates/core/src/profiler.rs crates/core/src/report.rs crates/core/src/sink_impl.rs

/root/repo/target/release/deps/libpp_core-95cee7a1861348ef.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/annotate.rs crates/core/src/error.rs crates/core/src/experiment.rs crates/core/src/profile.rs crates/core/src/profiler.rs crates/core/src/report.rs crates/core/src/sink_impl.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/annotate.rs:
crates/core/src/error.rs:
crates/core/src/experiment.rs:
crates/core/src/profile.rs:
crates/core/src/profiler.rs:
crates/core/src/report.rs:
crates/core/src/sink_impl.rs:
