/root/repo/target/debug/examples/interpreter-66f536fea260e02b.d: examples/interpreter.rs

/root/repo/target/debug/examples/interpreter-66f536fea260e02b: examples/interpreter.rs

examples/interpreter.rs:
