/root/repo/target/debug/examples/figure1-18e850f8b229f4e1.d: examples/figure1.rs

/root/repo/target/debug/examples/figure1-18e850f8b229f4e1: examples/figure1.rs

examples/figure1.rs:
