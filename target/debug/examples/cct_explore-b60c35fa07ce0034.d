/root/repo/target/debug/examples/cct_explore-b60c35fa07ce0034.d: examples/cct_explore.rs Cargo.toml

/root/repo/target/debug/examples/libcct_explore-b60c35fa07ce0034.rmeta: examples/cct_explore.rs Cargo.toml

examples/cct_explore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
