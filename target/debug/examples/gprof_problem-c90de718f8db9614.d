/root/repo/target/debug/examples/gprof_problem-c90de718f8db9614.d: examples/gprof_problem.rs Cargo.toml

/root/repo/target/debug/examples/libgprof_problem-c90de718f8db9614.rmeta: examples/gprof_problem.rs Cargo.toml

examples/gprof_problem.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
