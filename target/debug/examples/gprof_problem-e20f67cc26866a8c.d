/root/repo/target/debug/examples/gprof_problem-e20f67cc26866a8c.d: examples/gprof_problem.rs

/root/repo/target/debug/examples/gprof_problem-e20f67cc26866a8c: examples/gprof_problem.rs

examples/gprof_problem.rs:
