/root/repo/target/debug/examples/figure1-5e03ea07cf513bad.d: examples/figure1.rs Cargo.toml

/root/repo/target/debug/examples/libfigure1-5e03ea07cf513bad.rmeta: examples/figure1.rs Cargo.toml

examples/figure1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
