/root/repo/target/debug/examples/cct_explore-ff5f85e82eb6c3d1.d: examples/cct_explore.rs

/root/repo/target/debug/examples/cct_explore-ff5f85e82eb6c3d1: examples/cct_explore.rs

examples/cct_explore.rs:
