/root/repo/target/debug/examples/interpreter-281cdfa55b042abd.d: examples/interpreter.rs Cargo.toml

/root/repo/target/debug/examples/libinterpreter-281cdfa55b042abd.rmeta: examples/interpreter.rs Cargo.toml

examples/interpreter.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
