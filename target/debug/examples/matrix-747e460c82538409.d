/root/repo/target/debug/examples/matrix-747e460c82538409.d: examples/matrix.rs

/root/repo/target/debug/examples/matrix-747e460c82538409: examples/matrix.rs

examples/matrix.rs:
