/root/repo/target/debug/examples/hot_paths-8297e73071f34ed7.d: examples/hot_paths.rs

/root/repo/target/debug/examples/hot_paths-8297e73071f34ed7: examples/hot_paths.rs

examples/hot_paths.rs:
