/root/repo/target/debug/examples/matrix-bad1ed4098bce4ac.d: examples/matrix.rs Cargo.toml

/root/repo/target/debug/examples/libmatrix-bad1ed4098bce4ac.rmeta: examples/matrix.rs Cargo.toml

examples/matrix.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
