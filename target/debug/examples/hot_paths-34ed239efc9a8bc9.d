/root/repo/target/debug/examples/hot_paths-34ed239efc9a8bc9.d: examples/hot_paths.rs Cargo.toml

/root/repo/target/debug/examples/libhot_paths-34ed239efc9a8bc9.rmeta: examples/hot_paths.rs Cargo.toml

examples/hot_paths.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
