/root/repo/target/debug/examples/quickstart-ea89120d0ee7de93.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-ea89120d0ee7de93: examples/quickstart.rs

examples/quickstart.rs:
