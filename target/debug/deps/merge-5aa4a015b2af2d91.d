/root/repo/target/debug/deps/merge-5aa4a015b2af2d91.d: crates/cct/tests/merge.rs Cargo.toml

/root/repo/target/debug/deps/libmerge-5aa4a015b2af2d91.rmeta: crates/cct/tests/merge.rs Cargo.toml

crates/cct/tests/merge.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
