/root/repo/target/debug/deps/pp_bench-3e38f684e01f18d4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/pp_bench-3e38f684e01f18d4: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
