/root/repo/target/debug/deps/pp_pathprof-01513df6905a8f45.d: crates/pathprof/src/lib.rs crates/pathprof/src/graph.rs crates/pathprof/src/label.rs crates/pathprof/src/place.rs crates/pathprof/src/proc_paths.rs crates/pathprof/src/regen.rs Cargo.toml

/root/repo/target/debug/deps/libpp_pathprof-01513df6905a8f45.rmeta: crates/pathprof/src/lib.rs crates/pathprof/src/graph.rs crates/pathprof/src/label.rs crates/pathprof/src/place.rs crates/pathprof/src/proc_paths.rs crates/pathprof/src/regen.rs Cargo.toml

crates/pathprof/src/lib.rs:
crates/pathprof/src/graph.rs:
crates/pathprof/src/label.rs:
crates/pathprof/src/place.rs:
crates/pathprof/src/proc_paths.rs:
crates/pathprof/src/regen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
