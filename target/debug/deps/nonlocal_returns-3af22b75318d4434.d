/root/repo/target/debug/deps/nonlocal_returns-3af22b75318d4434.d: tests/nonlocal_returns.rs Cargo.toml

/root/repo/target/debug/deps/libnonlocal_returns-3af22b75318d4434.rmeta: tests/nonlocal_returns.rs Cargo.toml

tests/nonlocal_returns.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
