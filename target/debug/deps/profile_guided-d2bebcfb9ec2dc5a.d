/root/repo/target/debug/deps/profile_guided-d2bebcfb9ec2dc5a.d: crates/baselines/tests/profile_guided.rs Cargo.toml

/root/repo/target/debug/deps/libprofile_guided-d2bebcfb9ec2dc5a.rmeta: crates/baselines/tests/profile_guided.rs Cargo.toml

crates/baselines/tests/profile_guided.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
