/root/repo/target/debug/deps/stress-23a4e2031f55c307.d: tests/stress.rs

/root/repo/target/debug/deps/stress-23a4e2031f55c307: tests/stress.rs

tests/stress.rs:
