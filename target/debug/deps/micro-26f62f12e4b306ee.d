/root/repo/target/debug/deps/micro-26f62f12e4b306ee.d: crates/bench/benches/micro.rs

/root/repo/target/debug/deps/micro-26f62f12e4b306ee: crates/bench/benches/micro.rs

crates/bench/benches/micro.rs:
