/root/repo/target/debug/deps/pp_usim-819af43c245d6b66.d: crates/usim/src/lib.rs crates/usim/src/cache.rs crates/usim/src/config.rs crates/usim/src/fault.rs crates/usim/src/layout.rs crates/usim/src/machine.rs crates/usim/src/mem.rs crates/usim/src/metrics.rs crates/usim/src/predict.rs crates/usim/src/sink.rs Cargo.toml

/root/repo/target/debug/deps/libpp_usim-819af43c245d6b66.rmeta: crates/usim/src/lib.rs crates/usim/src/cache.rs crates/usim/src/config.rs crates/usim/src/fault.rs crates/usim/src/layout.rs crates/usim/src/machine.rs crates/usim/src/mem.rs crates/usim/src/metrics.rs crates/usim/src/predict.rs crates/usim/src/sink.rs Cargo.toml

crates/usim/src/lib.rs:
crates/usim/src/cache.rs:
crates/usim/src/config.rs:
crates/usim/src/fault.rs:
crates/usim/src/layout.rs:
crates/usim/src/machine.rs:
crates/usim/src/mem.rs:
crates/usim/src/metrics.rs:
crates/usim/src/predict.rs:
crates/usim/src/sink.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
