/root/repo/target/debug/deps/figures-39ed507f668f7e4d.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/figures-39ed507f668f7e4d: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:
