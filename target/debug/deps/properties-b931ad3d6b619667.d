/root/repo/target/debug/deps/properties-b931ad3d6b619667.d: crates/pathprof/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-b931ad3d6b619667.rmeta: crates/pathprof/tests/properties.rs Cargo.toml

crates/pathprof/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
