/root/repo/target/debug/deps/zz_find_seed-d8512ae7c5dc371e.d: tests/zz_find_seed.rs

/root/repo/target/debug/deps/zz_find_seed-d8512ae7c5dc371e: tests/zz_find_seed.rs

tests/zz_find_seed.rs:
