/root/repo/target/debug/deps/profile_guided-7598aea3e00ca556.d: crates/baselines/tests/profile_guided.rs

/root/repo/target/debug/deps/profile_guided-7598aea3e00ca556: crates/baselines/tests/profile_guided.rs

crates/baselines/tests/profile_guided.rs:
