/root/repo/target/debug/deps/merge-6d273f15058f88e2.d: crates/cct/tests/merge.rs

/root/repo/target/debug/deps/merge-6d273f15058f88e2: crates/cct/tests/merge.rs

crates/cct/tests/merge.rs:
