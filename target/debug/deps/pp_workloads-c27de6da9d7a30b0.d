/root/repo/target/debug/deps/pp_workloads-c27de6da9d7a30b0.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/random.rs crates/workloads/src/rng.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs Cargo.toml

/root/repo/target/debug/deps/libpp_workloads-c27de6da9d7a30b0.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/random.rs crates/workloads/src/rng.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs Cargo.toml

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/random.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/suite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
