/root/repo/target/debug/deps/fuzz_random_programs-abad7e7e4945386c.d: tests/fuzz_random_programs.rs

/root/repo/target/debug/deps/fuzz_random_programs-abad7e7e4945386c: tests/fuzz_random_programs.rs

tests/fuzz_random_programs.rs:
