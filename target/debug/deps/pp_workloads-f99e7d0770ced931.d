/root/repo/target/debug/deps/pp_workloads-f99e7d0770ced931.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/random.rs crates/workloads/src/rng.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libpp_workloads-f99e7d0770ced931.rlib: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/random.rs crates/workloads/src/rng.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/libpp_workloads-f99e7d0770ced931.rmeta: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/random.rs crates/workloads/src/rng.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/random.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/suite.rs:
