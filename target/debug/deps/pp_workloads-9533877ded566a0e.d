/root/repo/target/debug/deps/pp_workloads-9533877ded566a0e.d: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/random.rs crates/workloads/src/rng.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs

/root/repo/target/debug/deps/pp_workloads-9533877ded566a0e: crates/workloads/src/lib.rs crates/workloads/src/gen.rs crates/workloads/src/random.rs crates/workloads/src/rng.rs crates/workloads/src/spec.rs crates/workloads/src/suite.rs

crates/workloads/src/lib.rs:
crates/workloads/src/gen.rs:
crates/workloads/src/random.rs:
crates/workloads/src/rng.rs:
crates/workloads/src/spec.rs:
crates/workloads/src/suite.rs:
