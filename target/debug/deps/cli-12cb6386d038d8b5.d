/root/repo/target/debug/deps/cli-12cb6386d038d8b5.d: tests/cli.rs Cargo.toml

/root/repo/target/debug/deps/libcli-12cb6386d038d8b5.rmeta: tests/cli.rs Cargo.toml

tests/cli.rs:
Cargo.toml:

# env-dep:CARGO_BIN_EXE_pp=placeholder:pp
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
