/root/repo/target/debug/deps/cross_profile_consistency-41d5294c8dabd358.d: tests/cross_profile_consistency.rs Cargo.toml

/root/repo/target/debug/deps/libcross_profile_consistency-41d5294c8dabd358.rmeta: tests/cross_profile_consistency.rs Cargo.toml

tests/cross_profile_consistency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
