/root/repo/target/debug/deps/pp-d4c65974e47188bf.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libpp-d4c65974e47188bf.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
