/root/repo/target/debug/deps/properties-03bc0d1f3baf37c4.d: crates/pathprof/tests/properties.rs

/root/repo/target/debug/deps/properties-03bc0d1f3baf37c4: crates/pathprof/tests/properties.rs

crates/pathprof/tests/properties.rs:
