/root/repo/target/debug/deps/pp_baselines-00a55a6407e16ebb.d: crates/baselines/src/lib.rs crates/baselines/src/edges.rs crates/baselines/src/gprof.rs crates/baselines/src/hall.rs crates/baselines/src/sampling.rs

/root/repo/target/debug/deps/pp_baselines-00a55a6407e16ebb: crates/baselines/src/lib.rs crates/baselines/src/edges.rs crates/baselines/src/gprof.rs crates/baselines/src/hall.rs crates/baselines/src/sampling.rs

crates/baselines/src/lib.rs:
crates/baselines/src/edges.rs:
crates/baselines/src/gprof.rs:
crates/baselines/src/hall.rs:
crates/baselines/src/sampling.rs:
