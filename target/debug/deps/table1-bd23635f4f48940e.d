/root/repo/target/debug/deps/table1-bd23635f4f48940e.d: crates/bench/benches/table1.rs

/root/repo/target/debug/deps/table1-bd23635f4f48940e: crates/bench/benches/table1.rs

crates/bench/benches/table1.rs:
