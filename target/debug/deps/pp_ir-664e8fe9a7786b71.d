/root/repo/target/debug/deps/pp_ir-664e8fe9a7786b71.d: crates/ir/src/lib.rs crates/ir/src/build.rs crates/ir/src/cfg.rs crates/ir/src/display.rs crates/ir/src/dom.rs crates/ir/src/hw.rs crates/ir/src/ids.rs crates/ir/src/instr.rs crates/ir/src/parse.rs crates/ir/src/prof.rs crates/ir/src/program.rs crates/ir/src/verify.rs

/root/repo/target/debug/deps/pp_ir-664e8fe9a7786b71: crates/ir/src/lib.rs crates/ir/src/build.rs crates/ir/src/cfg.rs crates/ir/src/display.rs crates/ir/src/dom.rs crates/ir/src/hw.rs crates/ir/src/ids.rs crates/ir/src/instr.rs crates/ir/src/parse.rs crates/ir/src/prof.rs crates/ir/src/program.rs crates/ir/src/verify.rs

crates/ir/src/lib.rs:
crates/ir/src/build.rs:
crates/ir/src/cfg.rs:
crates/ir/src/display.rs:
crates/ir/src/dom.rs:
crates/ir/src/hw.rs:
crates/ir/src/ids.rs:
crates/ir/src/instr.rs:
crates/ir/src/parse.rs:
crates/ir/src/prof.rs:
crates/ir/src/program.rs:
crates/ir/src/verify.rs:
