/root/repo/target/debug/deps/cross_profile_consistency-e510e84d7d32bce5.d: tests/cross_profile_consistency.rs

/root/repo/target/debug/deps/cross_profile_consistency-e510e84d7d32bce5: tests/cross_profile_consistency.rs

tests/cross_profile_consistency.rs:
