/root/repo/target/debug/deps/pp_core-429198abb18fbf2e.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/annotate.rs crates/core/src/error.rs crates/core/src/experiment.rs crates/core/src/profile.rs crates/core/src/profiler.rs crates/core/src/report.rs crates/core/src/sink_impl.rs Cargo.toml

/root/repo/target/debug/deps/libpp_core-429198abb18fbf2e.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/annotate.rs crates/core/src/error.rs crates/core/src/experiment.rs crates/core/src/profile.rs crates/core/src/profiler.rs crates/core/src/report.rs crates/core/src/sink_impl.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/annotate.rs:
crates/core/src/error.rs:
crates/core/src/experiment.rs:
crates/core/src/profile.rs:
crates/core/src/profiler.rs:
crates/core/src/report.rs:
crates/core/src/sink_impl.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
