/root/repo/target/debug/deps/pp_cct-0fc629743091ad71.d: crates/cct/src/lib.rs crates/cct/src/checksum.rs crates/cct/src/config.rs crates/cct/src/dcg.rs crates/cct/src/dct.rs crates/cct/src/runtime.rs crates/cct/src/serialize.rs crates/cct/src/stats.rs

/root/repo/target/debug/deps/pp_cct-0fc629743091ad71: crates/cct/src/lib.rs crates/cct/src/checksum.rs crates/cct/src/config.rs crates/cct/src/dcg.rs crates/cct/src/dct.rs crates/cct/src/runtime.rs crates/cct/src/serialize.rs crates/cct/src/stats.rs

crates/cct/src/lib.rs:
crates/cct/src/checksum.rs:
crates/cct/src/config.rs:
crates/cct/src/dcg.rs:
crates/cct/src/dct.rs:
crates/cct/src/runtime.rs:
crates/cct/src/serialize.rs:
crates/cct/src/stats.rs:
