/root/repo/target/debug/deps/parse_fuzz-f1f71e50bd37666a.d: crates/ir/tests/parse_fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libparse_fuzz-f1f71e50bd37666a.rmeta: crates/ir/tests/parse_fuzz.rs Cargo.toml

crates/ir/tests/parse_fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
