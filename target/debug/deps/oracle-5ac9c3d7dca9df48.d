/root/repo/target/debug/deps/oracle-5ac9c3d7dca9df48.d: tests/oracle.rs

/root/repo/target/debug/deps/oracle-5ac9c3d7dca9df48: tests/oracle.rs

tests/oracle.rs:
