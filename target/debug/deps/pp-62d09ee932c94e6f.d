/root/repo/target/debug/deps/pp-62d09ee932c94e6f.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libpp-62d09ee932c94e6f.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
