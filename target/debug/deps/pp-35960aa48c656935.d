/root/repo/target/debug/deps/pp-35960aa48c656935.d: src/lib.rs

/root/repo/target/debug/deps/pp-35960aa48c656935: src/lib.rs

src/lib.rs:
