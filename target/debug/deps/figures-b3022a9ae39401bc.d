/root/repo/target/debug/deps/figures-b3022a9ae39401bc.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-b3022a9ae39401bc.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
