/root/repo/target/debug/deps/pp_baselines-5d59590dda045e77.d: crates/baselines/src/lib.rs crates/baselines/src/edges.rs crates/baselines/src/gprof.rs crates/baselines/src/hall.rs crates/baselines/src/sampling.rs Cargo.toml

/root/repo/target/debug/deps/libpp_baselines-5d59590dda045e77.rmeta: crates/baselines/src/lib.rs crates/baselines/src/edges.rs crates/baselines/src/gprof.rs crates/baselines/src/hall.rs crates/baselines/src/sampling.rs Cargo.toml

crates/baselines/src/lib.rs:
crates/baselines/src/edges.rs:
crates/baselines/src/gprof.rs:
crates/baselines/src/hall.rs:
crates/baselines/src/sampling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
