/root/repo/target/debug/deps/table45-d7601435acf2f850.d: crates/bench/benches/table45.rs

/root/repo/target/debug/deps/table45-d7601435acf2f850: crates/bench/benches/table45.rs

crates/bench/benches/table45.rs:
