/root/repo/target/debug/deps/pp_instrument-e8d81945fa1167ec.d: crates/instrument/src/lib.rs crates/instrument/src/modes.rs crates/instrument/src/rewrite.rs

/root/repo/target/debug/deps/pp_instrument-e8d81945fa1167ec: crates/instrument/src/lib.rs crates/instrument/src/modes.rs crates/instrument/src/rewrite.rs

crates/instrument/src/lib.rs:
crates/instrument/src/modes.rs:
crates/instrument/src/rewrite.rs:
