/root/repo/target/debug/deps/pp_cct-80da9ec00516b2b9.d: crates/cct/src/lib.rs crates/cct/src/checksum.rs crates/cct/src/config.rs crates/cct/src/dcg.rs crates/cct/src/dct.rs crates/cct/src/runtime.rs crates/cct/src/serialize.rs crates/cct/src/stats.rs

/root/repo/target/debug/deps/libpp_cct-80da9ec00516b2b9.rlib: crates/cct/src/lib.rs crates/cct/src/checksum.rs crates/cct/src/config.rs crates/cct/src/dcg.rs crates/cct/src/dct.rs crates/cct/src/runtime.rs crates/cct/src/serialize.rs crates/cct/src/stats.rs

/root/repo/target/debug/deps/libpp_cct-80da9ec00516b2b9.rmeta: crates/cct/src/lib.rs crates/cct/src/checksum.rs crates/cct/src/config.rs crates/cct/src/dcg.rs crates/cct/src/dct.rs crates/cct/src/runtime.rs crates/cct/src/serialize.rs crates/cct/src/stats.rs

crates/cct/src/lib.rs:
crates/cct/src/checksum.rs:
crates/cct/src/config.rs:
crates/cct/src/dcg.rs:
crates/cct/src/dct.rs:
crates/cct/src/runtime.rs:
crates/cct/src/serialize.rs:
crates/cct/src/stats.rs:
