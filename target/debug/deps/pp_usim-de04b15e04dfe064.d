/root/repo/target/debug/deps/pp_usim-de04b15e04dfe064.d: crates/usim/src/lib.rs crates/usim/src/cache.rs crates/usim/src/config.rs crates/usim/src/fault.rs crates/usim/src/layout.rs crates/usim/src/machine.rs crates/usim/src/mem.rs crates/usim/src/metrics.rs crates/usim/src/predict.rs crates/usim/src/sink.rs

/root/repo/target/debug/deps/libpp_usim-de04b15e04dfe064.rlib: crates/usim/src/lib.rs crates/usim/src/cache.rs crates/usim/src/config.rs crates/usim/src/fault.rs crates/usim/src/layout.rs crates/usim/src/machine.rs crates/usim/src/mem.rs crates/usim/src/metrics.rs crates/usim/src/predict.rs crates/usim/src/sink.rs

/root/repo/target/debug/deps/libpp_usim-de04b15e04dfe064.rmeta: crates/usim/src/lib.rs crates/usim/src/cache.rs crates/usim/src/config.rs crates/usim/src/fault.rs crates/usim/src/layout.rs crates/usim/src/machine.rs crates/usim/src/mem.rs crates/usim/src/metrics.rs crates/usim/src/predict.rs crates/usim/src/sink.rs

crates/usim/src/lib.rs:
crates/usim/src/cache.rs:
crates/usim/src/config.rs:
crates/usim/src/fault.rs:
crates/usim/src/layout.rs:
crates/usim/src/machine.rs:
crates/usim/src/mem.rs:
crates/usim/src/metrics.rs:
crates/usim/src/predict.rs:
crates/usim/src/sink.rs:
