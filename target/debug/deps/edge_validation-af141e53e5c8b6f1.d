/root/repo/target/debug/deps/edge_validation-af141e53e5c8b6f1.d: crates/baselines/tests/edge_validation.rs

/root/repo/target/debug/deps/edge_validation-af141e53e5c8b6f1: crates/baselines/tests/edge_validation.rs

crates/baselines/tests/edge_validation.rs:
