/root/repo/target/debug/deps/invariants-89466a4333770ee3.d: crates/usim/tests/invariants.rs Cargo.toml

/root/repo/target/debug/deps/libinvariants-89466a4333770ee3.rmeta: crates/usim/tests/invariants.rs Cargo.toml

crates/usim/tests/invariants.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
