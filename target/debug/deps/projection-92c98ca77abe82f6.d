/root/repo/target/debug/deps/projection-92c98ca77abe82f6.d: crates/cct/tests/projection.rs Cargo.toml

/root/repo/target/debug/deps/libprojection-92c98ca77abe82f6.rmeta: crates/cct/tests/projection.rs Cargo.toml

crates/cct/tests/projection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
