/root/repo/target/debug/deps/fuzz_random_programs-049d6baaefd55912.d: tests/fuzz_random_programs.rs Cargo.toml

/root/repo/target/debug/deps/libfuzz_random_programs-049d6baaefd55912.rmeta: tests/fuzz_random_programs.rs Cargo.toml

tests/fuzz_random_programs.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
