/root/repo/target/debug/deps/smoke-95b60697a19b7a8c.d: crates/bench/src/bin/smoke.rs Cargo.toml

/root/repo/target/debug/deps/libsmoke-95b60697a19b7a8c.rmeta: crates/bench/src/bin/smoke.rs Cargo.toml

crates/bench/src/bin/smoke.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
