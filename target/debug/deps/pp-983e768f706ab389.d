/root/repo/target/debug/deps/pp-983e768f706ab389.d: src/main.rs

/root/repo/target/debug/deps/pp-983e768f706ab389: src/main.rs

src/main.rs:
