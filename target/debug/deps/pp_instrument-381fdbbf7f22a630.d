/root/repo/target/debug/deps/pp_instrument-381fdbbf7f22a630.d: crates/instrument/src/lib.rs crates/instrument/src/modes.rs crates/instrument/src/rewrite.rs Cargo.toml

/root/repo/target/debug/deps/libpp_instrument-381fdbbf7f22a630.rmeta: crates/instrument/src/lib.rs crates/instrument/src/modes.rs crates/instrument/src/rewrite.rs Cargo.toml

crates/instrument/src/lib.rs:
crates/instrument/src/modes.rs:
crates/instrument/src/rewrite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
