/root/repo/target/debug/deps/baselines-192f04f04dbb313e.d: crates/bench/benches/baselines.rs

/root/repo/target/debug/deps/baselines-192f04f04dbb313e: crates/bench/benches/baselines.rs

crates/bench/benches/baselines.rs:
