/root/repo/target/debug/deps/semantics_preserved-8d98c89f382b6c04.d: tests/semantics_preserved.rs

/root/repo/target/debug/deps/semantics_preserved-8d98c89f382b6c04: tests/semantics_preserved.rs

tests/semantics_preserved.rs:
