/root/repo/target/debug/deps/edge_validation-3ebfa91b8ca26038.d: crates/baselines/tests/edge_validation.rs Cargo.toml

/root/repo/target/debug/deps/libedge_validation-3ebfa91b8ca26038.rmeta: crates/baselines/tests/edge_validation.rs Cargo.toml

crates/baselines/tests/edge_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
