/root/repo/target/debug/deps/textual_ir-a432a2ea828f1360.d: tests/textual_ir.rs

/root/repo/target/debug/deps/textual_ir-a432a2ea828f1360: tests/textual_ir.rs

tests/textual_ir.rs:
