/root/repo/target/debug/deps/table2-17ab136c71f507ea.d: crates/bench/benches/table2.rs

/root/repo/target/debug/deps/table2-17ab136c71f507ea: crates/bench/benches/table2.rs

crates/bench/benches/table2.rs:
