/root/repo/target/debug/deps/table3-0b03e45b532401e1.d: crates/bench/benches/table3.rs

/root/repo/target/debug/deps/table3-0b03e45b532401e1: crates/bench/benches/table3.rs

crates/bench/benches/table3.rs:
