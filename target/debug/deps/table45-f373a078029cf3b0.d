/root/repo/target/debug/deps/table45-f373a078029cf3b0.d: crates/bench/benches/table45.rs Cargo.toml

/root/repo/target/debug/deps/libtable45-f373a078029cf3b0.rmeta: crates/bench/benches/table45.rs Cargo.toml

crates/bench/benches/table45.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
