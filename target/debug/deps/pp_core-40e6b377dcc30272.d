/root/repo/target/debug/deps/pp_core-40e6b377dcc30272.d: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/annotate.rs crates/core/src/error.rs crates/core/src/experiment.rs crates/core/src/profile.rs crates/core/src/profiler.rs crates/core/src/report.rs crates/core/src/sink_impl.rs

/root/repo/target/debug/deps/libpp_core-40e6b377dcc30272.rlib: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/annotate.rs crates/core/src/error.rs crates/core/src/experiment.rs crates/core/src/profile.rs crates/core/src/profiler.rs crates/core/src/report.rs crates/core/src/sink_impl.rs

/root/repo/target/debug/deps/libpp_core-40e6b377dcc30272.rmeta: crates/core/src/lib.rs crates/core/src/analysis.rs crates/core/src/annotate.rs crates/core/src/error.rs crates/core/src/experiment.rs crates/core/src/profile.rs crates/core/src/profiler.rs crates/core/src/report.rs crates/core/src/sink_impl.rs

crates/core/src/lib.rs:
crates/core/src/analysis.rs:
crates/core/src/annotate.rs:
crates/core/src/error.rs:
crates/core/src/experiment.rs:
crates/core/src/profile.rs:
crates/core/src/profiler.rs:
crates/core/src/report.rs:
crates/core/src/sink_impl.rs:
