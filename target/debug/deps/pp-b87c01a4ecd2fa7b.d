/root/repo/target/debug/deps/pp-b87c01a4ecd2fa7b.d: src/main.rs

/root/repo/target/debug/deps/pp-b87c01a4ecd2fa7b: src/main.rs

src/main.rs:
