/root/repo/target/debug/deps/pp-c8a05a8125dc441b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpp-c8a05a8125dc441b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
