/root/repo/target/debug/deps/projection-11c00bbc0e6cc212.d: crates/cct/tests/projection.rs

/root/repo/target/debug/deps/projection-11c00bbc0e6cc212: crates/cct/tests/projection.rs

crates/cct/tests/projection.rs:
