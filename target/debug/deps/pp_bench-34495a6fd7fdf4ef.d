/root/repo/target/debug/deps/pp_bench-34495a6fd7fdf4ef.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpp_bench-34495a6fd7fdf4ef.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libpp_bench-34495a6fd7fdf4ef.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
