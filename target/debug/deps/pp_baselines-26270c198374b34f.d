/root/repo/target/debug/deps/pp_baselines-26270c198374b34f.d: crates/baselines/src/lib.rs crates/baselines/src/edges.rs crates/baselines/src/gprof.rs crates/baselines/src/hall.rs crates/baselines/src/sampling.rs

/root/repo/target/debug/deps/libpp_baselines-26270c198374b34f.rlib: crates/baselines/src/lib.rs crates/baselines/src/edges.rs crates/baselines/src/gprof.rs crates/baselines/src/hall.rs crates/baselines/src/sampling.rs

/root/repo/target/debug/deps/libpp_baselines-26270c198374b34f.rmeta: crates/baselines/src/lib.rs crates/baselines/src/edges.rs crates/baselines/src/gprof.rs crates/baselines/src/hall.rs crates/baselines/src/sampling.rs

crates/baselines/src/lib.rs:
crates/baselines/src/edges.rs:
crates/baselines/src/gprof.rs:
crates/baselines/src/hall.rs:
crates/baselines/src/sampling.rs:
