/root/repo/target/debug/deps/cli-a79fffd8aa4a4858.d: tests/cli.rs

/root/repo/target/debug/deps/cli-a79fffd8aa4a4858: tests/cli.rs

tests/cli.rs:

# env-dep:CARGO_BIN_EXE_pp=/root/repo/target/debug/pp
