/root/repo/target/debug/deps/smoke-8f7984c39b3bfd22.d: crates/bench/src/bin/smoke.rs

/root/repo/target/debug/deps/smoke-8f7984c39b3bfd22: crates/bench/src/bin/smoke.rs

crates/bench/src/bin/smoke.rs:
