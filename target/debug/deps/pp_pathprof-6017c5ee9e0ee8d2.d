/root/repo/target/debug/deps/pp_pathprof-6017c5ee9e0ee8d2.d: crates/pathprof/src/lib.rs crates/pathprof/src/graph.rs crates/pathprof/src/label.rs crates/pathprof/src/place.rs crates/pathprof/src/proc_paths.rs crates/pathprof/src/regen.rs

/root/repo/target/debug/deps/pp_pathprof-6017c5ee9e0ee8d2: crates/pathprof/src/lib.rs crates/pathprof/src/graph.rs crates/pathprof/src/label.rs crates/pathprof/src/place.rs crates/pathprof/src/proc_paths.rs crates/pathprof/src/regen.rs

crates/pathprof/src/lib.rs:
crates/pathprof/src/graph.rs:
crates/pathprof/src/label.rs:
crates/pathprof/src/place.rs:
crates/pathprof/src/proc_paths.rs:
crates/pathprof/src/regen.rs:
