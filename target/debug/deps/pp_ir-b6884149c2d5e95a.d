/root/repo/target/debug/deps/pp_ir-b6884149c2d5e95a.d: crates/ir/src/lib.rs crates/ir/src/build.rs crates/ir/src/cfg.rs crates/ir/src/display.rs crates/ir/src/dom.rs crates/ir/src/hw.rs crates/ir/src/ids.rs crates/ir/src/instr.rs crates/ir/src/parse.rs crates/ir/src/prof.rs crates/ir/src/program.rs crates/ir/src/verify.rs Cargo.toml

/root/repo/target/debug/deps/libpp_ir-b6884149c2d5e95a.rmeta: crates/ir/src/lib.rs crates/ir/src/build.rs crates/ir/src/cfg.rs crates/ir/src/display.rs crates/ir/src/dom.rs crates/ir/src/hw.rs crates/ir/src/ids.rs crates/ir/src/instr.rs crates/ir/src/parse.rs crates/ir/src/prof.rs crates/ir/src/program.rs crates/ir/src/verify.rs Cargo.toml

crates/ir/src/lib.rs:
crates/ir/src/build.rs:
crates/ir/src/cfg.rs:
crates/ir/src/display.rs:
crates/ir/src/dom.rs:
crates/ir/src/hw.rs:
crates/ir/src/ids.rs:
crates/ir/src/instr.rs:
crates/ir/src/parse.rs:
crates/ir/src/prof.rs:
crates/ir/src/program.rs:
crates/ir/src/verify.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
