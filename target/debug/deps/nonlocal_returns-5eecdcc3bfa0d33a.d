/root/repo/target/debug/deps/nonlocal_returns-5eecdcc3bfa0d33a.d: tests/nonlocal_returns.rs

/root/repo/target/debug/deps/nonlocal_returns-5eecdcc3bfa0d33a: tests/nonlocal_returns.rs

tests/nonlocal_returns.rs:
