/root/repo/target/debug/deps/textual_ir-7f0319dc2cc51820.d: tests/textual_ir.rs Cargo.toml

/root/repo/target/debug/deps/libtextual_ir-7f0319dc2cc51820.rmeta: tests/textual_ir.rs Cargo.toml

tests/textual_ir.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
