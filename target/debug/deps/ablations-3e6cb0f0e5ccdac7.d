/root/repo/target/debug/deps/ablations-3e6cb0f0e5ccdac7.d: crates/bench/benches/ablations.rs

/root/repo/target/debug/deps/ablations-3e6cb0f0e5ccdac7: crates/bench/benches/ablations.rs

crates/bench/benches/ablations.rs:
