/root/repo/target/debug/deps/parse_fuzz-22248a6ff7904df7.d: crates/ir/tests/parse_fuzz.rs

/root/repo/target/debug/deps/parse_fuzz-22248a6ff7904df7: crates/ir/tests/parse_fuzz.rs

crates/ir/tests/parse_fuzz.rs:
