/root/repo/target/debug/deps/pp_pathprof-150bdb686ca7d26d.d: crates/pathprof/src/lib.rs crates/pathprof/src/graph.rs crates/pathprof/src/label.rs crates/pathprof/src/place.rs crates/pathprof/src/proc_paths.rs crates/pathprof/src/regen.rs

/root/repo/target/debug/deps/libpp_pathprof-150bdb686ca7d26d.rlib: crates/pathprof/src/lib.rs crates/pathprof/src/graph.rs crates/pathprof/src/label.rs crates/pathprof/src/place.rs crates/pathprof/src/proc_paths.rs crates/pathprof/src/regen.rs

/root/repo/target/debug/deps/libpp_pathprof-150bdb686ca7d26d.rmeta: crates/pathprof/src/lib.rs crates/pathprof/src/graph.rs crates/pathprof/src/label.rs crates/pathprof/src/place.rs crates/pathprof/src/proc_paths.rs crates/pathprof/src/regen.rs

crates/pathprof/src/lib.rs:
crates/pathprof/src/graph.rs:
crates/pathprof/src/label.rs:
crates/pathprof/src/place.rs:
crates/pathprof/src/proc_paths.rs:
crates/pathprof/src/regen.rs:
