/root/repo/target/debug/deps/pp-42aff5ca5f406e66.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpp-42aff5ca5f406e66.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
