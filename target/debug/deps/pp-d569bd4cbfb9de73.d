/root/repo/target/debug/deps/pp-d569bd4cbfb9de73.d: src/lib.rs

/root/repo/target/debug/deps/libpp-d569bd4cbfb9de73.rlib: src/lib.rs

/root/repo/target/debug/deps/libpp-d569bd4cbfb9de73.rmeta: src/lib.rs

src/lib.rs:
