/root/repo/target/debug/deps/invariants-413c9d90d83f4f2f.d: crates/usim/tests/invariants.rs

/root/repo/target/debug/deps/invariants-413c9d90d83f4f2f: crates/usim/tests/invariants.rs

crates/usim/tests/invariants.rs:
