/root/repo/target/debug/deps/pp_instrument-8de0bd9f5cfe2305.d: crates/instrument/src/lib.rs crates/instrument/src/modes.rs crates/instrument/src/rewrite.rs Cargo.toml

/root/repo/target/debug/deps/libpp_instrument-8de0bd9f5cfe2305.rmeta: crates/instrument/src/lib.rs crates/instrument/src/modes.rs crates/instrument/src/rewrite.rs Cargo.toml

crates/instrument/src/lib.rs:
crates/instrument/src/modes.rs:
crates/instrument/src/rewrite.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
