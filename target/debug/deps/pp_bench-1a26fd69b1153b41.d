/root/repo/target/debug/deps/pp_bench-1a26fd69b1153b41.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libpp_bench-1a26fd69b1153b41.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
