/root/repo/target/debug/deps/pp_pathprof-d45b3acab9dd67f6.d: crates/pathprof/src/lib.rs crates/pathprof/src/graph.rs crates/pathprof/src/label.rs crates/pathprof/src/place.rs crates/pathprof/src/proc_paths.rs crates/pathprof/src/regen.rs Cargo.toml

/root/repo/target/debug/deps/libpp_pathprof-d45b3acab9dd67f6.rmeta: crates/pathprof/src/lib.rs crates/pathprof/src/graph.rs crates/pathprof/src/label.rs crates/pathprof/src/place.rs crates/pathprof/src/proc_paths.rs crates/pathprof/src/regen.rs Cargo.toml

crates/pathprof/src/lib.rs:
crates/pathprof/src/graph.rs:
crates/pathprof/src/label.rs:
crates/pathprof/src/place.rs:
crates/pathprof/src/proc_paths.rs:
crates/pathprof/src/regen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
