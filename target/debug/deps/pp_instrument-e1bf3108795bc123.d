/root/repo/target/debug/deps/pp_instrument-e1bf3108795bc123.d: crates/instrument/src/lib.rs crates/instrument/src/modes.rs crates/instrument/src/rewrite.rs

/root/repo/target/debug/deps/libpp_instrument-e1bf3108795bc123.rlib: crates/instrument/src/lib.rs crates/instrument/src/modes.rs crates/instrument/src/rewrite.rs

/root/repo/target/debug/deps/libpp_instrument-e1bf3108795bc123.rmeta: crates/instrument/src/lib.rs crates/instrument/src/modes.rs crates/instrument/src/rewrite.rs

crates/instrument/src/lib.rs:
crates/instrument/src/modes.rs:
crates/instrument/src/rewrite.rs:
