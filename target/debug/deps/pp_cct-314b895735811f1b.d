/root/repo/target/debug/deps/pp_cct-314b895735811f1b.d: crates/cct/src/lib.rs crates/cct/src/checksum.rs crates/cct/src/config.rs crates/cct/src/dcg.rs crates/cct/src/dct.rs crates/cct/src/runtime.rs crates/cct/src/serialize.rs crates/cct/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/libpp_cct-314b895735811f1b.rmeta: crates/cct/src/lib.rs crates/cct/src/checksum.rs crates/cct/src/config.rs crates/cct/src/dcg.rs crates/cct/src/dct.rs crates/cct/src/runtime.rs crates/cct/src/serialize.rs crates/cct/src/stats.rs Cargo.toml

crates/cct/src/lib.rs:
crates/cct/src/checksum.rs:
crates/cct/src/config.rs:
crates/cct/src/dcg.rs:
crates/cct/src/dct.rs:
crates/cct/src/runtime.rs:
crates/cct/src/serialize.rs:
crates/cct/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
