/root/repo/target/debug/deps/semantics_preserved-a8c3d4b90546a4bf.d: tests/semantics_preserved.rs Cargo.toml

/root/repo/target/debug/deps/libsemantics_preserved-a8c3d4b90546a4bf.rmeta: tests/semantics_preserved.rs Cargo.toml

tests/semantics_preserved.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
