/root/repo/target/debug/deps/fault_injection-43d5866233997573.d: tests/fault_injection.rs

/root/repo/target/debug/deps/fault_injection-43d5866233997573: tests/fault_injection.rs

tests/fault_injection.rs:
