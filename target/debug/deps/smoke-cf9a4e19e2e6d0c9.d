/root/repo/target/debug/deps/smoke-cf9a4e19e2e6d0c9.d: crates/bench/src/bin/smoke.rs

/root/repo/target/debug/deps/smoke-cf9a4e19e2e6d0c9: crates/bench/src/bin/smoke.rs

crates/bench/src/bin/smoke.rs:
