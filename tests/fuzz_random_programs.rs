//! Fuzzing the full stack with random structured programs: every
//! profiling mode must run them to completion, produce a coherent
//! profile, survive text round-trips, and agree across modes.

use pp::ir::HwEvent;
use pp::profiler::{Profiler, RunConfig};
use pp::workloads::{random_program, RandomSpec};

const EVENTS: (HwEvent, HwEvent) = (HwEvent::Insts, HwEvent::DcMiss);

fn spec() -> RandomSpec {
    RandomSpec {
        num_procs: 4,
        max_depth: 3,
        max_stmts: 4,
        max_trip: 4,
    }
}

#[test]
fn all_modes_survive_random_programs() {
    let profiler = Profiler::default();
    for seed in 0..30u64 {
        let prog = random_program(seed, &spec());
        for config in [
            RunConfig::Base,
            RunConfig::EdgeFreq,
            RunConfig::FlowFreq,
            RunConfig::FlowHw { events: EVENTS },
            RunConfig::ContextHw { events: EVENTS },
            RunConfig::ContextFlow,
            RunConfig::CombinedHw { events: EVENTS },
        ] {
            profiler
                .run(&prog, config)
                .unwrap_or_else(|e| panic!("seed {seed} {config}: {e}"));
        }
    }
}

#[test]
fn random_programs_roundtrip_through_text() {
    for seed in 0..30u64 {
        let prog = random_program(seed, &spec());
        let text = prog.to_string();
        let back =
            pp::ir::parse::parse_program(&text).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert_eq!(back, prog, "seed {seed}");
    }
}

#[test]
fn flow_and_context_agree_on_random_programs() {
    use std::collections::BTreeMap;
    let profiler = Profiler::default();
    for seed in 0..12u64 {
        let prog = random_program(seed, &spec());
        let flow_run = profiler.run(&prog, RunConfig::FlowFreq).expect("flow");
        let cf_run = profiler.run(&prog, RunConfig::ContextFlow).expect("cf");
        let flow = flow_run.flow.as_ref().expect("profile");
        let cct = cf_run.cct.as_ref().expect("cct");
        let mut from_flow: BTreeMap<(u32, u64), u64> = BTreeMap::new();
        for (p, s, c) in flow.iter_paths() {
            from_flow.insert((p.0, s), c.freq);
        }
        let mut from_cct: BTreeMap<(u32, u64), u64> = BTreeMap::new();
        for id in cct.record_ids().skip(1) {
            let r = cct.record(id);
            let Some(proc) = r.proc() else { continue };
            for (sum, counts) in r.paths() {
                *from_cct.entry((proc, sum)).or_insert(0) += counts.freq;
            }
        }
        assert_eq!(from_flow, from_cct, "seed {seed}");
    }
}

#[test]
fn base_runs_are_reproducible() {
    let profiler = Profiler::default();
    for seed in [3u64, 17, 23] {
        let prog = random_program(seed, &spec());
        let a = profiler.run(&prog, RunConfig::Base).expect("a");
        let b = profiler.run(&prog, RunConfig::Base).expect("b");
        assert_eq!(a.machine.metrics, b.machine.metrics, "seed {seed}");
    }
}
