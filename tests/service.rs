//! Profile-service suite: admission control, backpressure, quotas,
//! drain, crash recovery — and a soak campaign of a thousand small jobs
//! under sustained fault injection.
//!
//! The core robustness claims under test:
//!
//! * a full queue answers `Overloaded` *immediately* — backpressure is
//!   typed and prompt, never a blocked client;
//! * drain refuses intake, finishes in-flight jobs only, and leaves
//!   queued jobs pending for the next start;
//! * everything persisted is a function of the admitted job sequence
//!   and the seed, so a `kill -9` (here [`Service::halt_abandon`]) plus
//!   restart converges on artifacts byte-identical to an uninterrupted
//!   service.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pp::ir::build::ProgramBuilder;
use pp::ir::instr::Operand;
use pp::ir::{HwEvent, Program};
use pp::obs::events::{EventFilter, Payload, DEFAULT_SUBSCRIBER_CAPACITY};
use pp::profiler::{
    AdmitError, JobState, PpError, Profiler, Service, ServiceConfig, ServiceFaultPlan,
    ServicePhase, SpecResolver,
};

const EVENTS: (HwEvent, HwEvent) = (HwEvent::Insts, HwEvent::DcMiss);

/// A fresh per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pp-service-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Small but structurally interesting: main loops calling leaf, which
/// branches on parity — paths, calls, a loop, and (under the combined
/// pipeline) enough counter reads that the injected-corruption clobber
/// actually lands.
fn job_program(iters: i64) -> Program {
    let mut pb = ProgramBuilder::new();
    let leaf = pb.declare("leaf");
    let mut m = pb.procedure("main");
    let e = m.entry_block();
    let h = m.new_block();
    let body = m.new_block();
    let x = m.new_block();
    let i = m.new_reg();
    let c = m.new_reg();
    m.block(e).mov(i, 0i64).jump(h);
    m.block(h).cmp_lt(c, i, iters).branch(c, body, x);
    m.block(body)
        .call(leaf, vec![Operand::Reg(i)], None)
        .add(i, i, 1i64)
        .jump(h);
    m.block(x).ret();
    let main = m.finish();

    let mut l = pb.procedure_for(leaf);
    let e = l.entry_block();
    let odd = l.new_block();
    let even = l.new_block();
    let x = l.new_block();
    l.reserve_regs(1);
    let p = l.new_reg();
    l.block(e)
        .bin(pp::ir::instr::BinOp::And, p, pp::ir::Reg(0), 1i64)
        .branch(p, odd, even);
    l.block(odd).nop().jump(x);
    l.block(even).nop().nop().jump(x);
    l.block(x).ret();
    l.finish();
    pb.finish(main)
}

/// The test resolver: `tiny` (the soak workhorse), `wide` (a longer
/// loop), and everything else a typed bad-spec refusal.
fn resolver() -> SpecResolver {
    Arc::new(|spec: &str| {
        let config = pp::profiler::RunConfig::CombinedHw { events: EVENTS };
        match spec {
            "tiny" => Ok((job_program(12), config)),
            "wide" => Ok((job_program(400), config)),
            other => Err(format!("unknown spec `{other}`")),
        }
    })
}

fn config() -> ServiceConfig {
    ServiceConfig {
        workers: 4,
        queue_capacity: 64,
        backoff_base_ms: 0,
        backoff_cap_ms: 0,
        seed: 7,
        params: "svc-test".to_string(),
        checkpoint_every: 4,
        ..ServiceConfig::default()
    }
}

fn start(dir: &Path, config: ServiceConfig) -> Service {
    Service::start(config, Profiler::default(), resolver(), dir).expect("service starts")
}

#[test]
fn overloaded_rejection_is_immediate_and_typed() {
    let dir = scratch("overload");
    let service = start(
        &dir,
        ServiceConfig {
            queue_capacity: 4,
            paused: true, // park the workers so the queue fills
            ..config()
        },
    );
    for i in 0..4 {
        service
            .submit("c", &format!("job{i}"), "tiny")
            .expect("fits");
    }
    let t = Instant::now();
    let err = service
        .submit("c", "job4", "tiny")
        .expect_err("queue is full");
    let latency = t.elapsed();
    assert_eq!(err, AdmitError::Overloaded { capacity: 4 });
    assert_eq!(err.kind(), "overloaded");
    assert!(
        latency < Duration::from_millis(250),
        "backpressure must be immediate, took {latency:?}"
    );
    assert_eq!(service.metrics().rejected_overloaded, 1);
    // Back off, let the pool work, resubmit: the queue has space again.
    service.unpause();
    assert!(service.wait_idle(Duration::from_secs(60)), "pool drains");
    service
        .submit("c", "job4", "tiny")
        .expect("admitted after backoff");
    assert!(service.wait_idle(Duration::from_secs(60)));
    let report = service.shutdown().expect("clean shutdown");
    assert_eq!(report.metrics.done, 5);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn per_client_quota_is_enforced_and_released() {
    let dir = scratch("quota");
    let service = start(
        &dir,
        ServiceConfig {
            per_client_quota: 2,
            paused: true,
            ..config()
        },
    );
    service.submit("alice", "a0", "tiny").expect("1st in quota");
    service.submit("alice", "a1", "tiny").expect("2nd in quota");
    let err = service
        .submit("alice", "a2", "tiny")
        .expect_err("over quota");
    assert_eq!(
        err,
        AdmitError::QuotaExceeded {
            client: "alice".to_string(),
            quota: 2
        }
    );
    // The quota is per client, not global.
    service
        .submit("bob", "b0", "tiny")
        .expect("other client fine");
    assert_eq!(service.metrics().rejected_quota, 1);
    // Quota slots free up as jobs finish.
    service.unpause();
    assert!(service.wait_idle(Duration::from_secs(60)));
    service
        .submit("alice", "a2", "tiny")
        .expect("slots released");
    assert!(service.wait_idle(Duration::from_secs(60)));
    service.shutdown().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_specs_are_refused_without_admission() {
    let dir = scratch("badspec");
    let service = start(&dir, config());
    let err = service
        .submit("c", "job", "nonsense")
        .expect_err("bad spec");
    assert!(matches!(err, AdmitError::BadSpec(_)), "{err:?}");
    assert_eq!(service.metrics().rejected_bad_spec, 1);
    assert_eq!(service.metrics().admitted, 0, "nothing was journaled");
    let report = service.shutdown().expect("clean shutdown");
    assert!(report.manifest.jobs.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drain_refuses_intake_finishes_in_flight_and_checkpoints() {
    let dir = scratch("drain");
    let service = start(
        &dir,
        ServiceConfig {
            workers: 2,
            paused: true,
            ..config()
        },
    );
    for i in 0..6 {
        service
            .submit("c", &format!("job{i}"), "tiny")
            .expect("admitted");
    }
    service.drain();
    assert_eq!(service.phase(), ServicePhase::Draining);
    let err = service
        .submit("c", "late", "tiny")
        .expect_err("intake closed");
    assert_eq!(err, AdmitError::Draining);
    assert_eq!(err.to_string(), "service is draining; no new intake");
    // Unparking the workers now must NOT start the queued jobs: drain
    // only lets already-running jobs finish.
    service.unpause();
    let report = service.shutdown().expect("drained shutdown");
    let (pending, done, failed) = report.manifest.counts();
    assert_eq!(done + failed, 0, "nothing was in flight");
    assert_eq!(pending, 6, "queued jobs stay pending across a drain");
    assert!(
        report.metrics.checkpoint_writes >= 1,
        "final checkpoint written"
    );
    assert_eq!(service.phase(), ServicePhase::Stopped);

    // The next service over the same directory re-queues and runs them.
    let service = start(&dir, config());
    assert_eq!(service.metrics().recovered_requeued, 6);
    assert!(service.wait_idle(Duration::from_secs(60)));
    let report = service.shutdown().expect("second shutdown");
    assert!(report.manifest.is_complete());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn soak_thousand_jobs_with_sustained_faults() {
    let dir = scratch("soak");
    let service = start(
        &dir,
        ServiceConfig {
            queue_capacity: 32,
            checkpoint_every: 16,
            quarantine_cap: 8,
            paused: true,
            fault_plan: ServiceFaultPlan {
                panic_every: 97,
                transient_every: 61,
                corrupt_every: 103,
            },
            ..config()
        },
    );
    // The observability plane rides along: one subscriber at default
    // capacity must see the soak's every event with zero drops, and
    // each job's lifecycle in order — the plane's acceptance bar.
    let sub = service.subscribe(EventFilter::default(), DEFAULT_SUBSCRIBER_CAPACITY);
    // Fill the queue beyond capacity while the pool is parked: the
    // overflow rejection is deterministic and typed.
    let mut submitted = 0u64;
    let mut overloaded = 0u64;
    while submitted < 32 {
        service
            .submit("soak", &format!("job{submitted}"), "tiny")
            .expect("fits while parked");
        submitted += 1;
    }
    let t = Instant::now();
    match service.submit("soak", "job-overflow", "tiny") {
        Err(AdmitError::Overloaded { capacity: 32 }) => overloaded += 1,
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert!(
        t.elapsed() < Duration::from_millis(250),
        "admission rejection within the deadline"
    );
    service.unpause();

    // The soak proper: keep the intake saturated until 1000 jobs are
    // admitted, backing off (as a real client would) on each typed
    // Overloaded answer.
    const TOTAL: u64 = 1000;
    while submitted < TOTAL {
        match service.submit("soak", &format!("job{submitted}"), "tiny") {
            Ok(_) => submitted += 1,
            Err(AdmitError::Overloaded { .. }) => {
                overloaded += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
            Err(other) => panic!("soak submit refused unexpectedly: {other:?}"),
        }
    }
    assert!(
        service.wait_idle(Duration::from_secs(300)),
        "the pool must chew through the whole soak"
    );
    let report = service.shutdown().expect("soak shutdown");

    // Every admitted job reached a typed terminal state.
    let views = service.jobs();
    assert_eq!(views.len(), TOTAL as usize);
    for v in &views {
        match v.state {
            JobState::Done => assert!(v.detail.is_empty(), "job {}: {}", v.id, v.detail),
            JobState::Failed => {
                assert!(
                    !v.detail.is_empty(),
                    "job {} failed without a typed detail",
                    v.id
                );
            }
            other => panic!("job {} ended non-terminal: {other:?}", v.id),
        }
    }
    let m = &report.metrics;
    assert_eq!(m.admitted, TOTAL);
    assert_eq!(m.done + m.failed, TOTAL);
    assert!(overloaded > 0 && m.rejected_overloaded == overloaded);
    // The injected faults actually exercised the recovery machinery.
    assert!(m.panics >= TOTAL / 97, "panic injection ran: {}", m.panics);
    assert!(m.retries > 0, "classified retries happened");
    assert!(m.quarantined > 0, "corrupt profiles were quarantined");
    assert!(
        m.quarantine_pruned > 0,
        "the quarantine cap rotated old attempt-sets"
    );
    assert!(m.checkpoint_writes >= TOTAL / 16, "periodic checkpoints");
    // Persisted artifacts validate byte-for-byte against their CRCs.
    let mut artifacts = 0;
    for entry in &report.manifest.jobs {
        for r in entry.flow.iter().chain(entry.cct.iter()) {
            assert!(r.validates(&dir), "{} fails validation", r.file);
            artifacts += 1;
        }
    }
    assert!(artifacts > 0, "done jobs persisted artifacts");

    // The subscriber's view of the soak: everything published was
    // delivered (zero drops at default capacity), bus order is strict,
    // and every job's lifecycle is well-formed —
    // admitted, queued, started, [retrying|quarantined]*, done.
    let frames = sub.drain();
    assert_eq!(service.events().dropped_total(), 0, "no drops");
    assert!(frames.iter().all(|f| f.dropped_since_last == 0));
    assert_eq!(frames.len() as u64, service.events().published());
    let mut lifecycles: std::collections::HashMap<u64, Vec<&'static str>> = Default::default();
    let mut last_seq = 0;
    for f in &frames {
        assert!(f.event.seq > last_seq, "bus seq strictly increases");
        last_seq = f.event.seq;
        assert!(!f.event.replay, "nothing was replayed in a live soak");
        if let Some(job) = f.event.job {
            lifecycles
                .entry(job)
                .or_default()
                .push(f.event.payload.kind());
        }
    }
    assert_eq!(lifecycles.len(), TOTAL as usize, "all jobs streamed events");
    for (job, kinds) in &lifecycles {
        assert_eq!(
            &kinds[..3],
            &["admitted", "queued", "started"],
            "job {job}: {kinds:?}"
        );
        assert_eq!(kinds.last(), Some(&"done"), "job {job}: {kinds:?}");
        for mid in &kinds[3..kinds.len() - 1] {
            assert!(
                matches!(*mid, "retrying" | "quarantined"),
                "job {job}: {kinds:?}"
            );
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Submits the standard recovery campaign: 40 tiny jobs plus a couple
/// of wide ones, under periodic faults.
fn submit_recovery_jobs(service: &Service) {
    for i in 0..40 {
        let spec = if i % 13 == 0 { "wide" } else { "tiny" };
        loop {
            match service.submit("rec", &format!("job{i}"), spec) {
                Ok(_) => break,
                Err(AdmitError::Overloaded { .. }) => {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(other) => panic!("unexpected refusal: {other:?}"),
            }
        }
    }
}

#[test]
fn kill_and_restart_recovers_byte_identical_artifacts() {
    let faults = ServiceFaultPlan {
        panic_every: 7,
        transient_every: 0,
        corrupt_every: 11,
    };
    let cfg = || ServiceConfig {
        workers: 3,
        checkpoint_every: 4,
        fault_plan: faults,
        ..config()
    };

    // The uninterrupted reference run.
    let ref_dir = scratch("rec-ref");
    let service = start(&ref_dir, cfg());
    submit_recovery_jobs(&service);
    assert!(service.wait_idle(Duration::from_secs(120)));
    let reference = service.shutdown().expect("reference shutdown");
    assert!(reference.manifest.is_complete());

    // The same campaign, killed mid-flight (no drain, no final
    // checkpoint, in-flight results abandoned), then recovered.
    let kill_dir = scratch("rec-kill");
    let service = start(&kill_dir, cfg());
    submit_recovery_jobs(&service);
    // Let some jobs finish so the kill lands mid-campaign, with a
    // checkpoint on disk and work still in the queue.
    assert!(
        service
            .wait(5, Duration::from_secs(60))
            .is_some_and(|v| matches!(v.state, JobState::Done | JobState::Failed)),
        "job 5 reaches a terminal state before the kill"
    );
    service.halt_abandon();
    let killed_at = service.counts();
    assert!(
        killed_at.2 + killed_at.3 < 40,
        "the kill left work unfinished: {killed_at:?}"
    );

    // Restart over the same directory: the journal re-queues what the
    // checkpoint cannot vouch for, and the campaign converges.
    let service = start(&kill_dir, cfg());
    let m = service.metrics();
    assert_eq!(
        m.recovered_adopted + m.recovered_requeued,
        40,
        "every journaled job is accounted for"
    );
    assert!(m.recovered_requeued > 0, "the kill really dropped work");
    assert!(service.wait_idle(Duration::from_secs(120)));
    let recovered = service.shutdown().expect("recovered shutdown");
    assert!(recovered.manifest.is_complete());

    // Byte identity: the final manifest and every persisted artifact
    // match the uninterrupted run exactly.
    assert_eq!(
        std::fs::read(ref_dir.join("manifest.ppb")).expect("reference manifest"),
        std::fs::read(kill_dir.join("manifest.ppb")).expect("recovered manifest"),
        "kill -9 + restart must converge on the reference manifest, byte for byte"
    );
    for entry in &recovered.manifest.jobs {
        for r in entry.flow.iter().chain(entry.cct.iter()) {
            assert_eq!(
                std::fs::read(ref_dir.join(&r.file)).expect("reference artifact"),
                std::fs::read(kill_dir.join(&r.file)).expect("recovered artifact"),
                "{} differs",
                r.file
            );
        }
    }
    std::fs::remove_dir_all(&ref_dir).ok();
    std::fs::remove_dir_all(&kill_dir).ok();
}

#[test]
fn torn_journal_tail_is_dropped_and_truncated() {
    let dir = scratch("torn-journal");
    let service = start(&dir, config());
    service.submit("c", "job0", "tiny").expect("admitted");
    service.submit("c", "job1", "tiny").expect("admitted");
    assert!(service.wait_idle(Duration::from_secs(60)));
    service.shutdown().expect("shutdown");

    // Simulate a crash mid-append: a torn, newline-less tail.
    let journal = dir.join("intake.jsonl");
    let mut bytes = std::fs::read(&journal).expect("journal");
    let clean_len = bytes.len();
    bytes.extend_from_slice(b"{\"id\":2,\"client\":\"c\"");
    std::fs::write(&journal, &bytes).expect("tear the journal");

    // Recovery tolerates the tear: the acknowledged jobs are intact,
    // the unacknowledged fragment is gone — also from the file itself.
    let service = start(&dir, config());
    assert_eq!(service.metrics().jobs, 2, "only acknowledged admissions");
    assert_eq!(
        std::fs::metadata(&journal).expect("journal").len(),
        clean_len as u64,
        "the torn tail was truncated away"
    );
    // And the journal still appends cleanly after the repair.
    service
        .submit("c", "job2", "tiny")
        .expect("admitted after repair");
    assert!(service.wait_idle(Duration::from_secs(60)));
    let report = service.shutdown().expect("shutdown");
    assert!(report.manifest.is_complete());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_refuses_a_foreign_checkpoint() {
    let dir = scratch("foreign");
    let service = start(&dir, config());
    service.submit("c", "job0", "tiny").expect("admitted");
    assert!(service.wait_idle(Duration::from_secs(60)));
    service.shutdown().expect("shutdown");

    // A different seed means different retry/backoff behavior — the
    // checkpoint is not this service's to adopt.
    let err = match Service::start(
        ServiceConfig {
            seed: 8,
            ..config()
        },
        Profiler::default(),
        resolver(),
        &dir,
    ) {
        Ok(_) => panic!("seed mismatch must refuse"),
        Err(err) => err,
    };
    assert!(matches!(err, PpError::Usage(_)), "{err:?}");
    assert_eq!(err.exit_code(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn slow_subscriber_drops_are_exactly_accounted() {
    let dir = scratch("slowsub");
    let service = start(&dir, config());
    // A pathologically slow consumer: four slots, never drained until
    // the campaign is over. The daemon must not block on it — it sheds
    // oldest-first and keeps an exact ledger of what was lost.
    let sub = service.subscribe(EventFilter::default(), 4);
    for i in 0..40 {
        service
            .submit("c", &format!("job{i}"), "tiny")
            .expect("admitted");
    }
    assert!(
        service.wait_idle(Duration::from_secs(120)),
        "jobs unaffected"
    );
    let report = service.shutdown().expect("clean shutdown");
    assert_eq!(report.metrics.done, 40, "a slow subscriber costs nothing");

    // The ledger balances: every published event was either delivered
    // or counted as dropped, and the bus-wide total agrees.
    let frames = sub.drain();
    assert_eq!(frames.len(), 4, "only the retained window is delivered");
    let dropped: u64 = frames.iter().map(|f| f.dropped_since_last).sum();
    assert!(dropped > 0, "40 jobs overflow a 4-slot subscriber");
    assert_eq!(frames.len() as u64 + dropped, service.events().published());
    assert_eq!(service.events().dropped_total(), dropped);
    // The loss is surfaced on the first frame after the gap, never
    // silently spread around.
    assert!(frames[0].dropped_since_last > 0);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn restart_replays_terminal_events_for_adopted_jobs() {
    let dir = scratch("replay");
    let service = start(&dir, config());
    for i in 0..8 {
        service
            .submit("c", &format!("job{i}"), "tiny")
            .expect("admitted");
    }
    assert!(service.wait_idle(Duration::from_secs(60)));
    service.shutdown().expect("clean shutdown");

    // The restarted daemon adopts the finished jobs and re-publishes
    // their terminal events (marked replay) before any live traffic,
    // so `pp watch --since 0` reconstructs what the previous
    // incarnation finished.
    let service = start(&dir, config());
    assert_eq!(service.metrics().recovered_adopted, 8);
    let sub = service.subscribe(
        EventFilter {
            since: Some(0),
            kinds: Some(vec!["done".to_string()]),
            ..EventFilter::default()
        },
        DEFAULT_SUBSCRIBER_CAPACITY,
    );
    let frames = sub.drain();
    assert_eq!(frames.len(), 8, "one terminal event per adopted job");
    let mut seen = std::collections::HashSet::new();
    for f in &frames {
        assert!(f.event.replay, "adopted terminals are marked as replay");
        assert_eq!(f.dropped_since_last, 0);
        match &f.event.payload {
            Payload::Done { outcome, .. } => assert_eq!(outcome, "done"),
            other => panic!("filtered to done, got {other:?}"),
        }
        seen.insert(f.event.job.expect("job event"));
    }
    assert_eq!(seen.len(), 8, "every adopted job replayed exactly once");
    service.shutdown().expect("second shutdown");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn timing_histograms_cover_admission_queue_and_execution() {
    let dir = scratch("hists");
    let service = start(&dir, config());
    for i in 0..6 {
        service
            .submit("c", &format!("job{i}"), "tiny")
            .expect("admitted");
    }
    assert!(service.wait_idle(Duration::from_secs(60)));
    let reg = service.registry();
    for name in [
        "service.admit.admitted_us",
        "service.queue_wait_us",
        "service.exec_wall_us",
    ] {
        let h = reg.hist(name).unwrap_or_else(|| panic!("{name} exists"));
        assert_eq!(h.count, 6, "{name} observed every job");
        assert!(h.max >= h.sum / 6, "{name} max/mean sanity");
    }
    assert_eq!(
        reg.counter_value("events.published"),
        service.events().published(),
        "the registry mirrors the bus"
    );
    assert_eq!(reg.counter_value("events.dropped"), 0);
    service.shutdown().expect("clean shutdown");
    std::fs::remove_dir_all(&dir).ok();
}
