//! End-to-end tests of the `pp` command-line tool.

use std::process::Command;

fn pp(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_pp"))
        .args(args)
        .output()
        .expect("binary spawns")
}

#[test]
fn list_names_the_suite() {
    let out = pp(&["list"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    for name in pp::workloads::SUITE_NAMES {
        assert!(text.contains(name), "missing {name}:\n{text}");
    }
}

#[test]
fn run_reports_overhead() {
    let out = pp(&[
        "run",
        "129.compress",
        "--scale",
        "0.1",
        "--config",
        "flow-hw",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Flow and HW"), "{text}");
    assert!(text.contains("x base"), "{text}");
    assert!(text.contains("paths:"), "{text}");
}

#[test]
fn hot_lists_paths_and_procedures() {
    let out = pp(&["hot", "101.tomcatv", "--scale", "0.1"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("hot paths"), "{text}");
    assert!(text.contains("hot procedures"), "{text}");
    assert!(text.contains("kernel_"), "{text}");
}

#[test]
fn cct_writes_a_loadable_profile() {
    let dir = std::env::temp_dir().join(format!("pp-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("profile.cct");
    let out = pp(&[
        "cct",
        "130.li",
        "--scale",
        "0.1",
        "--out",
        file.to_str().expect("utf8 path"),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let bytes = std::fs::read(&file).expect("profile written");
    let cct = pp::cct::read_cct(&mut bytes.as_slice()).expect("profile loads");
    assert!(cct.num_records() > 5);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bench_check_guards_the_trajectory() {
    let dir = std::env::temp_dir().join(format!("pp-bench-check-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");

    // A baseline no real run can regress against: the check passes (an
    // *improvement* is never an error, whatever the tolerance) and the
    // comparison is printed.
    let generous = dir.join("generous.json");
    std::fs::write(
        &generous,
        r#"{"date": "2026-01-01", "scale": 0.05, "repeat": 1,
            "pipeline": "combined (simulate + CCT + path counters)",
            "wall_s": 1000000.0, "speedup": 0.000001, "cases": []}"#,
    )
    .expect("write");
    let out = pp(&[
        "bench",
        "--smoke",
        "--check",
        generous.to_str().expect("utf8"),
        "--tolerance",
        "0",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("check passed"), "{text}");

    // A baseline no real run can meet: wall time regresses beyond any
    // tolerance, so the command exits 1 (usage-error contract).
    let impossible = dir.join("impossible.json");
    std::fs::write(
        &impossible,
        r#"{"date": "2026-01-01", "scale": 0.05, "repeat": 1,
            "pipeline": "combined (simulate + CCT + path counters)",
            "wall_s": 0.000001, "speedup": 1000000.0, "cases": []}"#,
    )
    .expect("write");
    let out = pp(&[
        "bench",
        "--smoke",
        "--check",
        impossible.to_str().expect("utf8"),
    ]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("regressed") || err.contains("check"), "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn decode_prints_a_block_listing() {
    let out = pp(&["decode", "129.compress", "kernel_0", "0", "--scale", "0.1"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("potential paths"), "{text}");
    assert!(text.contains("b0:"), "{text}");
}

#[test]
fn accepts_textual_ir_files() {
    let dir = std::env::temp_dir().join(format!("pp-cli-ir-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("tiny.ir");
    std::fs::write(
        &file,
        "program (entry @0):\n\
         proc main (regs=2, fregs=0, sites=0):\n\
           b0:\n\
             mov r0, 0\n\
             jmp b1\n\
           b1:\n\
             cmplt r1, r0, 100\n\
             br r1 ? b2 : b3\n\
           b2:\n\
             add r0, r0, 1\n\
             jmp b1\n\
           b3:\n\
             ret\n",
    )
    .expect("write ir");
    let out = pp(&["run", file.to_str().expect("utf8"), "--config", "flow"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("paths:"), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_reports_overhead_accounting() {
    let dir = std::env::temp_dir().join(format!("pp-cli-stats-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let stats_path = dir.join("stats.json");
    let trace_path = dir.join("trace.json");
    let out = pp(&[
        "stats",
        "129.compress",
        "--scale",
        "0.05",
        "--out",
        stats_path.to_str().expect("utf8"),
        "--trace-out",
        trace_path.to_str().expect("utf8"),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("per-phase wall time"), "{text}");
    assert!(text.contains("simulate"), "{text}");
    assert!(text.contains("dilation"), "{text}");
    assert!(text.contains("internals metrics"), "{text}");
    assert!(text.contains("counter sim.uops"), "{text}");

    // The stats JSON round-trips through the in-tree parser, and every
    // dilation field is a finite number.
    let json_text = std::fs::read_to_string(&stats_path).expect("stats written");
    let v = pp::obs::json::parse(&json_text).expect("stats JSON parses");
    assert_eq!(
        pp::obs::json::parse(&v.render()).expect("rendered form parses"),
        v,
        "round trip is lossless"
    );
    let wall_dilation = v
        .get("wall")
        .and_then(|w| w.get("dilation"))
        .and_then(pp::obs::Json::as_f64)
        .expect("wall dilation");
    assert!(wall_dilation.is_finite() && wall_dilation > 0.0);
    for (name, d) in v
        .get("dilation")
        .and_then(pp::obs::Json::as_obj)
        .expect("dilation object")
    {
        let d = d.as_f64().unwrap_or(f64::NAN);
        assert!(d.is_finite() && d >= 1.0, "dilation {name} = {d}");
    }
    assert!(
        v.get("metrics")
            .and_then(|m| m.get("sim.uops"))
            .and_then(pp::obs::Json::as_f64)
            .expect("sim.uops metric")
            > 0.0
    );

    // The Chrome trace is valid JSON full of complete events.
    let trace_text = std::fs::read_to_string(&trace_path).expect("trace written");
    let t = pp::obs::json::parse(&trace_text).expect("trace JSON parses");
    let events = t
        .get("traceEvents")
        .and_then(pp::obs::Json::as_arr)
        .expect("traceEvents");
    assert!(!events.is_empty());
    for ev in events {
        assert_eq!(ev.get("ph").and_then(pp::obs::Json::as_str), Some("X"));
        assert!(ev.get("dur").and_then(pp::obs::Json::as_f64).is_some());
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_still_reads_saved_profiles() {
    let dir = std::env::temp_dir().join(format!("pp-cli-statscct-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let file = dir.join("profile.cct");
    let out = pp(&[
        "cct",
        "130.li",
        "--scale",
        "0.05",
        "--out",
        file.to_str().expect("utf8"),
    ]);
    assert!(out.status.success());
    let out = pp(&["stats", file.to_str().expect("utf8")]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("records:"), "{text}");
    assert!(
        !text.contains("dilation"),
        "saved-profile mode runs nothing"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn quiet_silences_diagnostics_but_not_exit_codes() {
    // --max-uops forces an abort: leveled warning on stderr, exit code 2.
    let noisy = pp(&[
        "run",
        "129.compress",
        "--scale",
        "0.05",
        "--max-uops",
        "2000",
    ]);
    assert_eq!(noisy.status.code(), Some(2));
    let err = String::from_utf8_lossy(&noisy.stderr);
    assert!(
        err.contains("pp [warn]") && err.contains("aborted"),
        "{err}"
    );

    let quiet = pp(&[
        "run",
        "129.compress",
        "--scale",
        "0.05",
        "--max-uops",
        "2000",
        "--quiet",
    ]);
    assert_eq!(quiet.status.code(), Some(2), "--quiet keeps the exit code");
    let err = String::from_utf8_lossy(&quiet.stderr);
    assert!(
        !err.contains("pp [warn]"),
        "--quiet must silence the warning: {err}"
    );
    // The one-line error explaining the nonzero exit always prints.
    assert!(err.contains("error:"), "{err}");
}

#[test]
fn bad_target_fails_cleanly() {
    let out = pp(&["run", "999.nonesuch"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("neither a suite benchmark"), "{err}");
}

#[test]
fn bad_event_fails_with_event_list() {
    let out = pp(&["run", "129.compress", "--events", "bogus,dc_miss"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown event"), "{err}");
    assert!(err.contains("cycles"), "{err}");
}

#[test]
fn report_combines_everything() {
    let out = pp(&["report", "130.li", "--scale", "0.1"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("profiling overheads"), "{text}");
    assert!(text.contains("hot paths"), "{text}");
    assert!(text.contains("hot procedures"), "{text}");
    assert!(text.contains("calling context tree"), "{text}");
    assert!(text.contains("section 6.4.3"), "{text}");
}

#[test]
fn batch_runs_an_injected_campaign() {
    let dir = std::env::temp_dir().join(format!("pp-cli-batch-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // 8 jobs, one runaway guest, one permanently panicking worker, one
    // transient fault the retry budget absorbs.
    let names = &pp::workloads::SUITE_NAMES[..8];
    let mut args = vec!["batch"];
    args.extend(names.iter().copied());
    args.extend([
        "--scale",
        "0.02",
        "--jobs",
        "3",
        "--seed",
        "7",
        "--fuel",
        "50000000",
        "--retries",
        "2",
        "--inject",
        "hang@1,panic@2,transient@4",
        "--checkpoint-dir",
    ]);
    let dir_str = dir.to_str().expect("utf8").to_string();
    args.push(&dir_str);
    let out = pp(&args);
    assert!(
        out.status.success(),
        "campaign with contained failures exits 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("batch complete: all 8 jobs finished"),
        "{text}"
    );
    assert!(text.contains("6 done, 2 failed, 0 pending"), "{text}");
    assert!(text.contains("fuel budget"), "hang job detail:\n{text}");
    assert!(text.contains("panicked"), "panic job detail:\n{text}");
    // The transient job recovered on a retry.
    let retried = text
        .lines()
        .find(|l| l.starts_with(names[4]))
        .expect("transient job row");
    assert!(
        retried.contains("done") && retried.contains('2'),
        "retry-then-succeed row: {retried}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batch_halt_resume_round_trip_is_byte_identical() {
    let base = std::env::temp_dir().join(format!("pp-cli-batchrt-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let full = base.join("full");
    let halted = base.join("halted");
    let names: Vec<&str> = pp::workloads::SUITE_NAMES[..8].to_vec();
    let run = |dir: &std::path::Path, extra: &[&str]| {
        let mut args = vec!["batch"];
        args.extend(names.iter().copied());
        args.extend(["--scale", "0.02", "--jobs", "2", "--seed", "11", "--quiet"]);
        args.extend(extra.iter().copied());
        let d = dir.to_str().expect("utf8").to_string();
        let leaked: &'static str = Box::leak(d.into_boxed_str());
        args.push(leaked);
        pp(&args)
    };
    // Uninterrupted reference.
    let out = run(&full, &["--checkpoint-dir"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    // Killed after 3 checkpoints (exit 2), then resumed.
    let out = run(&halted, &["--inject", "halt@3", "--checkpoint-dir"]);
    assert_eq!(out.status.code(), Some(2), "halt leaves work pending");
    let out = run(&halted, &["--resume"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("batch complete: all 8 jobs finished"),
        "{text}"
    );
    assert_eq!(
        std::fs::read(full.join("manifest.ppb")).expect("reference manifest"),
        std::fs::read(halted.join("manifest.ppb")).expect("resumed manifest"),
        "resume converges on the uninterrupted manifest"
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn batch_resume_rejects_garbage() {
    let dir = std::env::temp_dir().join(format!("pp-cli-batchbad-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Resume from a directory with no manifest → I/O error, exit 3.
    std::fs::create_dir_all(&dir).expect("mkdir");
    let d = dir.to_str().expect("utf8");
    let out = pp(&["batch", "--scale", "0.02", "--quiet", "--resume", d]);
    assert_eq!(out.status.code(), Some(3));
    // Bad inject spec → usage error, exit 1.
    let out = pp(&["batch", "--inject", "explode@1"]);
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown kind"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `pp stats` on corrupt, empty, or wrong-magic files: a typed
/// integrity error on stderr and exit code 2 — never a panic, and
/// never a misleading "unknown target" usage error.
#[test]
fn stats_rejects_corrupt_and_opaque_files() {
    let dir = std::env::temp_dir().join(format!("pp-cli-statsbad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");

    let empty = dir.join("empty.cct");
    std::fs::write(&empty, b"").expect("write");
    let wrong = dir.join("wrong.bin");
    std::fs::write(&wrong, b"PPXXX99\n garbage").expect("write");
    let flipped = dir.join("flipped.cct");
    let out = pp(&[
        "cct",
        "129.compress",
        "--scale",
        "0.02",
        "--out",
        flipped.to_str().expect("utf8"),
    ]);
    assert!(out.status.success());
    let mut bytes = std::fs::read(&flipped).expect("profile written");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&flipped, &bytes).expect("rewrite");

    for file in [&empty, &wrong, &flipped] {
        let out = pp(&["stats", file.to_str().expect("utf8")]);
        assert_eq!(
            out.status.code(),
            Some(2),
            "{}: wrong exit code, stderr: {}",
            file.display(),
            String::from_utf8_lossy(&out.stderr)
        );
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("error:"), "{}: {err}", file.display());
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// `pp verify` in all three dispatch modes on clean inputs: exit 0 and
/// a `verify: OK` line.
#[test]
fn verify_passes_clean_artifacts() {
    let dir = std::env::temp_dir().join(format!("pp-cli-verifyok-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let profile = dir.join("clean.cct");
    let out = pp(&[
        "cct",
        "129.compress",
        "--scale",
        "0.02",
        "--out",
        profile.to_str().expect("utf8"),
    ]);
    assert!(out.status.success());

    // Target mode (live run, all invariants) and file mode.
    for target in ["129.compress", profile.to_str().expect("utf8")] {
        let out = pp(&["verify", target, "--scale", "0.02"]);
        assert!(
            out.status.success(),
            "{target}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("verify: OK"), "{target}: {text}");
        assert!(text.contains("0 violations"), "{target}: {text}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The acceptance scenario for the integrity layers, end to end: a
/// hand-corrupted profile, a seeded counter clobber, and a tampered
/// flow profile each produce a distinct typed violation and exit 2.
#[test]
fn verify_detects_seeded_corruption() {
    let dir = std::env::temp_dir().join(format!("pp-cli-verifybad-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");

    // Layer 1a, artifact integrity: a flipped byte in a CCT profile.
    let profile = dir.join("flipped.cct");
    let out = pp(&[
        "cct",
        "130.li",
        "--scale",
        "0.02",
        "--out",
        profile.to_str().expect("utf8"),
    ]);
    assert!(out.status.success());
    let mut bytes = std::fs::read(&profile).expect("profile written");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&profile, &bytes).expect("rewrite");
    let out = pp(&["verify", profile.to_str().expect("utf8")]);
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("violation:"), "{text}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");

    // Layer 1b, flow conservation: inflate one backedge path count in
    // an otherwise valid serialized flow profile.
    let spec = pp::workloads::spec_for("099.go")
        .expect("known")
        .scaled(0.05);
    let program = pp::workloads::build(&spec);
    let run = pp::profiler::Profiler::default()
        .run(&program, pp::profiler::RunConfig::FlowFreq)
        .expect("run")
        .expect_complete();
    let mut flow = run.flow.clone().expect("flow profile");
    let (proc, sum) = flow
        .iter_paths()
        .find_map(|(proc, sum, _)| {
            let paths = pp::pathprof::ProcPaths::analyze(program.procedure(proc)).ok()?;
            match paths.decode_blocks(sum).1 {
                pp::pathprof::PathKind::BackedgeToExit { .. } => Some((proc, sum)),
                pp::pathprof::PathKind::BackedgeToBackedge { from, to } if from != to => {
                    Some((proc, sum))
                }
                _ => None,
            }
        })
        .expect("a loopy workload records backedge paths");
    flow.record(proc, sum, None);
    let tampered = dir.join("tampered.flow");
    let mut bytes = Vec::new();
    flow.write_to(&mut bytes).expect("serialize");
    std::fs::write(&tampered, &bytes).expect("write");
    let out = pp(&[
        "verify",
        tampered.to_str().expect("utf8"),
        "--against",
        "099.go",
        "--scale",
        "0.05",
    ]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("flow conservation"), "{err}");

    // Layer 2, counter wrap: a seeded clobber near u32::MAX must be
    // caught as an unreconciled wrap by the live-run checks.
    let out = pp(&[
        "verify",
        "129.compress",
        "--scale",
        "0.02",
        "--clobber-pics",
        "3",
    ]);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unreconciled counter wrap"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// A corrupted profile inside a checkpoint directory fails the
/// manifest CRC re-check: `pp verify <dir>` exits 2 naming the file.
#[test]
fn verify_flags_corrupted_checkpoint_profile() {
    let dir = std::env::temp_dir().join(format!("pp-cli-verifydir-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let d = dir.to_str().expect("utf8");
    let out = pp(&[
        "batch",
        "129.compress",
        "101.tomcatv",
        "--scale",
        "0.02",
        "--checkpoint-dir",
        d,
        "--quiet",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = pp(&["verify", d]);
    assert!(out.status.success(), "clean checkpoint dir must verify");

    let victim = dir.join("job-000.cct");
    let mut bytes = std::fs::read(&victim).expect("checkpointed profile");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&victim, &bytes).expect("rewrite");
    let out = pp(&["verify", d]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("job-000.cct"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

/// `pp batch --inject corrupt@I` end to end: the poisoned job is
/// verified, quarantined (artifact plus report under `quarantine/`),
/// retried once, and the rest of the campaign completes.
#[test]
fn batch_quarantines_injected_corruption() {
    let dir = std::env::temp_dir().join(format!("pp-cli-batchq-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let d = dir.to_str().expect("utf8");
    let out = pp(&[
        "batch",
        "129.compress",
        "101.tomcatv",
        "102.swim",
        "--scale",
        "0.02",
        "--checkpoint-dir",
        d,
        "--inject",
        "corrupt@1",
        "--quiet",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("2 done, 1 failed"), "{text}");
    assert!(text.contains("2 quarantined"), "{text}");
    assert!(text.contains("integrity:"), "{text}");
    let report = std::fs::read_to_string(dir.join("quarantine/job-001-attempt-1.report.txt"))
        .expect("quarantine report written");
    assert!(report.contains("unreconciled counter wrap"), "{report}");
    assert!(report.contains("exit code 2"), "{report}");
    assert!(
        dir.join("quarantine/job-001-attempt-2.report.txt").exists(),
        "the integrity retry must quarantine its own attempt"
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// `pp submit` against a missing daemon: a typed transport failure
/// (service unavailable, exit 4), not a hang or a panic — on both the
/// Unix and the TCP transport, with or without retries.
#[cfg(unix)]
#[test]
fn submit_without_a_server_exits_4() {
    let out = pp(&["submit", "129.compress", "--socket", "/nonexistent/pp.sock"]);
    assert_eq!(out.status.code(), Some(4));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("transport failure"), "{err}");
    // --retries 0: exactly one connect attempt, immediate typed error.
    let out = pp(&[
        "submit",
        "129.compress",
        "--socket",
        "tcp:127.0.0.1:1", // reserved port: connection refused
        "--retries",
        "0",
        "--timeout",
        "2",
    ]);
    assert_eq!(out.status.code(), Some(4));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("transport failure"), "{err}");
    // `pp status` without a daemon falls back to the on-disk checkpoint
    // view; with no state directory either, that is a corrupt-profile
    // error (exit 3), not a transport one.
    let out = pp(&["status", "--socket", "/nonexistent/pp.sock"]);
    assert_eq!(out.status.code(), Some(3));
    // But a status request that *needs* the daemon (metrics) is exit 4.
    let out = pp(&["status", "--metrics", "--socket", "/nonexistent/pp.sock"]);
    assert_eq!(out.status.code(), Some(4));
}

/// Malformed client verbs are usage errors before any socket I/O.
#[cfg(unix)]
#[test]
fn service_verbs_reject_bad_arguments() {
    // A job id must be numeric.
    let out = pp(&["status", "not-a-number"]);
    assert_eq!(out.status.code(), Some(1));
    // serve: a zero queue capacity is rejected up front.
    let out = pp(&["serve", "--queue-cap", "0"]);
    assert_eq!(out.status.code(), Some(1));
    // And the usage text advertises the service verbs.
    let out = pp(&[]);
    let err = String::from_utf8_lossy(&out.stderr);
    for verb in ["serve:", "submit:", "status:"] {
        assert!(err.contains(verb), "usage must mention `{verb}`: {err}");
    }
    assert!(err.contains("4 service unavailable"), "{err}");
}

/// The full daemon lifecycle over a real Unix socket: serve, submit
/// (including a refused bad spec), status, SIGTERM drain, and a
/// `pp verify`-clean state directory left behind.
#[cfg(unix)]
#[test]
fn serve_round_trip_drains_on_sigterm() {
    use std::time::{Duration, Instant};

    let dir = std::env::temp_dir().join(format!("pp-cli-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    let socket = dir.join("pp.sock");
    let state = dir.join("state");
    let daemon = Command::new(env!("CARGO_BIN_EXE_pp"))
        .args([
            "serve",
            "--socket",
            socket.to_str().expect("utf8"),
            "--checkpoint-dir",
            state.to_str().expect("utf8"),
            "--jobs",
            "2",
            "--scale",
            "0.02",
            "--inject-every",
            "panic=2",
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("daemon spawns");
    // Wait for the socket to appear.
    let t = Instant::now();
    while !socket.exists() {
        assert!(t.elapsed() < Duration::from_secs(10), "daemon never bound");
        std::thread::sleep(Duration::from_millis(20));
    }
    let sock = socket.to_str().expect("utf8");

    let out = pp(&[
        "submit",
        "129.compress",
        "--socket",
        sock,
        "--scale",
        "0.02",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("submitted job 0"));
    // A bad spec is refused with a usage error, and is not admitted.
    let out = pp(&["submit", "999.nonesuch", "--socket", sock]);
    assert_eq!(out.status.code(), Some(1));
    // Job 1 hits the injected panic on its first attempt and recovers.
    let out = pp(&["submit", "129.compress", "--socket", sock, "--wait"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("done"), "{text}");

    let out = pp(&["status", "--socket", sock, "--wait-idle"]);
    assert!(out.status.success());
    let out = pp(&["status", "--socket", sock]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("phase: accepting"), "{text}");
    assert!(text.contains("2 done"), "{text}");
    assert!(text.contains("\"panics\":1"), "{text}");

    // SIGTERM: graceful drain, metrics dump, clean exit.
    let pid = daemon.id().to_string();
    assert!(Command::new("kill")
        .args(["-TERM", &pid])
        .status()
        .expect("kill runs")
        .success());
    let out = daemon.wait_with_output().expect("daemon exits");
    assert!(
        out.status.success(),
        "drain must exit 0: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("serve stopped: 2 done, 0 failed"), "{text}");
    assert!(text.contains("counter service.admitted 2"), "{text}");
    assert!(!socket.exists(), "the socket file is removed on shutdown");

    // The state directory it leaves behind is verifiably intact.
    let out = pp(&["verify", state.to_str().expect("utf8")]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}
