//! Supervised-batch-profiling suite: the campaign harness must survive
//! runaway guests, panicking workers, transient faults, torn checkpoint
//! files, and the supervisor itself dying mid-run — and still produce a
//! deterministic manifest.
//!
//! Everything persisted is a function of the campaign inputs, so the
//! core invariant tested throughout is *byte identity*: same seed and
//! jobs ⇒ the same `manifest.ppb`, regardless of worker count, fault
//! injection that retries eventually absorb, or an
//! interruption-and-resume in between.

use std::path::{Path, PathBuf};
use std::time::Duration;

use pp::ir::build::ProgramBuilder;
use pp::ir::{HwEvent, Program};
use pp::profiler::{
    BatchFaultPlan, BatchManifest, FailureClass, JobExecutor, JobSpec, JobStatus, PpError,
    Profiler, RunConfig, Supervisor,
};
use pp::usim::{CancelToken, GuestLimits, LimitKind};

const EVENTS: (HwEvent, HwEvent) = (HwEvent::Insts, HwEvent::DcMiss);
const CONFIG: RunConfig = RunConfig::CombinedHw { events: EVENTS };

/// A fresh per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pp-supervisor-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A small real campaign: the first `n` suite workloads at a tiny scale.
fn suite_jobs(n: usize) -> Vec<JobSpec> {
    pp::workloads::suite(0.02)
        .into_iter()
        .take(n)
        .map(|w| JobSpec::new(w.name, w.program, CONFIG))
        .collect()
}

/// A well-formed CFG that never terminates (the exit edge is dead at
/// run time) — the "runaway guest" every limit test needs.
fn spin_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let mut f = pb.procedure("main");
    let e = f.entry_block();
    let h = f.new_block();
    let body = f.new_block();
    let x = f.new_block();
    let i = f.new_reg();
    let c = f.new_reg();
    f.block(e).mov(i, 0i64).jump(h);
    f.block(h).cmp_lt(c, i, 1i64).branch(c, body, x);
    f.block(body).nop().jump(h);
    f.block(x).ret();
    let id = f.finish();
    pb.finish(id)
}

fn supervisor(workers: usize) -> Supervisor {
    Supervisor::new(Profiler::default())
        .with_workers(workers)
        .with_seed(99)
        .with_params("test-campaign")
        .with_backoff_ms(0, 0) // keep retry tests fast
}

fn manifest_bytes(dir: &Path) -> Vec<u8> {
    std::fs::read(dir.join("manifest.ppb")).expect("manifest exists")
}

#[test]
fn same_seed_same_manifest_across_worker_counts() {
    let jobs = suite_jobs(6);
    let mut manifests = Vec::new();
    for workers in [1, 2, 4] {
        let dir = scratch(&format!("det-{workers}"));
        let report = supervisor(workers)
            .with_checkpoint_dir(&dir)
            .run(&jobs, false)
            .expect("campaign runs");
        assert!(!report.interrupted);
        assert!(report.manifest.is_complete());
        manifests.push(manifest_bytes(&dir));
        std::fs::remove_dir_all(&dir).ok();
    }
    assert_eq!(
        manifests[0], manifests[1],
        "1 and 2 workers must write identical manifests"
    );
    assert_eq!(
        manifests[1], manifests[2],
        "2 and 4 workers must write identical manifests"
    );
}

#[test]
fn transient_faults_retry_then_succeed() {
    let jobs = suite_jobs(4);
    // Two injected transient failures, retry budget of two: attempt 3
    // succeeds.
    let report = supervisor(2)
        .with_max_retries(2)
        .with_fault_plan(BatchFaultPlan::default().transient_on_job(1, 2))
        .run(&jobs, false)
        .expect("campaign runs");
    let entry = &report.manifest.jobs[1];
    assert_eq!(entry.status, JobStatus::Done);
    assert_eq!(entry.attempts, 3, "two retries then success");
    assert_eq!(report.retries, 2);
    // With the budget exhausted instead, the job lands as failed — and
    // the rest of the campaign is untouched.
    let report = supervisor(2)
        .with_max_retries(1)
        .with_fault_plan(BatchFaultPlan::default().transient_on_job(1, 5))
        .run(&jobs, false)
        .expect("campaign runs");
    assert_eq!(report.manifest.jobs[1].status, JobStatus::Failed);
    for (i, entry) in report.manifest.jobs.iter().enumerate() {
        if i != 1 {
            assert_eq!(entry.status, JobStatus::Done, "job {i} unaffected");
        }
    }
}

#[test]
fn worker_panic_is_isolated_and_typed() {
    let jobs = suite_jobs(5);
    let report = supervisor(2)
        .with_max_retries(1)
        .with_fault_plan(BatchFaultPlan::default().panic_on_job(2, u32::MAX))
        .run(&jobs, false)
        .expect("a panicking worker must not abort the campaign");
    let entry = &report.manifest.jobs[2];
    assert_eq!(entry.status, JobStatus::Failed);
    assert!(
        entry.detail.contains("panicked") && entry.detail.contains("injected worker panic"),
        "typed panic detail, got: {}",
        entry.detail
    );
    assert_eq!(report.panics, 2, "initial attempt + one retry");
    for (i, entry) in report.manifest.jobs.iter().enumerate() {
        if i != 2 {
            assert_eq!(entry.status, JobStatus::Done, "job {i} unaffected");
        }
    }
}

#[test]
fn runaway_guest_burns_fuel_and_reports_partial_result() {
    let mut jobs = suite_jobs(3);
    jobs.push(JobSpec::new("spinner", spin_program(), CONFIG));
    // A budget the real jobs clear comfortably but the spinner cannot.
    let profiler = Profiler::default().with_limits(GuestLimits::none().with_fuel(50_000_000));
    let report = Supervisor::new(profiler)
        .with_workers(2)
        .with_params("fuel-test")
        .run(&jobs, false)
        .expect("campaign survives a runaway guest");
    let entry = &report.manifest.jobs[3];
    assert_eq!(entry.status, JobStatus::Failed);
    assert!(
        entry.detail.contains("fuel budget"),
        "detail: {}",
        entry.detail
    );
    assert!(
        entry.uops >= 50_000_000,
        "partial result preserved: uops = {}",
        entry.uops
    );
    assert!(entry.cycles > 0, "partial cycles preserved");
    assert_eq!(report.limit_stops, 1);
    // Fuel stops are deterministic, so they are not retried.
    assert_eq!(entry.attempts, 1);
}

#[test]
fn deadline_stops_a_runaway_guest() {
    let jobs = vec![JobSpec::new("spinner", spin_program(), CONFIG)];
    let profiler = Profiler::default()
        .with_limits(GuestLimits::none().with_deadline(Duration::from_millis(30)));
    let report = Supervisor::new(profiler)
        .with_max_retries(0) // a deadline miss is transient; don't retry here
        .run(&jobs, false)
        .expect("campaign survives");
    let entry = &report.manifest.jobs[0];
    assert_eq!(entry.status, JobStatus::Failed);
    assert!(
        entry.detail.contains("deadline"),
        "detail: {}",
        entry.detail
    );
}

#[test]
fn halt_and_resume_yields_byte_identical_manifest() {
    let jobs = suite_jobs(8);
    // The uninterrupted reference.
    let full = scratch("resume-full");
    supervisor(3)
        .with_checkpoint_dir(&full)
        .run(&jobs, false)
        .expect("reference campaign");

    // The same campaign killed (no drain, no final manifest) after 3
    // checkpoint writes, then resumed.
    let halted = scratch("resume-halt");
    let report = supervisor(3)
        .with_checkpoint_dir(&halted)
        .with_fault_plan(BatchFaultPlan::default().halt_after_checkpoints(3))
        .run(&jobs, false)
        .expect("halted campaign still returns");
    assert!(report.interrupted);
    let (pending, done, _) = report.manifest.counts();
    assert!(pending > 0, "the halt left work unfinished");
    assert_eq!(done, 3, "exactly the checkpointed completions");

    let report = supervisor(3)
        .with_checkpoint_dir(&halted)
        .run(&jobs, true)
        .expect("resume");
    assert!(report.manifest.is_complete());
    assert_eq!(report.resumed_skips, 3);
    assert_eq!(
        manifest_bytes(&full),
        manifest_bytes(&halted),
        "resume must converge on the uninterrupted manifest, byte for byte"
    );
    // The persisted profiles converge too.
    for entry in &report.manifest.jobs {
        for r in entry.flow.iter().chain(entry.cct.iter()) {
            assert_eq!(
                std::fs::read(full.join(&r.file)).expect("reference profile"),
                std::fs::read(halted.join(&r.file)).expect("resumed profile"),
                "{} differs",
                r.file
            );
        }
    }
    std::fs::remove_dir_all(&full).ok();
    std::fs::remove_dir_all(&halted).ok();
}

#[test]
fn torn_checkpoint_is_detected_and_typed() {
    let jobs = suite_jobs(4);
    let dir = scratch("torn");
    // Tear the second checkpoint write mid-manifest, then halt.
    let report = supervisor(2)
        .with_checkpoint_dir(&dir)
        .with_fault_plan(
            BatchFaultPlan::default()
                .truncate_checkpoint(2, 16)
                .halt_after_checkpoints(2),
        )
        .run(&jobs, false)
        .expect("halted campaign returns");
    assert!(report.interrupted);

    // Resume must refuse the torn manifest with a typed error, not
    // garbage state.
    let err = supervisor(2)
        .with_checkpoint_dir(&dir)
        .run(&jobs, true)
        .expect_err("torn manifest must not resume");
    assert!(
        matches!(err, PpError::Corrupt(_)),
        "expected PpError::Corrupt, got {err:?}"
    );
    assert_eq!(err.exit_code(), 3);

    // A fresh (non-resume) campaign over the same directory repairs it.
    let report = supervisor(2)
        .with_checkpoint_dir(&dir)
        .run(&jobs, false)
        .expect("fresh campaign overwrites the torn state");
    assert!(report.manifest.is_complete());
    assert!(BatchManifest::load(&dir).is_ok(), "manifest readable again");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_refuses_a_different_campaign() {
    let jobs = suite_jobs(3);
    let dir = scratch("mismatch");
    supervisor(2)
        .with_checkpoint_dir(&dir)
        .run(&jobs, false)
        .expect("campaign");
    // Different params tag.
    let err = supervisor(2)
        .with_params("other-campaign")
        .with_checkpoint_dir(&dir)
        .run(&jobs, true)
        .expect_err("params mismatch");
    assert!(matches!(err, PpError::Usage(_)), "got {err:?}");
    // Different job list.
    let err = supervisor(2)
        .with_checkpoint_dir(&dir)
        .run(&suite_jobs(2), true)
        .expect_err("job-list mismatch");
    assert!(matches!(err, PpError::Usage(_)), "got {err:?}");
    // Resume without any checkpoint directory at all.
    let err = supervisor(2)
        .run(&jobs, true)
        .expect_err("resume needs a directory");
    assert!(matches!(err, PpError::Usage(_)), "got {err:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_profile_bytes_force_a_rerun_on_resume() {
    let jobs = suite_jobs(3);
    let dir = scratch("bitrot");
    let report = supervisor(2)
        .with_checkpoint_dir(&dir)
        .run(&jobs, false)
        .expect("campaign");
    assert!(report.manifest.is_complete());

    // Flip a byte in one finished job's profile (the combined pipeline
    // folds the path tables into the CCT, so the CCT file is the one
    // that exists).
    let victim = report.manifest.jobs[1]
        .cct
        .as_ref()
        .expect("combined config writes CCT profiles")
        .file
        .clone();
    let mut bytes = std::fs::read(dir.join(&victim)).expect("profile");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(dir.join(&victim), &bytes).expect("re-write");

    // Resume: the damaged job re-runs (and re-persists good bytes), the
    // other two are skipped.
    let report = supervisor(2)
        .with_checkpoint_dir(&dir)
        .run(&jobs, true)
        .expect("resume");
    assert!(report.manifest.is_complete());
    assert_eq!(report.resumed_skips, 2);
    let healed = report.manifest.jobs[1].cct.as_ref().expect("cct ref");
    assert!(healed.validates(&dir), "profile bytes healed");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupted_profile_is_quarantined_and_retried_once() {
    let jobs = suite_jobs(3);
    let dir = scratch("quarantine");
    // Corruption fires on every attempt: quarantine, one re-run, then a
    // permanent typed failure — the rest of the campaign is untouched.
    let report = supervisor(2)
        .with_checkpoint_dir(&dir)
        .with_fault_plan(BatchFaultPlan::default().corrupt_on_job(1, u32::MAX))
        .run(&jobs, false)
        .expect("campaign survives a corrupt profile");
    let entry = &report.manifest.jobs[1];
    assert_eq!(entry.status, JobStatus::Failed);
    assert!(
        entry.detail.starts_with("integrity:"),
        "typed integrity detail, got: {}",
        entry.detail
    );
    assert!(
        entry.detail.contains("counter wrap"),
        "detail names the unreconciled wrap, got: {}",
        entry.detail
    );
    assert_eq!(entry.attempts, 2, "quarantined jobs retry exactly once");
    assert_eq!(report.quarantined, 2, "both attempts were quarantined");
    for (i, e) in report.manifest.jobs.iter().enumerate() {
        if i != 1 {
            assert_eq!(e.status, JobStatus::Done, "job {i} unaffected");
        }
    }
    // The quarantine directory holds the offending artifacts plus a
    // typed report for each failed attempt; no "good" profile ref was
    // persisted for the job.
    let qdir = dir.join("quarantine");
    for attempt in 1..=2 {
        let text =
            std::fs::read_to_string(qdir.join(format!("job-001-attempt-{attempt}.report.txt")))
                .expect("quarantine report exists");
        assert!(text.contains("unreconciled counter wrap"), "{text}");
        assert!(text.contains("exit code 2"), "{text}");
        assert!(
            qdir.join(format!("job-001-attempt-{attempt}.cct")).exists(),
            "quarantined artifact preserved for inspection"
        );
    }
    assert!(entry.cct.is_none(), "no profile ref for a quarantined job");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn transient_corruption_heals_on_the_integrity_retry() {
    let jobs = suite_jobs(2);
    // Corruption only on the first attempt; the integrity retry is
    // granted even with a zero transient-retry budget.
    let report = supervisor(1)
        .with_max_retries(0)
        .with_fault_plan(BatchFaultPlan::default().corrupt_on_job(0, 1))
        .run(&jobs, false)
        .expect("campaign");
    let entry = &report.manifest.jobs[0];
    assert_eq!(entry.status, JobStatus::Done);
    assert_eq!(entry.attempts, 2, "one quarantine, then a clean re-run");
    assert_eq!(report.quarantined, 1);
}

#[test]
fn quarantine_resume_converges_to_byte_identical_manifest() {
    let jobs = suite_jobs(6);
    let plan = BatchFaultPlan::default().corrupt_on_job(1, u32::MAX);
    // The uninterrupted reference, with the same corruption injected.
    let full = scratch("quar-full");
    supervisor(2)
        .with_checkpoint_dir(&full)
        .with_fault_plan(plan)
        .run(&jobs, false)
        .expect("reference campaign");
    // The same campaign killed after 3 checkpoints, then resumed.
    let halted = scratch("quar-halt");
    let report = supervisor(2)
        .with_checkpoint_dir(&halted)
        .with_fault_plan(plan.halt_after_checkpoints(3))
        .run(&jobs, false)
        .expect("halted campaign returns");
    assert!(report.interrupted);
    let report = supervisor(2)
        .with_checkpoint_dir(&halted)
        .with_fault_plan(plan)
        .run(&jobs, true)
        .expect("resume");
    assert!(report.manifest.is_complete());
    assert_eq!(
        manifest_bytes(&full),
        manifest_bytes(&halted),
        "resume after quarantine must converge on the reference manifest"
    );
    std::fs::remove_dir_all(&full).ok();
    std::fs::remove_dir_all(&halted).ok();
}

#[test]
fn retry_schedule_is_deterministic_across_runs_and_workers() {
    let jobs = suite_jobs(5);
    // A transient double-fault on job 1 and one worker panic on job 3:
    // three classified retries total, racing across workers.
    let plan = BatchFaultPlan::default()
        .transient_on_job(1, 2)
        .panic_on_job(3, 1);
    let mut schedules = Vec::new();
    for workers in [1, 4, 4] {
        let report = supervisor(workers)
            .with_backoff_ms(2, 8)
            .with_fault_plan(plan)
            .run(&jobs, false)
            .expect("campaign runs");
        assert!(report.manifest.is_complete());
        let schedule: Vec<(usize, u32, FailureClass, u64)> = report
            .retry_schedule
            .iter()
            .map(|r| (r.job, r.attempt, r.class, r.delay_ms))
            .collect();
        assert_eq!(schedule.len(), 3, "two transient retries + one panic retry");
        schedules.push(schedule);
    }
    // The *schedule* — which attempt retried, with what class, after
    // what delay — is identical across runs and worker counts, not just
    // the final per-job report.
    assert_eq!(
        schedules[0], schedules[1],
        "1 worker vs 4 workers: same classified-retry schedule"
    );
    assert_eq!(
        schedules[1], schedules[2],
        "repeated concurrent runs: same classified-retry schedule"
    );
    // And each delay matches the executor's closed-form backoff for
    // (seed, job, attempt) — no hidden scheduling state leaks in.
    let executor = JobExecutor::new(Profiler::default())
        .with_backoff_ms(2, 8)
        .with_seed(99);
    for (job, attempt, class, delay_ms) in &schedules[0] {
        assert_eq!(*class, FailureClass::Transient);
        assert_eq!(
            *delay_ms,
            executor.backoff(*job as u64, *attempt).as_millis() as u64,
            "job {job} attempt {attempt}"
        );
    }
}

#[test]
fn quarantine_cap_rotates_oldest_first() {
    let jobs = suite_jobs(3);
    let dir = scratch("quar-cap");
    // Corruption on every attempt quarantines two attempt-sets; a cap
    // of one must evict the older set and keep the newer.
    let report = supervisor(1)
        .with_checkpoint_dir(&dir)
        .with_quarantine_cap(1)
        .with_fault_plan(BatchFaultPlan::default().corrupt_on_job(1, u32::MAX))
        .run(&jobs, false)
        .expect("campaign survives a corrupt profile");
    assert_eq!(report.quarantined, 2);
    assert_eq!(report.quarantine_pruned, 1, "one attempt-set evicted");
    let qdir = dir.join("quarantine");
    assert!(
        !qdir.join("job-001-attempt-1.report.txt").exists()
            && !qdir.join("job-001-attempt-1.cct").exists(),
        "the oldest attempt-set is gone, all of it"
    );
    assert!(
        qdir.join("job-001-attempt-2.report.txt").exists()
            && qdir.join("job-001-attempt-2.cct").exists(),
        "the newest attempt-set survives"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cancellation_drains_and_writes_a_final_manifest() {
    let jobs = suite_jobs(6);
    let dir = scratch("cancel");
    let cancel = CancelToken::new();
    cancel.cancel(); // cancelled before the first pop: nothing runs
    let report = supervisor(2)
        .with_checkpoint_dir(&dir)
        .with_cancel(cancel)
        .run(&jobs, false)
        .expect("cancelled campaign still reports");
    assert!(report.interrupted);
    let (pending, _, _) = report.manifest.counts();
    assert_eq!(pending, 6, "no job started");
    // The final manifest was still written, so a resume finishes the work.
    let report = supervisor(2)
        .with_checkpoint_dir(&dir)
        .run(&jobs, true)
        .expect("resume after cancellation");
    assert!(report.manifest.is_complete());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cancelled_guest_reports_the_cancel_limit() {
    // A cancel token wired into the *guest* limits stops even a spin
    // program mid-flight (the cooperative check in the µop loop).
    let cancel = CancelToken::new();
    cancel.cancel();
    let profiler = Profiler::default().with_limits(GuestLimits::none().with_cancel(cancel));
    let run = profiler
        .run(&spin_program(), RunConfig::FlowFreq)
        .expect("instrumentation fine");
    match run.fault {
        Some(pp::usim::ExecError::LimitExceeded(LimitKind::Cancelled)) => {}
        other => panic!("expected a cancel stop, got {other:?}"),
    }
}
