//! End-to-end tests of the network-hardened serve transport: the verb
//! matrix over Unix and TCP, connection governance (idle/slow-frame
//! cuts on both transports), submit idempotency under mid-stream
//! resets, and a deterministic chaos-proxy soak.

#![cfg(unix)]

use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use pp::obs::json::Json;
use pp::profiler::{BindAddr, ChaosProxy, Client, ClientConfig, FaultPlan, PpError, RetryPolicy};

fn pp(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_pp"))
        .args(args)
        .output()
        .expect("binary spawns")
}

/// A running `pp serve` child plus the addresses it reported.
struct Daemon {
    child: Child,
    stdout: BufReader<std::process::ChildStdout>,
    /// `host:port` of the TCP listener, when `--listen` was given.
    tcp: Option<String>,
    socket: std::path::PathBuf,
    dir: std::path::PathBuf,
}

impl Daemon {
    /// Spawns a daemon over a fresh temp state directory and waits for
    /// its banner to report the bound listeners (so an ephemeral
    /// `--listen :0` port is known before the first client dials).
    fn start(tag: &str, listen: bool, extra: &[&str]) -> Daemon {
        let dir = std::env::temp_dir().join(format!("pp-transport-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("mkdir");
        let socket = dir.join("pp.sock");
        let state = dir.join("state");
        let mut args = vec![
            "serve".to_string(),
            "--socket".to_string(),
            socket.to_str().expect("utf8").to_string(),
            "--checkpoint-dir".to_string(),
            state.to_str().expect("utf8").to_string(),
            "--jobs".to_string(),
            "2".to_string(),
            "--scale".to_string(),
            "0.02".to_string(),
        ];
        if listen {
            args.push("--listen".to_string());
            args.push("127.0.0.1:0".to_string());
        }
        args.extend(extra.iter().map(|s| s.to_string()));
        let mut child = Command::new(env!("CARGO_BIN_EXE_pp"))
            .args(&args)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("daemon spawns");
        let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
        let mut tcp = None;
        let expected = 1 + usize::from(listen);
        let mut seen = 0;
        let t = Instant::now();
        while seen < expected {
            assert!(t.elapsed() < Duration::from_secs(20), "daemon never bound");
            let mut line = String::new();
            assert!(
                stdout.read_line(&mut line).expect("read banner") > 0,
                "daemon exited before binding"
            );
            if let Some(addr) = line.trim().strip_prefix("listening on ") {
                seen += 1;
                if let Some(hostport) = addr.strip_prefix("tcp://") {
                    tcp = Some(hostport.to_string());
                }
            }
        }
        Daemon {
            child,
            stdout,
            tcp,
            socket,
            dir,
        }
    }

    fn unix_addr(&self) -> String {
        self.socket.to_str().expect("utf8").to_string()
    }

    fn tcp_addr(&self) -> String {
        format!("tcp:{}", self.tcp.as_ref().expect("--listen was given"))
    }

    /// SIGTERM, wait for a clean drain, return the remaining stdout.
    fn stop(mut self) -> String {
        let pid = self.child.id().to_string();
        assert!(Command::new("kill")
            .args(["-TERM", &pid])
            .status()
            .expect("kill runs")
            .success());
        let mut rest = String::new();
        self.stdout.read_to_string(&mut rest).expect("drain stdout");
        let status = self.child.wait().expect("daemon exits");
        assert!(status.success(), "drain must exit 0:\n{rest}");
        let _ = std::fs::remove_dir_all(&self.dir);
        rest
    }
}

/// A library client with fast, deterministic retries for tests.
fn client(addr: &str, retries: u32, op_timeout: Duration) -> Client {
    Client::new(
        BindAddr::parse(addr),
        ClientConfig {
            op_timeout,
            tick: Duration::from_millis(20),
            retry: RetryPolicy {
                attempts: retries,
                base_ms: 5,
                cap_ms: 100,
                seed: 7,
            },
        },
    )
}

fn submit_request(spec: &str) -> Json {
    Json::Obj(vec![
        ("op".to_string(), Json::Str("submit".to_string())),
        ("client".to_string(), Json::Str("soak".to_string())),
        ("name".to_string(), Json::Str("129.compress".to_string())),
        ("spec".to_string(), Json::Str(spec.to_string())),
    ])
}

const SPEC: &str = "target=129.compress scale=0.02 config=flow events=insts,dc_miss";

/// The persisted artifact file names of every done job, by id order.
fn artifact_names(addr: &str) -> Vec<String> {
    let mut c = client(addr, 2, Duration::from_secs(10));
    let reply = c
        .request(&Json::Obj(vec![(
            "op".to_string(),
            Json::Str("status".to_string()),
        )]))
        .expect("status");
    let jobs = reply.get("jobs").and_then(Json::as_arr).unwrap_or(&[]);
    let names: Vec<String> = jobs
        .iter()
        .filter(|j| j.get("state").and_then(Json::as_str) == Some("done"))
        .filter_map(|j| {
            j.get("flow")
                .or_else(|| j.get("cct"))
                .and_then(Json::as_str)
                .map(str::to_string)
        })
        .collect();
    assert!(!names.is_empty(), "no artifacts: {}", reply.render());
    names
}

/// Every client verb behaves identically over the Unix socket and the
/// TCP listener: same outputs, same artifacts, same exit codes.
#[test]
fn verb_matrix_is_transport_agnostic() {
    let daemon = Daemon::start("matrix", true, &[]);
    let addrs = [daemon.unix_addr(), daemon.tcp_addr()];
    for (i, addr) in addrs.iter().enumerate() {
        let out = pp(&[
            "submit",
            "129.compress",
            "--socket",
            addr,
            "--scale",
            "0.02",
            "--wait",
        ]);
        assert!(
            out.status.success(),
            "submit over {addr}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains(&format!("submitted job {i}")), "{text}");
        assert!(text.contains("done"), "{text}");
    }
    for addr in &addrs {
        // The full table shows both jobs to both transports.
        let out = pp(&["status", "--socket", addr]);
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("phase: accepting"), "{text}");
        assert!(text.contains("2 done"), "{text}");
        // The metrics surface carries the transport counters.
        let out = pp(&["status", "--metrics", "--socket", addr]);
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("transport.accepted"), "{text}");
        assert!(text.contains("transport.conn_lifetime_us"), "{text}");
        // A single-job query.
        let out = pp(&["status", "0", "--socket", addr]);
        assert!(out.status.success());
        // The event bus replays history to a late subscriber.
        let out = pp(&[
            "watch",
            "--socket",
            addr,
            "--since",
            "0",
            "--json",
            "--deadline",
            "1",
        ]);
        assert!(out.status.success());
        let text = String::from_utf8_lossy(&out.stdout);
        assert!(text.contains("\"event\":\"done\""), "{text}");
    }
    // The same artifact fetched over each transport is byte-identical.
    let artifact = artifact_names(&addrs[0]).remove(0);
    let fetched: Vec<Vec<u8>> = addrs
        .iter()
        .map(|addr| {
            let mut c = client(addr, 2, Duration::from_secs(10));
            let (file, bytes) = c.fetch(Some(&artifact)).expect("fetch");
            assert_eq!(file, artifact);
            bytes
        })
        .collect();
    assert!(!fetched[0].is_empty());
    assert_eq!(fetched[0], fetched[1], "transports must not alter bytes");
    let stopped = daemon.stop();
    assert!(stopped.contains("serve stopped: 2 done"), "{stopped}");
}

/// Reads frames off a raw byte stream until EOF or a deadline.
fn read_all(stream: &mut impl std::io::Read, budget: Duration) -> String {
    let t = Instant::now();
    let mut out = Vec::new();
    let mut buf = [0u8; 4096];
    while t.elapsed() < budget {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&buf[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) => {}
            Err(_) => break,
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Satellite: the governance limits protect the Unix path exactly like
/// the TCP path — an idle peer and a slow-loris half-frame are both cut
/// with a typed frame on either transport.
#[test]
fn idle_and_slow_peers_are_cut_on_both_transports() {
    let daemon = Daemon::start(
        "governance",
        true,
        &["--idle-timeout", "0.2", "--io-timeout", "0.3"],
    );
    let read_timeout = Some(Duration::from_millis(50));
    let budget = Duration::from_secs(5);

    // Idle peers: connect, send nothing.
    let mut unix = std::os::unix::net::UnixStream::connect(&daemon.socket).expect("connect");
    unix.set_read_timeout(read_timeout).unwrap();
    let text = read_all(&mut unix, budget);
    assert!(text.contains("\"error\":\"idle-timeout\""), "unix: {text}");
    let mut tcp =
        std::net::TcpStream::connect(daemon.tcp.as_deref().expect("tcp")).expect("connect");
    tcp.set_read_timeout(read_timeout).unwrap();
    let text = read_all(&mut tcp, budget);
    assert!(text.contains("\"error\":\"idle-timeout\""), "tcp: {text}");

    // Slow-loris: a partial frame, then silence, is cut by the frame
    // deadline rather than holding a connection slot forever.
    let mut unix = std::os::unix::net::UnixStream::connect(&daemon.socket).expect("connect");
    unix.set_read_timeout(read_timeout).unwrap();
    unix.write_all(b"{\"op\":").unwrap();
    let text = read_all(&mut unix, budget);
    assert!(text.contains("\"error\":\"slow-frame\""), "unix: {text}");
    let mut tcp =
        std::net::TcpStream::connect(daemon.tcp.as_deref().expect("tcp")).expect("connect");
    tcp.set_read_timeout(read_timeout).unwrap();
    tcp.write_all(b"{\"op\":").unwrap();
    let text = read_all(&mut tcp, budget);
    assert!(text.contains("\"error\":\"slow-frame\""), "tcp: {text}");

    // Both cut classes are counted.
    let out = pp(&["status", "--metrics", "--socket", &daemon.unix_addr()]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("transport.idle_closed"), "{text}");
    daemon.stop();
}

/// Satellite: a submit whose reply is torn mid-stream is never resent —
/// the job count on the daemon stays exactly one — while a retrying
/// client reconnects fine for idempotent requests on the next
/// connection.
#[test]
fn submits_are_never_duplicated_after_an_ack() {
    let daemon = Daemon::start("idempotent", true, &[]);
    let upstream = BindAddr::parse(&daemon.tcp_addr());
    // Accept order: conn 0 gets its reply torn after 2 bytes, every
    // later connection is clean.
    let plan = FaultPlan::parse("tear:2,ok,ok,ok").expect("plan");
    let proxy = ChaosProxy::start("127.0.0.1:0", upstream, plan, 0).expect("proxy");
    let via_proxy = format!("tcp:{}", proxy.addr());

    // The torn submit: bytes left the socket, so the client must fail
    // typed instead of retrying — even with retry budget available.
    let mut c = client(&via_proxy, 3, Duration::from_secs(5));
    let err = c
        .request_once(&submit_request(SPEC))
        .expect_err("torn reply must fail the submit");
    assert!(
        matches!(err, PpError::Unavailable(_)),
        "typed transport failure, got: {err}"
    );
    assert_eq!(err.exit_code(), 4);

    // The daemon admitted it exactly once; nothing was resent.
    let mut c = client(&via_proxy, 3, Duration::from_secs(30));
    let reply = c
        .request(&Json::Obj(vec![(
            "op".to_string(),
            Json::Str("status".to_string()),
        )]))
        .expect("status over a clean proxy connection");
    let jobs = reply.get("jobs").and_then(Json::as_arr).unwrap_or(&[]);
    assert_eq!(jobs.len(), 1, "exactly one admission: {}", reply.render());

    // A clean submit through the same proxy still works.
    let mut c = client(&via_proxy, 3, Duration::from_secs(5));
    let reply = c.request_once(&submit_request(SPEC)).expect("clean submit");
    assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
    drop(c);
    let mut proxy = proxy;
    proxy.stop();
    daemon.stop();
}

/// The chaos soak: a 12-job campaign through a fault-injecting proxy
/// completes with typed outcomes only — no hangs, no panics — and the
/// artifacts fetched through the faulty path are byte-identical to the
/// ones fetched directly.
#[test]
fn chaos_soak_yields_typed_outcomes_and_identical_artifacts() {
    let daemon = Daemon::start("soak", true, &["--jobs", "4"]);
    let upstream = BindAddr::parse(&daemon.tcp_addr());
    let plan = FaultPlan::parse("ok,delay:10,throttle:128,reset:1,blackhole").expect("plan");
    // seed 1 rotates the plan: conn i gets plan[(i + 1) % 5].
    let proxy = ChaosProxy::start("127.0.0.1:0", upstream.clone(), plan, 1).expect("proxy");
    let via_proxy = format!("tcp:{}", proxy.addr());

    let mut admitted = 0u32;
    let mut typed_failures = 0u32;
    for i in 0..12 {
        // A fresh client per submit: one connection each, so the fault
        // assignment is exactly the accept-order plan.
        let mut c = client(&via_proxy, 2, Duration::from_millis(1500));
        match c.request_once(&submit_request(SPEC)) {
            Ok(reply) => {
                assert_eq!(
                    reply.get("ok").and_then(Json::as_bool),
                    Some(true),
                    "submit {i}: {}",
                    reply.render()
                );
                admitted += 1;
            }
            // Blackholed connections time out typed; nothing panics or
            // hangs past the op deadline.
            Err(e) => {
                assert!(matches!(e, PpError::Unavailable(_)), "submit {i}: {e}");
                typed_failures += 1;
            }
        }
    }
    // Deterministic plan: conns 0..12 rotated by seed 1 hit `blackhole`
    // (slot 4) at i = 3 and i = 8.
    assert_eq!(typed_failures, 2, "exactly the blackholed submits fail");
    assert_eq!(admitted, 10);

    // Let the fleet drain directly (not through the proxy).
    let out = pp(&[
        "status",
        "--socket",
        &daemon.unix_addr(),
        "--wait-idle",
        "--deadline",
        "120",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Artifact byte-identity: direct fetch vs fetch through a degraded
    // (but not lossy) proxy — delay and throttle reorder timing, never
    // bytes. The lossy proxy is done; tear it down first.
    let mut proxy = proxy;
    proxy.stop();
    let degraded = FaultPlan::parse("delay:10,throttle:64").expect("plan");
    let mut slow_proxy = ChaosProxy::start("127.0.0.1:0", upstream, degraded, 0).expect("proxy");
    let via_slow = format!("tcp:{}", slow_proxy.addr());
    let names = artifact_names(&daemon.unix_addr());
    assert!(names.len() >= 2, "{names:?}");
    let mut direct = client(&daemon.tcp_addr(), 2, Duration::from_secs(30));
    let mut throttled = client(&via_slow, 2, Duration::from_secs(30));
    for name in names.iter().take(2) {
        let (_, want) = direct.fetch(Some(name)).expect("direct fetch");
        let (_, got) = throttled.fetch(Some(name)).expect("fetch through chaos");
        assert!(!want.is_empty());
        assert_eq!(want, got, "{name} must survive the proxy bit-exact");
    }
    drop(direct);
    drop(throttled);
    slow_proxy.stop();

    // No leaked connections: the open-connection gauge settles to 0.
    let t = Instant::now();
    loop {
        let out = pp(&["status", "--metrics", "--socket", &daemon.unix_addr()]);
        let text = String::from_utf8_lossy(&out.stdout);
        let open_zero = text
            .lines()
            .any(|l| l.starts_with("transport.open") && l.trim().ends_with(" 0"));
        // The metrics connection itself is one open connection; the
        // gauge is sampled at request time, so accept 1 as well once
        // everything else has drained.
        let settled = text.lines().any(|l| {
            l.starts_with("transport.open")
                && (l.trim().ends_with(" 0") || l.trim().ends_with(" 1"))
        });
        if open_zero || settled {
            assert!(text.contains("transport.accepted"), "{text}");
            break;
        }
        assert!(
            t.elapsed() < Duration::from_secs(10),
            "connections leaked: {text}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    let stopped = daemon.stop();
    assert!(stopped.contains("10 done"), "{stopped}");
}
