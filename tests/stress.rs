//! Large-scale robustness checks, ignored by default (run with
//! `cargo test --release -- --ignored`).

use pp::ir::HwEvent;
use pp::profiler::{Profiler, RunConfig};

#[test]
#[ignore = "multi-minute at debug opt levels; run with --release -- --ignored"]
fn full_suite_at_4x_scale() {
    let profiler = Profiler::default();
    for w in pp::workloads::suite(4.0) {
        for config in [
            RunConfig::Base,
            RunConfig::FlowHw {
                events: (HwEvent::Insts, HwEvent::DcMiss),
            },
            RunConfig::CombinedHw {
                events: (HwEvent::Insts, HwEvent::DcMiss),
            },
        ] {
            let run = profiler
                .run(&w.program, config)
                .unwrap_or_else(|e| panic!("{} {config}: {e}", w.name));
            assert!(run.cycles() > 0);
        }
    }
}

#[test]
#[ignore = "slow fuzz sweep; run with --release -- --ignored"]
fn wide_random_program_sweep() {
    let spec = pp::workloads::RandomSpec {
        num_procs: 6,
        max_depth: 4,
        max_stmts: 5,
        max_trip: 5,
    };
    let profiler = Profiler::default();
    for seed in 0..200u64 {
        let prog = pp::workloads::random_program(seed, &spec);
        profiler
            .run(
                &prog,
                RunConfig::CombinedHw {
                    events: (HwEvent::Cycles, HwEvent::DcMiss),
                },
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    }
}
