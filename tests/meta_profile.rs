//! The checked-in meta-profile stays consistent with the interpreter.
//!
//! `crates/usim/meta/uop_meta.json` is the PGO artifact the dispatch
//! order and fusion patterns were derived from (regenerate with
//! `pp bench --emit-meta crates/usim/meta/uop_meta.json`). These tests
//! re-collect the dynamic micro-op mix at a reduced scale and assert the
//! artifact still *ranks* like the live interpreter — exact counts vary
//! with scale, but if the hot set drifts (a new workload, a decode
//! change), the artifact must be regenerated before the superinstruction
//! table can be trusted.

use std::collections::BTreeMap;

use pp::ir::HwEvent;
use pp::profiler::RunConfig;
use pp::usim::{MachineConfig, MetaProfile};

const CHECKED_IN: &str = include_str!("../crates/usim/meta/uop_meta.json");

/// Parses the flat counter object `Registry::to_json` emits. The format
/// is `{"name":123,...}` with no nesting for counters, which is all the
/// meta artifact contains.
fn parse_counters(json: &str) -> BTreeMap<String, u64> {
    let body = json
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
        .expect("object");
    let mut out = BTreeMap::new();
    for item in body.split(',') {
        let (k, v) = item.split_once(':').expect("key:value");
        let name = k.trim().trim_matches('"').to_string();
        let value: u64 = v.trim().parse().expect("integer counter");
        out.insert(name, value);
    }
    out
}

fn ranked(prefix: &str, counters: &BTreeMap<String, u64>) -> Vec<(String, u64)> {
    let mut v: Vec<(String, u64)> = counters
        .iter()
        .filter(|(k, _)| k.starts_with(prefix))
        .map(|(k, n)| (k[prefix.len()..].to_string(), *n))
        .collect();
    v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    v
}

fn collect_fresh(scale: f64) -> MetaProfile {
    let config = RunConfig::CombinedHw {
        events: (HwEvent::Insts, HwEvent::DcMiss),
    };
    let mode = config.mode().expect("combined pipeline instruments");
    let mut meta = MetaProfile::default();
    for case in pp::bench::cases_at(scale) {
        let options = pp::instrument::InstrumentOptions::new(mode)
            .with_events(HwEvent::Insts, HwEvent::DcMiss);
        let inst = pp::instrument::instrument_program(&case.program, options).expect("instrument");
        let one = MetaProfile::collect(&inst.program, MachineConfig::default()).expect("collect");
        meta.merge(&one);
    }
    meta
}

#[test]
fn checked_in_artifact_matches_a_fresh_collection() {
    let artifact = parse_counters(CHECKED_IN);
    assert_eq!(
        artifact.get("meta.cases").copied(),
        Some(18),
        "artifact built from the full 18-case bench"
    );
    assert_eq!(artifact.get("meta.scale_milli").copied(), Some(1000));

    let fresh = collect_fresh(0.1);
    let fresh_uops: Vec<(String, u64)> = fresh
        .ranked_uops()
        .into_iter()
        .map(|(n, c)| (n.to_string(), c))
        .collect();
    let old_uops = ranked("uop.", &artifact);

    // The dominant micro-ops are scale-stable: the fresh top 3 must all
    // sit inside the artifact's top 6. Wider drift means the dispatch
    // order no longer matches reality and the artifact needs
    // regeneration.
    let old_top: Vec<&str> = old_uops.iter().take(6).map(|(n, _)| n.as_str()).collect();
    for (name, _) in fresh_uops.iter().take(3) {
        assert!(
            old_top.contains(&name.as_str()),
            "hot uop `{name}` missing from artifact top-6 {old_top:?}; \
             regenerate with `pp bench --emit-meta crates/usim/meta/uop_meta.json`"
        );
    }

    // Same agreement for the fusable-pair ranking that picked the
    // superinstruction set.
    let fresh_pairs: Vec<String> = fresh
        .ranked_pairs()
        .into_iter()
        .take(3)
        .map(|((a, b), _)| format!("{a}+{b}"))
        .collect();
    let old_pairs = ranked("pair.", &artifact);
    let old_top: Vec<&str> = old_pairs.iter().take(8).map(|(n, _)| n.as_str()).collect();
    for name in &fresh_pairs {
        assert!(
            old_top.contains(&name.as_str()),
            "hot pair `{name}` missing from artifact top-8 {old_top:?}; \
             regenerate with `pp bench --emit-meta crates/usim/meta/uop_meta.json`"
        );
    }
}

#[test]
fn every_hot_artifact_pair_has_a_superinstruction() {
    // The fusion table was chosen from the artifact's top pairs; assert
    // the top 10 are all still covered by a fused encoding, so a decode
    // regression (a pattern dropped or an encoding gate tightened) is
    // caught even before it shows up as a slowdown.
    let artifact = parse_counters(CHECKED_IN);
    let fused = [
        "fbin+fbin",
        "bini+bini",
        "bini+branch",
        "bini+load",
        "load+bin",
        "fload+fbin",
        "fbin+fload",
        "storer+jump",
        "bin+bini",
        "bin+storer",
        "prof+prof",
        "bini+bin",
        "bini+prof",
        "prof+jump",
        "bin+branch",
        "bin+jump",
        "bini+jump",
    ];
    for (name, _) in ranked("pair.", &artifact).into_iter().take(10) {
        assert!(
            fused.contains(&name.as_str()),
            "artifact hot pair `{name}` has no fused encoding"
        );
    }
}
