//! Instrumentation must not change what the program computes: every
//! profiling mode runs a result-producing program and the stored result
//! must match the uninstrumented run — EEL's fundamental contract.

use pp::instrument::{instrument_program, InstrumentOptions, Mode, PlacementChoice};
use pp::ir::build::ProgramBuilder;
use pp::ir::{Operand, Program, Reg};
use pp::usim::{Machine, MachineConfig, NullSink, RecordingSink};

const RESULT_ADDR: u64 = 0x0BEE_F000;

/// A program with recursion, loops, branches and memory traffic that
/// computes `fib(18)` plus a data checksum and stores it.
fn checksum_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let fib = pb.declare("fib");

    let mut m = pb.procedure("main");
    let e = m.entry_block();
    let h = m.new_block();
    let body = m.new_block();
    let done = m.new_block();
    let i = m.new_reg();
    let c = m.new_reg();
    let a = m.new_reg();
    let v = m.new_reg();
    let acc = m.new_reg();
    let r = m.new_reg();
    m.block(e).mov(i, 0i64).mov(acc, 0i64).jump(h);
    m.block(h).cmp_lt(c, i, 200i64).branch(c, body, done);
    m.block(body)
        .mul(a, i, 8i64)
        .add(a, a, 0x9000i64)
        .store(Operand::Reg(i), a, 0)
        .load(v, a, 0)
        .mul(v, v, 31i64)
        .add(acc, acc, Operand::Reg(v))
        .add(i, i, 1i64)
        .jump(h);
    m.block(done)
        .call(fib, vec![Operand::Imm(18)], Some(r))
        .add(acc, acc, Operand::Reg(r))
        .mov(a, RESULT_ADDR as i64)
        .store(Operand::Reg(acc), a, 0)
        .ret();
    let main = m.finish();

    let mut f = pb.procedure_for(fib);
    let e = f.entry_block();
    let base_case = f.new_block();
    let rec_case = f.new_block();
    f.reserve_regs(1);
    let n = Reg(0);
    let c = f.new_reg();
    let x = f.new_reg();
    let y = f.new_reg();
    let t = f.new_reg();
    f.block(e)
        .bin(pp::ir::instr::BinOp::CmpLt, c, n, 2i64)
        .branch(c, base_case, rec_case);
    f.block(base_case).ret(); // fib(0)=0, fib(1)=1: r0 = n already
    f.block(rec_case)
        .sub(t, n, 1i64)
        .call(fib, vec![Operand::Reg(t)], Some(x))
        .sub(t, n, 2i64)
        .call(fib, vec![Operand::Reg(t)], Some(y))
        .add(Reg(0), x, Operand::Reg(y))
        .ret();
    f.finish();
    pb.finish(main)
}

fn result_of(program: &Program) -> u64 {
    let mut m = Machine::new(program, MachineConfig::default());
    m.run(&mut NullSink).expect("program runs");
    m.memory().read_u64(RESULT_ADDR)
}

#[test]
fn base_program_computes_expected_result() {
    let prog = checksum_program();
    let result = result_of(&prog);
    // fib(18) = 2584; checksum = 31 * sum(0..200).
    let expected = 2584 + 31 * (0..200u64).sum::<u64>();
    assert_eq!(result, expected);
}

#[test]
fn every_mode_preserves_semantics() {
    let prog = checksum_program();
    let expected = result_of(&prog);
    for mode in [
        Mode::FlowFreq,
        Mode::FlowHw,
        Mode::ContextHw,
        Mode::ContextFlow,
        Mode::CombinedHw,
    ] {
        let inst = instrument_program(&prog, InstrumentOptions::new(mode)).expect("instruments");
        let mut machine = Machine::new(&inst.program, MachineConfig::default());
        machine
            .run(&mut RecordingSink::default())
            .unwrap_or_else(|e| panic!("{mode}: {e}"));
        assert_eq!(
            machine.memory().read_u64(RESULT_ADDR),
            expected,
            "{mode} changed the program's result"
        );
    }
}

#[test]
fn both_placements_preserve_semantics() {
    let prog = checksum_program();
    let expected = result_of(&prog);
    for placement in [PlacementChoice::Simple, PlacementChoice::Optimized] {
        let inst = instrument_program(
            &prog,
            InstrumentOptions::new(Mode::FlowFreq).with_placement(placement),
        )
        .expect("instruments");
        let mut machine = Machine::new(&inst.program, MachineConfig::default());
        machine.run(&mut RecordingSink::default()).expect("runs");
        assert_eq!(machine.memory().read_u64(RESULT_ADDR), expected);
    }
}

#[test]
fn workload_suite_semantics_preserved_under_instrumentation() {
    // Every suite program must run to completion in every mode (the
    // result here is completion without ExecError, since workloads do not
    // publish a single result word).
    for w in pp::workloads::suite(0.03) {
        for mode in [Mode::FlowHw, Mode::ContextFlow] {
            let inst = instrument_program(&w.program, InstrumentOptions::new(mode))
                .unwrap_or_else(|e| panic!("{} {mode}: {e}", w.name));
            pp::ir::verify::verify_program(&inst.program)
                .unwrap_or_else(|e| panic!("{} {mode}: {e}", w.name));
        }
    }
}
