//! Fault-injection suite: the paper's profiling sequences must survive
//! hostile run-time conditions.
//!
//! Three fault families are injected through [`pp::usim::FaultPlan`]:
//! counters preloaded near `u32::MAX` (forcing mid-path wraps that the
//! Section 3.1 wraparound arithmetic must absorb), counter reads skewed
//! as if reordered against nearby micro-ops, and execution aborted at a
//! chosen micro-op count. A fourth family — machine-level failures
//! (stack overflow, instruction limit) — exercises the same recovery
//! path. Every fault must yield a typed error with a usable partial
//! profile; none may panic.

use pp::ir::{HwEvent, Operand, Program};
use pp::profiler::{Profiler, RunConfig, RunReport};
use pp::usim::{ExecError, FaultPlan, MachineConfig, ReadSkew};

const EVENTS: (HwEvent, HwEvent) = (HwEvent::Insts, HwEvent::DcMiss);

const ALL_CONFIGS: [RunConfig; 7] = [
    RunConfig::Base,
    RunConfig::EdgeFreq,
    RunConfig::FlowFreq,
    RunConfig::FlowHw { events: EVENTS },
    RunConfig::ContextHw { events: EVENTS },
    RunConfig::ContextFlow,
    RunConfig::CombinedHw { events: EVENTS },
];

/// main loops calling leaf, which branches on parity — small but has
/// paths, calls and a loop, so every mode collects something.
fn sample_program() -> Program {
    use pp::ir::build::ProgramBuilder;
    let mut pb = ProgramBuilder::new();
    let leaf = pb.declare("leaf");
    let mut m = pb.procedure("main");
    let e = m.entry_block();
    let h = m.new_block();
    let body = m.new_block();
    let x = m.new_block();
    let i = m.new_reg();
    let c = m.new_reg();
    m.block(e).mov(i, 0i64).jump(h);
    m.block(h).cmp_lt(c, i, 40i64).branch(c, body, x);
    m.block(body)
        .call(leaf, vec![Operand::Reg(i)], None)
        .add(i, i, 1i64)
        .jump(h);
    m.block(x).ret();
    let main = m.finish();

    let mut l = pb.procedure_for(leaf);
    let e = l.entry_block();
    let odd = l.new_block();
    let even = l.new_block();
    let x = l.new_block();
    l.reserve_regs(1);
    let p = l.new_reg();
    l.block(e)
        .bin(pp::ir::instr::BinOp::And, p, pp::ir::Reg(0), 1i64)
        .branch(p, odd, even);
    l.block(odd).nop().jump(x);
    l.block(even).nop().nop().jump(x);
    l.block(x).ret();
    l.finish();
    pb.finish(main)
}

/// rec(n) calls rec(n-1) down to zero — deep enough to overflow a small
/// stack.
fn recursive_program(depth: i64) -> Program {
    use pp::ir::build::ProgramBuilder;
    let mut pb = ProgramBuilder::new();
    let rec = pb.declare("rec");
    let mut m = pb.procedure("main");
    let e = m.entry_block();
    m.block(e).call(rec, vec![Operand::Imm(depth)], None).ret();
    let main = m.finish();

    let mut r = pb.procedure_for(rec);
    let e = r.entry_block();
    let deeper = r.new_block();
    let done = r.new_block();
    r.reserve_regs(1);
    let n = pp::ir::Reg(0);
    let c = r.new_reg();
    let m1 = r.new_reg();
    r.block(e).cmp_lt(c, n, 1i64).branch(c, done, deeper);
    r.block(deeper)
        .sub(m1, n, 1i64)
        .call(rec, vec![Operand::Reg(m1)], None)
        .ret();
    r.block(done).ret();
    r.finish();
    pb.finish(main)
}

/// A canonical, order-independent fingerprint of a flow profile.
fn flow_fingerprint(r: &RunReport) -> Vec<(u32, u64, u64, u64, u64)> {
    let flow = r.flow.as_ref().expect("flow profile");
    let mut v: Vec<_> = flow
        .iter_paths()
        .map(|(p, s, c)| (p.0, s, c.freq, c.m0, c.m1))
        .collect();
    v.sort_unstable();
    v
}

/// A canonical fingerprint of a CCT: (name, calls, metrics) per record.
fn cct_fingerprint(r: &RunReport) -> Vec<(String, u64, Vec<u64>)> {
    let cct = r.cct.as_ref().expect("cct");
    let mut v: Vec<_> = cct
        .record_ids()
        .map(|id| {
            let rec = cct.record(id);
            (
                rec.proc_name().to_string(),
                rec.calls(),
                rec.metrics().to_vec(),
            )
        })
        .collect();
    v.sort();
    v
}

/// PIC preloads that force a wrap within the first few hundred events.
const PRELOADS: [(u32, u32); 3] = [
    (u32::MAX, u32::MAX),
    (u32::MAX - 7, u32::MAX - 1),
    (u32::MAX - 199, u32::MAX - 50),
];

/// Preloading the counters near `u32::MAX` forces them to wrap in the
/// middle of profiled paths. The instrumentation's read/zero sequences
/// (PicZero at path starts, raw reads at path ends) must make the
/// preload invisible: the flow profile is bit-identical to a clean run.
#[test]
fn flow_hw_profile_survives_counter_wrap() {
    let prog = sample_program();
    let clean = Profiler::default()
        .run(&prog, RunConfig::FlowHw { events: EVENTS })
        .expect("instrument")
        .expect_complete();
    for (p0, p1) in PRELOADS {
        let faulted = Profiler::default()
            .with_fault_plan(FaultPlan::default().preload_pics(p0, p1))
            .run(&prog, RunConfig::FlowHw { events: EVENTS })
            .expect("instrument")
            .expect_complete();
        assert_eq!(
            flow_fingerprint(&clean),
            flow_fingerprint(&faulted),
            "wrap with preload ({p0:#x}, {p1:#x}) leaked into the flow profile"
        );
    }
}

/// Same property for the CCT modes: metric deltas are computed with
/// wraparound subtraction against the activation snapshot (Section 3.1),
/// so a counter that wraps between enter and exit still yields the exact
/// delta.
#[test]
fn context_modes_survive_counter_wrap() {
    let prog = sample_program();
    for config in [
        RunConfig::ContextHw { events: EVENTS },
        RunConfig::CombinedHw { events: EVENTS },
    ] {
        let clean = Profiler::default()
            .run(&prog, config)
            .expect("instrument")
            .expect_complete();
        for (p0, p1) in PRELOADS {
            let faulted = Profiler::default()
                .with_fault_plan(FaultPlan::default().preload_pics(p0, p1))
                .run(&prog, config)
                .expect("instrument")
                .expect_complete();
            assert_eq!(
                cct_fingerprint(&clean),
                cct_fingerprint(&faulted),
                "{config}: wrap with preload ({p0:#x}, {p1:#x}) leaked into the CCT"
            );
        }
    }
}

/// The wrap property holds on a real workload, not just a toy.
#[test]
fn counter_wrap_is_invisible_on_suite_workload() {
    let w = pp::workloads::suite(0.02).swap_remove(3);
    let config = RunConfig::FlowHw { events: EVENTS };
    let clean = Profiler::default()
        .run(&w.program, config)
        .expect("instrument")
        .expect_complete();
    let faulted = Profiler::default()
        .with_fault_plan(FaultPlan::default().preload_pics(u32::MAX - 3, u32::MAX - 11))
        .run(&w.program, config)
        .expect("instrument")
        .expect_complete();
    assert_eq!(flow_fingerprint(&clean), flow_fingerprint(&faulted));
}

/// An abort mid-run returns a typed `FaultAbort` plus the profile
/// collected so far — non-empty and no larger than the full profile.
#[test]
fn abort_yields_partial_profile() {
    let prog = sample_program();
    let config = RunConfig::FlowFreq;
    let full = Profiler::default()
        .run(&prog, config)
        .expect("instrument")
        .expect_complete();
    let full_events: u64 = flow_fingerprint(&full).iter().map(|t| t.2).sum();

    let outcome = Profiler::default()
        .with_fault_plan(FaultPlan::default().abort_at_uops(full.machine.uops / 2))
        .run(&prog, config)
        .expect("instrument");
    assert!(matches!(outcome.fault, Some(ExecError::FaultAbort { .. })));
    assert!(!outcome.is_complete());
    let partial_events: u64 = flow_fingerprint(&outcome).iter().map(|t| t.2).sum();
    assert!(partial_events > 0, "partial profile must not be empty");
    assert!(partial_events < full_events, "partial is a prefix of full");
    assert!(outcome.machine.uops <= full.machine.uops);
}

/// Stack overflow: typed error, and the CCT built up to the overflow
/// survives (with the stack cut mid-chain).
#[test]
fn stack_overflow_yields_partial_cct() {
    let prog = recursive_program(10_000);
    let config = MachineConfig {
        max_call_depth: 64,
        ..MachineConfig::default()
    };
    let outcome = Profiler::new(config)
        .run(&prog, RunConfig::ContextHw { events: EVENTS })
        .expect("instrument");
    assert!(matches!(
        outcome.fault,
        Some(ExecError::StackOverflow { .. })
    ));
    let cct = outcome.cct.as_ref().expect("cct");
    assert!(cct.num_records() > 1, "partial CCT has records");
}

/// Instruction limit: same recovery path as an injected abort.
#[test]
fn instruction_limit_yields_partial_profile() {
    let prog = sample_program();
    let full = Profiler::default()
        .run(&prog, RunConfig::FlowFreq)
        .expect("instrument")
        .expect_complete();
    let config = MachineConfig {
        max_instructions: full.machine.uops / 2,
        ..MachineConfig::default()
    };
    let outcome = Profiler::new(config)
        .run(&prog, RunConfig::FlowFreq)
        .expect("instrument");
    assert!(matches!(outcome.fault, Some(ExecError::InstructionLimit)));
    let events: u64 = flow_fingerprint(&outcome).iter().map(|t| t.2).sum();
    assert!(events > 0, "partial profile must not be empty");
}

/// Counter-read skew perturbs metric values but can never change path
/// *frequencies* (frequencies come from table increments, not counter
/// reads), and the perturbation of each metric is bounded by the skew
/// magnitude per read.
#[test]
fn read_skew_perturbs_metrics_not_frequencies() {
    let prog = sample_program();
    let config = RunConfig::FlowHw { events: EVENTS };
    let clean = Profiler::default()
        .run(&prog, config)
        .expect("instrument")
        .expect_complete();
    let skew = ReadSkew {
        period: 3,
        magnitude: 5,
    };
    let skewed = Profiler::default()
        .with_fault_plan(FaultPlan::default().skew_reads(skew))
        .run(&prog, config)
        .expect("instrument")
        .expect_complete();

    let a = flow_fingerprint(&clean);
    let b = flow_fingerprint(&skewed);
    assert_eq!(a.len(), b.len());
    for (ca, cb) in a.iter().zip(&b) {
        assert_eq!((ca.0, ca.1, ca.2), (cb.0, cb.1, cb.2), "frequencies moved");
        // Each recorded value comes from one read; a skewed read runs at
        // most `magnitude` ahead per event counter per path execution.
        let bound = skew.magnitude as u64 * ca.2;
        assert!(
            ca.3.abs_diff(cb.3) <= bound && ca.4.abs_diff(cb.4) <= bound,
            "skew perturbation exceeded its bound: {ca:?} vs {cb:?}"
        );
    }
}

/// CCT node-cap overflow: with a record cap far below the workload's
/// natural context count, the tree degrades DCG-style (new contexts of a
/// procedure collapse onto one shared overflow record) instead of
/// growing without bound or failing. The run still completes, no call is
/// lost, and memory stays bounded by `cap + num_procs` records.
#[test]
fn cct_record_cap_degrades_to_bounded_tree() {
    let config = RunConfig::ContextHw { events: EVENTS };
    let cap = 12u32;
    // Pick the first suite workload whose natural context count exceeds
    // the cap, so the collapse actually bites.
    let (w, uncapped) = pp::workloads::suite(0.02)
        .into_iter()
        .find_map(|w| {
            let run = Profiler::default()
                .run(&w.program, config)
                .expect("instrument")
                .expect_complete();
            (run.cct.as_ref().expect("cct").num_records() > cap as usize).then_some((w, run))
        })
        .expect("some workload must exceed the cap");
    let total_calls = |r: &RunReport| -> u64 {
        let cct = r.cct.as_ref().expect("cct");
        cct.record_ids().map(|id| cct.record(id).calls()).sum()
    };

    let capped = Profiler::default()
        .with_cct_record_cap(cap)
        .run(&w.program, config)
        .expect("instrument")
        .expect_complete();
    let cct = capped.cct.as_ref().expect("cct");
    assert!(cct.overflow_enters() > 0, "cap was never hit");
    assert!(cct.num_overflow_records() > 0);
    assert!(
        cct.num_records() <= cap as usize + w.program.procedures().len(),
        "capped tree exceeded its bound: {} records",
        cct.num_records()
    );
    assert_eq!(
        total_calls(&capped),
        total_calls(&uncapped),
        "collapse must conserve call counts"
    );
}

/// The observability layer reports *which* injected faults actually
/// fired, not just that the outcome degraded: the machine keeps a
/// `FaultLog` in its `RunResult`, and an observed run surfaces it as
/// `fault.*` metrics in the registry.
#[test]
fn fault_log_reports_which_faults_fired() {
    let prog = sample_program();
    let config = RunConfig::FlowHw { events: EVENTS };

    // A clean run fires nothing.
    let clean = Profiler::default().run(&prog, config).expect("instrument");
    assert!(!clean.machine.fault_log.any_fired());

    // Preload + skew (no abort): exactly those two families fire.
    let plan = FaultPlan::default()
        .preload_pics(u32::MAX, u32::MAX - 3)
        .skew_reads(ReadSkew {
            period: 3,
            magnitude: 5,
        });
    let mut reg = pp::obs::Registry::new();
    let run = Profiler::default()
        .with_fault_plan(plan)
        .run_observed(&prog, config, &mut reg)
        .expect("instrument");
    pp::profiler::observe::record_outcome(&mut reg, &run);
    let log = run.machine.fault_log;
    assert!(log.pics_preloaded);
    assert!(log.skewed_reads > 0, "skew with period 3 must fire");
    assert_eq!(log.aborted_at, None);
    assert_eq!(reg.counter_value("fault.pics_preloaded"), 1);
    assert_eq!(reg.counter_value("fault.skewed_reads"), log.skewed_reads);
    assert_eq!(reg.counter_value("fault.aborted"), 0);

    // An abort records that it fired and where.
    let mut reg = pp::obs::Registry::new();
    let run = Profiler::default()
        .with_fault_plan(FaultPlan::default().abort_at_uops(500))
        .run_observed(&prog, RunConfig::FlowFreq, &mut reg)
        .expect("instrument");
    pp::profiler::observe::record_outcome(&mut reg, &run);
    assert!(!run.is_complete());
    assert_eq!(run.machine.fault_log.aborted_at, Some(run.machine.uops));
    assert!(!run.machine.fault_log.pics_preloaded);
    assert_eq!(reg.counter_value("fault.aborted"), 1);
    assert_eq!(
        reg.gauge_value("fault.aborted_at_uops"),
        Some(run.machine.uops as f64)
    );
}

/// A mid-run counter clobber is logged (`fault.pics_clobbered`) and,
/// unlike a preload, it is *not* reconciled away: the integrity
/// walkers flag the run with a typed counter-wrap verdict.
#[test]
fn clobbered_reads_are_logged_and_flagged() {
    let prog = sample_program();
    let config = RunConfig::CombinedHw { events: EVENTS };

    let clean = Profiler::default().run(&prog, config).expect("instrument");
    assert!(!clean.machine.fault_log.pics_clobbered);

    let mut reg = pp::obs::Registry::new();
    let run = Profiler::default()
        .with_fault_plan(FaultPlan::default().clobber_pics_at_read(3, u32::MAX - 10, u32::MAX - 5))
        .run_observed(&prog, config, &mut reg)
        .expect("instrument");
    pp::profiler::observe::record_outcome(&mut reg, &run);
    assert!(run.machine.fault_log.pics_clobbered, "clobber did not fire");
    assert!(run.machine.fault_log.any_fired());
    assert_eq!(reg.counter_value("fault.pics_clobbered"), 1);
    let report = pp::profiler::integrity::verify_outcome(&prog, &run);
    assert!(
        report
            .violations
            .iter()
            .any(|v| matches!(v, pp::profiler::IntegrityError::CounterWrap { .. })),
        "clobber escaped the integrity walkers: {:?}",
        report.violations
    );
}

/// The full fault matrix: every injected fault under every run
/// configuration completes without panicking and returns a usable
/// outcome (typed fault or clean completion).
#[test]
fn no_fault_panics_under_any_configuration() {
    let prog = sample_program();
    let plans = [
        FaultPlan::default().preload_pics(u32::MAX, u32::MAX - 3),
        FaultPlan::default().clobber_pics_at_read(2, u32::MAX, u32::MAX - 3),
        FaultPlan::default().abort_at_uops(500),
        FaultPlan::default().skew_reads(ReadSkew {
            period: 2,
            magnitude: 9,
        }),
        FaultPlan::default()
            .preload_pics(u32::MAX - 1, 7)
            .abort_at_uops(1_500)
            .skew_reads(ReadSkew {
                period: 5,
                magnitude: 3,
            }),
    ];
    for plan in plans {
        for config in ALL_CONFIGS {
            let outcome = Profiler::default()
                .with_fault_plan(plan)
                .run(&prog, config)
                .unwrap_or_else(|e| panic!("{config}: instrumentation failed: {e}"));
            if let Some(fault) = &outcome.fault {
                assert!(
                    matches!(fault, ExecError::FaultAbort { .. }),
                    "{config}: unexpected fault {fault}"
                );
            }
            // The report is readable either way.
            let _ = outcome.cycles();
        }
    }
}
