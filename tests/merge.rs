//! Fleet-merge integration: determinism, associativity, corruption
//! tolerance, and crash-safe resume of `pp_core::merge` over real
//! profiler output.
//!
//! The shards here are what a fleet actually produces: the same
//! program profiled to different depths (full run plus two µop-capped
//! partial runs), so their CCTs overlap structurally but differ in
//! shape and counts.

use std::path::{Path, PathBuf};
use std::process::Command;

use pp::cct::{read_cct, CctConfig};
use pp::instrument::{InstrumentOptions, Mode};
use pp::ir::HwEvent;
use pp::obs::NoopRecorder;
use pp::profiler::merge::{self, MergeOptions, MergeOutcome, ShardStatus};
use pp::profiler::{integrity, PpError, Profiler, RunConfig};
use pp::usim::MachineConfig;

const EVENTS: (HwEvent, HwEvent) = (HwEvent::Insts, HwEvent::DcMiss);
const CONFIG: RunConfig = RunConfig::CombinedHw { events: EVENTS };

fn program(name: &str) -> pp::ir::Program {
    pp::workloads::suite(0.05)
        .into_iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("no workload {name}"))
        .program
}

/// Serialized combined-mode CCT of `program`, cut short after
/// `max_uops` micro-ops (0 = run to completion).
fn shard_bytes(program: &pp::ir::Program, max_uops: u64) -> Vec<u8> {
    let mut mc = MachineConfig::default();
    if max_uops > 0 {
        mc.max_instructions = max_uops;
    }
    let run = Profiler::new(mc).run(program, CONFIG).expect("profiles");
    let cct = run.cct.as_ref().expect("combined run builds a CCT");
    let mut bytes = Vec::new();
    pp::cct::write_cct(cct, &mut bytes).expect("serializes");
    bytes
}

/// Three honest shards of the same program: full, shallow, medium.
fn fleet_shards(name: &str) -> Vec<Vec<u8>> {
    let program = program(name);
    vec![
        shard_bytes(&program, 0),
        shard_bytes(&program, 20_000),
        shard_bytes(&program, 60_000),
    ]
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pp-merge-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn write_shards(dir: &Path, named: &[(&str, &[u8])]) -> Vec<String> {
    named
        .iter()
        .map(|(name, bytes)| {
            let path = dir.join(name);
            std::fs::write(&path, bytes).expect("write shard");
            path.display().to_string()
        })
        .collect()
}

fn merge_bytes(inputs: &[String], opts: &MergeOptions) -> Result<Vec<u8>, PpError> {
    match merge::run_merge(inputs, opts, &mut NoopRecorder)? {
        MergeOutcome::Complete { bytes, .. } => Ok(bytes),
        MergeOutcome::Halted { .. } => panic!("no halt was injected"),
    }
}

#[test]
fn merge_is_order_invariant_and_associative_over_real_profiles() {
    let shards = fleet_shards("129.compress");
    // Two directories holding the same three shards under *different*
    // names, so the canonical (sorted) fold visits them in different
    // orders.
    let d1 = tmpdir("order1");
    let d2 = tmpdir("order2");
    let in1 = write_shards(
        &d1,
        &[
            ("a.cct", &shards[0]),
            ("b.cct", &shards[1]),
            ("c.cct", &shards[2]),
        ],
    );
    let in2 = write_shards(
        &d2,
        &[
            ("a.cct", &shards[2]),
            ("b.cct", &shards[0]),
            ("c.cct", &shards[1]),
        ],
    );
    let opts = MergeOptions::default();
    let flat1 = merge_bytes(&in1, &opts).expect("merge 1");
    let flat2 = merge_bytes(&in2, &opts).expect("merge 2");
    assert_eq!(flat1, flat2, "fold order must not change a single byte");

    // Associativity: merge(merge(a, b), c) == merge(a, b, c).
    let ab = merge_bytes(&in1[..2], &opts).expect("pairwise");
    let paired = write_shards(&d1, &[("ab.cct", &ab)]);
    let nested = merge_bytes(&[paired[0].clone(), in1[2].clone()], &opts).expect("nested");
    assert_eq!(flat1, nested, "pairwise-then-fold must match the flat fold");

    // Merging a profile with itself doubles counters but never changes
    // structure: the result still verifies clean.
    let doubled = merge_bytes(&[in1[0].clone(), paired[0].clone()], &opts).expect("double");
    let report = integrity::verify_cct_bytes(&doubled);
    assert!(report.violations.is_empty(), "{:?}", report.violations);

    std::fs::remove_dir_all(&d1).ok();
    std::fs::remove_dir_all(&d2).ok();
}

#[test]
fn corrupt_and_alien_shards_quarantine_with_the_right_class() {
    let shards = fleet_shards("129.compress");
    let dir = tmpdir("fuzz");

    // Five sabotaged variants of the fleet, each a distinct failure
    // class a real fleet exhibits.
    let mut flipped = shards[1].clone();
    let mid = flipped.len() / 2;
    flipped[mid] ^= 0x40;
    let truncated = shards[1][..shards[1].len() - 10].to_vec();
    let mut cross_version = shards[1].clone();
    cross_version[6] = b'1'; // PPCCT02 -> PPCCT01
    let other_program = shard_bytes(&program("101.tomcatv"), 0);
    let hashed_cfg = CctConfig {
        num_metrics: 2,
        path_tables: true,
        path_array_threshold: 0,
        max_records: 0,
        ..CctConfig::default()
    };
    let other_config = {
        let program = program("129.compress");
        let options = InstrumentOptions::new(Mode::CombinedHw).with_events(EVENTS.0, EVENTS.1);
        let run = Profiler::default()
            .run_full(&program, CONFIG, options, Some(hashed_cfg))
            .expect("hashed run");
        let mut bytes = Vec::new();
        pp::cct::write_cct(run.cct.as_ref().expect("cct"), &mut bytes).expect("serializes");
        bytes
    };

    let inputs = write_shards(
        &dir,
        &[
            ("0-good.cct", &shards[0]),
            ("1-flipped.cct", &flipped),
            ("2-truncated.cct", &truncated),
            ("3-crossver.cct", &cross_version),
            ("4-otherprog.cct", &other_program),
            ("5-otherconf.cct", &other_config),
            ("6-junk.cct", b"not a profile at all\n"),
        ],
    );
    let outcome = merge::run_merge(&inputs, &MergeOptions::default(), &mut NoopRecorder)
        .expect("degraded merge succeeds");
    let MergeOutcome::Complete { bytes, report } = outcome else {
        panic!("no halt injected");
    };
    assert_eq!(report.merged_count(), 1, "only the good shard folds");
    let classes: Vec<(&str, &str)> = report
        .quarantined()
        .map(|s| {
            let ShardStatus::Quarantined(e) = &s.status else {
                unreachable!()
            };
            (s.path.rsplit('/').next().unwrap(), e.kind())
        })
        .collect();
    assert_eq!(
        classes,
        vec![
            ("1-flipped.cct", "checksum-mismatch"),
            ("2-truncated.cct", "truncated"),
            ("3-crossver.cct", "schema-skew"),
            ("4-otherprog.cct", "schema-skew"),
            ("5-otherconf.cct", "incompatible-config"),
            ("6-junk.cct", "schema-skew"),
        ],
        "each sabotage maps to its typed class"
    );

    // The partial fleet profile must still be a fully valid artifact.
    let report = integrity::verify_cct_bytes(&bytes);
    assert!(report.violations.is_empty(), "{:?}", report.violations);

    // Strict mode escalates the first bad shard to the corrupt exit.
    let err = merge::run_merge(
        &inputs,
        &MergeOptions {
            strict: true,
            ..MergeOptions::default()
        },
        &mut NoopRecorder,
    )
    .expect_err("strict fails fast");
    assert_eq!(err.exit_code(), 3, "{err}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bit_flip_sweep_never_panics() {
    let shards = fleet_shards("129.compress");
    let dir = tmpdir("sweep");
    let good = write_shards(&dir, &[("good.cct", &shards[0])]);
    // Sweep a flipped bit across the whole envelope: magic, length
    // field, payload, CRC trailer. Every position must yield either a
    // clean quarantine or (for a lucky no-op flip) a clean merge.
    let step = (shards[1].len() / 41).max(1);
    for pos in (0..shards[1].len()).step_by(step) {
        let mut evil = shards[1].clone();
        evil[pos] ^= 0x01;
        let path = dir.join("evil.cct");
        std::fs::write(&path, &evil).expect("write");
        let inputs = vec![good[0].clone(), path.display().to_string()];
        match merge::run_merge(&inputs, &MergeOptions::default(), &mut NoopRecorder) {
            Ok(MergeOutcome::Complete { bytes, .. }) => {
                let report = integrity::verify_cct_bytes(&bytes);
                assert!(
                    report.violations.is_empty(),
                    "flip at {pos}: {:?}",
                    report.violations
                );
            }
            Ok(MergeOutcome::Halted { .. }) => panic!("no halt injected"),
            Err(e) => panic!("flip at {pos} must quarantine, not error: {e}"),
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_sweep_never_panics_and_types_the_fault() {
    let shards = fleet_shards("129.compress");
    let dir = tmpdir("trunc");
    for keep in [
        0,
        1,
        4,
        7,
        8,
        9,
        15,
        16,
        17,
        shards[1].len() / 2,
        shards[1].len() - 1,
    ] {
        let path = dir.join("torn.cct");
        std::fs::write(&path, &shards[1][..keep]).expect("write");
        let inputs = vec![path.display().to_string()];
        let err = merge::run_merge(&inputs, &MergeOptions::default(), &mut NoopRecorder)
            .expect_err("every shard quarantined leaves nothing to merge");
        assert_eq!(err.exit_code(), 3, "keep={keep}: {err}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn dense_and_hashed_fleets_merge_to_the_same_content() {
    // The Section 4.2 boundary, fleet edition: profile the same
    // workload with dense path tables and with everything hashed
    // (threshold 0), merge each fleet, and demand the merged profiles
    // agree on every (context, path, frequency) triple.
    let program = program("129.compress");
    let options = InstrumentOptions::new(Mode::CombinedHw).with_events(EVENTS.0, EVENTS.1);
    let hashed_cfg = CctConfig {
        num_metrics: 2,
        path_tables: true,
        path_array_threshold: 0,
        max_records: 0,
        ..CctConfig::default()
    };
    let mut dense_shards = Vec::new();
    let mut hashed_shards = Vec::new();
    for max_uops in [0u64, 40_000] {
        let mut mc = MachineConfig::default();
        if max_uops > 0 {
            mc.max_instructions = max_uops;
        }
        let profiler = Profiler::new(mc);
        for (cfg, out) in [
            (None, &mut dense_shards),
            (Some(hashed_cfg), &mut hashed_shards),
        ] {
            let run = profiler
                .run_full(&program, CONFIG, options, cfg)
                .expect("run");
            let mut bytes = Vec::new();
            pp::cct::write_cct(run.cct.as_ref().expect("cct"), &mut bytes).expect("serialize");
            out.push(bytes);
        }
    }
    let dir = tmpdir("parity");
    let dense_in = write_shards(
        &dir,
        &[("d0.cct", &dense_shards[0]), ("d1.cct", &dense_shards[1])],
    );
    let hashed_in = write_shards(
        &dir,
        &[("h0.cct", &hashed_shards[0]), ("h1.cct", &hashed_shards[1])],
    );
    let opts = MergeOptions::default();
    let dense = read_cct(&mut &merge_bytes(&dense_in, &opts).expect("dense merge")[..])
        .expect("dense decodes");
    let hashed = read_cct(&mut &merge_bytes(&hashed_in, &opts).expect("hashed merge")[..])
        .expect("hashed decodes");
    let report = integrity::compare_ccts(&dense, &hashed);
    assert!(
        report.violations.is_empty(),
        "merged dense and hashed fleets diverge: {:?}",
        report.violations
    );
    std::fs::remove_dir_all(&dir).ok();
}

// ---- CLI-level crash-safety: `--inject halt@N` aborts the process
// (the kill -9 stand-in), and a resumed merge converges on bytes
// identical to an uninterrupted one. ----

fn pp(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_pp"))
        .args(args)
        .output()
        .expect("binary spawns")
}

#[test]
fn killed_merge_resumes_to_identical_bytes() {
    let shards = fleet_shards("129.compress");
    let dir = tmpdir("kill9");
    let inputs = write_shards(
        &dir,
        &[
            ("a.cct", &shards[0]),
            ("b.cct", &shards[1]),
            ("c.cct", &shards[2]),
        ],
    );
    let refs: Vec<&str> = inputs.iter().map(String::as_str).collect();
    let ckpt = dir.join("ckpt");
    let ckpt = ckpt.to_str().expect("utf8");
    let straight = dir.join("straight.cct");
    let resumed = dir.join("resumed.cct");

    // The uninterrupted reference fold.
    let out = pp(&[
        &["merge"][..],
        &refs,
        &["--out", straight.to_str().unwrap()],
    ]
    .concat());
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Fold again, dying abruptly after the first checkpoint commit.
    let out = pp(&[
        &["merge"][..],
        &refs,
        &[
            "--out",
            resumed.to_str().unwrap(),
            "--checkpoint-dir",
            ckpt,
            "--checkpoint-every",
            "1",
            "--inject",
            "halt@1",
        ],
    ]
    .concat());
    assert!(!out.status.success(), "halt must kill the process");
    assert!(!resumed.exists(), "died before writing the output");
    assert!(
        dir.join("ckpt").join(merge::MERGE_MANIFEST_FILE).is_file(),
        "checkpoint manifest survives the crash"
    );

    // Resume converges on byte-identical output.
    let out = pp(&[
        &["merge"][..],
        &refs,
        &["--out", resumed.to_str().unwrap(), "--resume", ckpt],
    ]
    .concat());
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("adopted from checkpoint"),
        "resume must adopt prior work:\n{stdout}"
    );
    assert_eq!(
        std::fs::read(&straight).expect("straight"),
        std::fs::read(&resumed).expect("resumed"),
        "kill -9 + resume must converge on the uninterrupted bytes"
    );

    // Resuming an already-finished fold is a cheap no-op with the same
    // answer.
    let again = dir.join("again.cct");
    let out = pp(&[
        &["merge"][..],
        &refs,
        &["--out", again.to_str().unwrap(), "--resume", ckpt],
    ]
    .concat());
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(
        std::fs::read(&straight).expect("straight"),
        std::fs::read(&again).expect("again"),
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_merge_report_quarantines_and_verify_accepts_the_partial() {
    let shards = fleet_shards("129.compress");
    let dir = tmpdir("cli-quarantine");
    let mut bad = shards[1].clone();
    let mid = bad.len() / 2;
    bad[mid] ^= 0xff;
    let inputs = write_shards(&dir, &[("good.cct", &shards[0]), ("rot.cct", &bad)]);
    let fleet = dir.join("fleet.cct");
    let ckpt = dir.join("ckpt");

    let out = pp(&[
        "merge",
        &inputs[0],
        &inputs[1],
        "--out",
        fleet.to_str().unwrap(),
        "--checkpoint-dir",
        ckpt.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "default mode degrades, not fails: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("QUARANTINED [checksum-mismatch]"),
        "{stdout}"
    );
    assert!(stdout.contains("1 folded, 1 quarantined"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("PARTIAL"), "{stderr}");

    // The partial profile and the merge checkpoint both verify clean,
    // and the checkpoint dir names the quarantined shard.
    for target in [fleet.to_str().unwrap(), ckpt.to_str().unwrap()] {
        let out = pp(&["verify", target]);
        assert!(
            out.status.success(),
            "verify {target}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    let out = pp(&["verify", ckpt.to_str().unwrap()]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("quarantined"), "{text}");

    // Strict mode refuses the same fleet with the corrupt exit code.
    let out = pp(&[
        "merge",
        &inputs[0],
        &inputs[1],
        "--out",
        fleet.to_str().unwrap(),
        "--strict",
    ]);
    assert_eq!(
        out.status.code(),
        Some(3),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    std::fs::remove_dir_all(&dir).ok();
}
