//! Cross-crate consistency: the same program profiled under different
//! configurations must tell one coherent story.

use std::collections::BTreeMap;

use pp::ir::HwEvent;
use pp::profiler::{Profiler, RunConfig};

const EVENTS: (HwEvent, HwEvent) = (HwEvent::Insts, HwEvent::DcMiss);

fn workload(ix: usize) -> pp::workloads::Workload {
    pp::workloads::suite(0.05).swap_remove(ix)
}

/// Aggregates (proc name, path sum) -> freq from a flow profile.
fn flow_histogram(
    program: &pp::ir::Program,
    flow: &pp::profiler::FlowProfile,
) -> BTreeMap<(String, u64), u64> {
    flow.iter_paths()
        .map(|(p, s, c)| ((program.procedure(p).name.clone(), s), c.freq))
        .collect()
}

/// Aggregates (proc name, path sum) -> freq from a combined-mode CCT by
/// summing over calling contexts.
fn cct_histogram(cct: &pp::cct::CctRuntime) -> BTreeMap<(String, u64), u64> {
    let mut out = BTreeMap::new();
    for id in cct.record_ids().skip(1) {
        let r = cct.record(id);
        for (sum, counts) in r.paths() {
            *out.entry((r.proc_name().to_string(), sum)).or_insert(0) += counts.freq;
        }
    }
    out
}

#[test]
fn flow_and_context_flow_agree_on_path_frequencies() {
    // The flow profile aggregates paths per procedure; the combined CCT
    // splits them per context. Summing contexts must reproduce the flow
    // histogram exactly — frequencies are deterministic.
    let w = workload(4); // 130.li analog: recursion + indirect calls
    let profiler = Profiler::default();
    let flow_run = profiler.run(&w.program, RunConfig::FlowFreq).expect("flow");
    let cf_run = profiler
        .run(&w.program, RunConfig::ContextFlow)
        .expect("context flow");
    let a = flow_histogram(&w.program, flow_run.flow.as_ref().expect("profile"));
    let b = cct_histogram(cf_run.cct.as_ref().expect("cct"));
    assert_eq!(a, b, "per-proc and per-context path counts must agree");
}

#[test]
fn recorded_instructions_bounded_by_machine_truth() {
    let w = workload(1); // m88ksim analog
    let profiler = Profiler::default();
    let run = profiler
        .run(&w.program, RunConfig::FlowHw { events: EVENTS })
        .expect("flow hw");
    let recorded: u64 = run.flow.as_ref().expect("profile").total(|c| c.m0);
    let truth = run.machine.metrics.get(HwEvent::Insts);
    assert!(recorded > 0);
    assert!(
        recorded <= truth,
        "paths cannot record more instructions ({recorded}) than executed ({truth})"
    );
    // And the recorded total must be most of the program (only per-call
    // glue and instrumentation outside intervals is excluded).
    assert!(
        recorded as f64 >= 0.5 * truth as f64,
        "paths should cover the bulk of execution ({recorded} vs {truth})"
    );
}

#[test]
fn context_hw_entry_records_cover_the_run() {
    let w = workload(3); // compress analog
    let profiler = Profiler::default();
    let run = profiler
        .run(&w.program, RunConfig::ContextHw { events: EVENTS })
        .expect("context hw");
    let cct = run.cct.as_ref().expect("cct");
    // The root's child (main) holds inclusive instructions for the whole
    // run: within 25% of the machine's ground truth (instrumentation in
    // the interval inflates slightly; the prologue before the snapshot
    // deflates slightly).
    let main_rec = cct
        .record_ids()
        .skip(1)
        .find(|&id| cct.record(id).parent() == Some(pp::cct::RecordId::ROOT))
        .expect("main record");
    let recorded = cct.record(main_rec).metrics()[0];
    let truth = run.machine.metrics.get(HwEvent::Insts);
    let ratio = recorded as f64 / truth as f64;
    assert!(
        (0.75..=1.05).contains(&ratio),
        "inclusive main instructions {recorded} vs machine {truth} (ratio {ratio:.3})"
    );
}

#[test]
fn runs_are_deterministic() {
    let w = workload(6); // perl analog (setjmp + indirect)
    let profiler = Profiler::default();
    let a = profiler
        .run(&w.program, RunConfig::FlowHw { events: EVENTS })
        .expect("run a");
    let b = profiler
        .run(&w.program, RunConfig::FlowHw { events: EVENTS })
        .expect("run b");
    assert_eq!(a.machine.metrics, b.machine.metrics);
    let fa = flow_histogram(&w.program, a.flow.as_ref().expect("profile"));
    let fb = flow_histogram(&w.program, b.flow.as_ref().expect("profile"));
    assert_eq!(fa, fb);
}

#[test]
fn instrumented_runs_execute_more_instructions_than_base() {
    let w = workload(0); // go analog
    let profiler = Profiler::default();
    let base = profiler.run(&w.program, RunConfig::Base).expect("base");
    for config in [
        RunConfig::FlowFreq,
        RunConfig::FlowHw { events: EVENTS },
        RunConfig::ContextHw { events: EVENTS },
        RunConfig::ContextFlow,
        RunConfig::CombinedHw { events: EVENTS },
    ] {
        let run = profiler.run(&w.program, config).expect("instrumented");
        assert!(
            run.machine.metrics.get(HwEvent::Insts) > base.machine.metrics.get(HwEvent::Insts),
            "{config} must add instructions"
        );
        assert!(run.cycles() > base.cycles(), "{config} must add cycles");
        assert!(
            run.machine.code_bytes > base.machine.code_bytes,
            "{config} must grow the code"
        );
    }
}

#[test]
fn path_frequencies_match_call_counts() {
    // Every kernel invocation produces at least one completed path, and
    // the number of EntryTo* paths equals the number of invocations.
    let w = workload(2); // gcc analog
    let profiler = Profiler::default();
    let flow_run = profiler.run(&w.program, RunConfig::FlowFreq).expect("flow");
    let ctx_run = profiler
        .run(&w.program, RunConfig::ContextFlow)
        .expect("ctx");
    let flow = flow_run.flow.as_ref().expect("profile");
    let inst = flow_run.instrumented.as_ref().expect("manifest");
    let cct = ctx_run.cct.as_ref().expect("cct");

    // Invocation counts per procedure from the CCT.
    let mut calls: BTreeMap<String, u64> = BTreeMap::new();
    for id in cct.record_ids().skip(1) {
        let r = cct.record(id);
        *calls.entry(r.proc_name().to_string()).or_insert(0) += r.calls();
    }
    // Entry-path counts per procedure from the flow profile.
    let mut entry_paths: BTreeMap<String, u64> = BTreeMap::new();
    for (proc, sum, cell) in flow.iter_paths() {
        let (_, kind) = inst.decode_path(proc, sum).expect("flow mode decodes");
        if matches!(
            kind,
            pp::pathprof::PathKind::EntryToExit | pp::pathprof::PathKind::EntryToBackedge { .. }
        ) {
            *entry_paths
                .entry(w.program.procedure(proc).name.clone())
                .or_insert(0) += cell.freq;
        }
    }
    for (name, &n_calls) in &calls {
        let n_paths = entry_paths.get(name).copied().unwrap_or(0);
        assert_eq!(
            n_paths, n_calls,
            "{name}: every invocation starts exactly one entry path"
        );
    }
}
