//! `PP_NO_FUSE` environment toggle.
//!
//! This file holds exactly one test on purpose: it mutates the process
//! environment, and Rust runs tests in one process with threads — a
//! sibling test decoding a program while the variable flips would race.
//! Keeping the env-dependent assertion in its own test binary makes the
//! mutation safe without serializing the rest of the suite.

use pp::ir::HwEvent;
use pp::usim::{Machine, MachineConfig, NullSink};

#[test]
fn pp_no_fuse_disables_fusion_and_preserves_results() {
    let w = pp::workloads::suite(0.05)
        .into_iter()
        .next()
        .expect("suite has workloads");

    let run = || {
        let mut m = Machine::new(&w.program, MachineConfig::default());
        m.run(&mut NullSink).expect("run")
    };

    let fused = run();

    std::env::set_var("PP_NO_FUSE", "1");
    let unfused = run();
    std::env::set_var("PP_NO_FUSE", "0");
    let explicit_off = run();
    std::env::remove_var("PP_NO_FUSE");

    // The toggle is free of observable effect on the simulation: every
    // superinstruction replays its constituents' exact event sequence.
    assert_eq!(fused.uops, unfused.uops);
    assert_eq!(fused.metrics, unfused.metrics);
    assert_eq!(fused.pics, unfused.pics);
    assert_eq!(fused.uops, explicit_off.uops);
    assert_eq!(fused.metrics, explicit_off.metrics);
    assert!(fused.metrics.get(HwEvent::Insts) > 0);
}
