//! Differential testing: the predecoded micro-op interpreter and the
//! tree-walking reference interpreter are two implementations of the
//! same machine, and every profile they produce must be bit-identical —
//! metrics, `%pic` registers, flow-profile bytes, CCT bytes, and
//! per-block execution counts. This is what licenses every hot-path
//! optimization in the predecoded pipeline: any divergence the
//! optimizations introduce fails here, over the whole workload suite
//! and every profiling configuration.

#![cfg(feature = "reference")]

use pp::ir::HwEvent;
use pp::profiler::{Profiler, RunConfig};
use pp::usim::{Machine, MachineConfig, NullSink};

const EVENTS: (HwEvent, HwEvent) = (HwEvent::Insts, HwEvent::DcMiss);

/// Every profiling configuration the profiler supports, including the
/// uninstrumented base.
fn configs() -> Vec<RunConfig> {
    vec![
        RunConfig::Base,
        RunConfig::EdgeFreq,
        RunConfig::FlowFreq,
        RunConfig::FlowHw { events: EVENTS },
        RunConfig::ContextHw { events: EVENTS },
        RunConfig::ContextFlow,
        RunConfig::CombinedHw { events: EVENTS },
    ]
}

fn flow_bytes(flow: &pp::profiler::FlowProfile) -> Vec<u8> {
    let mut v = Vec::new();
    flow.write_to(&mut v).expect("serialize flow profile");
    v
}

fn cct_bytes(cct: &pp::cct::CctRuntime) -> Vec<u8> {
    let mut v = Vec::new();
    pp::cct::write_cct(cct, &mut v).expect("serialize cct");
    v
}

/// Asserts two runs (from any interpreter/fusion combination) agree on
/// machine state and serialized profiles, byte for byte.
fn assert_runs_identical(a: &pp::profiler::RunOutcome, b: &pp::profiler::RunOutcome, ctx: &str) {
    assert_eq!(a.machine.metrics, b.machine.metrics, "metrics: {ctx}");
    assert_eq!(a.machine.pics, b.machine.pics, "%pic registers: {ctx}");
    assert_eq!(
        a.machine.counter_note, b.machine.counter_note,
        "wrap-reconciliation note: {ctx}"
    );
    assert_eq!(a.machine.uops, b.machine.uops, "uops: {ctx}");
    assert_eq!(
        a.machine.resident_pages, b.machine.resident_pages,
        "resident pages: {ctx}"
    );
    assert_eq!(
        a.machine.code_bytes, b.machine.code_bytes,
        "code bytes: {ctx}"
    );

    assert_eq!(a.flow.is_some(), b.flow.is_some(), "flow presence: {ctx}");
    if let (Some(fa), Some(fb)) = (&a.flow, &b.flow) {
        assert_eq!(flow_bytes(fa), flow_bytes(fb), "flow bytes: {ctx}");
    }
    assert_eq!(a.cct.is_some(), b.cct.is_some(), "cct presence: {ctx}");
    if let (Some(ca), Some(cb)) = (&a.cct, &b.cct) {
        assert_eq!(cct_bytes(ca), cct_bytes(cb), "cct bytes: {ctx}");
    }
}

/// The tentpole guarantee: for every workload in the suite and every
/// configuration, the fused interpreter, the unfused interpreter, and
/// the tree-walking reference produce the same machine state and the
/// same serialized profiles, byte for byte. Superinstruction fusion is
/// a three-way cross-check here: fused vs reference AND unfused vs
/// fused, so a fusion bug can't hide behind a matching reference bug.
#[test]
fn every_profile_is_bit_identical_across_interpreters() {
    let profiler = Profiler::default();
    let unfused = Profiler::new(MachineConfig {
        no_fuse: true,
        ..MachineConfig::default()
    });
    for w in pp::workloads::suite(0.05) {
        for config in configs() {
            let ctx = format!("{} under {config}", w.name);
            let a = profiler
                .run(&w.program, config)
                .unwrap_or_else(|e| panic!("optimized {ctx}: {e}"));
            let b = profiler
                .run_reference(&w.program, config)
                .unwrap_or_else(|e| panic!("reference {ctx}: {e}"));
            let u = unfused
                .run(&w.program, config)
                .unwrap_or_else(|e| panic!("unfused {ctx}: {e}"));
            assert!(a.fault.is_none(), "optimized {ctx} faulted");
            assert!(b.fault.is_none(), "reference {ctx} faulted");
            assert!(u.fault.is_none(), "unfused {ctx} faulted");

            assert_runs_identical(&a, &b, &format!("fused vs reference, {ctx}"));
            assert_runs_identical(&u, &a, &format!("unfused vs fused, {ctx}"));
        }
    }
}

/// The observability layer inherits the determinism guarantee: every
/// metric an observed run records — the sink's hot-path counters and
/// everything `observe::record_outcome` derives afterwards — is a
/// function of simulated state only, so the registry snapshot is
/// byte-identical across the two interpreters, and across repeated
/// runs of the same one.
/// Drops the counters that describe the *host* interpreter's own fast
/// paths (superinstruction dispatch, the indirect-call inline cache).
/// They are engine-local by design — the tree-walking reference has no
/// dispatch loop to instrument — so cross-interpreter comparison strips
/// them; everything else must still match byte for byte.
fn strip_engine_local(snapshot: &str) -> String {
    snapshot
        .lines()
        .filter(|l| !l.starts_with("counter dispatch.") && !l.starts_with("counter call.ic_"))
        .flat_map(|l| [l, "\n"])
        .collect()
}

#[test]
fn metrics_snapshots_are_identical_across_interpreters() {
    let profiler = Profiler::default();
    let config = RunConfig::CombinedHw { events: EVENTS };
    for w in pp::workloads::suite(0.05) {
        let observed = |run: &dyn Fn(&mut pp::obs::Registry) -> pp::profiler::RunOutcome| {
            let mut reg = pp::obs::Registry::new();
            let outcome = run(&mut reg);
            pp::profiler::observe::record_outcome(&mut reg, &outcome);
            reg
        };
        let a = observed(&|reg| {
            profiler
                .run_observed(&w.program, config, reg)
                .expect("optimized")
        });
        let b = observed(&|reg| {
            profiler
                .run_reference_observed(&w.program, config, reg)
                .expect("reference")
        });
        let rerun = observed(&|reg| {
            profiler
                .run_observed(&w.program, config, reg)
                .expect("optimized rerun")
        });
        assert!(!a.is_empty(), "{}: observed run recorded nothing", w.name);
        assert_eq!(
            strip_engine_local(&a.snapshot()),
            strip_engine_local(&b.snapshot()),
            "interpreters: {}",
            w.name
        );
        // The engine-local counters are still deterministic: a rerun of
        // the same interpreter reproduces them (and everything else)
        // byte for byte, snapshot and JSON alike.
        assert_eq!(a.snapshot(), rerun.snapshot(), "rerun: {}", w.name);
        assert_eq!(a.to_json(), rerun.to_json(), "json rerun: {}", w.name);
        // And the fused fast path actually ran.
        assert!(
            a.snapshot().contains("counter dispatch.fused_hit"),
            "{}: no fused dispatches recorded",
            w.name
        );
    }
}

/// Control flow itself is identical: with block tracing on, both
/// interpreters count every `(procedure, block)` execution the same.
#[test]
fn block_counts_are_identical_across_interpreters() {
    let config = MachineConfig {
        trace_blocks: true,
        ..MachineConfig::default()
    };
    for w in pp::workloads::suite(0.05) {
        let mut m = Machine::new(&w.program, config);
        m.run(&mut NullSink)
            .unwrap_or_else(|e| panic!("optimized {}: {e}", w.name));
        let mut r = pp::usim::reference::ReferenceMachine::new(&w.program, config);
        r.run(&mut NullSink)
            .unwrap_or_else(|e| panic!("reference {}: {e}", w.name));
        // The reference records only executed blocks; the dense view
        // filters zero counts, so the maps line up key for key.
        assert_eq!(&m.block_counts(), r.block_counts(), "{}", w.name);
    }
}
