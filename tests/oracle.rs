//! The end-to-end instrumentation oracle: on randomly generated
//! structured programs, the Ball–Larus path profile — decoded back to
//! blocks — must reproduce the machine's *true* per-block execution
//! counts exactly. This closes the loop across every layer: builder →
//! labelling → placement → rewriting → execution → collection → decoding.

use pp::baselines::EdgeProfile;
use pp::instrument::{instrument_program, InstrumentOptions, Mode, PlacementChoice};
use pp::ir::build::{ProcBuilder, ProgramBuilder};
use pp::ir::{BlockId, ProcId, Program};
use pp::profiler::FlowProfile;
use pp::usim::{Machine, MachineConfig, ProfSink, RecordingSink};
use pp::workloads::SmallRng;

/// A structured statement: termination is guaranteed by construction
/// (loops have fixed trip counts, calls go strictly downward in the
/// procedure list).
#[derive(Clone, Debug)]
enum Stmt {
    /// `n` arithmetic instructions.
    Work(u8),
    /// A data-dependent two-way branch (LCG-driven, bias percent).
    If(u8, Vec<Stmt>, Vec<Stmt>),
    /// A counted loop of `k` iterations.
    Loop(u8, Vec<Stmt>),
    /// Call procedure `callee_offset` levels down.
    Call(u8),
}

fn gen_stmt(rng: &mut SmallRng, depth: u32) -> Stmt {
    let choice = if depth == 0 {
        rng.gen_range(0..2u32)
    } else {
        rng.gen_range(0..4u32)
    };
    match choice {
        0 => Stmt::Work(rng.gen_range(1..4u8)),
        1 => Stmt::Call(rng.gen_range(1..3u8)),
        2 => Stmt::If(
            rng.gen_range(0..=100u8),
            gen_stmts(rng, depth - 1, 1, 2),
            gen_stmts(rng, depth - 1, 1, 2),
        ),
        _ => Stmt::Loop(rng.gen_range(1..4u8), gen_stmts(rng, depth - 1, 1, 2)),
    }
}

fn gen_stmts(rng: &mut SmallRng, depth: u32, min: usize, max: usize) -> Vec<Stmt> {
    let n = rng.gen_range(min..=max);
    (0..n).map(|_| gen_stmt(rng, depth)).collect()
}

/// Emits `stmts` into `f` starting at `cur`; returns the block where
/// control continues.
fn emit(
    f: &mut ProcBuilder<'_>,
    stmts: &[Stmt],
    mut cur: BlockId,
    lcg: pp::ir::Reg,
    tmp: pp::ir::Reg,
    callees: &[ProcId],
    my_index: usize,
) -> BlockId {
    for stmt in stmts {
        match stmt {
            Stmt::Work(n) => {
                for k in 0..*n {
                    f.block(cur).add(tmp, tmp, (k as i64) + 1);
                }
            }
            Stmt::Call(off) => {
                let target = my_index + *off as usize;
                if target < callees.len() {
                    f.block(cur).call(callees[target], vec![], Some(tmp));
                } else {
                    f.block(cur).nop();
                }
            }
            Stmt::If(bias, then_s, else_s) => {
                let then_b = f.new_block();
                let else_b = f.new_block();
                let join = f.new_block();
                f.block(cur)
                    .mul(lcg, lcg, 6364136223846793005i64)
                    .add(lcg, lcg, 1442695040888963407i64)
                    .bin(pp::ir::instr::BinOp::Shr, tmp, lcg, 33i64)
                    .bin(pp::ir::instr::BinOp::Rem, tmp, tmp, 100i64)
                    .cmp_lt(tmp, tmp, *bias as i64)
                    .branch(tmp, then_b, else_b);
                let after_then = emit(f, then_s, then_b, lcg, tmp, callees, my_index);
                let after_else = emit(f, else_s, else_b, lcg, tmp, callees, my_index);
                f.block(after_then).jump(join);
                f.block(after_else).jump(join);
                cur = join;
            }
            Stmt::Loop(k, body) => {
                let i = f.new_reg();
                let c = f.new_reg();
                let header = f.new_block();
                let body_b = f.new_block();
                let exit = f.new_block();
                f.block(cur).mov(i, 0i64).jump(header);
                f.block(header)
                    .cmp_lt(c, i, *k as i64)
                    .branch(c, body_b, exit);
                let after_body = emit(f, body, body_b, lcg, tmp, callees, my_index);
                f.block(after_body).add(i, i, 1i64).jump(header);
                cur = exit;
            }
        }
    }
    cur
}

fn build_program(procs: &[(u64, Vec<Stmt>)]) -> Program {
    let mut pb = ProgramBuilder::new();
    let ids: Vec<ProcId> = procs
        .iter()
        .enumerate()
        .map(|(i, _)| pb.declare(&format!("p{i}")))
        .collect();
    for (i, (seed, stmts)) in procs.iter().enumerate() {
        let mut f = pb.procedure_for(ids[i]);
        let entry = f.entry_block();
        let lcg = f.new_reg();
        let tmp = f.new_reg();
        f.block(entry).mov(lcg, (*seed as i64) | 1);
        let last = emit(&mut f, stmts, entry, lcg, tmp, &ids, i);
        f.block(last).ret();
        f.finish();
    }
    pb.finish(ids[0])
}

/// Runs the instrumented program collecting path counts plus the block
/// oracle, then compares block counts decoded from paths with the truth.
fn check_program(prog: &Program, placement: PlacementChoice) {
    let options = InstrumentOptions::new(Mode::FlowFreq).with_placement(placement);
    let inst = instrument_program(prog, options).expect("instrument");

    struct FlowSink(FlowProfile);
    impl ProfSink for FlowSink {
        fn path_event(
            &mut self,
            table: pp::ir::prof::PathTable,
            sum: u64,
            pics: Option<(u64, u64)>,
        ) {
            self.0.record(table.proc, sum, pics);
        }
    }
    let mut sink = FlowSink(FlowProfile::new(prog.procedures().len()));
    let config = MachineConfig {
        trace_blocks: true,
        max_instructions: 20_000_000,
        ..MachineConfig::default()
    };
    let mut machine = Machine::new(&inst.program, config);
    machine.run(&mut sink).expect("instrumented program runs");

    let edge_profile = EdgeProfile::from_flow(&inst, &sink.0);
    assert_eq!(edge_profile.conservation_violations(), Vec::<String>::new());

    // Truth: instrumented block b+1 corresponds to original block b
    // (block 0 is the prologue; split blocks come after the originals).
    for (pid, proc) in prog.iter_procedures() {
        for b in 0..proc.blocks.len() as u32 {
            let truth = machine
                .block_counts()
                .get(&(pid, BlockId(b + 1)))
                .copied()
                .unwrap_or(0);
            let projected = edge_profile.block_count(pid, BlockId(b));
            assert_eq!(
                projected, truth,
                "{pid:?} block {b} (placement {placement:?})"
            );
        }
    }
}

#[test]
fn path_profile_reproduces_true_block_counts() {
    for seed in 0..48u64 {
        let mut rng = SmallRng::seed_from_u64(0x0AC1_E000 + seed);
        let nprocs = rng.gen_range(1..4usize);
        let bodies: Vec<(u64, Vec<Stmt>)> = (0..nprocs)
            .map(|_| (rng.next_u64(), gen_stmts(&mut rng, 3, 1, 3)))
            .collect();
        let prog = build_program(&bodies);
        pp::ir::verify::verify_program(&prog).expect("generated program verifies");
        let placement = if seed % 2 == 0 {
            PlacementChoice::Optimized
        } else {
            PlacementChoice::Simple
        };
        check_program(&prog, placement);
    }
}

#[test]
fn oracle_holds_on_suite_samples() {
    for ix in [1usize, 3, 5, 9] {
        let w = pp::workloads::suite(0.04).swap_remove(ix);
        check_program(&w.program, PlacementChoice::Optimized);
    }
}

#[test]
fn oracle_example_nested_loops_and_calls() {
    let prog = build_program(&[
        (
            7,
            vec![
                Stmt::Loop(
                    3,
                    vec![Stmt::If(50, vec![Stmt::Call(1)], vec![Stmt::Work(2)])],
                ),
                Stmt::Work(1),
            ],
        ),
        (9, vec![Stmt::Loop(2, vec![Stmt::Work(3)])]),
    ]);
    check_program(&prog, PlacementChoice::Simple);
    check_program(&prog, PlacementChoice::Optimized);
}

#[test]
fn recording_sink_collects_consistent_event_stream() {
    // Sanity on the event protocol itself: enters and exits balance.
    let w = pp::workloads::suite(0.03).swap_remove(4);
    let inst = instrument_program(&w.program, InstrumentOptions::new(Mode::ContextFlow))
        .expect("instrument");
    let mut sink = RecordingSink::default();
    let mut machine = Machine::new(&inst.program, MachineConfig::default());
    machine.run(&mut sink).expect("runs");
    let mut depth = 0i64;
    let mut max_depth = 0i64;
    for ev in &sink.events {
        match ev {
            pp::usim::SinkEvent::Enter(_) => {
                depth += 1;
                max_depth = max_depth.max(depth);
            }
            pp::usim::SinkEvent::Exit => depth -= 1,
            pp::usim::SinkEvent::Unwind(d) => depth = *d as i64,
            _ => {}
        }
        assert!(depth >= 0, "exit underflow");
    }
    assert_eq!(depth, 0, "enters and exits balance");
    assert!(max_depth >= 3, "call tree has depth");
}
