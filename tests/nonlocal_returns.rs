//! Non-local returns (setjmp/longjmp) under every profiling mode: the
//! machinery must survive abandoned activations — the situation the
//! paper's Section 4.2 discusses for exceptions into instrumented code.

use pp::ir::build::ProgramBuilder;
use pp::ir::{HwEvent, Operand, Program, Reg};
use pp::profiler::{Profiler, RunConfig};

const EVENTS: (HwEvent, HwEvent) = (HwEvent::Insts, HwEvent::DcMiss);

/// main setjmps, then calls a chain a -> b -> c where c longjmps back;
/// afterwards main calls a normally. The CCT must end balanced and record
/// both the abandoned and the completed contexts.
fn longjmp_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let a = pb.declare("a");
    let b = pb.declare("b");
    let c = pb.declare("c");

    let mut m = pb.procedure("main");
    let e = m.entry_block();
    let chk = m.new_block();
    let throw_path = m.new_block();
    let post = m.new_block();
    let tok = m.new_reg();
    let flag = m.new_reg();
    m.block(e).mov(flag, 0i64).setjmp(tok).jump(chk);
    m.block(chk).branch(flag, post, throw_path);
    m.block(throw_path)
        .mov(flag, 1i64)
        .call(a, vec![Operand::Reg(tok), Operand::Imm(1)], None)
        .jump(post);
    m.block(post)
        .call(a, vec![Operand::Imm(0), Operand::Imm(0)], None)
        .ret();
    let main = m.finish();

    // a(tok, do_throw) -> b(tok, do_throw)
    for (this, next) in [(a, b), (b, c)] {
        let mut f = pb.procedure_for(this);
        let e = f.entry_block();
        f.reserve_regs(2);
        f.block(e)
            .nop()
            .call(next, vec![Operand::Reg(Reg(0)), Operand::Reg(Reg(1))], None)
            .nop()
            .ret();
        f.finish();
    }
    // c(tok, do_throw): longjmp if asked, else return.
    let mut f = pb.procedure_for(c);
    let e = f.entry_block();
    let do_throw = f.new_block();
    let done = f.new_block();
    f.reserve_regs(2);
    f.block(e).branch(Reg(1), do_throw, done);
    f.block(do_throw).longjmp(Reg(0)).ret();
    f.block(done).nop().ret();
    f.finish();
    pb.finish(main)
}

#[test]
fn all_modes_survive_longjmp() {
    let prog = longjmp_program();
    let profiler = Profiler::default();
    for config in [
        RunConfig::Base,
        RunConfig::FlowFreq,
        RunConfig::FlowHw { events: EVENTS },
        RunConfig::ContextHw { events: EVENTS },
        RunConfig::ContextFlow,
        RunConfig::CombinedHw { events: EVENTS },
    ] {
        profiler
            .run(&prog, config)
            .unwrap_or_else(|e| panic!("{config}: {e}"));
    }
}

#[test]
fn cct_unwinds_and_keeps_both_contexts() {
    let prog = longjmp_program();
    let profiler = Profiler::default();
    let run = profiler
        .run(&prog, RunConfig::ContextFlow)
        .expect("context flow");
    let cct = run.cct.as_ref().expect("cct");
    // Depth balanced at the end despite the abandoned a->b->c chain.
    assert_eq!(cct.depth(), 0);
    // c entered twice (once abandoned, once completing) — from two
    // different call sites in main, so the call-site-distinguished CCT
    // keeps two records, one call each, both spelling main -> a -> b -> c.
    let c_recs: Vec<_> = cct
        .record_ids()
        .filter(|&id| cct.record(id).proc_name() == "c")
        .collect();
    assert_eq!(c_recs.len(), 2);
    for rec in c_recs {
        assert_eq!(cct.record(rec).calls(), 1);
        assert_eq!(
            cct.record(rec)
                .context()
                .iter()
                .map(|&p| prog.procedure(pp::ir::ProcId(p)).name.as_str())
                .collect::<Vec<_>>(),
            vec!["main", "a", "b", "c"]
        );
    }
}

#[test]
fn flow_profile_misses_abandoned_paths_but_counts_completed_ones() {
    let prog = longjmp_program();
    let profiler = Profiler::default();
    let run = profiler.run(&prog, RunConfig::FlowFreq).expect("flow");
    let flow = run.flow.as_ref().expect("profile");
    // The completed (non-throwing) executions of a and b record one path
    // each; the abandoned activations never reach their path-count op —
    // exactly the "functions that are not returned to in the conventional
    // manner" limitation of Section 4.3.
    let a = prog.find_procedure("a").expect("a");
    let b = prog.find_procedure("b").expect("b");
    let a_paths: u64 = flow
        .iter_paths()
        .filter(|(p, _, _)| *p == a)
        .map(|(_, _, c)| c.freq)
        .sum();
    let b_paths: u64 = flow
        .iter_paths()
        .filter(|(p, _, _)| *p == b)
        .map(|(_, _, c)| c.freq)
        .sum();
    assert_eq!(a_paths, 1, "only the completed activation of a counts");
    assert_eq!(b_paths, 1, "only the completed activation of b counts");
    // c: the throwing activation ends at the longjmp (no count); the
    // normal one counts.
    let c = prog.find_procedure("c").expect("c");
    let c_paths: u64 = flow
        .iter_paths()
        .filter(|(p, _, _)| *p == c)
        .map(|(_, _, cell)| cell.freq)
        .sum();
    assert_eq!(c_paths, 1);
}
