//! The profile-integrity subsystem, exercised from outside: the batch
//! manifest parser under byte-flip fuzzing (robustness layer), and the
//! wrap-safe counter semantics at the `u32` boundary on both
//! interpreters (the differential oracle extended to the
//! reconciliation notes).

use pp::ir::HwEvent;
use pp::profiler::{
    BatchManifest, FlowProfile, IntegrityError, JobEntry, JobStatus, PpError, ProfileRef, Profiler,
    RunConfig,
};
use pp::usim::{CounterNote, FaultPlan};

const EVENTS: (HwEvent, HwEvent) = (HwEvent::Insts, HwEvent::DcMiss);

/// A representative manifest: a finished job with profile refs, a
/// failed job with a detail string, and a pending one.
fn sample_manifest() -> BatchManifest {
    let mut done = JobEntry::pending("129.compress");
    done.status = JobStatus::Done;
    done.attempts = 1;
    done.cycles = 375_552;
    done.uops = 298_232;
    done.flow = Some(ProfileRef::for_bytes("job-000.flow", b"PPFLOW2\nstub"));
    done.cct = Some(ProfileRef::for_bytes("job-000.cct", b"PPCCT02\nstub"));
    let mut failed = JobEntry::pending("101.tomcatv");
    failed.status = JobStatus::Failed;
    failed.attempts = 3;
    failed.detail = "integrity: unreconciled counter wrap".into();
    BatchManifest {
        seed: 99,
        params: "test-campaign scale=0.02".into(),
        jobs: vec![done, failed, JobEntry::pending("102.swim")],
    }
}

/// Byte-flip fuzz over the `PPBAT01` manifest parser: flipping any
/// single byte of a valid manifest (three masks per position) must
/// yield a typed `SerializeError` — never a panic, and never a silent
/// success, because every byte is covered by the magic, the length
/// fields, or the trailing CRC.
#[test]
fn manifest_byte_flips_are_typed_errors_never_panics() {
    let bytes = sample_manifest().to_bytes().expect("serialize manifest");
    for pos in 0..bytes.len() {
        for mask in [0x01u8, 0x80, 0xFF] {
            let mut mutated = bytes.clone();
            mutated[pos] ^= mask;
            let result = std::panic::catch_unwind(|| BatchManifest::from_bytes(&mutated))
                .unwrap_or_else(|_| panic!("parser panicked on flip {mask:#04x} at byte {pos}"));
            assert!(
                result.is_err(),
                "flip {mask:#04x} at byte {pos} was accepted as a valid manifest"
            );
        }
    }
}

/// Truncation at every possible length is likewise a typed error.
#[test]
fn manifest_truncations_are_typed_errors_never_panics() {
    let bytes = sample_manifest().to_bytes().expect("serialize manifest");
    for len in 0..bytes.len() {
        let prefix = &bytes[..len];
        let result = std::panic::catch_unwind(|| BatchManifest::from_bytes(prefix))
            .unwrap_or_else(|_| panic!("parser panicked on truncation to {len} bytes"));
        assert!(result.is_err(), "truncation to {len} bytes was accepted");
    }
}

/// The round trip itself stays exact (the fuzz tests above are only
/// meaningful if the unmutated bytes parse back to the same manifest).
#[test]
fn manifest_round_trip_is_exact() {
    let manifest = sample_manifest();
    let bytes = manifest.to_bytes().expect("serialize");
    let back = BatchManifest::from_bytes(&bytes).expect("parse back");
    assert_eq!(back.to_bytes().expect("re-serialize"), bytes);
    assert_eq!(back.seed, manifest.seed);
    assert_eq!(back.params, manifest.params);
    assert_eq!(back.jobs.len(), manifest.jobs.len());
}

/// Boundary preloads for the wrap tests: `u32::MAX - k` for small `k`,
/// so the 32-bit architectural registers sit at the very edge of the
/// wrap when profiling starts.
const BOUNDARY_PRELOADS: [(u32, u32); 4] = [
    (u32::MAX, u32::MAX),
    (u32::MAX - 1, u32::MAX - 1),
    (u32::MAX - 7, u32::MAX - 3),
    (u32::MAX - 255, u32::MAX - 64),
];

/// The subset of [`BOUNDARY_PRELOADS`] tight enough that the counters
/// are guaranteed to cross `2^32` before the instrumentation's first
/// explicit zeroing write discards the preload.
const TIGHT_PRELOADS: [(u32, u32); 2] = [(u32::MAX, u32::MAX), (u32::MAX - 1, u32::MAX - 1)];

fn workload() -> pp::workloads::Workload {
    pp::workloads::suite(0.02).swap_remove(3)
}

/// A run whose counters start near `u32::MAX` wraps almost
/// immediately; the 64-bit shadow accumulators must notice and report
/// it as a typed [`CounterNote::WrapReconciled`] with a non-zero
/// crossing count, while a clean run reports nothing.
#[test]
fn boundary_preloads_yield_wrap_notes() {
    let w = workload();
    let config = RunConfig::CombinedHw { events: EVENTS };
    let clean = Profiler::default()
        .run(&w.program, config)
        .expect("instrument")
        .expect_complete();
    assert_eq!(clean.machine.counter_note, None, "clean run noted a wrap");
    for (p0, p1) in TIGHT_PRELOADS {
        let faulted = Profiler::default()
            .with_fault_plan(FaultPlan::default().preload_pics(p0, p1))
            .run(&w.program, config)
            .expect("instrument")
            .expect_complete();
        match faulted.machine.counter_note {
            Some(CounterNote::WrapReconciled { count }) => assert!(
                count >= 1,
                "preload ({p0:#x}, {p1:#x}) reported a zero-crossing note"
            ),
            None => panic!("preload ({p0:#x}, {p1:#x}) wrapped without a note"),
        }
    }
}

/// The differential oracle holds bit-identically at the wrap boundary:
/// for every boundary preload and both hardware-metric configurations,
/// the optimized and reference interpreters agree on the architectural
/// registers, the reconciliation note, and every serialized profile
/// byte.
#[cfg(feature = "reference")]
#[test]
fn wrap_reconciliation_is_bit_identical_across_interpreters() {
    let w = workload();
    let mut any_noted = false;
    for config in [
        RunConfig::FlowHw { events: EVENTS },
        RunConfig::CombinedHw { events: EVENTS },
    ] {
        for (p0, p1) in BOUNDARY_PRELOADS {
            let ctx = format!("{config} with preload ({p0:#x}, {p1:#x})");
            let profiler =
                Profiler::default().with_fault_plan(FaultPlan::default().preload_pics(p0, p1));
            let a = profiler
                .run(&w.program, config)
                .expect("optimized run")
                .expect_complete();
            let b = profiler
                .run_reference(&w.program, config)
                .expect("reference run")
                .expect_complete();
            assert_eq!(a.machine.pics, b.machine.pics, "%pic registers: {ctx}");
            assert_eq!(a.machine.metrics, b.machine.metrics, "metrics: {ctx}");
            assert_eq!(
                a.machine.counter_note, b.machine.counter_note,
                "wrap note: {ctx}"
            );
            any_noted |= a.machine.counter_note.is_some();
            if let (Some(fa), Some(fb)) = (&a.flow, &b.flow) {
                let (mut ba, mut bb) = (Vec::new(), Vec::new());
                fa.write_to(&mut ba).expect("serialize");
                fb.write_to(&mut bb).expect("serialize");
                assert_eq!(ba, bb, "flow bytes: {ctx}");
            }
            if let (Some(ca), Some(cb)) = (&a.cct, &b.cct) {
                let (mut ba, mut bb) = (Vec::new(), Vec::new());
                pp::cct::write_cct(ca, &mut ba).expect("serialize");
                pp::cct::write_cct(cb, &mut bb).expect("serialize");
                assert_eq!(ba, bb, "cct bytes: {ctx}");
            }
        }
    }
    assert!(
        any_noted,
        "no boundary preload produced a wrap note in any configuration"
    );
}

/// A mid-run clobber — the unreconcilable fault, as opposed to a
/// wrap — is caught by the integrity walkers on both interpreters with
/// the same typed verdict.
#[cfg(feature = "reference")]
#[test]
fn clobber_verdict_agrees_across_interpreters() {
    let w = workload();
    let config = RunConfig::CombinedHw { events: EVENTS };
    let profiler = Profiler::default().with_fault_plan(FaultPlan::default().clobber_pics_at_read(
        3,
        u32::MAX - 10,
        u32::MAX - 5,
    ));
    let verdicts: Vec<String> = [
        profiler.run(&w.program, config).expect("optimized run"),
        profiler
            .run_reference(&w.program, config)
            .expect("reference run"),
    ]
    .iter()
    .map(|run| {
        assert!(run.machine.fault_log.pics_clobbered, "clobber did not fire");
        let report = pp::profiler::integrity::verify_outcome(&w.program, run);
        let first = report.first().expect("clobber must violate an invariant");
        assert!(
            matches!(first, IntegrityError::CounterWrap { .. }),
            "expected a counter-wrap verdict, got: {first}"
        );
        first.to_string()
    })
    .collect();
    assert_eq!(verdicts[0], verdicts[1], "interpreters disagree on verdict");
}

/// Hand-editing a path count in an otherwise-valid serialized flow
/// profile breaks flow conservation, and the byte-level verifier says
/// so with the typed `FlowConservation` error (the acceptance
/// scenario for the first integrity layer).
#[test]
fn hand_edited_path_count_breaks_flow_conservation() {
    // A loopy workload, so backedge-originated paths exist to tamper with.
    let spec = pp::workloads::spec_for("099.go")
        .expect("known")
        .scaled(0.05);
    let program = pp::workloads::build(&spec);
    let run = Profiler::default()
        .run(&program, RunConfig::FlowFreq)
        .expect("instrument")
        .expect_complete();
    let mut flow = run.flow.clone().expect("flow profile");
    // Inflate the count of a backedge-originated path: the extra
    // execution has no backedge event to originate it, so the
    // regenerated edge counts can no longer balance.
    let seeded = flow.iter_paths().find_map(|(proc, sum, _)| {
        let paths = pp::pathprof::ProcPaths::analyze(program.procedure(proc)).ok()?;
        match paths.decode_blocks(sum).1 {
            pp::pathprof::PathKind::BackedgeToExit { .. } => Some((proc, sum)),
            pp::pathprof::PathKind::BackedgeToBackedge { from, to } if from != to => {
                Some((proc, sum))
            }
            _ => None,
        }
    });
    let (proc, sum) = seeded.expect("a loopy workload records backedge paths");
    flow.record(proc, sum, None);
    let mut bytes = Vec::new();
    flow.write_to(&mut bytes).expect("serialize tampered flow");
    let report = pp::profiler::integrity::verify_flow_bytes(&program, &bytes);
    let first = report.first().expect("tampering must be detected");
    assert!(
        matches!(first, IntegrityError::FlowConservation { .. }),
        "expected a flow-conservation verdict, got: {first}"
    );
    let err = PpError::Integrity(report.violations.into_iter().next().unwrap());
    assert_eq!(err.exit_code(), 2, "integrity violations map to exit 2");
    let _ = FlowProfile::read_from(&mut &bytes[..]).expect("envelope itself is still valid");
}
