//! Round-trip property of the textual IR format over the whole workload
//! suite: `parse(display(p)) == p`, including data segments — so programs
//! can be saved, edited and re-profiled as text.

use pp::ir::parse::parse_program;

#[test]
fn suite_programs_roundtrip_through_text() {
    for w in pp::workloads::suite(0.03) {
        let text = w.program.to_string();
        let back = parse_program(&text).unwrap_or_else(|e| panic!("{}: {e}\n{text}", w.name));
        assert_eq!(back, w.program, "{} did not roundtrip", w.name);
        assert_eq!(back.to_string(), text, "{} text unstable", w.name);
    }
}

#[test]
fn parsed_program_profiles_identically() {
    let w = pp::workloads::suite(0.03).swap_remove(3); // compress analog
    let text = w.program.to_string();
    let parsed = parse_program(&text).expect("parses");
    let profiler = pp::profiler::Profiler::default();
    let a = profiler
        .run(&w.program, pp::profiler::RunConfig::Base)
        .expect("original runs");
    let b = profiler
        .run(&parsed, pp::profiler::RunConfig::Base)
        .expect("parsed runs");
    assert_eq!(a.machine.metrics, b.machine.metrics);
}
