//! The Section 6.4 experience, end to end: find the hot paths of a
//! benchmark, classify them dense/sparse, compare with the procedure-level
//! view, and show why procedure-level attribution cannot isolate the
//! behaviour (the paper's Section 6.4.3 argument).
//!
//! ```sh
//! cargo run --release --example hot_paths [benchmark-name]
//! ```

use pp::ir::HwEvent;
use pp::profiler::{analysis, Profiler, RunConfig};

fn main() {
    let wanted = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "101.tomcatv".to_string());
    let suite = pp::workloads::suite(0.5);
    let workload = suite.iter().find(|w| w.name == wanted).unwrap_or_else(|| {
        panic!(
            "unknown benchmark {wanted}; pick one of {:?}",
            pp::workloads::SUITE_NAMES
        )
    });

    let profiler = Profiler::default();
    let run = profiler
        .run(
            &workload.program,
            RunConfig::FlowHw {
                events: (HwEvent::Insts, HwEvent::DcMiss),
            },
        )
        .expect("flow run");
    let flow = run.flow.as_ref().expect("profile");
    let inst = run.instrumented.as_ref().expect("instrumented");

    let threshold = 0.01;
    let paths = analysis::hot_paths(flow, threshold);
    println!("== {} ==", workload.name);
    println!(
        "{} executed paths; total {} instructions, {} L1 D-misses (avg ratio {:.4})",
        paths.executed,
        paths.total_inst,
        paths.total_miss,
        analysis::overall_miss_ratio(flow),
    );
    println!(
        "\n{} hot paths (>= {:.1}% of misses) carry {:.1}% of misses on {:.1}% of instructions",
        paths.hot.len(),
        100.0 * threshold,
        100.0 * paths.hot_miss_fraction(),
        100.0 * paths.hot_inst_fraction(),
    );
    println!(
        "  dense: {}   sparse: {}   cold: {} paths with {:.1}% of misses",
        paths.dense().count(),
        paths.sparse().count(),
        paths.cold_count,
        if paths.total_miss == 0 {
            0.0
        } else {
            100.0 * paths.cold_miss as f64 / paths.total_miss as f64
        },
    );

    println!("\ntop hot paths:");
    for p in paths.hot.iter().take(8) {
        let name = &workload.program.procedure(p.proc).name;
        let ratio = if p.inst > 0 {
            p.miss as f64 / p.inst as f64
        } else {
            0.0
        };
        println!(
            "  {name:<14} sum={:<6} misses={:<8} freq={:<7} ratio={ratio:.4} [{:?}]",
            p.sum, p.miss, p.freq, p.class
        );
    }

    let procs = analysis::hot_procedures(flow, &workload.program, threshold);
    let hot_refs: Vec<&analysis::ProcStat> = procs.hot.iter().collect();
    println!(
        "\nprocedure-level view: {} hot procedures carry {:.1}% of misses",
        procs.hot.len(),
        100.0 * procs.miss_fraction(&hot_refs),
    );
    println!(
        "but each hot procedure executes {:.1} paths on average, so knowing",
        analysis::HotProcReport::avg_paths(&hot_refs)
    );
    let multiplicity = analysis::block_path_multiplicity(inst, flow, &paths);
    println!(
        "the procedure does not isolate behaviour: blocks on hot paths lie on \
         {multiplicity:.1} executed paths each (paper: ~16)."
    );
}
