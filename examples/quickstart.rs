//! Quick start: profile a synthetic benchmark and print its hottest paths.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pp::ir::HwEvent;
use pp::profiler::{analysis, Profiler, RunConfig};

fn main() {
    // Grab the 129.compress analog from the suite at a small scale.
    let suite = pp::workloads::suite(0.5);
    let workload = suite
        .iter()
        .find(|w| w.name == "129.compress")
        .expect("suite contains compress");

    let profiler = Profiler::default();

    // First, the uninstrumented base run: ground-truth machine metrics.
    let base = profiler
        .run(&workload.program, RunConfig::Base)
        .expect("base run");
    println!("== {} (base run) ==", workload.name);
    println!(
        "cycles: {}   instructions: {}   L1 D-misses: {}",
        base.cycles(),
        base.machine.metrics.get(HwEvent::Insts),
        base.machine.metrics.get(HwEvent::DcMiss),
    );

    // Now flow sensitive profiling: instructions and L1 misses per path.
    let run = profiler
        .run(
            &workload.program,
            RunConfig::FlowHw {
                events: (HwEvent::Insts, HwEvent::DcMiss),
            },
        )
        .expect("flow run");
    let flow = run.flow.as_ref().expect("flow profile");
    println!(
        "\nprofiled run: {} cycles ({:.2}x overhead), {} distinct paths executed",
        run.cycles(),
        run.cycles() as f64 / base.cycles() as f64,
        flow.total_paths_executed(),
    );

    let hot = analysis::hot_paths(flow, 0.01);
    println!(
        "\nhot paths (>= 1% of misses): {} paths cover {:.1}% of all L1 D-misses",
        hot.hot.len(),
        100.0 * hot.hot_miss_fraction(),
    );
    let inst = run.instrumented.as_ref().expect("instrumented");
    println!("\n  proc              path  freq      inst     miss  class  blocks");
    for p in hot.hot.iter().take(10) {
        let name = &workload.program.procedure(p.proc).name;
        let blocks = inst
            .decode_path(p.proc, p.sum)
            .map(|(bs, _)| {
                bs.iter()
                    .map(|b| b.0.to_string())
                    .collect::<Vec<_>>()
                    .join("-")
            })
            .unwrap_or_default();
        println!(
            "  {name:<16} {:>5} {:>5} {:>9} {:>8}  {:?}  {blocks}",
            p.sum, p.freq, p.inst, p.miss, p.class
        );
    }
}
