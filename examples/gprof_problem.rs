//! Demonstrates the "gprof problem" (paper Sections 1, 4.1, 7.1): a
//! call-graph profiler attributes a shared callee's cost to its callers in
//! proportion to call *frequency*, which can be arbitrarily wrong; the
//! calling context tree records the truth per context.
//!
//! ```sh
//! cargo run --example gprof_problem
//! ```

use pp::baselines::{attribution_error, run_gprof};
use pp::ir::build::ProgramBuilder;
use pp::ir::{HwEvent, Operand, Program, Reg};
use pp::profiler::{Profiler, RunConfig};
use pp::usim::MachineConfig;

/// `cheap` calls `work(1)` nine times; `expensive` calls `work(4000)`
/// once. Nearly all of `work`'s cycles belong to `expensive`, but gprof
/// splits them 9:1 the other way.
fn build_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let work = pb.declare("work");
    let cheap = pb.declare("cheap");
    let expensive = pb.declare("expensive");

    let mut m = pb.procedure("main");
    let e = m.entry_block();
    m.block(e)
        .call(cheap, vec![], None)
        .call(expensive, vec![], None)
        .ret();
    let main = m.finish();

    let mut w = pb.procedure_for(work);
    let e = w.entry_block();
    let h = w.new_block();
    let body = w.new_block();
    let x = w.new_block();
    w.reserve_regs(1);
    let n = Reg(0);
    let i = w.new_reg();
    let c = w.new_reg();
    let a = w.new_reg();
    let v = w.new_reg();
    w.block(e).mov(i, 0i64).jump(h);
    w.block(h).cmp_lt(c, i, Operand::Reg(n)).branch(c, body, x);
    w.block(body)
        .mul(a, i, 64i64)
        .add(a, a, 0x40_0000i64)
        .load(v, a, 0)
        .add(i, i, 1i64)
        .jump(h);
    w.block(x).ret();
    w.finish();

    let mut cp = pb.procedure_for(cheap);
    let e = cp.entry_block();
    let mut bb = cp.block(e);
    for _ in 0..9 {
        bb.call(work, vec![Operand::Imm(1)], None);
    }
    bb.ret();
    cp.finish();

    let mut ep = pb.procedure_for(expensive);
    let e = ep.entry_block();
    ep.block(e).call(work, vec![Operand::Imm(4000)], None).ret();
    ep.finish();

    pb.finish(main)
}

fn main() {
    let program = build_program();
    let events = (HwEvent::Cycles, HwEvent::DcMiss);

    let gprof = run_gprof(&program, MachineConfig::default(), events).expect("gprof run");
    let work = program.find_procedure("work").expect("work exists").0;
    let cheap = program.find_procedure("cheap").expect("cheap exists").0;
    let expensive = program
        .find_procedure("expensive")
        .expect("expensive exists")
        .0;

    println!("gprof's view of `work` (cycles attributed proportionally to call counts):");
    for (caller, cycles) in gprof.dcg.gprof_attribution(work, 0) {
        let name = match caller {
            Some(p) if p == cheap => "cheap",
            Some(p) if p == expensive => "expensive",
            _ => "other",
        };
        println!("  from {name:<10} {cycles:>12.0} cycles");
    }

    let profiler = Profiler::default();
    let cct_run = profiler
        .run(&program, RunConfig::ContextHw { events })
        .expect("cct run");
    let cct = cct_run.cct.as_ref().expect("cct built");

    println!("\nthe CCT's view (exact cycles per calling context):");
    for id in cct.record_ids().skip(1) {
        let r = cct.record(id);
        if r.proc() == Some(work) {
            let chain: Vec<String> = r
                .context()
                .iter()
                .map(|&p| program.procedure(pp::ir::ProcId(p)).name.clone())
                .collect();
            println!(
                "  {} -> {:>12} cycles over {} calls",
                chain.join(" -> "),
                r.metrics()[0],
                r.calls()
            );
        }
    }

    let err = attribution_error(&gprof.dcg, cct, work, 0);
    println!(
        "\nattribution error (total variation distance): {:.1}%",
        100.0 * err
    );
    println!("gprof blames the frequent caller; the CCT does not.");
}
