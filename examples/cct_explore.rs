//! Builds the calling context tree of a recursive, indirect-calling
//! workload; prints the tree, its Table 3-style statistics, and round
//! trips it through the profile file format.
//!
//! ```sh
//! cargo run --release --example cct_explore
//! ```

use pp::cct::{read_cct, write_cct, CctStats};
use pp::ir::HwEvent;
use pp::profiler::{Profiler, RunConfig};

fn main() {
    // The 130.li analog: deep recursion plus indirect dispatch.
    let suite = pp::workloads::suite(0.25);
    let workload = suite
        .iter()
        .find(|w| w.name == "130.li")
        .expect("suite contains li");

    let profiler = Profiler::default();
    let run = profiler
        .run(
            &workload.program,
            RunConfig::CombinedHw {
                events: (HwEvent::Insts, HwEvent::DcMiss),
            },
        )
        .expect("combined run");
    let cct = run.cct.as_ref().expect("cct built");

    println!("== calling context tree of {} ==", workload.name);
    print!("{}", cct.render_tree(3, 40));

    let stats = CctStats::compute(cct);
    println!("\n== Table 3-style statistics ==");
    println!("records:          {}", stats.nodes);
    println!("file size:        {} bytes", stats.file_size);
    println!("avg node size:    {:.1} bytes", stats.avg_node_size);
    println!("avg out degree:   {:.1}", stats.avg_out_degree);
    println!(
        "height:           {:.1} avg / {} max",
        stats.height_avg, stats.height_max
    );
    println!("max replication:  {}", stats.max_replication);
    println!(
        "call sites:       {} total, {} used, {} reached by one path",
        stats.call_sites_total, stats.call_sites_used, stats.call_sites_one_path
    );

    // "Immediately before the program terminates, the instrumentation
    // writes the heap containing the CCT to a file."
    let mut file = Vec::new();
    write_cct(cct, &mut file).expect("serialize");
    let restored = read_cct(&mut file.as_slice()).expect("deserialize");
    assert_eq!(restored.num_records(), cct.num_records());
    println!(
        "\nprofile file round trip: {} bytes, {} records restored",
        file.len(),
        restored.num_records()
    );
}
