//! A tomcatv-style scenario: the same computation with cache-friendly and
//! cache-hostile traversal orders, in one program. Procedure-level
//! profiling shows both kernels "hot"; the path-level view (plus the
//! dense/sparse classification) immediately separates the locality
//! problem from the volume problem — the paper's core selling point.
//!
//! Sums a matrix twice: row-major (sequential, cache friendly) and
//! column-major (strided by the row pitch, one miss per access once the
//! matrix exceeds the 16 KB L1).
//!
//! ```sh
//! cargo run --release --example matrix
//! ```

use pp::ir::build::ProgramBuilder;
use pp::ir::{HwEvent, Program};
use pp::profiler::{analysis, Profiler, RunConfig};

const MATRIX_BASE: i64 = 0x0500_0000;
const N: i64 = 96; // 96 x 96 x 8 bytes = 72 KB >> 16 KB L1

/// Builds a kernel that sums matrix[i][j] over the full index space, with
/// the loops in the given order (`row_major` = i outer, j inner).
fn build_kernel(pb: &mut ProgramBuilder, name: &str, row_major: bool) -> pp::ir::ProcId {
    let mut f = pb.procedure(name);
    let entry = f.entry_block();
    let oh = f.new_block(); // outer header
    let ih = f.new_block(); // inner header
    let body = f.new_block();
    let itail = f.new_block();
    let oexit = f.new_block();
    let x = f.new_block();

    let i = f.new_reg();
    let j = f.new_reg();
    let c = f.new_reg();
    let addr = f.new_reg();
    let acc = f.new_freg();
    let v = f.new_freg();

    f.block(entry).mov(i, 0i64).fconst(acc, 0.0).jump(oh);
    f.block(oh).cmp_lt(c, i, N).branch(c, ih, x);
    f.block(ih).mov(j, 0i64).jump(body);
    // body: addr = base + (row*N + col) * 8
    {
        let (row, col) = if row_major { (i, j) } else { (j, i) };
        f.block(body)
            .mul(addr, row, N)
            .add(addr, addr, pp::ir::Operand::Reg(col))
            .mul(addr, addr, 8i64)
            .add(addr, addr, MATRIX_BASE)
            .fload(v, addr, 0)
            .fbin(pp::ir::instr::FBinOp::Add, acc, acc, v)
            .jump(itail);
    }
    f.block(itail)
        .add(j, j, 1i64)
        .cmp_lt(c, j, N)
        .branch(c, body, oexit);
    f.block(oexit).add(i, i, 1i64).jump(oh);
    f.block(x).ret();
    f.finish()
}

fn build_program() -> Program {
    let mut pb = ProgramBuilder::new();
    let main_id = pb.declare("main");
    let fast = build_kernel(&mut pb, "sum_row_major", true);
    let slow = build_kernel(&mut pb, "sum_col_major", false);
    let mut m = pb.procedure_for(main_id);
    let e = m.entry_block();
    m.block(e)
        .call(fast, vec![], None)
        .call(slow, vec![], None)
        .ret();
    m.finish();
    pb.finish(main_id)
}

fn main() {
    let program = build_program();
    let profiler = Profiler::default();
    let run = profiler
        .run(
            &program,
            RunConfig::FlowHw {
                events: (HwEvent::Insts, HwEvent::DcMiss),
            },
        )
        .expect("runs");
    let flow = run.flow.as_ref().expect("profile");

    println!("== {N}x{N} f64 matrix summed row-major then column-major ==\n");

    let procs = analysis::hot_procedures(flow, &program, 0.01);
    println!("procedure view (what a conventional profiler reports):");
    for p in procs.hot.iter().chain(procs.cold.iter()) {
        if p.inst == 0 {
            continue;
        }
        println!(
            "  {:<16} {:>9} insts  {:>7} misses  ratio {:.4}",
            p.name,
            p.inst,
            p.miss,
            p.miss as f64 / p.inst as f64
        );
    }

    let paths = analysis::hot_paths(flow, 0.01);
    println!("\npath view with dense/sparse classification (Section 6.4.1):");
    for p in &paths.hot {
        println!(
            "  {:<16} path {:<3} freq {:>6}  misses {:>7}  {:?}",
            program.procedure(p.proc).name,
            p.sum,
            p.freq,
            p.miss,
            p.class
        );
    }
    println!(
        "\nboth kernels execute identical instruction counts, but the\n\
         column-major kernel's inner-loop path is *dense* (a locality\n\
         problem worth fixing) while the row-major one is sparse or cold —\n\
         a distinction the procedure table above cannot make."
    );
}
