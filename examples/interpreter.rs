//! A realistic profiling scenario: a bytecode interpreter *written in the
//! IR*, running a bytecode program — the li/perl-style workload whose
//! dispatch loop motivates path profiling. Each opcode handler is a
//! distinct Ball–Larus path through the dispatch loop, so the flow profile
//! directly reports the dynamic opcode mix and per-opcode costs — which no
//! flat profile of the (single) interpreter procedure could show.
//!
//! ```sh
//! cargo run --release --example interpreter
//! ```

use pp::ir::build::ProgramBuilder;
use pp::ir::{HwEvent, Operand, Program};
use pp::profiler::{analysis, Profiler, RunConfig};

/// Bytecode opcodes of the little stack machine.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// Push an immediate.
    Push(i64),
    /// Pop two, push their sum.
    Add,
    /// Pop two, push `a - b`.
    Sub,
    /// Duplicate the top of stack.
    Dup,
    /// Push global `idx`.
    GLoad(usize),
    /// Pop into global `idx`.
    GStore(usize),
    /// Pop; jump to absolute instruction `target` if nonzero.
    Jnz(usize),
    /// Stop; the top of stack is the result.
    Halt,
}

const OP_NAMES: [&str; 8] = [
    "PUSH", "ADD", "SUB", "DUP", "GLOAD", "GSTORE", "JNZ", "HALT",
];

/// Encodes ops as (opcode, operand) pairs of 8-byte words.
fn assemble(ops: &[Op]) -> Vec<u64> {
    let mut words = Vec::new();
    for op in ops {
        let (code, operand) = match *op {
            Op::Push(k) => (0u64, k as u64),
            Op::Add => (1, 0),
            Op::Sub => (2, 0),
            Op::Dup => (3, 0),
            Op::GLoad(i) => (4, i as u64),
            Op::GStore(i) => (5, i as u64),
            Op::Jnz(t) => (6, t as u64),
            Op::Halt => (7, 0),
        };
        words.push(code);
        words.push(operand);
    }
    words
}

const BYTECODE_BASE: u64 = 0x0200_0000;
const STACK_BASE: i64 = 0x0300_0000;
const GLOBALS_BASE: i64 = 0x0400_0000;

/// Builds the interpreter in the IR: a fetch/dispatch loop switching to
/// one handler block per opcode.
fn build_interpreter(bytecode: &[u64]) -> Program {
    let mut pb = ProgramBuilder::new();
    pb.data_words(BYTECODE_BASE, bytecode);

    let mut f = pb.procedure("interp");
    let entry = f.entry_block();
    let dispatch = f.new_block();
    let handlers: Vec<_> = (0..8).map(|_| f.new_block()).collect();
    let bad = f.new_block();
    let done = f.new_block();

    let pc = f.new_reg();
    let sp = f.new_reg(); // byte address of the next free stack slot
    let opcode = f.new_reg();
    let operand = f.new_reg();
    let a = f.new_reg();
    let b = f.new_reg();
    let addr = f.new_reg();

    f.block(entry)
        .mov(pc, 0i64)
        .mov(sp, STACK_BASE)
        .jump(dispatch);

    // dispatch: opcode = bc[pc*16], operand = bc[pc*16 + 8]; pc += 1.
    f.block(dispatch)
        .mul(addr, pc, 16i64)
        .add(addr, addr, BYTECODE_BASE as i64)
        .load(opcode, addr, 0)
        .load(operand, addr, 8)
        .add(pc, pc, 1i64)
        .switch(opcode, handlers.clone(), bad);

    // PUSH
    f.block(handlers[0])
        .store(Operand::Reg(operand), sp, 0)
        .add(sp, sp, 8i64)
        .jump(dispatch);
    // ADD
    f.block(handlers[1])
        .sub(sp, sp, 8i64)
        .load(b, sp, 0)
        .load(a, sp, -8)
        .add(a, a, Operand::Reg(b))
        .store(Operand::Reg(a), sp, -8)
        .jump(dispatch);
    // SUB
    f.block(handlers[2])
        .sub(sp, sp, 8i64)
        .load(b, sp, 0)
        .load(a, sp, -8)
        .sub(a, a, Operand::Reg(b))
        .store(Operand::Reg(a), sp, -8)
        .jump(dispatch);
    // DUP
    f.block(handlers[3])
        .load(a, sp, -8)
        .store(Operand::Reg(a), sp, 0)
        .add(sp, sp, 8i64)
        .jump(dispatch);
    // GLOAD
    f.block(handlers[4])
        .mul(addr, operand, 8i64)
        .add(addr, addr, GLOBALS_BASE)
        .load(a, addr, 0)
        .store(Operand::Reg(a), sp, 0)
        .add(sp, sp, 8i64)
        .jump(dispatch);
    // GSTORE
    f.block(handlers[5])
        .sub(sp, sp, 8i64)
        .load(a, sp, 0)
        .mul(addr, operand, 8i64)
        .add(addr, addr, GLOBALS_BASE)
        .store(Operand::Reg(a), addr, 0)
        .jump(dispatch);
    // JNZ
    {
        let taken = f.new_block();
        f.block(handlers[6])
            .sub(sp, sp, 8i64)
            .load(a, sp, 0)
            .branch(a, taken, dispatch);
        f.block(taken).mov(pc, Operand::Reg(operand)).jump(dispatch);
    }
    // HALT: top of stack to r0
    f.block(handlers[7]).load(pp::ir::Reg(0), sp, -8).jump(done);
    f.block(bad).jump(done);
    f.block(done).ret();
    let id = f.finish();
    pb.finish(id)
}

fn main() {
    // Bytecode: acc = 0; n = N; do { acc += n; n -= 1 } while n; halt acc.
    let n = 400i64;
    let program_ops = vec![
        Op::Push(0),   // 0
        Op::GStore(0), // 1: acc = 0
        Op::Push(n),   // 2
        Op::GStore(1), // 3: n = N
        // loop (pc = 4):
        Op::GLoad(0),  // 4: [acc]
        Op::GLoad(1),  // 5: [acc, n]
        Op::Add,       // 6: [acc + n]
        Op::GStore(0), // 7: acc += n
        Op::GLoad(1),  // 8: [n]
        Op::Push(1),   // 9: [n, 1]
        Op::Sub,       // 10: [n - 1]
        Op::Dup,       // 11: [n-1, n-1]
        Op::GStore(1), // 12: n = n - 1; [n-1]
        Op::Jnz(4),    // 13: loop while n != 0
        Op::GLoad(0),  // 14: [acc]
        Op::Halt,      // 15
    ];
    let bytecode = assemble(&program_ops);
    let program = build_interpreter(&bytecode);

    let profiler = Profiler::default();
    let run = profiler
        .run(
            &program,
            RunConfig::FlowHw {
                events: (HwEvent::Insts, HwEvent::DcMiss),
            },
        )
        .expect("interpreter runs");
    let flow = run.flow.as_ref().expect("profile");
    let inst = run.instrumented.as_ref().expect("manifest");

    println!("== bytecode interpreter (sum 1..={n}) under flow profiling ==");
    println!(
        "{} simulated cycles, {} dispatch paths executed\n",
        run.cycles(),
        flow.total_paths_executed()
    );

    // Each executed path is one trip around the dispatch loop through one
    // handler: the flow profile *is* the dynamic opcode mix with exact
    // per-opcode instruction costs.
    println!("path  freq   inst/exec  opcode   blocks");
    let mut rows: Vec<_> = flow.iter_paths().collect();
    rows.sort_by_key(|&(_, _, c)| std::cmp::Reverse(c.freq));
    for (proc, sum, cell) in rows.iter().take(12) {
        let blocks = inst.decode_path(*proc, *sum).map(|(bs, _)| bs);
        let label = blocks
            .as_ref()
            .and_then(|bs| {
                bs.iter()
                    .find(|b| (2..10).contains(&b.0))
                    .map(|b| OP_NAMES[(b.0 - 2) as usize])
            })
            .unwrap_or("-");
        let chain = blocks
            .map(|bs| {
                bs.iter()
                    .map(|b| b.0.to_string())
                    .collect::<Vec<_>>()
                    .join("-")
            })
            .unwrap_or_default();
        println!(
            "{sum:>4}  {:>5}  {:>9}  {label:<7}  {chain}",
            cell.freq,
            cell.m0.checked_div(cell.freq).unwrap_or(0),
        );
    }

    let hot = analysis::hot_paths(flow, 0.01);
    println!(
        "\nthe dispatch loop is one procedure: a flat profile shows only\n\
         'interp is hot'; the path profile separates {} opcode trips, with\n\
         {} hot paths carrying {:.0}% of the L1 misses.",
        flow.total_paths_executed(),
        hot.hot.len(),
        100.0 * hot.hot_miss_fraction()
    );
}
