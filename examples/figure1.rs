//! Regenerates the paper's Figure 1: the six-path graph, its edge
//! labelling with unique compact path sums, the simple instrumentation,
//! and the optimized (spanning-tree) instrumentation.
//!
//! ```sh
//! cargo run --example figure1
//! ```

use pp::pathprof::{PathGraph, Placement, WeightSource};

const NAMES: [&str; 6] = ["A", "B", "C", "D", "E", "F"];

fn main() {
    // Vertices A..F = 0..5; successor order chosen as in the paper so the
    // path encoding matches Figure 1(b).
    let mut g = PathGraph::new(6, 0, 5);
    let edges = [
        (0u32, 2u32), // A -> C
        (0, 1),       // A -> B
        (1, 2),       // B -> C
        (1, 3),       // B -> D
        (2, 3),       // C -> D
        (3, 5),       // D -> F
        (3, 4),       // D -> E
        (4, 5),       // E -> F
    ];
    for &(u, v) in &edges {
        g.add_edge(u, v);
    }
    let labeling = g.label().expect("acyclic graph labels");

    println!("Figure 1(a): edge labelling with unique path sums");
    for (i, &(u, v)) in edges.iter().enumerate() {
        println!(
            "  {} -> {}   Val = {}",
            NAMES[u as usize],
            NAMES[v as usize],
            labeling.val(i as u32)
        );
    }

    println!(
        "\nFigure 1(b): the {} paths and their sums",
        labeling.num_paths()
    );
    for p in labeling.iter_paths() {
        let path: String = p.nodes.iter().map(|&n| NAMES[n as usize]).collect();
        println!("  {path:<8} = {}", p.sum);
    }

    let simple = Placement::simple(&labeling);
    println!(
        "\nFigure 1(c): simple instrumentation ({} instrumented edges)",
        simple.num_instrumented_edges()
    );
    for inc in simple.nonzero_increments() {
        let (u, v) = g.edge(inc.edge);
        println!(
            "  r += {} on {} -> {}",
            inc.amount, NAMES[u as usize], NAMES[v as usize]
        );
    }

    let optimized = Placement::optimized(&labeling, WeightSource::Uniform);
    println!(
        "\nFigure 1(d): optimized instrumentation ({} instrumented edges)",
        optimized.num_instrumented_edges()
    );
    for inc in optimized.nonzero_increments() {
        let (u, v) = g.edge(inc.edge);
        println!(
            "  r += {} on {} -> {}",
            inc.amount, NAMES[u as usize], NAMES[v as usize]
        );
    }
    println!("  count[r + {}]++ at EXIT", optimized.exit_const());
}
