//! The leveled logger: one stderr gate for every diagnostic line.
//!
//! The CLI's stdout is machine-parseable (tables, JSON); everything
//! else — warnings about aborted runs, merge notices, debug chatter —
//! goes through [`warn!`], [`info!`], or [`debug!`]. The level comes
//! from `PP_LOG` (`warn` by default) and can be forced by the CLI's
//! `--quiet` flag via [`set_level`].
//!
//! ```
//! pp_obs::log::set_level(pp_obs::Level::Debug);
//! pp_obs::info!("merged {} cases", 18);
//! pp_obs::log::set_level(pp_obs::Level::Warn); // restore the default
//! ```

use std::sync::atomic::{AtomicU8, Ordering};

/// Verbosity levels, ordered: a message prints when its level is at or
/// below the configured one.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
#[repr(u8)]
pub enum Level {
    /// Suppress everything (the CLI's `--quiet`).
    Quiet = 0,
    /// Problems the user should see (default).
    Warn = 1,
    /// Progress and decisions (file merges, degraded modes).
    Info = 2,
    /// Everything, for debugging the profiler itself.
    Debug = 3,
}

impl Level {
    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "quiet" | "off" | "none" => Some(Level::Quiet),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" | "trace" => Some(Level::Debug),
            _ => None,
        }
    }

    /// The label printed in brackets before each message.
    pub fn label(self) -> &'static str {
        match self {
            Level::Quiet => "quiet",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Current level + 1; 0 means "not yet initialized from PP_LOG".
static LEVEL: AtomicU8 = AtomicU8::new(0);

fn init() -> u8 {
    let lv = std::env::var("PP_LOG")
        .ok()
        .and_then(|s| Level::parse(&s))
        .unwrap_or(Level::Warn);
    let enc = lv as u8 + 1;
    // A concurrent set_level wins; only fill the uninitialized slot.
    let _ = LEVEL.compare_exchange(0, enc, Ordering::Relaxed, Ordering::Relaxed);
    LEVEL.load(Ordering::Relaxed)
}

/// The level in effect (reads `PP_LOG` on first use).
pub fn level() -> Level {
    let enc = match LEVEL.load(Ordering::Relaxed) {
        0 => init(),
        v => v,
    };
    match enc - 1 {
        0 => Level::Quiet,
        1 => Level::Warn,
        2 => Level::Info,
        _ => Level::Debug,
    }
}

/// Overrides the level (CLI flags beat the environment).
pub fn set_level(lv: Level) {
    LEVEL.store(lv as u8 + 1, Ordering::Relaxed);
}

/// Would a message at `lv` print?
pub fn enabled(lv: Level) -> bool {
    lv != Level::Quiet && lv <= level()
}

/// Implementation detail of the logging macros.
#[doc(hidden)]
pub fn emit(lv: Level, args: std::fmt::Arguments<'_>) {
    if enabled(lv) {
        eprintln!("pp [{}] {args}", lv.label());
    }
}

/// Logs at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log::emit($crate::Level::Warn, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log::emit($crate::Level::Info, format_args!($($arg)*))
    };
}

/// Logs at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log::emit($crate::Level::Debug, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_and_parse() {
        assert!(Level::Quiet < Level::Warn);
        assert!(Level::Warn < Level::Info);
        assert!(Level::Info < Level::Debug);
        assert_eq!(Level::parse("INFO"), Some(Level::Info));
        assert_eq!(Level::parse("off"), Some(Level::Quiet));
        assert_eq!(Level::parse("bogus"), None);
    }

    #[test]
    fn quiet_gates_everything() {
        let before = level();
        set_level(Level::Quiet);
        assert!(!enabled(Level::Warn));
        assert!(!enabled(Level::Quiet), "quiet is never an emit level");
        set_level(Level::Debug);
        assert!(enabled(Level::Warn));
        assert!(enabled(Level::Debug));
        set_level(before);
    }
}
