//! Structured tracing: RAII wall-clock spans in a bounded per-thread
//! ring buffer.
//!
//! A span is opened with [`span`] (or the [`span!`](crate::span!) macro)
//! and records its duration when the guard drops. Recording is off by
//! default: a disabled [`span`] costs one relaxed atomic load and
//! constructs an inert guard, so spans can stay in the pipeline
//! permanently. Enable with [`enable`] (the CLI wires `--trace` /
//! `--trace-out` / `PP_TRACE=1` to it), then drain the calling thread's
//! buffer with [`take_events`] and render with [`chrome_trace`] (load
//! in `chrome://tracing` or Perfetto) or [`collapsed_stacks`]
//! (flamegraph folded format).
//!
//! The buffer is bounded ([`set_capacity`], default 65 536 events): a
//! long run overwrites its *oldest* completed spans rather than growing
//! without bound, and the number dropped is reported alongside the
//! drained events.
//!
//! ```
//! pp_obs::trace::enable(true);
//! {
//!     let _outer = pp_obs::span!("decode");
//!     let _inner = pp_obs::span!("validate");
//! }
//! let (events, dropped) = pp_obs::trace::take_events();
//! assert_eq!(events.len(), 2);
//! assert_eq!(dropped, 0);
//! pp_obs::trace::enable(false);
//! ```

use std::cell::RefCell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// One completed span, timestamped in nanoseconds since the process's
/// trace epoch (the first span ever opened).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SpanEvent {
    /// The span's name (the phase it timed).
    pub name: &'static str,
    /// Start, nanoseconds since the trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth at open (0 = top level) on the recording thread.
    pub depth: u16,
}

impl SpanEvent {
    /// End timestamp, nanoseconds since the trace epoch.
    pub fn end_ns(&self) -> u64 {
        self.start_ns + self.dur_ns
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();

const DEFAULT_CAPACITY: usize = 65_536;

struct TraceBuf {
    events: VecDeque<SpanEvent>,
    capacity: usize,
    dropped: u64,
    depth: u16,
}

impl TraceBuf {
    fn push(&mut self, ev: SpanEvent) {
        if self.events.len() >= self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(ev);
    }
}

thread_local! {
    static BUF: RefCell<TraceBuf> = const {
        RefCell::new(TraceBuf {
            events: VecDeque::new(),
            capacity: DEFAULT_CAPACITY,
            dropped: 0,
            depth: 0,
        })
    };
}

/// Turns span recording on or off process-wide. Spans opened while
/// disabled record nothing, even if recording is enabled before they
/// drop.
pub fn enable(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Is span recording on?
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Reads `PP_TRACE` (any value but `0`/empty enables) and applies it.
pub fn init_from_env() {
    if let Ok(v) = std::env::var("PP_TRACE") {
        if !v.is_empty() && v != "0" {
            enable(true);
        }
    }
}

/// Bounds the calling thread's ring buffer to `capacity` completed
/// spans (at least 16; excess oldest events are dropped and counted).
pub fn set_capacity(capacity: usize) {
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        b.capacity = capacity.max(16);
        while b.events.len() > b.capacity {
            b.events.pop_front();
            b.dropped += 1;
        }
    });
}

/// Opens a span; its duration is recorded when the returned guard
/// drops. Inert (and nearly free) while recording is disabled.
#[must_use = "the span measures until the guard drops"]
pub fn span(name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard {
            name,
            start: None,
            depth: 0,
        };
    }
    let epoch = *EPOCH.get_or_init(Instant::now);
    let depth = BUF.with(|b| {
        let mut b = b.borrow_mut();
        let d = b.depth;
        b.depth = b.depth.saturating_add(1);
        d
    });
    SpanGuard {
        name,
        start: Some((epoch, Instant::now())),
        depth,
    }
}

/// RAII guard returned by [`span`]; records the span on drop.
#[derive(Debug)]
pub struct SpanGuard {
    name: &'static str,
    /// `(epoch, open time)`; `None` for an inert guard.
    start: Option<(Instant, Instant)>,
    depth: u16,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some((epoch, start)) = self.start else {
            return;
        };
        let ev = SpanEvent {
            name: self.name,
            start_ns: start.duration_since(epoch).as_nanos() as u64,
            dur_ns: start.elapsed().as_nanos() as u64,
            depth: self.depth,
        };
        BUF.with(|b| {
            let mut b = b.borrow_mut();
            b.depth = b.depth.saturating_sub(1);
            b.push(ev);
        });
    }
}

/// Opens a span named by a string literal:
/// `let _span = pp_obs::span!("decode");`
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name)
    };
}

/// Drains the calling thread's completed spans, returning them in
/// completion order plus the count of events the bounded buffer had to
/// drop. Resets the drop counter.
pub fn take_events() -> (Vec<SpanEvent>, u64) {
    BUF.with(|b| {
        let mut b = b.borrow_mut();
        let events = b.events.drain(..).collect();
        let dropped = std::mem::take(&mut b.dropped);
        (events, dropped)
    })
}

/// Sums span durations by name — the per-phase wall-time table `pp
/// stats` prints. Deterministically ordered by name.
pub fn totals_by_name(events: &[SpanEvent]) -> BTreeMap<&'static str, u64> {
    let mut m: BTreeMap<&'static str, u64> = BTreeMap::new();
    for ev in events {
        *m.entry(ev.name).or_default() += ev.dur_ns;
    }
    m
}

/// Renders events as Chrome `trace_event` JSON (the "JSON Array
/// Format" object wrapper): complete (`"ph":"X"`) events with
/// microsecond timestamps, loadable in `chrome://tracing` / Perfetto.
///
/// `dropped` is the ring-buffer overflow count reported by
/// [`take_events`]; when nonzero it is surfaced as a top-level
/// `droppedSpans` field plus a warning in `otherData`, so a truncated
/// trace is never mistaken for a complete one.
pub fn chrome_trace(events: &[SpanEvent], dropped: u64) -> String {
    let mut s = String::from("{\"displayTimeUnit\":\"ms\",");
    if dropped > 0 {
        let _ = write!(
            s,
            "\"droppedSpans\":{dropped},\"otherData\":{{\"warning\":\
             \"ring buffer overflowed; {dropped} oldest spans dropped\"}},"
        );
    }
    s.push_str("\"traceEvents\":[");
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"name\":{},\"cat\":\"pp\",\"ph\":\"X\",\"pid\":1,\"tid\":1,\
             \"ts\":{:.3},\"dur\":{:.3}}}",
            crate::json::quote(ev.name),
            ev.start_ns as f64 / 1e3,
            ev.dur_ns as f64 / 1e3,
        );
    }
    s.push_str("]}\n");
    s
}

/// Renders events in the collapsed-stack ("folded") format flamegraph
/// tools consume: `parent;child <exclusive-µs>` per line, aggregated
/// and sorted. Nesting is reconstructed from the recorded intervals,
/// and each frame is charged its *exclusive* time (children
/// subtracted).
///
/// `dropped` is the ring-buffer overflow count reported by
/// [`take_events`]; when nonzero a synthetic `trace.dropped;<n>-spans`
/// footer frame makes the loss visible in the rendered flamegraph.
pub fn collapsed_stacks(events: &[SpanEvent], dropped: u64) -> String {
    // Sort parents before their children: by start ascending, and at
    // equal starts the longer (enclosing) span first.
    let mut sorted: Vec<&SpanEvent> = events.iter().collect();
    sorted.sort_by(|a, b| {
        a.start_ns
            .cmp(&b.start_ns)
            .then(b.dur_ns.cmp(&a.dur_ns))
            .then(a.depth.cmp(&b.depth))
    });
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    // Open stack of enclosing spans: (end_ns, dur_ns, path, child_ns).
    let mut open: Vec<(u64, u64, String, u64)> = Vec::new();
    fn finish(open: &mut Vec<(u64, u64, String, u64)>, folded: &mut BTreeMap<String, u64>) {
        let (_, dur, path, child_ns) = open.pop().expect("nonempty");
        let excl_us = dur.saturating_sub(child_ns) / 1_000;
        *folded.entry(path).or_default() += excl_us;
        if let Some(parent) = open.last_mut() {
            parent.3 += dur;
        }
    }
    for ev in sorted {
        while open.last().is_some_and(|&(end, ..)| ev.start_ns >= end) {
            finish(&mut open, &mut folded);
        }
        let path = match open.last() {
            Some((_, _, parent, _)) => format!("{parent};{}", ev.name),
            None => ev.name.to_string(),
        };
        open.push((ev.end_ns(), ev.dur_ns, path, 0));
    }
    while !open.is_empty() {
        finish(&mut open, &mut folded);
    }
    let mut s = String::new();
    for (path, us) in folded {
        let _ = writeln!(s, "{path} {us}");
    }
    if dropped > 0 {
        let _ = writeln!(s, "trace.dropped;{dropped}-spans 1");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(name: &'static str, start: u64, dur: u64, depth: u16) -> SpanEvent {
        SpanEvent {
            name,
            start_ns: start,
            dur_ns: dur,
            depth,
        }
    }

    #[test]
    fn disabled_spans_record_nothing() {
        enable(false);
        {
            let _g = span("ghost");
        }
        let (events, dropped) = take_events();
        assert!(events.is_empty());
        assert_eq!(dropped, 0);
    }

    #[test]
    fn nested_spans_record_depth_and_order() {
        enable(true);
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        let (events, _) = take_events();
        enable(false);
        assert_eq!(events.len(), 2);
        // Inner drops first.
        assert_eq!(events[0].name, "inner");
        assert_eq!(events[0].depth, 1);
        assert_eq!(events[1].name, "outer");
        assert_eq!(events[1].depth, 0);
        assert!(events[1].dur_ns >= events[0].dur_ns);
    }

    #[test]
    fn ring_buffer_is_bounded_and_counts_drops() {
        enable(true);
        set_capacity(16);
        for _ in 0..40 {
            let _g = span("tick");
        }
        let (events, dropped) = take_events();
        enable(false);
        set_capacity(DEFAULT_CAPACITY);
        assert_eq!(events.len(), 16);
        assert_eq!(dropped, 24);
    }

    #[test]
    fn chrome_trace_is_valid_json() {
        let events = vec![ev("a", 0, 5_000, 0), ev("b \"q\"", 1_000, 2_000, 1)];
        let text = chrome_trace(&events, 0);
        let v = crate::json::parse(&text).expect("valid JSON");
        let arr = v.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[1].get("name").and_then(Json::as_str), Some("b \"q\""));
        assert_eq!(arr[0].get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(arr[0].get("dur").and_then(Json::as_f64), Some(5.0));
        assert!(v.get("droppedSpans").is_none());
    }

    #[test]
    fn chrome_trace_surfaces_ring_overflow() {
        let events = vec![ev("a", 0, 5_000, 0)];
        let text = chrome_trace(&events, 24);
        let v = crate::json::parse(&text).expect("valid JSON");
        assert_eq!(v.get("droppedSpans").and_then(Json::as_f64), Some(24.0));
        let warning = v
            .get("otherData")
            .and_then(|o| o.get("warning"))
            .and_then(Json::as_str)
            .unwrap();
        assert!(warning.contains("24"), "{warning}");
        // Events themselves are untouched.
        let arr = v.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(arr
            .iter()
            .all(|e| e.get("ph").and_then(Json::as_str) == Some("X")));
    }

    #[test]
    fn collapsed_stacks_surface_ring_overflow() {
        let events = vec![ev("run", 0, 10_000_000, 0)];
        let clean = collapsed_stacks(&events, 0);
        assert!(!clean.contains("trace.dropped"), "{clean}");
        let lossy = collapsed_stacks(&events, 7);
        assert!(
            lossy.lines().any(|l| l == "trace.dropped;7-spans 1"),
            "{lossy}"
        );
    }

    use crate::json::Json;

    #[test]
    fn collapsed_stacks_nest_and_charge_exclusive_time() {
        // run [0, 10ms]; decode [1ms, 3ms]; simulate [3ms, 9ms].
        let events = vec![
            ev("decode", 1_000_000, 2_000_000, 1),
            ev("simulate", 3_000_000, 6_000_000, 1),
            ev("run", 0, 10_000_000, 0),
        ];
        let text = collapsed_stacks(&events, 0);
        let lines: Vec<&str> = text.lines().collect();
        assert!(lines.contains(&"run;decode 2000"), "{text}");
        assert!(lines.contains(&"run;simulate 6000"), "{text}");
        assert!(
            lines.contains(&"run 2000"),
            "exclusive = 10 - 2 - 6 ms: {text}"
        );
    }

    #[test]
    fn totals_aggregate_by_name() {
        let events = vec![ev("x", 0, 5, 0), ev("x", 10, 7, 0), ev("y", 2, 1, 1)];
        let t = totals_by_name(&events);
        assert_eq!(t["x"], 12);
        assert_eq!(t["y"], 1);
    }
}
