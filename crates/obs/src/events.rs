//! The service event bus: a bounded, lock-minimal MPSC fan-out of
//! typed job-lifecycle and service events.
//!
//! Publishers (the service's admission path and workers) never block on
//! a consumer: each subscriber owns a bounded queue, and when it fills
//! the *oldest* queued event is discarded and counted. Every delivered
//! [`Frame`] carries `dropped_since_last` — the number of events lost
//! since the previous frame the subscriber saw — so a slow consumer
//! degrades *visibly* (the loss-accounting principle the trace ring
//! buffer already follows) instead of stalling the daemon.
//!
//! The bus also retains a bounded history of recent events so a late
//! subscriber can ask for replay from a sequence number (`since`): this
//! is how a restarted daemon's replayed terminal events reach clients
//! that connect afterwards.
//!
//! Event *kinds* are job-lifecycle transitions (`admitted`, `queued`,
//! `started`, `retrying`, `quarantined`, `done`), service phase changes
//! (`state`), and periodic `metrics` snapshot frames derived from a
//! [`Registry`](crate::Registry). Events replayed from a journal after
//! a restart carry `replay = true`.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use crate::json::Json;

/// Default bound on one subscriber's event queue. Generous enough that
/// a consumer keeping pace with a large soak (a few events per job)
/// never drops at default capacity.
pub const DEFAULT_SUBSCRIBER_CAPACITY: usize = 8192;

/// Default bound on the bus's retained history (the `since` replay
/// window).
pub const DEFAULT_HISTORY_CAPACITY: usize = 4096;

/// Every wire tag a [`Payload`] can carry, for filter validation.
pub const EVENT_KINDS: &[&str] = &[
    "admitted",
    "queued",
    "started",
    "retrying",
    "quarantined",
    "done",
    "state",
    "metrics",
];

/// The typed body of one event.
#[derive(Clone, Debug, PartialEq)]
pub enum Payload {
    /// A job was admitted (journaled and acknowledged).
    Admitted {
        /// The spec string the job resolves from.
        spec: String,
    },
    /// The job entered the admission queue.
    Queued {
        /// Queue depth immediately after the enqueue.
        depth: u64,
    },
    /// A worker began executing the job.
    Started {
        /// Index of the executing worker.
        worker: u64,
    },
    /// A failed attempt was classified and scheduled for retry.
    Retrying {
        /// The failure classification (`transient`, …).
        class: String,
        /// The 1-based attempt that failed.
        attempt: u32,
        /// Backoff slept before the next attempt, in milliseconds.
        delay_ms: u64,
    },
    /// An attempt's profile failed verification and was quarantined.
    Quarantined {
        /// The 1-based attempt whose artifacts were quarantined.
        attempt: u32,
        /// The first violated invariant.
        reason: String,
    },
    /// The job reached a terminal state.
    Done {
        /// `done` or `failed`.
        outcome: String,
        /// Execution wall time (start → terminal), microseconds.
        wall_us: u64,
        /// Attempts consumed.
        attempts: u32,
    },
    /// The service moved through its shed/drain state machine.
    StateChanged {
        /// The new phase (`accepting`, `draining`, `stopped`).
        phase: String,
    },
    /// A periodic snapshot of the service metrics registry.
    MetricsSnapshot {
        /// The registry rendered as a JSON object (see
        /// [`Registry::to_json`](crate::Registry::to_json)).
        metrics: Json,
    },
}

impl Payload {
    /// The wire tag of this payload (one of [`EVENT_KINDS`]).
    pub fn kind(&self) -> &'static str {
        match self {
            Payload::Admitted { .. } => "admitted",
            Payload::Queued { .. } => "queued",
            Payload::Started { .. } => "started",
            Payload::Retrying { .. } => "retrying",
            Payload::Quarantined { .. } => "quarantined",
            Payload::Done { .. } => "done",
            Payload::StateChanged { .. } => "state",
            Payload::MetricsSnapshot { .. } => "metrics",
        }
    }
}

/// One event on the bus.
#[derive(Clone, Debug, PartialEq)]
pub struct Event {
    /// Bus-wide publication order (1-based; assigned by
    /// [`EventBus::publish`]).
    pub seq: u64,
    /// Wall-clock microseconds since the Unix epoch at publication.
    pub ts_us: u64,
    /// The job this event belongs to; `None` for service-level events.
    pub job: Option<u64>,
    /// The submitting client ("" for service-level events).
    pub client: String,
    /// The job name ("" for service-level events).
    pub name: String,
    /// True when this event was replayed from a journal after a
    /// restart rather than observed live.
    pub replay: bool,
    /// The typed body.
    pub payload: Payload,
}

impl Event {
    /// A job-lifecycle event (seq/timestamp assigned at publish).
    pub fn job_event(job: u64, client: &str, name: &str, payload: Payload) -> Event {
        Event {
            seq: 0,
            ts_us: 0,
            job: Some(job),
            client: client.to_string(),
            name: name.to_string(),
            replay: false,
            payload,
        }
    }

    /// A service-level event (no job attached).
    pub fn service_event(payload: Payload) -> Event {
        Event {
            seq: 0,
            ts_us: 0,
            job: None,
            client: String::new(),
            name: String::new(),
            replay: false,
            payload,
        }
    }

    /// Marks the event as a journal replay.
    pub fn replayed(mut self) -> Event {
        self.replay = true;
        self
    }

    /// Renders the event as one wire frame, carrying the subscriber's
    /// drop accounting.
    pub fn to_json(&self, dropped_since_last: u64) -> Json {
        let mut fields = vec![
            ("seq".to_string(), Json::Num(self.seq as f64)),
            ("ts_us".to_string(), Json::Num(self.ts_us as f64)),
            (
                "event".to_string(),
                Json::Str(self.payload.kind().to_string()),
            ),
        ];
        if let Some(job) = self.job {
            fields.push(("job".to_string(), Json::Num(job as f64)));
        }
        if !self.client.is_empty() {
            fields.push(("client".to_string(), Json::Str(self.client.clone())));
        }
        if !self.name.is_empty() {
            fields.push(("name".to_string(), Json::Str(self.name.clone())));
        }
        if self.replay {
            fields.push(("replay".to_string(), Json::Bool(true)));
        }
        match &self.payload {
            Payload::Admitted { spec } => {
                fields.push(("spec".to_string(), Json::Str(spec.clone())));
            }
            Payload::Queued { depth } => {
                fields.push(("depth".to_string(), Json::Num(*depth as f64)));
            }
            Payload::Started { worker } => {
                fields.push(("worker".to_string(), Json::Num(*worker as f64)));
            }
            Payload::Retrying {
                class,
                attempt,
                delay_ms,
            } => {
                fields.push(("class".to_string(), Json::Str(class.clone())));
                fields.push(("attempt".to_string(), Json::Num(f64::from(*attempt))));
                fields.push(("delay_ms".to_string(), Json::Num(*delay_ms as f64)));
            }
            Payload::Quarantined { attempt, reason } => {
                fields.push(("attempt".to_string(), Json::Num(f64::from(*attempt))));
                fields.push(("reason".to_string(), Json::Str(reason.clone())));
            }
            Payload::Done {
                outcome,
                wall_us,
                attempts,
            } => {
                fields.push(("outcome".to_string(), Json::Str(outcome.clone())));
                fields.push(("wall_us".to_string(), Json::Num(*wall_us as f64)));
                fields.push(("attempts".to_string(), Json::Num(f64::from(*attempts))));
            }
            Payload::StateChanged { phase } => {
                fields.push(("phase".to_string(), Json::Str(phase.clone())));
            }
            Payload::MetricsSnapshot { metrics } => {
                fields.push(("metrics".to_string(), metrics.clone()));
            }
        }
        fields.push((
            "dropped_since_last".to_string(),
            Json::Num(dropped_since_last as f64),
        ));
        Json::Obj(fields)
    }
}

/// Server-side subscription filter: every populated field must match.
#[derive(Clone, Debug, Default)]
pub struct EventFilter {
    /// Only events of this job (service-level events are excluded).
    pub job: Option<u64>,
    /// Only events from this submitting client.
    pub client: Option<String>,
    /// Only these event kinds (wire tags; see [`EVENT_KINDS`]).
    pub kinds: Option<Vec<String>>,
    /// Replay retained history from this sequence number (inclusive)
    /// before streaming live events. `None` = live only.
    pub since: Option<u64>,
}

impl EventFilter {
    /// Does `event` pass this filter (ignoring `since`, which governs
    /// history replay rather than matching)?
    pub fn matches(&self, event: &Event) -> bool {
        if let Some(job) = self.job {
            if event.job != Some(job) {
                return false;
            }
        }
        if let Some(client) = &self.client {
            if &event.client != client {
                return false;
            }
        }
        if let Some(kinds) = &self.kinds {
            if !kinds.iter().any(|k| k == event.payload.kind()) {
                return false;
            }
        }
        true
    }
}

/// One delivered event plus the subscriber's loss accounting.
#[derive(Clone, Debug, PartialEq)]
pub struct Frame {
    /// The event.
    pub event: Event,
    /// Events this subscriber lost between the previous frame and this
    /// one (0 whenever the consumer kept pace).
    pub dropped_since_last: u64,
}

impl Frame {
    /// The wire rendering of this frame.
    pub fn to_json(&self) -> Json {
        self.event.to_json(self.dropped_since_last)
    }
}

struct SubQueue {
    events: VecDeque<Event>,
    dropped_since_last: u64,
    closed: bool,
}

struct SubShared {
    queue: Mutex<SubQueue>,
    cond: Condvar,
    filter: EventFilter,
    capacity: usize,
}

struct BusState {
    subs: Vec<Arc<SubShared>>,
    history: VecDeque<Event>,
    history_cap: usize,
}

struct BusShared {
    state: Mutex<BusState>,
    seq: AtomicU64,
    published: AtomicU64,
    dropped: AtomicU64,
}

/// The bus: cheap to clone, safe to publish from any thread.
#[derive(Clone)]
pub struct EventBus {
    shared: Arc<BusShared>,
}

impl Default for EventBus {
    fn default() -> EventBus {
        EventBus::with_history(DEFAULT_HISTORY_CAPACITY)
    }
}

impl EventBus {
    /// A bus retaining at most `history_cap` events for `since` replay.
    pub fn with_history(history_cap: usize) -> EventBus {
        EventBus {
            shared: Arc::new(BusShared {
                state: Mutex::new(BusState {
                    subs: Vec::new(),
                    history: VecDeque::new(),
                    history_cap: history_cap.max(16),
                }),
                seq: AtomicU64::new(0),
                published: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Publishes one event: assigns its sequence number and timestamp,
    /// retains it in history, and fans it out to every matching
    /// subscriber — never blocking on a slow one (its oldest queued
    /// event is dropped and counted instead). Returns the assigned
    /// sequence number.
    pub fn publish(&self, mut event: Event) -> u64 {
        let mut state = self.shared.state.lock().expect("event bus state");
        let seq = self.shared.seq.fetch_add(1, Ordering::Relaxed) + 1;
        event.seq = seq;
        if event.ts_us == 0 {
            event.ts_us = now_us();
        }
        if state.history.len() >= state.history_cap {
            state.history.pop_front();
        }
        state.history.push_back(event.clone());
        self.shared.published.fetch_add(1, Ordering::Relaxed);
        for sub in &state.subs {
            if !sub.filter.matches(&event) {
                continue;
            }
            let mut q = sub.queue.lock().expect("subscriber queue");
            if q.closed {
                continue;
            }
            if q.events.len() >= sub.capacity {
                q.events.pop_front();
                q.dropped_since_last += 1;
                self.shared.dropped.fetch_add(1, Ordering::Relaxed);
            }
            q.events.push_back(event.clone());
            drop(q);
            sub.cond.notify_one();
        }
        seq
    }

    /// Registers a subscriber with a bounded queue of `capacity`
    /// events. When the filter carries `since`, matching retained
    /// history from that sequence number seeds the queue first (with
    /// the same drop accounting if it overflows).
    pub fn subscribe(&self, filter: EventFilter, capacity: usize) -> Subscription {
        let sub = Arc::new(SubShared {
            queue: Mutex::new(SubQueue {
                events: VecDeque::new(),
                dropped_since_last: 0,
                closed: false,
            }),
            cond: Condvar::new(),
            capacity: capacity.max(1),
            filter,
        });
        let mut state = self.shared.state.lock().expect("event bus state");
        if let Some(since) = sub.filter.since {
            let mut q = sub.queue.lock().expect("subscriber queue");
            for event in state.history.iter() {
                if event.seq < since || !sub.filter.matches(event) {
                    continue;
                }
                if q.events.len() >= sub.capacity {
                    q.events.pop_front();
                    q.dropped_since_last += 1;
                    self.shared.dropped.fetch_add(1, Ordering::Relaxed);
                }
                q.events.push_back(event.clone());
            }
        }
        state.subs.push(Arc::clone(&sub));
        drop(state);
        Subscription {
            sub,
            bus: Arc::clone(&self.shared),
        }
    }

    /// Sequence number of the next event to be published, i.e. one past
    /// the latest assigned.
    pub fn next_seq(&self) -> u64 {
        self.shared.seq.load(Ordering::Relaxed) + 1
    }

    /// Total events published on this bus.
    pub fn published(&self) -> u64 {
        self.shared.published.load(Ordering::Relaxed)
    }

    /// Total events dropped across all subscribers (each drop counted
    /// once per subscriber that lost it).
    pub fn dropped_total(&self) -> u64 {
        self.shared.dropped.load(Ordering::Relaxed)
    }

    /// Live subscriber count.
    pub fn subscriber_count(&self) -> usize {
        self.shared
            .state
            .lock()
            .expect("event bus state")
            .subs
            .len()
    }
}

/// A consumer handle; dropping it unregisters the subscriber.
pub struct Subscription {
    sub: Arc<SubShared>,
    bus: Arc<BusShared>,
}

impl Subscription {
    /// Waits up to `timeout` for the next frame. `None` means the wait
    /// timed out (or the bus closed the subscription) with nothing
    /// queued — check [`Subscription::is_closed`] to tell them apart.
    pub fn recv(&self, timeout: Duration) -> Option<Frame> {
        let deadline = Instant::now() + timeout;
        let mut q = self.sub.queue.lock().expect("subscriber queue");
        loop {
            if let Some(event) = q.events.pop_front() {
                let dropped_since_last = std::mem::take(&mut q.dropped_since_last);
                return Some(Frame {
                    event,
                    dropped_since_last,
                });
            }
            if q.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, _) = self
                .sub
                .cond
                .wait_timeout(q, deadline - now)
                .expect("subscriber queue");
            q = guard;
        }
    }

    /// Drains everything currently queued without waiting.
    pub fn drain(&self) -> Vec<Frame> {
        let mut frames = Vec::new();
        let mut q = self.sub.queue.lock().expect("subscriber queue");
        while let Some(event) = q.events.pop_front() {
            let dropped_since_last = std::mem::take(&mut q.dropped_since_last);
            frames.push(Frame {
                event,
                dropped_since_last,
            });
        }
        frames
    }

    /// Has the bus closed this subscription?
    pub fn is_closed(&self) -> bool {
        self.sub.queue.lock().expect("subscriber queue").closed
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        {
            let mut q = self.sub.queue.lock().expect("subscriber queue");
            q.closed = true;
        }
        let mut state = self.bus.state.lock().expect("event bus state");
        state.subs.retain(|s| !Arc::ptr_eq(s, &self.sub));
    }
}

/// Wall-clock microseconds since the Unix epoch.
pub fn now_us() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn done_event(job: u64) -> Event {
        Event::job_event(
            job,
            "c",
            "job",
            Payload::Done {
                outcome: "done".to_string(),
                wall_us: 5,
                attempts: 1,
            },
        )
    }

    #[test]
    fn publish_assigns_increasing_seq_and_delivers_in_order() {
        let bus = EventBus::default();
        let sub = bus.subscribe(EventFilter::default(), 16);
        let s1 = bus.publish(done_event(0));
        let s2 = bus.publish(done_event(1));
        assert!(s2 > s1);
        let a = sub.recv(Duration::from_secs(1)).expect("first");
        let b = sub.recv(Duration::from_secs(1)).expect("second");
        assert_eq!(a.event.seq, s1);
        assert_eq!(b.event.seq, s2);
        assert_eq!(a.dropped_since_last, 0);
        assert_eq!(b.dropped_since_last, 0);
        assert_eq!(bus.published(), 2);
        assert_eq!(bus.dropped_total(), 0);
    }

    #[test]
    fn bounded_queue_drops_oldest_and_accounts_on_next_frame() {
        let bus = EventBus::default();
        let sub = bus.subscribe(EventFilter::default(), 4);
        for job in 0..10 {
            bus.publish(done_event(job));
        }
        // 6 dropped; the 4 freshest remain, the first delivered frame
        // carries the full loss count.
        let first = sub.recv(Duration::from_secs(1)).expect("frame");
        assert_eq!(first.dropped_since_last, 6);
        assert_eq!(first.event.job, Some(6));
        let rest = sub.drain();
        assert_eq!(rest.len(), 3);
        assert!(rest.iter().all(|f| f.dropped_since_last == 0));
        assert_eq!(bus.dropped_total(), 6);
    }

    #[test]
    fn filters_match_job_client_and_kind() {
        let bus = EventBus::default();
        let by_job = bus.subscribe(
            EventFilter {
                job: Some(3),
                ..EventFilter::default()
            },
            16,
        );
        let by_kind = bus.subscribe(
            EventFilter {
                kinds: Some(vec!["state".to_string()]),
                ..EventFilter::default()
            },
            16,
        );
        bus.publish(done_event(2));
        bus.publish(done_event(3));
        bus.publish(Event::service_event(Payload::StateChanged {
            phase: "draining".to_string(),
        }));
        let only = by_job.drain();
        assert_eq!(only.len(), 1);
        assert_eq!(only[0].event.job, Some(3));
        let states = by_kind.drain();
        assert_eq!(states.len(), 1);
        assert_eq!(states[0].event.payload.kind(), "state");
    }

    #[test]
    fn since_replays_retained_history_to_late_subscribers() {
        let bus = EventBus::default();
        let s1 = bus.publish(done_event(0));
        let s2 = bus.publish(done_event(1));
        let all = bus.subscribe(
            EventFilter {
                since: Some(0),
                ..EventFilter::default()
            },
            16,
        );
        let tail = bus.subscribe(
            EventFilter {
                since: Some(s2),
                ..EventFilter::default()
            },
            16,
        );
        let live_only = bus.subscribe(EventFilter::default(), 16);
        assert_eq!(all.drain().len(), 2);
        let tail_frames = tail.drain();
        assert_eq!(tail_frames.len(), 1);
        assert_eq!(tail_frames[0].event.seq, s2);
        assert!(live_only.drain().is_empty());
        let _ = s1;
    }

    #[test]
    fn dropped_subscription_unregisters() {
        let bus = EventBus::default();
        let sub = bus.subscribe(EventFilter::default(), 4);
        assert_eq!(bus.subscriber_count(), 1);
        drop(sub);
        assert_eq!(bus.subscriber_count(), 0);
        bus.publish(done_event(0)); // no panic, nothing to deliver
        assert_eq!(bus.dropped_total(), 0);
    }

    #[test]
    fn frame_json_carries_kind_fields_and_drop_accounting() {
        let mut event = Event::job_event(
            7,
            "ci",
            "129.compress",
            Payload::Retrying {
                class: "transient".to_string(),
                attempt: 1,
                delay_ms: 4,
            },
        );
        event.seq = 42;
        event.ts_us = 1_000;
        let json = event.to_json(3);
        assert_eq!(json.get("seq").and_then(Json::as_f64), Some(42.0));
        assert_eq!(json.get("event").and_then(Json::as_str), Some("retrying"));
        assert_eq!(json.get("job").and_then(Json::as_f64), Some(7.0));
        assert_eq!(json.get("class").and_then(Json::as_str), Some("transient"));
        assert_eq!(
            json.get("dropped_since_last").and_then(Json::as_f64),
            Some(3.0)
        );
        // The rendering is parseable NDJSON.
        let parsed = crate::json::parse(&json.render()).expect("valid");
        assert_eq!(parsed.get("delay_ms").and_then(Json::as_f64), Some(4.0));
    }

    #[test]
    fn recv_times_out_when_idle() {
        let bus = EventBus::default();
        let sub = bus.subscribe(EventFilter::default(), 4);
        let t = Instant::now();
        assert!(sub.recv(Duration::from_millis(30)).is_none());
        assert!(t.elapsed() >= Duration::from_millis(25));
        assert!(!sub.is_closed());
    }
}
