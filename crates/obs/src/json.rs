//! A minimal JSON value model — enough for the repo's own files.
//!
//! The container is offline, so there is no serde; `pp bench` merges
//! its trajectory file, `pp stats` round-trips its report, and CI
//! validates the Chrome trace with this ~200-line parser instead.
//! Objects preserve key order (a `Vec` of pairs, not a map) so a
//! parse → [`render`](Json::render) round trip is stable.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Clone, PartialEq, Debug)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (JSON doesn't distinguish int from float).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source key order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean, if this is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The number, if this is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string, if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(a) => Some(a),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(o) => Some(o),
            _ => None,
        }
    }

    /// Renders compact canonical JSON (object keys in stored order).
    pub fn render(&self) -> String {
        let mut s = String::new();
        self.render_into(&mut s);
        s
    }

    fn render_into(&self, s: &mut String) {
        match self {
            Json::Null => s.push_str("null"),
            Json::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => s.push_str(&crate::metrics::fmt_f64(*n)),
            Json::Str(v) => s.push_str(&quote(v)),
            Json::Arr(items) => {
                s.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    item.render_into(s);
                }
                s.push(']');
            }
            Json::Obj(fields) => {
                s.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push_str(&quote(k));
                    s.push(':');
                    v.render_into(s);
                }
                s.push('}');
            }
        }
    }
}

/// Escapes and double-quotes a string for JSON output.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a complete JSON document; trailing non-whitespace is an
/// error. Errors carry a byte offset and a short description.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected '{}' at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("bad \\u at byte {}", self.pos))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are out of scope for our
                            // own files; map them to the replacement
                            // character rather than erroring.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        b => return Err(format!("bad escape '\\{}'", b as char)),
                    }
                }
                Some(_) => {
                    // Copy a full UTF-8 scalar, not just one byte.
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest)
                        .map_err(|_| format!("invalid UTF-8 at byte {}", self.pos))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        s.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{s}' at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":{}}"#).unwrap();
        let arr = v.get("a").and_then(Json::as_arr).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("b").and_then(Json::as_str), Some("c"));
        assert!(v.get("d").and_then(Json::as_obj).unwrap().is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("123 junk").is_err());
        assert!(parse("{\"a\" 1}").is_err());
    }

    #[test]
    fn round_trips_canonically() {
        let text = r#"{"name":"pp \"x\"","n":42,"frac":0.5,"list":[true,null],"obj":{"k":1}}"#;
        let v = parse(text).unwrap();
        let rendered = v.render();
        assert_eq!(parse(&rendered).unwrap(), v);
        assert_eq!(rendered, text, "canonical form is stable");
    }

    #[test]
    fn unicode_survives() {
        let v = parse("\"caf\\u00e9 µop\"").unwrap();
        assert_eq!(v.as_str(), Some("café µop"));
        assert_eq!(parse(&v.render()).unwrap(), v);
    }
}
