//! The internals metrics registry: counters, gauges, and fixed-bucket
//! histograms for the profiler's own machinery.
//!
//! Instrumented code is generic over [`Recorder`]; the default
//! [`NoopRecorder`] has empty inlined methods, so when observability is
//! off the calls monomorphize away and the hot paths (`pp bench`, the
//! differential suite) are byte-for-byte what they were before. When a
//! run *is* observed, a [`Registry`] collects everything into
//! deterministically-ordered maps whose [`Registry::snapshot`] text and
//! [`Registry::to_json`] renderings are byte-identical for identical
//! runs — that determinism is itself under test in the differential
//! suite.
//!
//! Metric names are dotted lowercase paths (`cct.enter.fast_hit`,
//! `path.hashed.probe_len`); units, where not obvious, live in the name
//! (`serialize.flow.bytes`, `serialize.crc_ns`).

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Sink for internals metrics. All methods have no-op defaults so
/// recorders only implement what they keep.
pub trait Recorder {
    /// Adds `delta` to the named monotonic counter.
    #[inline(always)]
    fn counter(&mut self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the named gauge to `value` (last write wins).
    #[inline(always)]
    fn gauge(&mut self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Records one observation of `value` into the named histogram.
    #[inline(always)]
    fn observe(&mut self, name: &'static str, value: u64) {
        let _ = (name, value);
    }
}

/// The default recorder: keeps nothing, compiles to nothing.
#[derive(Clone, Copy, Default, Debug)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

impl<R: Recorder> Recorder for &mut R {
    #[inline(always)]
    fn counter(&mut self, name: &'static str, delta: u64) {
        (**self).counter(name, delta);
    }

    #[inline(always)]
    fn gauge(&mut self, name: &'static str, value: f64) {
        (**self).gauge(name, value);
    }

    #[inline(always)]
    fn observe(&mut self, name: &'static str, value: u64) {
        (**self).observe(name, value);
    }
}

/// Number of power-of-two buckets in a [`Hist`]: bucket `i` counts
/// values in `[2^(i-1), 2^i)` (bucket 0 counts zeros and ones), with
/// the last bucket absorbing everything larger.
pub const HIST_BUCKETS: usize = 32;

/// A fixed-bucket histogram over `u64` observations: power-of-two
/// buckets plus exact count / sum / max, so means and tail shape both
/// survive aggregation.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Hist {
    /// Power-of-two bucket counts; see [`HIST_BUCKETS`].
    pub buckets: [u64; HIST_BUCKETS],
    /// Number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            buckets: [0; HIST_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Hist {
    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = (64 - value.max(1).leading_zeros() as usize - 1).min(HIST_BUCKETS - 1);
        let idx = if value <= 1 { 0 } else { idx.max(1) };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Folds another histogram into this one: buckets, count, and sum
    /// add (saturating), max takes the larger. Because the buckets are
    /// fixed, absorption is exact — aggregating per-shard or per-worker
    /// histograms loses nothing, which is what makes fleet-level
    /// rollups of `merge.*` and `service.*` metrics trustworthy.
    pub fn absorb(&mut self, other: &Hist) {
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// One named metric in a [`Registry`] snapshot.
#[derive(Clone, PartialEq, Debug)]
pub enum Metric {
    /// A monotonic counter.
    Counter(u64),
    /// A last-write-wins gauge.
    Gauge(f64),
    /// A fixed-bucket histogram (boxed: the bucket array dwarfs the
    /// scalar variants).
    Hist(Box<Hist>),
}

/// A [`Recorder`] that keeps everything, deterministically ordered by
/// metric name.
#[derive(Clone, Default, Debug)]
pub struct Registry {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    hists: BTreeMap<&'static str, Hist>,
}

impl Recorder for Registry {
    fn counter(&mut self, name: &'static str, delta: u64) {
        *self.counters.entry(name).or_default() += delta;
    }

    fn gauge(&mut self, name: &'static str, value: f64) {
        self.gauges.insert(name, value);
    }

    fn observe(&mut self, name: &'static str, value: u64) {
        self.hists.entry(name).or_default().observe(value);
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The named counter's value (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The named gauge's value, if set.
    pub fn gauge_value(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any observations landed.
    pub fn hist(&self, name: &str) -> Option<&Hist> {
        self.hists.get(name)
    }

    /// Iterates every metric in name order (counters, then gauges,
    /// then histograms — each sorted).
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, Metric)> + '_ {
        let c = self.counters.iter().map(|(&n, &v)| (n, Metric::Counter(v)));
        let g = self.gauges.iter().map(|(&n, &v)| (n, Metric::Gauge(v)));
        let h = self
            .hists
            .iter()
            .map(|(&n, v)| (n, Metric::Hist(Box::new(v.clone()))));
        c.chain(g).chain(h)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.hists.is_empty()
    }

    /// Folds another registry into this one: counters add (saturating),
    /// gauges take the other's value (last write wins, matching
    /// [`Recorder::gauge`]), histograms absorb bucket-wise. This is the
    /// fleet-metrics rollup: fold N per-run or per-worker registries
    /// into one view, in any order, and the counter/histogram totals
    /// come out the same.
    pub fn absorb(&mut self, other: &Registry) {
        for (&name, &v) in &other.counters {
            let c = self.counters.entry(name).or_default();
            *c = c.saturating_add(v);
        }
        for (&name, &v) in &other.gauges {
            self.gauges.insert(name, v);
        }
        for (&name, h) in &other.hists {
            self.hists.entry(name).or_default().absorb(h);
        }
    }

    /// A deterministic plain-text snapshot, one metric per line —
    /// byte-identical for identical runs, which the differential suite
    /// asserts across the two interpreters.
    pub fn snapshot(&self) -> String {
        let mut s = String::new();
        for (name, v) in &self.counters {
            let _ = writeln!(s, "counter {name} {v}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(s, "gauge {name} {}", fmt_f64(*v));
        }
        for (name, h) in &self.hists {
            let _ = writeln!(
                s,
                "hist {name} count={} sum={} max={} mean={}",
                h.count,
                h.sum,
                h.max,
                fmt_f64(h.mean())
            );
        }
        s
    }

    /// Renders the registry as a JSON object: counters as integers,
    /// gauges as numbers, histograms as `{count, sum, max, mean}`.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        let mut first = true;
        let mut item = |s: &mut String, name: &str, body: String| {
            if !std::mem::take(&mut first) {
                s.push(',');
            }
            let _ = write!(s, "{}:{}", crate::json::quote(name), body);
        };
        for (name, v) in &self.counters {
            item(&mut s, name, v.to_string());
        }
        for (name, v) in &self.gauges {
            item(&mut s, name, fmt_f64(*v));
        }
        for (name, h) in &self.hists {
            item(
                &mut s,
                name,
                format!(
                    "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{}}}",
                    h.count,
                    h.sum,
                    h.max,
                    fmt_f64(h.mean())
                ),
            );
        }
        s.push('}');
        s
    }

    /// Renders the registry in Prometheus text-exposition style for
    /// scraping (`pp status --metrics --prom`): dotted names become
    /// `pp_`-prefixed underscore names, counters and gauges keep their
    /// types, and each histogram becomes a `summary` (`_count`/`_sum`)
    /// plus a `_max` gauge. Deterministically ordered like every other
    /// rendering.
    pub fn prom_text(&self) -> String {
        fn mangle(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 3);
            out.push_str("pp_");
            for c in name.chars() {
                out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
            }
            out
        }
        let mut s = String::new();
        for (name, v) in &self.counters {
            let n = mangle(name);
            let _ = writeln!(s, "# TYPE {n} counter\n{n} {v}");
        }
        for (name, v) in &self.gauges {
            let n = mangle(name);
            let _ = writeln!(s, "# TYPE {n} gauge\n{n} {}", fmt_f64(*v));
        }
        for (name, h) in &self.hists {
            let n = mangle(name);
            let _ = writeln!(
                s,
                "# TYPE {n} summary\n{n}_count {}\n{n}_sum {}\n\
                 # TYPE {n}_max gauge\n{n}_max {}",
                h.count, h.sum, h.max
            );
        }
        s
    }
}

/// Formats an `f64` deterministically and JSON-compatibly (no `NaN` /
/// `inf` — they render as 0, which only fault-free metrics avoid
/// anyway).
pub fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        let s = format!("{v:.6}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        s.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_recorder_accepts_everything() {
        let mut r = NoopRecorder;
        r.counter("a", 1);
        r.gauge("b", 2.0);
        r.observe("c", 3);
    }

    #[test]
    fn registry_accumulates_and_orders() {
        let mut r = Registry::new();
        r.counter("z.second", 2);
        r.counter("a.first", 1);
        r.counter("z.second", 3);
        r.gauge("mid", 0.5);
        r.observe("h", 4);
        r.observe("h", 4);
        assert_eq!(r.counter_value("z.second"), 5);
        assert_eq!(r.gauge_value("mid"), Some(0.5));
        assert_eq!(r.hist("h").unwrap().count, 2);
        let snap = r.snapshot();
        let a = snap.find("a.first").unwrap();
        let z = snap.find("z.second").unwrap();
        assert!(a < z, "name-ordered: {snap}");
    }

    #[test]
    fn forwarding_through_mut_ref_works() {
        fn record<R: Recorder>(mut r: R) {
            r.counter("x", 7);
        }
        let mut reg = Registry::new();
        record(&mut reg);
        assert_eq!(reg.counter_value("x"), 7);
    }

    #[test]
    fn hist_buckets_by_power_of_two() {
        let mut h = Hist::default();
        for v in [0, 1, 2, 3, 4, 1024, u64::MAX] {
            h.observe(v);
        }
        assert_eq!(h.count, 7);
        assert_eq!(h.max, u64::MAX);
        assert_eq!(h.buckets[0], 2, "0 and 1 share bucket 0");
        assert_eq!(h.buckets[1], 2, "2 and 3");
        assert_eq!(h.buckets[2], 1, "4");
        assert_eq!(h.buckets[10], 1, "1024");
        assert_eq!(h.buckets[HIST_BUCKETS - 1], 1, "overflow bucket");
    }

    #[test]
    fn snapshot_is_deterministic_and_json_parses() {
        let mut a = Registry::new();
        let mut b = Registry::new();
        for r in [&mut a, &mut b] {
            r.counter("c.one", 41);
            r.counter("c.one", 1);
            r.gauge("g.rate", 0.875);
            r.observe("h.depth", 3);
        }
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.to_json(), b.to_json());
        let v = crate::json::parse(&a.to_json()).expect("valid JSON");
        assert_eq!(v.get("c.one").and_then(crate::Json::as_f64), Some(42.0));
        assert_eq!(v.get("g.rate").and_then(crate::Json::as_f64), Some(0.875));
    }

    #[test]
    fn prom_text_mangles_names_and_types_metrics() {
        let mut r = Registry::new();
        r.counter("service.admitted", 12);
        r.gauge("service.queue_depth", 3.0);
        r.observe("service.exec_wall_us", 100);
        r.observe("service.exec_wall_us", 50);
        let prom = r.prom_text();
        assert!(prom.contains("# TYPE pp_service_admitted counter\npp_service_admitted 12"));
        assert!(prom.contains("# TYPE pp_service_queue_depth gauge\npp_service_queue_depth 3"));
        assert!(prom.contains("pp_service_exec_wall_us_count 2"));
        assert!(prom.contains("pp_service_exec_wall_us_sum 150"));
        assert!(prom.contains("pp_service_exec_wall_us_max 100"));
    }

    #[test]
    fn absorb_folds_registries_exactly() {
        let mut a = Registry::new();
        a.counter("c", 2);
        a.gauge("g", 1.0);
        a.observe("h", 4);
        let mut b = Registry::new();
        b.counter("c", 3);
        b.counter("only_b", 1);
        b.gauge("g", 9.0);
        b.observe("h", 1024);
        a.absorb(&b);
        assert_eq!(a.counter_value("c"), 5);
        assert_eq!(a.counter_value("only_b"), 1);
        assert_eq!(a.gauge_value("g"), Some(9.0), "last write wins");
        let h = a.hist("h").unwrap();
        assert_eq!((h.count, h.sum, h.max), (2, 1028, 1024));
        assert_eq!(h.buckets[2], 1);
        assert_eq!(h.buckets[10], 1);
        // Saturation at the ceiling, like every other fleet fold.
        let mut big = Hist {
            count: u64::MAX - 1,
            ..Hist::default()
        };
        big.absorb(&Hist {
            count: 5,
            ..Hist::default()
        });
        assert_eq!(big.count, u64::MAX);
    }

    #[test]
    fn fmt_f64_is_stable() {
        assert_eq!(fmt_f64(1.0), "1");
        assert_eq!(fmt_f64(0.5), "0.5");
        assert_eq!(fmt_f64(0.123456789), "0.123457");
        assert_eq!(fmt_f64(f64::NAN), "0");
    }
}
