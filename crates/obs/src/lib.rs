#![warn(missing_docs)]

//! # pp-obs — the profiler watching itself
//!
//! The paper's core argument is that flow- and context-sensitive
//! profiling is cheap enough to leave on everywhere; this crate gives
//! the reproduction the machinery to *demonstrate* that about its own
//! pipeline. Three layers, all in-tree and dependency-free (the build
//! container is offline):
//!
//! * [`trace`] — lightweight wall-clock **spans** ([`span!`]) recorded
//!   into a bounded per-thread ring buffer, dumpable as Chrome
//!   `trace_event` JSON (load in `chrome://tracing` / Perfetto) or as
//!   collapsed stacks (flamegraph input).
//! * [`metrics`] — an internals **metrics registry**: monotonic
//!   counters, gauges, and fixed-bucket histograms behind the
//!   [`Recorder`] trait. The no-op implementation ([`NoopRecorder`])
//!   monomorphizes away, so instrumented code paths cost nothing when
//!   observability is off.
//! * [`log`] — a leveled **logger** (`PP_LOG=warn|info|debug`,
//!   `--quiet`) so diagnostic chatter goes to stderr through one gate
//!   and stdout stays machine-parseable.
//!
//! * [`events`] — the service **event bus**: bounded, loss-accounted
//!   fan-out of typed job-lifecycle and service events to streaming
//!   subscribers (`pp watch`), with retained history for replay.
//!
//! [`json`] is the small JSON value model the other layers (and the
//! `pp stats` / `pp bench` commands) use to validate and merge their
//! emitted files.

pub mod events;
pub mod json;
pub mod log;
pub mod metrics;
pub mod trace;

pub use events::{Event, EventBus, EventFilter, Frame, Payload, Subscription};
pub use json::Json;
pub use log::Level;
pub use metrics::{Hist, Metric, NoopRecorder, Recorder, Registry};
pub use trace::{SpanEvent, SpanGuard};
