#![warn(missing_docs)]

//! # pp-core — the PP profiler
//!
//! The top of the reproduction stack: this crate is the analog of the
//! paper's PP tool as its *user* sees it. Give it a `pp-ir` program and a
//! [`RunConfig`], and it
//!
//! 1. instruments the program (`pp-instrument`),
//! 2. executes it on the simulated UltraSPARC (`pp-usim`) with a profiling
//!    sink that maintains the flow counter tables and the calling context
//!    tree (`pp-cct`) exactly, and
//! 3. returns a [`RunReport`] with the machine's ground-truth metrics plus
//!    the collected profile.
//!
//! On top of the reports sit the paper's analyses:
//!
//! * [`analysis::hot_paths`] — Table 4's hot/cold/dense/sparse path
//!   classification,
//! * [`analysis::hot_procedures`] — Table 5's per-procedure view,
//! * [`analysis::block_path_multiplicity`] — the Section 6.4.3 statistic
//!   (blocks on hot paths execute on ~16 different paths),
//! * [`pp_cct::CctStats`] — Table 3's CCT statistics,
//! * [`experiment`] — harnesses that regenerate each of the paper's
//!   tables from a set of benchmark programs.
//!
//! ```no_run
//! use pp_core::{Profiler, RunConfig};
//! use pp_ir::HwEvent;
//! # fn program() -> pp_ir::Program { unimplemented!() }
//!
//! let program = program();
//! let profiler = Profiler::new(Default::default());
//! let report = profiler
//!     .run(&program, RunConfig::FlowHw { events: (HwEvent::Insts, HwEvent::DcMiss) })
//!     .unwrap();
//! let flow = report.flow.as_ref().unwrap();
//! for (proc, sum, cell) in flow.iter_paths().take(10) {
//!     println!("{proc} path {sum}: {} times, {} misses", cell.freq, cell.m1);
//! }
//! ```

pub mod analysis;
pub mod annotate;
pub mod chaos;
pub mod error;
pub mod experiment;
pub mod integrity;
pub mod merge;
pub mod observe;
pub mod profile;
pub mod profiler;
pub mod report;
pub mod server;
pub mod service;
mod sink_impl;
pub mod supervisor;
pub mod transport;

pub use analysis::{ContextPathStat, HotPathReport, HotProcReport, PathClass, PathStat, ProcStat};
pub use chaos::{ChaosProxy, Fault, FaultPlan};
pub use error::PpError;
pub use integrity::{IntegrityError, IntegrityReport};
pub use merge::{
    MergeError, MergeManifest, MergeOptions, MergeOutcome, MergeReport, ShardRecord, ShardStatus,
};
pub use profile::{FlowProfile, PathCell};
pub use profiler::{ProfileError, Profiler, RunConfig, RunOutcome, RunReport};
pub use report::TextTable;
pub use server::ServerConfig;
pub use service::{
    AdmitError, JobState, JobView, Service, ServiceConfig, ServiceFaultPlan, ServiceMetrics,
    ServicePhase, ServiceReport, SpecResolver,
};
pub use supervisor::manifest::{BatchManifest, JobEntry, JobStatus, ProfileRef};
pub use supervisor::{
    BatchFaultPlan, BatchReport, ExecEvent, ExecOutcome, FailureClass, FailureKind, JobExecutor,
    JobFailure, JobFaults, JobRetry, JobSpec, RetryStep, Supervisor,
};
pub use transport::{BindAddr, Client, ClientConfig, Listener, RetryPolicy, Stream};
