//! The NDJSON protocol server behind `pp serve`, hoisted out of the CLI
//! so it runs over any [`crate::transport`] listener (Unix socket, TCP)
//! and so integration tests can drive a real accept loop in-process.
//!
//! One request object per line, one response object per line, canonical
//! `pp_obs::json` rendering. Request frames are bounded
//! ([`MAX_FRAME_BYTES`]): an oversized line earns a typed
//! `frame-too-large` reply and the rest of the line is discarded, so a
//! hostile or broken client can neither balloon server memory nor wedge
//! the connection.
//!
//! ## Connection governance
//!
//! Real networks add failure modes the original Unix-socket daemon
//! never met, and every one of them is answered here with a typed
//! frame, a metric, and a bounded wait — never a pinned worker:
//!
//! * **Connection cap** ([`ServerConfig::max_conns`]): at the cap, a
//!   new connection is not queued behind a busy fleet — it gets an
//!   immediate `overloaded` refusal frame carrying the cap and a
//!   `retry_after_ms` pacing hint, then the socket closes
//!   (`transport.refused`).
//! * **Graceful shed on drain**: once the service leaves the
//!   `Accepting` phase, new connections get a `draining`/`stopped`
//!   refusal with the same retry hint instead of half-service.
//! * **Idle timeout** ([`ServerConfig::idle_timeout`]): a peer that
//!   connects and never sends a byte — or goes silent between requests
//!   (half-open TCP peer) — is closed with a typed `idle-timeout`
//!   frame (`transport.idle_closed`). It cannot hold a connection slot
//!   forever.
//! * **Slow-frame deadline** ([`ServerConfig::io_timeout`]): a peer
//!   trickling one byte per tick (slowloris) has bounded time to finish
//!   a started frame before a typed `slow-frame` close. This layers on
//!   the byte bound: frames are capped in *size* by
//!   [`MAX_FRAME_BYTES`] and in *time* by the deadline.
//! * **Write deadlines**: replies and streamed frames are written under
//!   `io_timeout`, so a reader that stops draining cannot wedge a
//!   handler (streaming subscribers keep their bounded-bus semantics —
//!   a slow watcher drops oldest events with exact accounting).
//!
//! All of it is counted in the service's observability registry
//! (`transport.accepted`, `transport.refused`, `transport.idle_closed`,
//! `transport.reset`, `transport.open`, `transport.conn_lifetime_us`)
//! and therefore rides along in `pp status --metrics` / `--prom`.
//!
//! Protocol ops: `submit`, `status`, `wait`, `wait-idle`, `metrics`,
//! `drain`, `ping`, `subscribe`, `fetch`. Refusals carry the admission
//! taxonomy on the wire (`overloaded`, `quota-exceeded`, `draining`, …)
//! plus `retry_after_ms` on the shed refusals, and the client maps them
//! back onto [`AdmitError`] — so `pp submit` against a saturated server
//! exits with code 4, distinct from a failed run.

use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pp_obs::events::{EventFilter, DEFAULT_SUBSCRIBER_CAPACITY, EVENT_KINDS};
use pp_obs::json::{self, Json};
use pp_usim::CancelToken;

use crate::service::{AdmitError, Service, ServicePhase};
use crate::supervisor::manifest::ProfileRef;
use crate::transport::{b64_encode, Listener, Stream, MAX_FRAME_BYTES};

/// Raw bytes per `fetch` chunk frame. Base64 expands by 4/3, so a chunk
/// frame is ~43 KiB of payload plus framing — comfortably under the
/// 64 KiB frame rule that bounds every line on this protocol.
pub const FETCH_CHUNK_RAW: usize = 32 * 1024;

/// Connection-governance knobs for the accept loop and the per-client
/// handlers. Zero disables the corresponding limit.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Concurrent-connection cap; at the cap new connections get an
    /// immediate typed `overloaded` refusal (0 = unlimited).
    pub max_conns: usize,
    /// Close a connection that sends no frame for this long
    /// (0 = never).
    pub idle_timeout: Duration,
    /// Once a frame has started arriving, it must finish within this
    /// budget (slowloris defense); also the per-write deadline
    /// (0 = unbounded).
    pub io_timeout: Duration,
    /// Pacing hint attached to `overloaded`/`draining` refusals.
    pub retry_after_ms: u64,
    /// Read-poll tick bounding every blocking read in the handler.
    pub tick: Duration,
    /// Period of the metrics snapshot published onto the event bus.
    pub snapshot_every: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_conns: 64,
            idle_timeout: Duration::from_secs(300),
            io_timeout: Duration::from_secs(10),
            retry_after_ms: 50,
            tick: Duration::from_millis(100),
            snapshot_every: Duration::from_secs(1),
        }
    }
}

/// Wire rendering of a service phase.
pub fn phase_str(phase: ServicePhase) -> &'static str {
    match phase {
        ServicePhase::Accepting => "accepting",
        ServicePhase::Draining => "draining",
        ServicePhase::Stopped => "stopped",
    }
}

/// `{"ok":false,"error":kind,"detail":detail}`.
pub fn error_json(kind: &str, detail: &str) -> Json {
    Json::Obj(vec![
        ("ok".to_string(), Json::Bool(false)),
        ("error".to_string(), Json::Str(kind.to_string())),
        ("detail".to_string(), Json::Str(detail.to_string())),
    ])
}

/// Keeps the open-connection gauge and lifetime histogram honest on
/// every exit path of a handler thread.
struct ConnGuard {
    service: Arc<Service>,
    open: Arc<AtomicUsize>,
    started: Instant,
}

impl ConnGuard {
    fn new(service: Arc<Service>, open: Arc<AtomicUsize>) -> ConnGuard {
        let now_open = open.fetch_add(1, Ordering::SeqCst) + 1;
        service.obs_gauge("transport.open", now_open as f64);
        ConnGuard {
            service,
            open,
            started: Instant::now(),
        }
    }
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        let now_open = self.open.fetch_sub(1, Ordering::SeqCst) - 1;
        self.service.obs_gauge("transport.open", now_open as f64);
        self.service.obs_observe(
            "transport.conn_lifetime_us",
            self.started.elapsed().as_micros() as u64,
        );
    }
}

/// Runs the accept loop over every bound listener until `stop` fires:
/// poll-accepts, applies the governance above, publishes the periodic
/// metrics snapshot, and spawns one handler thread per admitted
/// connection. Returns when `stop` is cancelled; handler threads finish
/// on their own deadlines.
pub fn run_accept_loop(
    service: &Arc<Service>,
    listeners: &[Listener],
    config: &ServerConfig,
    stop: &CancelToken,
) {
    for listener in listeners {
        if let Err(e) = listener.set_nonblocking(true) {
            pp_obs::warn!("serve: listener nonblocking failed: {e}");
        }
    }
    let open = Arc::new(AtomicUsize::new(0));
    let mut last_snapshot = Instant::now();
    while !stop.is_cancelled() {
        if last_snapshot.elapsed() >= config.snapshot_every {
            service.publish_metrics_snapshot();
            last_snapshot = Instant::now();
        }
        let mut accepted_any = false;
        for listener in listeners {
            match listener.accept() {
                Ok(stream) => {
                    accepted_any = true;
                    admit_connection(service, &open, config, stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {}
                Err(e) => {
                    pp_obs::warn!("serve: accept failed: {e}");
                }
            }
        }
        if !accepted_any {
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

/// Governance at the accept edge: count, shed, or hand off to a
/// handler thread.
fn admit_connection(
    service: &Arc<Service>,
    open: &Arc<AtomicUsize>,
    config: &ServerConfig,
    mut stream: Stream,
) {
    service.obs_counter("transport.accepted", 1);
    let phase = service.phase();
    if phase != ServicePhase::Accepting {
        refuse(
            service,
            &mut stream,
            config,
            phase_str(phase),
            "server is shutting down; retry against the next incarnation",
            None,
        );
        return;
    }
    if config.max_conns > 0 && open.load(Ordering::SeqCst) >= config.max_conns {
        refuse(
            service,
            &mut stream,
            config,
            "overloaded",
            "connection limit reached; back off and reconnect",
            Some(config.max_conns),
        );
        return;
    }
    let guard = ConnGuard::new(Arc::clone(service), Arc::clone(open));
    let service = Arc::clone(service);
    let config = config.clone();
    std::thread::spawn(move || {
        let _guard = guard;
        handle_client(&service, stream, &config);
    });
}

/// Writes one typed refusal frame (with the `retry_after_ms` pacing
/// hint) and closes the connection.
fn refuse(
    service: &Service,
    stream: &mut Stream,
    config: &ServerConfig,
    kind: &str,
    detail: &str,
    capacity: Option<usize>,
) {
    service.obs_counter("transport.refused", 1);
    let mut fields = match error_json(kind, detail) {
        Json::Obj(fields) => fields,
        _ => unreachable!(),
    };
    fields.push((
        "retry_after_ms".to_string(),
        Json::Num(config.retry_after_ms as f64),
    ));
    if let Some(capacity) = capacity {
        fields.push(("capacity".to_string(), Json::Num(capacity as f64)));
    }
    if config.io_timeout > Duration::ZERO {
        let _ = stream.set_write_timeout(Some(config.io_timeout));
    }
    let _ = writeln!(stream, "{}", Json::Obj(fields).render());
    let _ = stream.flush();
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// One bounded read of the NDJSON transport.
enum FrameRead {
    /// A complete line within the frame bound.
    Line(String),
    /// The line exceeded [`MAX_FRAME_BYTES`]; its bytes were discarded
    /// up to (and including) the newline, so the connection can keep
    /// serving.
    TooLarge,
    /// Peer hung up. A torn (newline-less) tail is dropped — it was
    /// never a complete request, mirroring the intake journal's
    /// torn-tail rule.
    Eof,
    /// Transport error (reset, broken pipe).
    Failed,
    /// No frame started within [`ServerConfig::idle_timeout`].
    IdleTimeout,
    /// A frame started but did not finish within
    /// [`ServerConfig::io_timeout`] (slowloris).
    FrameTimeout,
}

/// Reads one newline-terminated frame without ever buffering more than
/// [`MAX_FRAME_BYTES`] of it, under the idle/slow-frame deadlines. The
/// underlying stream must carry a short read timeout (the handler's
/// tick); each timed-out read is one tick of the deadline clocks.
fn read_frame(reader: &mut impl BufRead, config: &ServerConfig) -> FrameRead {
    let idle_since = Instant::now();
    let mut frame_since: Option<Instant> = None;
    let mut line: Vec<u8> = Vec::new();
    let mut oversized = false;
    loop {
        let (consumed, complete) = {
            let chunk = match reader.fill_buf() {
                Ok(chunk) => chunk,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    match frame_since {
                        None => {
                            if config.idle_timeout > Duration::ZERO
                                && idle_since.elapsed() >= config.idle_timeout
                            {
                                return FrameRead::IdleTimeout;
                            }
                        }
                        Some(started) => {
                            if config.io_timeout > Duration::ZERO
                                && started.elapsed() >= config.io_timeout
                            {
                                return FrameRead::FrameTimeout;
                            }
                        }
                    }
                    continue;
                }
                Err(_) => return FrameRead::Failed,
            };
            if chunk.is_empty() {
                return FrameRead::Eof;
            }
            frame_since.get_or_insert_with(Instant::now);
            match chunk.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    if !oversized {
                        line.extend_from_slice(&chunk[..pos]);
                    }
                    (pos + 1, true)
                }
                None => {
                    if !oversized {
                        line.extend_from_slice(chunk);
                    }
                    (chunk.len(), false)
                }
            }
        };
        reader.consume(consumed);
        if line.len() > MAX_FRAME_BYTES {
            oversized = true;
            line.clear();
        }
        if complete {
            return if oversized {
                FrameRead::TooLarge
            } else {
                FrameRead::Line(String::from_utf8_lossy(&line).into_owned())
            };
        }
    }
}

/// Serves one admitted connection: a loop of bounded NDJSON
/// request/response pairs until the peer hangs up or a deadline closes
/// it. Malformed requests get a typed `bad-request` reply and oversized
/// ones a typed `frame-too-large` reply — never a panic, never a
/// dropped connection. A `subscribe` request switches the connection
/// into streaming mode and it stays there until one side hangs up.
pub fn handle_client(service: &Service, stream: Stream, config: &ServerConfig) {
    // The tick bounds every read so the deadline clocks advance even
    // when the peer is silent; writes are bounded outright.
    let tick = if config.tick.is_zero() {
        Duration::from_millis(100)
    } else {
        config.tick
    };
    if stream.set_read_timeout(Some(tick)).is_err() {
        return;
    }
    if config.io_timeout > Duration::ZERO
        && stream.set_write_timeout(Some(config.io_timeout)).is_err()
    {
        return;
    }
    let Ok(peer) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(peer);
    let mut writer = stream;
    let send = |writer: &mut Stream, response: &Json| {
        writeln!(writer, "{}", response.render())
            .and_then(|()| writer.flush())
            .is_ok()
    };
    loop {
        let line = match read_frame(&mut reader, config) {
            FrameRead::Line(line) => line,
            FrameRead::TooLarge => {
                let response = error_json(
                    "frame-too-large",
                    &format!("request frames are capped at {MAX_FRAME_BYTES} bytes"),
                );
                if !send(&mut writer, &response) {
                    service.obs_counter("transport.reset", 1);
                    return;
                }
                continue;
            }
            FrameRead::IdleTimeout => {
                service.obs_counter("transport.idle_closed", 1);
                let response = error_json(
                    "idle-timeout",
                    &format!(
                        "no request for {:.0}s; closing",
                        config.idle_timeout.as_secs_f64()
                    ),
                );
                let _ = send(&mut writer, &response);
                let _ = writer.shutdown(std::net::Shutdown::Both);
                return;
            }
            FrameRead::FrameTimeout => {
                service.obs_counter("transport.idle_closed", 1);
                let response = error_json(
                    "slow-frame",
                    &format!(
                        "frame not completed within {:.0}s; closing",
                        config.io_timeout.as_secs_f64()
                    ),
                );
                let _ = send(&mut writer, &response);
                let _ = writer.shutdown(std::net::Shutdown::Both);
                return;
            }
            FrameRead::Eof => return,
            FrameRead::Failed => {
                service.obs_counter("transport.reset", 1);
                return;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let request = match json::parse(&line) {
            Ok(request) => request,
            Err(e) => {
                let response = error_json("bad-request", &format!("unparsable request: {e}"));
                if !send(&mut writer, &response) {
                    service.obs_counter("transport.reset", 1);
                    return;
                }
                continue;
            }
        };
        if request.get("op").and_then(Json::as_str) == Some("subscribe") {
            stream_events(service, &mut writer, &request);
            return;
        }
        if request.get("op").and_then(Json::as_str) == Some("fetch") {
            // Unlike subscribe, fetch is a bounded burst: stream the
            // artifact, then fall back into the request loop.
            if !stream_fetch(service, &mut writer, &request) {
                service.obs_counter("transport.reset", 1);
                return;
            }
            continue;
        }
        let response = handle_request(service, config, &request);
        if !send(&mut writer, &response) {
            service.obs_counter("transport.reset", 1);
            return;
        }
    }
}

/// Serves a `subscribe` request: one ack object, then NDJSON event
/// frames until the subscriber hangs up or the service stops. A slow
/// subscriber only ever blocks its own connection thread; its bounded
/// bus queue drops oldest events with exact accounting
/// (`dropped_since_last`), and the daemon never waits on it.
fn stream_events(service: &Service, writer: &mut Stream, request: &Json) {
    let num = |key: &str| request.get(key).and_then(Json::as_f64);
    let text = |key: &str| request.get(key).and_then(Json::as_str);
    let mut kinds: Option<Vec<String>> = None;
    if let Some(spec) = text("events") {
        let list: Vec<String> = spec
            .split(',')
            .map(|s| s.trim().to_string())
            .filter(|s| !s.is_empty())
            .collect();
        for kind in &list {
            if !EVENT_KINDS.contains(&kind.as_str()) {
                let response = error_json(
                    "bad-request",
                    &format!(
                        "unknown event kind `{kind}` (expected one of: {})",
                        EVENT_KINDS.join(", ")
                    ),
                );
                let _ = writeln!(writer, "{}", response.render());
                return;
            }
        }
        if !list.is_empty() {
            kinds = Some(list);
        }
    }
    let filter = EventFilter {
        job: num("job").map(|j| j as u64),
        client: text("client").map(str::to_string),
        kinds,
        since: num("since").map(|s| s as u64),
    };
    let capacity = num("capacity")
        .map(|c| c as usize)
        .filter(|c| *c > 0)
        .unwrap_or(DEFAULT_SUBSCRIBER_CAPACITY);
    let subscription = service.subscribe(filter, capacity);
    let ack = Json::Obj(vec![
        ("ok".to_string(), Json::Bool(true)),
        ("subscribed".to_string(), Json::Bool(true)),
        (
            "phase".to_string(),
            Json::Str(phase_str(service.phase()).to_string()),
        ),
        (
            "next_seq".to_string(),
            Json::Num(service.events().next_seq() as f64),
        ),
        ("capacity".to_string(), Json::Num(capacity as f64)),
    ]);
    if writeln!(writer, "{}", ack.render())
        .and_then(|()| writer.flush())
        .is_err()
    {
        return;
    }
    loop {
        match subscription.recv(Duration::from_millis(250)) {
            Some(frame) => {
                if writeln!(writer, "{}", frame.to_json().render())
                    .and_then(|()| writer.flush())
                    .is_err()
                {
                    // Subscriber gone; dropping the subscription
                    // unregisters it from the bus.
                    return;
                }
            }
            None => {
                if subscription.is_closed() || service.phase() == ServicePhase::Stopped {
                    return;
                }
            }
        }
    }
}

/// Is `name` an artifact this daemon is willing to serve? Only files
/// the service itself wrote qualify: each job's persisted flow/CCT
/// profile, plus the merged fleet profile a `pp merge` checkpointed
/// into the state directory.
fn fetch_allowed(service: &Service, name: &str) -> bool {
    name == crate::merge::MERGED_PROFILE_FILE
        || service
            .jobs()
            .iter()
            .any(|j| j.flow.as_deref() == Some(name) || j.cct.as_deref() == Some(name))
}

/// Serves one `fetch` request: ack, chunk frames, done frame. Returns
/// whether the connection is still usable (a write failure means the
/// peer hung up). Errors are typed replies, never dropped connections:
/// a traversal attempt or unknown name is refused before any I/O.
fn stream_fetch(service: &Service, writer: &mut Stream, request: &Json) -> bool {
    let send = |writer: &mut Stream, response: &Json| {
        writeln!(writer, "{}", response.render())
            .and_then(|()| writer.flush())
            .is_ok()
    };
    let name = request
        .get("file")
        .and_then(Json::as_str)
        .unwrap_or(crate::merge::MERGED_PROFILE_FILE);
    // The served namespace is flat: artifact basenames inside the state
    // directory, nothing else on the filesystem.
    if name.contains('/') || name.contains('\\') || name.contains("..") || name.is_empty() {
        return send(
            writer,
            &error_json("bad-request", "fetch file must be a bare artifact name"),
        );
    }
    if !fetch_allowed(service, name) {
        return send(
            writer,
            &error_json(
                "unknown-artifact",
                &format!("`{name}` is not a stored artifact of this daemon"),
            ),
        );
    }
    let bytes = match std::fs::read(service.dir().join(name)) {
        Ok(bytes) => bytes,
        Err(e) => {
            return send(writer, &error_json("io", &format!("{name}: {e}")));
        }
    };
    let r = ProfileRef::for_bytes(name, &bytes);
    let chunks = bytes.len().div_ceil(FETCH_CHUNK_RAW);
    let ack = Json::Obj(vec![
        ("ok".to_string(), Json::Bool(true)),
        ("file".to_string(), Json::Str(name.to_string())),
        ("len".to_string(), Json::Num(r.len as f64)),
        ("crc".to_string(), Json::Num(f64::from(r.crc))),
        ("chunks".to_string(), Json::Num(chunks as f64)),
    ]);
    if !send(writer, &ack) {
        return false;
    }
    for (i, chunk) in bytes.chunks(FETCH_CHUNK_RAW).enumerate() {
        let frame = Json::Obj(vec![
            ("chunk".to_string(), Json::Num(i as f64)),
            ("data".to_string(), Json::Str(b64_encode(chunk))),
        ]);
        if !send(writer, &frame) {
            return false;
        }
    }
    send(
        writer,
        &Json::Obj(vec![
            ("done".to_string(), Json::Bool(true)),
            ("chunks".to_string(), Json::Num(chunks as f64)),
        ]),
    )
}

/// Dispatches one parsed request object to the service.
fn handle_request(service: &Service, config: &ServerConfig, request: &Json) -> Json {
    let str_field = |key: &str| request.get(key).and_then(Json::as_str);
    let num_field = |key: &str| request.get(key).and_then(Json::as_f64);
    let ok = |mut fields: Vec<(String, Json)>| {
        fields.insert(0, ("ok".to_string(), Json::Bool(true)));
        Json::Obj(fields)
    };
    match str_field("op") {
        Some("ping") => {
            let (queued, running, done, failed) = service.counts();
            ok(vec![
                (
                    "phase".to_string(),
                    Json::Str(phase_str(service.phase()).to_string()),
                ),
                ("queued".to_string(), Json::Num(queued as f64)),
                ("running".to_string(), Json::Num(running as f64)),
                ("done".to_string(), Json::Num(done as f64)),
                ("failed".to_string(), Json::Num(failed as f64)),
            ])
        }
        Some("submit") => {
            let Some(spec) = str_field("spec") else {
                return error_json("bad-request", "submit needs \"spec\"");
            };
            let client = str_field("client").unwrap_or("anon");
            let name = str_field("name").unwrap_or(spec);
            match service.submit(client, name, spec) {
                Ok(id) => ok(vec![("id".to_string(), Json::Num(id as f64))]),
                Err(e) => {
                    let mut reply = match error_json(e.kind(), &e.to_string()) {
                        Json::Obj(fields) => fields,
                        _ => unreachable!(),
                    };
                    // Structured fields so the client can rebuild the
                    // exact AdmitError, not just its message — and the
                    // shed refusals carry the pacing hint the retrying
                    // client honors.
                    match &e {
                        AdmitError::Overloaded { capacity } => {
                            reply.push(("capacity".to_string(), Json::Num(*capacity as f64)));
                            reply.push((
                                "retry_after_ms".to_string(),
                                Json::Num(config.retry_after_ms as f64),
                            ));
                        }
                        AdmitError::QuotaExceeded { quota, .. } => {
                            reply.push(("quota".to_string(), Json::Num(*quota as f64)));
                        }
                        AdmitError::Draining => {
                            reply.push((
                                "retry_after_ms".to_string(),
                                Json::Num(config.retry_after_ms as f64),
                            ));
                        }
                        _ => {}
                    }
                    Json::Obj(reply)
                }
            }
        }
        Some("status") => match num_field("id") {
            Some(id) => match service.status(id as u64) {
                Some(job) => ok(vec![("job".to_string(), job.to_json())]),
                None => error_json("unknown-job", &format!("no job {id}")),
            },
            None => {
                let jobs: Vec<Json> = service.jobs().iter().map(|j| j.to_json()).collect();
                ok(vec![
                    (
                        "phase".to_string(),
                        Json::Str(phase_str(service.phase()).to_string()),
                    ),
                    ("jobs".to_string(), Json::Arr(jobs)),
                ])
            }
        },
        Some("wait") => {
            let Some(id) = num_field("id") else {
                return error_json("bad-request", "wait needs \"id\"");
            };
            let timeout = Duration::from_secs_f64(num_field("timeout_s").unwrap_or(600.0));
            match service.wait(id as u64, timeout) {
                Some(job) => ok(vec![("job".to_string(), job.to_json())]),
                None => error_json("unknown-job", &format!("no job {id}")),
            }
        }
        Some("wait-idle") => {
            let timeout = Duration::from_secs_f64(num_field("timeout_s").unwrap_or(60.0));
            let idle = service.wait_idle(timeout);
            ok(vec![("idle".to_string(), Json::Bool(idle))])
        }
        Some("metrics") => {
            let registry = service.registry();
            // The registry renders itself; parse it back so it embeds as
            // an object rather than a string.
            let registry_json =
                json::parse(&registry.to_json()).unwrap_or_else(|_| Json::Obj(Vec::new()));
            ok(vec![
                ("metrics".to_string(), service.metrics().to_json()),
                ("registry".to_string(), registry_json),
                ("prom".to_string(), Json::Str(registry.prom_text())),
            ])
        }
        Some("drain") => {
            service.drain();
            ok(vec![(
                "phase".to_string(),
                Json::Str(phase_str(service.phase()).to_string()),
            )])
        }
        Some(other) => error_json("bad-request", &format!("unknown op `{other}`")),
        None => error_json("bad-request", "request lacks \"op\""),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::Profiler;
    use crate::service::ServiceConfig;
    use crate::transport::b64_decode;
    use std::os::unix::net::UnixStream;
    use std::path::PathBuf;

    /// A service whose resolver refuses everything — protocol tests
    /// exercise the transport, not job execution.
    fn proto_service(tag: &str) -> (Arc<Service>, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("pp-server-proto-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let resolver: crate::service::SpecResolver =
            Arc::new(|_spec: &str| Err("protocol tests resolve nothing".to_string()));
        let config = ServiceConfig {
            workers: 1,
            params: "proto-test".to_string(),
            ..ServiceConfig::default()
        };
        let service =
            Service::start(config, Profiler::default(), resolver, &dir).expect("service starts");
        (Arc::new(service), dir)
    }

    /// Protocol unit tests want blocking semantics with no surprise
    /// deadline closes; governance has its own tests below.
    fn lenient_config() -> ServerConfig {
        ServerConfig {
            idle_timeout: Duration::from_secs(30),
            io_timeout: Duration::from_secs(30),
            tick: Duration::from_millis(20),
            ..ServerConfig::default()
        }
    }

    /// Wires a raw client socket to a live `handle_client` thread.
    fn proto_conn(
        service: &Arc<Service>,
        config: &ServerConfig,
    ) -> (
        UnixStream,
        BufReader<UnixStream>,
        std::thread::JoinHandle<()>,
    ) {
        let (client, server) = UnixStream::pair().expect("socketpair");
        let svc = Arc::clone(service);
        let config = config.clone();
        let handler =
            std::thread::spawn(move || handle_client(&svc, Stream::Unix(server), &config));
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .expect("read timeout");
        let reader = BufReader::new(client.try_clone().expect("clone"));
        (client, reader, handler)
    }

    fn read_reply(reader: &mut BufReader<UnixStream>) -> Json {
        let mut line = String::new();
        reader.read_line(&mut line).expect("reply line");
        json::parse(line.trim()).expect("reply parses")
    }

    #[test]
    fn fetch_streams_chunked_artifact_and_connection_survives() {
        let (service, dir) = proto_service("fetch");
        // Big enough for three chunk frames, awkwardly misaligned.
        let artifact: Vec<u8> = (0..2 * FETCH_CHUNK_RAW + 777)
            .map(|i| (i % 251) as u8)
            .collect();
        std::fs::write(dir.join(crate::merge::MERGED_PROFILE_FILE), &artifact)
            .expect("write artifact");
        let config = lenient_config();
        let (mut client, mut reader, handler) = proto_conn(&service, &config);

        // Traversal and unknown names are refused without touching disk.
        for (request, want) in [
            (
                "{\"op\":\"fetch\",\"file\":\"../../etc/passwd\"}",
                "bad-request",
            ),
            (
                "{\"op\":\"fetch\",\"file\":\"job-000001.cct\"}",
                "unknown-artifact",
            ),
        ] {
            client.write_all(request.as_bytes()).expect("request");
            client.write_all(b"\n").expect("newline");
            client.flush().expect("flush");
            let reply = read_reply(&mut reader);
            assert_eq!(
                reply.get("error").and_then(Json::as_str),
                Some(want),
                "{request}"
            );
        }

        // Default fetch = the merged fleet profile, in order, CRC-true.
        client.write_all(b"{\"op\":\"fetch\"}\n").expect("fetch");
        client.flush().expect("flush");
        let ack = read_reply(&mut reader);
        assert_eq!(ack.get("ok").and_then(Json::as_bool), Some(true), "{ack:?}");
        assert_eq!(
            ack.get("len").and_then(Json::as_f64),
            Some(artifact.len() as f64)
        );
        let chunks = ack.get("chunks").and_then(Json::as_f64).expect("chunks") as usize;
        assert_eq!(chunks, 3);
        let mut got = Vec::new();
        for i in 0..chunks {
            let frame = read_reply(&mut reader);
            assert_eq!(frame.get("chunk").and_then(Json::as_f64), Some(i as f64));
            let data = frame.get("data").and_then(Json::as_str).expect("data");
            assert!(
                data.len() < MAX_FRAME_BYTES,
                "chunk frames obey the frame rule"
            );
            got.extend(b64_decode(data).expect("valid base64"));
        }
        let done = read_reply(&mut reader);
        assert_eq!(done.get("done").and_then(Json::as_bool), Some(true));
        assert_eq!(got, artifact, "reassembled bytes match");
        let want_crc = ProfileRef::for_bytes("x", &artifact).crc;
        assert_eq!(
            ack.get("crc").and_then(Json::as_f64),
            Some(f64::from(want_crc))
        );

        // The connection keeps serving plain requests afterwards.
        client.write_all(b"{\"op\":\"ping\"}\n").expect("ping");
        client.flush().expect("flush");
        let ping = read_reply(&mut reader);
        assert_eq!(ping.get("ok").and_then(Json::as_bool), Some(true));
        drop(client);
        drop(reader);
        handler.join().expect("handler exits");
        service.shutdown().expect("shutdown");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_frame_gets_typed_error_and_connection_survives() {
        let (service, dir) = proto_service("oversized");
        let config = lenient_config();
        let (mut client, mut reader, handler) = proto_conn(&service, &config);
        let mut huge = vec![b'a'; MAX_FRAME_BYTES + 512];
        huge.push(b'\n');
        client.write_all(&huge).expect("oversized frame");
        client
            .write_all(b"{\"op\":\"ping\"}\n")
            .expect("ping after");
        client.flush().expect("flush");
        let first = read_reply(&mut reader);
        assert_eq!(
            first.get("error").and_then(Json::as_str),
            Some("frame-too-large"),
            "{first:?}"
        );
        let second = read_reply(&mut reader);
        assert_eq!(second.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            second.get("phase").and_then(Json::as_str),
            Some("accepting"),
            "the connection keeps serving after the oversized frame"
        );
        drop(client);
        drop(reader);
        handler.join().expect("handler exits");
        service.shutdown().expect("shutdown");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_and_garbage_frames_never_panic_or_wedge() {
        let (service, dir) = proto_service("torn");
        let config = lenient_config();
        let (mut client, mut reader, handler) = proto_conn(&service, &config);
        // Interleaved garbage: binary junk, an empty line, unparsable
        // JSON — each complete frame earns one typed reply.
        client
            .write_all(b"\x00\xfe\x01 binary junk\n")
            .expect("junk");
        client.write_all(b"\n").expect("blank");
        client
            .write_all(b"{\"op\": \"ping\"")
            .expect("half an object");
        client.write_all(b" oops}\n").expect("rest of the line");
        client
            .write_all(b"{\"op\":\"ping\"}\n")
            .expect("valid ping");
        client.flush().expect("flush");
        let junk_reply = read_reply(&mut reader);
        assert_eq!(
            junk_reply.get("error").and_then(Json::as_str),
            Some("bad-request")
        );
        let torn_json_reply = read_reply(&mut reader);
        assert_eq!(
            torn_json_reply.get("error").and_then(Json::as_str),
            Some("bad-request")
        );
        let ping_reply = read_reply(&mut reader);
        assert_eq!(ping_reply.get("ok").and_then(Json::as_bool), Some(true));
        // A torn final frame (no newline) at hangup is dropped silently:
        // it was never a complete request.
        client.write_all(b"{\"op\":\"stat").expect("torn tail");
        client
            .shutdown(std::net::Shutdown::Write)
            .expect("half-close");
        let mut rest = String::new();
        reader.read_line(&mut rest).expect("eof");
        assert!(rest.is_empty(), "no reply to a torn tail: {rest:?}");
        drop(client);
        drop(reader);
        handler.join().expect("handler exits cleanly");
        service.shutdown().expect("shutdown");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn unknown_ops_and_missing_fields_get_typed_refusals() {
        let (service, dir) = proto_service("badops");
        let config = lenient_config();
        let (mut client, mut reader, handler) = proto_conn(&service, &config);
        for (request, want) in [
            ("{\"op\":\"warp\"}", "bad-request"),
            ("{\"no_op\":1}", "bad-request"),
            ("{\"op\":\"submit\"}", "bad-request"),
            ("{\"op\":\"submit\",\"spec\":\"x\"}", "bad-spec"),
        ] {
            client
                .write_all(format!("{request}\n").as_bytes())
                .expect("request");
            client.flush().expect("flush");
            let reply = read_reply(&mut reader);
            assert_eq!(
                reply.get("error").and_then(Json::as_str),
                Some(want),
                "{request} -> {reply:?}"
            );
        }
        drop(client);
        drop(reader);
        handler.join().expect("handler exits");
        service.shutdown().expect("shutdown");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn subscribe_validates_kinds_then_streams_frames() {
        let (service, dir) = proto_service("subscribe");
        let config = lenient_config();
        // A bad kind is refused before any subscription exists.
        {
            let (mut client, mut reader, handler) = proto_conn(&service, &config);
            client
                .write_all(b"{\"op\":\"subscribe\",\"events\":\"nonsense\"}\n")
                .expect("bad subscribe");
            client.flush().expect("flush");
            let reply = read_reply(&mut reader);
            assert_eq!(
                reply.get("error").and_then(Json::as_str),
                Some("bad-request")
            );
            drop(client);
            drop(reader);
            handler.join().expect("handler exits");
        }
        assert_eq!(service.events().subscriber_count(), 0);
        // The happy path: ack, then frames as events are published.
        let (client, mut reader, handler) = proto_conn(&service, &config);
        {
            let mut w = client.try_clone().expect("clone");
            w.write_all(b"{\"op\":\"subscribe\",\"since\":0}\n")
                .expect("subscribe");
            w.flush().expect("flush");
        }
        let ack = read_reply(&mut reader);
        assert_eq!(ack.get("subscribed").and_then(Json::as_bool), Some(true));
        let seq = service.events().publish(pp_obs::events::Event::job_event(
            3,
            "ci",
            "tiny",
            pp_obs::events::Payload::Queued { depth: 1 },
        ));
        let frame = read_reply(&mut reader);
        assert_eq!(frame.get("seq").and_then(Json::as_f64), Some(seq as f64));
        assert_eq!(frame.get("event").and_then(Json::as_str), Some("queued"));
        assert_eq!(
            frame.get("dropped_since_last").and_then(Json::as_f64),
            Some(0.0)
        );
        // Hanging up unregisters the subscriber: the next delivery's
        // write fails with EPIPE and the stream loop exits.
        drop(client);
        drop(reader);
        service
            .events()
            .publish(pp_obs::events::Event::service_event(
                pp_obs::events::Payload::StateChanged {
                    phase: "accepting".to_string(),
                },
            ));
        handler.join().expect("stream handler exits");
        assert_eq!(service.events().subscriber_count(), 0);
        service.shutdown().expect("shutdown");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn idle_peer_is_closed_with_a_typed_frame_and_counted() {
        let (service, dir) = proto_service("idle");
        let config = ServerConfig {
            idle_timeout: Duration::from_millis(120),
            io_timeout: Duration::from_secs(5),
            tick: Duration::from_millis(20),
            ..ServerConfig::default()
        };
        let (client, mut reader, handler) = proto_conn(&service, &config);
        // Send nothing at all: the peer connected and went silent.
        let reply = read_reply(&mut reader);
        assert_eq!(
            reply.get("error").and_then(Json::as_str),
            Some("idle-timeout"),
            "{reply:?}"
        );
        handler.join().expect("handler self-terminates");
        let snapshot = service.registry().snapshot();
        assert!(
            snapshot.contains("transport.idle_closed"),
            "idle close is counted:\n{snapshot}"
        );
        drop(client);
        service.shutdown().expect("shutdown");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn slowloris_partial_frame_is_cut_by_the_io_deadline() {
        let (service, dir) = proto_service("slowloris");
        let config = ServerConfig {
            idle_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_millis(150),
            tick: Duration::from_millis(20),
            ..ServerConfig::default()
        };
        let (mut client, mut reader, handler) = proto_conn(&service, &config);
        // Start a frame and never finish it: one byte, then silence.
        client.write_all(b"{").expect("first byte");
        client.flush().expect("flush");
        let reply = read_reply(&mut reader);
        assert_eq!(
            reply.get("error").and_then(Json::as_str),
            Some("slow-frame"),
            "{reply:?}"
        );
        handler.join().expect("handler self-terminates");
        drop(client);
        service.shutdown().expect("shutdown");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn accept_loop_caps_connections_and_sheds_on_drain() {
        use crate::transport::{BindAddr, Client, ClientConfig, RetryPolicy};

        let (service, dir) = proto_service("cap");
        let addr = BindAddr::Tcp("127.0.0.1:0".to_string());
        let listener = Listener::bind(&addr).expect("bind");
        let bound = listener.local_display();
        let tcp = BindAddr::parse(bound.strip_prefix("tcp://").expect("tcp addr"));
        let stop = CancelToken::new();
        let config = ServerConfig {
            max_conns: 1,
            idle_timeout: Duration::from_secs(10),
            io_timeout: Duration::from_secs(5),
            retry_after_ms: 10,
            ..ServerConfig::default()
        };
        let loop_service = Arc::clone(&service);
        let loop_stop = stop.clone();
        let loop_config = config.clone();
        let accept_loop = std::thread::spawn(move || {
            run_accept_loop(&loop_service, &[listener], &loop_config, &loop_stop);
        });

        // First connection occupies the only slot (prove it is admitted
        // by completing a request).
        let mut first = Client::new(
            tcp.clone(),
            ClientConfig {
                op_timeout: Duration::from_secs(5),
                tick: Duration::from_millis(20),
                retry: RetryPolicy {
                    attempts: 10,
                    base_ms: 10,
                    cap_ms: 50,
                    seed: 1,
                },
            },
        );
        let ping = Json::Obj(vec![("op".to_string(), Json::Str("ping".to_string()))]);
        let reply = first.request(&ping).expect("first conn serves");
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));

        // Second connection hits the cap: a raw dial reads the typed
        // refusal with the pacing hint.
        {
            let raw = Stream::connect(&tcp).expect("dial");
            raw.set_read_timeout(Some(Duration::from_secs(5)))
                .expect("timeout");
            let mut line = String::new();
            BufReader::new(raw).read_line(&mut line).expect("refusal");
            let frame = json::parse(line.trim()).expect("refusal parses");
            assert_eq!(
                frame.get("error").and_then(Json::as_str),
                Some("overloaded"),
                "{frame:?}"
            );
            assert_eq!(frame.get("capacity").and_then(Json::as_f64), Some(1.0));
            assert_eq!(
                frame.get("retry_after_ms").and_then(Json::as_f64),
                Some(10.0)
            );
        }

        // A retrying client succeeds once the slot frees up: drop the
        // first connection mid-retry-schedule.
        let mut second = Client::new(
            tcp.clone(),
            ClientConfig {
                op_timeout: Duration::from_secs(5),
                tick: Duration::from_millis(20),
                retry: RetryPolicy {
                    attempts: 50,
                    base_ms: 10,
                    cap_ms: 20,
                    seed: 2,
                },
            },
        );
        drop(first);
        let reply = second.request(&ping).expect("retry lands after shed");
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        drop(second);

        // Drain: new connections get the typed `draining` shed.
        service.drain();
        let raw = Stream::connect(&tcp).expect("dial during drain");
        raw.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        let mut line = String::new();
        BufReader::new(raw)
            .read_line(&mut line)
            .expect("shed frame");
        let frame = json::parse(line.trim()).expect("shed parses");
        assert_eq!(
            frame.get("error").and_then(Json::as_str),
            Some("draining"),
            "{frame:?}"
        );
        assert!(frame.get("retry_after_ms").is_some());

        stop.cancel();
        accept_loop.join().expect("accept loop exits");
        let snapshot = service.registry().snapshot();
        assert!(snapshot.contains("transport.accepted"), "{snapshot}");
        assert!(snapshot.contains("transport.refused"), "{snapshot}");
        service.shutdown().expect("shutdown");
        std::fs::remove_dir_all(&dir).ok();
    }
}
