//! The collected flow profile.

use std::io::{Read, Write};

use pp_cct::{read_envelope, write_envelope, SerializeError, SumMap};
use pp_ir::ProcId;

const MAGIC: &[u8; 8] = b"PPFLOW2\n";
/// The pre-checksum format, recognized only to report a version error.
const MAGIC_V1: &[u8; 8] = b"PPFLOW1\n";

/// Counters for one intraprocedural path.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PathCell {
    /// Times the path executed.
    pub freq: u64,
    /// Accumulated first hardware metric (`%pic0` over the path).
    pub m0: u64,
    /// Accumulated second hardware metric (`%pic1` over the path).
    pub m1: u64,
}

/// Per-procedure path counter tables — what the paper's flow sensitive
/// profiling writes out.
#[derive(Clone, Debug, Default)]
pub struct FlowProfile {
    tables: Vec<SumMap<PathCell>>,
}

impl FlowProfile {
    /// Creates empty tables for `num_procs` procedures.
    pub fn new(num_procs: usize) -> FlowProfile {
        FlowProfile {
            tables: vec![SumMap::default(); num_procs],
        }
    }

    /// Bumps the counter for (`proc`, `sum`), accumulating metric values
    /// when present.
    pub fn record(&mut self, proc: ProcId, sum: u64, metrics: Option<(u64, u64)>) {
        let cell = self.tables[proc.index()].entry(sum).or_default();
        cell.freq += 1;
        if let Some((m0, m1)) = metrics {
            cell.m0 += m0;
            cell.m1 += m1;
        }
    }

    /// The cell for (`proc`, `sum`), if the path ever executed.
    pub fn get(&self, proc: ProcId, sum: u64) -> Option<&PathCell> {
        self.tables[proc.index()].get(&sum)
    }

    /// Number of procedures.
    pub fn num_procs(&self) -> usize {
        self.tables.len()
    }

    /// Number of distinct paths executed in `proc`.
    pub fn paths_executed(&self, proc: ProcId) -> usize {
        self.tables[proc.index()].len()
    }

    /// Total distinct paths executed across all procedures.
    pub fn total_paths_executed(&self) -> usize {
        self.tables.iter().map(|t| t.len()).sum()
    }

    /// Iterates `(proc, sum, cell)` over every executed path, procedure by
    /// procedure, path sums ascending within a procedure.
    pub fn iter_paths(&self) -> impl Iterator<Item = (ProcId, u64, PathCell)> + '_ {
        self.tables.iter().enumerate().flat_map(|(p, table)| {
            let mut entries: Vec<(u64, PathCell)> = table.iter().map(|(&s, &c)| (s, c)).collect();
            entries.sort_by_key(|&(s, _)| s);
            entries
                .into_iter()
                .map(move |(s, c)| (ProcId(p as u32), s, c))
        })
    }

    /// Merges another profile of the same program: cells add. Profilers
    /// use this to combine runs over several inputs. Sums saturate
    /// rather than wrap, keeping a many-shard fold commutative and
    /// associative even at the `u64` ceiling.
    ///
    /// # Panics
    ///
    /// Panics if the procedure counts differ.
    pub fn merge_from(&mut self, other: &FlowProfile) {
        assert_eq!(
            self.tables.len(),
            other.tables.len(),
            "profiles cover different programs"
        );
        for (mine, theirs) in self.tables.iter_mut().zip(&other.tables) {
            for (&sum, cell) in theirs {
                let e = mine.entry(sum).or_default();
                e.freq = e.freq.saturating_add(cell.freq);
                e.m0 = e.m0.saturating_add(cell.m0);
                e.m1 = e.m1.saturating_add(cell.m1);
            }
        }
    }

    /// Writes the profile: a `PPFLOW2` envelope (magic, payload length,
    /// CRC-32 trailer) around the procedure count and, per procedure, the
    /// entry count and `(sum, freq, m0, m1)` quadruples.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_to(&self, w: &mut impl Write) -> Result<(), SerializeError> {
        let mut payload = Vec::new();
        payload.extend_from_slice(&(self.tables.len() as u32).to_le_bytes());
        for table in &self.tables {
            payload.extend_from_slice(&(table.len() as u32).to_le_bytes());
            let mut entries: Vec<(&u64, &PathCell)> = table.iter().collect();
            entries.sort_by_key(|(&s, _)| s);
            for (&sum, cell) in entries {
                for v in [sum, cell.freq, cell.m0, cell.m1] {
                    payload.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        write_envelope(w, MAGIC, &payload)
    }

    /// Reads a profile written by [`FlowProfile::write_to`].
    ///
    /// # Errors
    ///
    /// [`SerializeError::UnsupportedVersion`] for a `PPFLOW1` file,
    /// [`SerializeError::Format`] on a bad magic or inconsistent payload,
    /// [`SerializeError::Truncated`] when the input ends early, and
    /// [`SerializeError::ChecksumMismatch`] when the payload bytes were
    /// altered. Never panics on arbitrary input.
    pub fn read_from(r: &mut impl Read) -> Result<FlowProfile, SerializeError> {
        let payload = read_envelope(
            r,
            MAGIC,
            &[(
                MAGIC_V1,
                "PPFLOW1 (no checksum); re-profile to produce PPFLOW2",
            )],
        )?;
        let mut cur: &[u8] = &payload;
        let take4 = |cur: &mut &[u8]| -> Result<u32, SerializeError> {
            let (head, rest) = cur
                .split_first_chunk::<4>()
                .ok_or_else(|| SerializeError::Format("payload cut short".into()))?;
            *cur = rest;
            Ok(u32::from_le_bytes(*head))
        };
        let take8 = |cur: &mut &[u8]| -> Result<u64, SerializeError> {
            let (head, rest) = cur
                .split_first_chunk::<8>()
                .ok_or_else(|| SerializeError::Format("payload cut short".into()))?;
            *cur = rest;
            Ok(u64::from_le_bytes(*head))
        };
        let nprocs = take4(&mut cur)? as usize;
        if nprocs > 10_000_000 {
            return Err(SerializeError::Format("implausible procedure count".into()));
        }
        let mut out = FlowProfile::new(nprocs);
        for table in &mut out.tables {
            let n = take4(&mut cur)? as usize;
            if n > cur.len() {
                return Err(SerializeError::Format("implausible entry count".into()));
            }
            for _ in 0..n {
                let sum = take8(&mut cur)?;
                let freq = take8(&mut cur)?;
                let m0 = take8(&mut cur)?;
                let m1 = take8(&mut cur)?;
                table.insert(sum, PathCell { freq, m0, m1 });
            }
        }
        if !cur.is_empty() {
            return Err(SerializeError::Format(format!(
                "{} trailing payload bytes",
                cur.len()
            )));
        }
        Ok(out)
    }

    /// Sum of a projection over all cells (e.g. total misses).
    pub fn total(&self, f: impl Fn(&PathCell) -> u64) -> u64 {
        self.tables.iter().flat_map(|t| t.values()).map(f).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut fp = FlowProfile::new(2);
        fp.record(ProcId(0), 3, Some((100, 5)));
        fp.record(ProcId(0), 3, Some((50, 2)));
        fp.record(ProcId(1), 0, None);
        let c = fp.get(ProcId(0), 3).unwrap();
        assert_eq!(c.freq, 2);
        assert_eq!(c.m0, 150);
        assert_eq!(c.m1, 7);
        assert_eq!(fp.total_paths_executed(), 2);
        assert_eq!(fp.paths_executed(ProcId(0)), 1);
        assert_eq!(fp.total(|c| c.freq), 3);
        assert_eq!(fp.total(|c| c.m1), 7);
    }

    #[test]
    fn iter_is_sorted_within_proc() {
        let mut fp = FlowProfile::new(1);
        fp.record(ProcId(0), 9, None);
        fp.record(ProcId(0), 1, None);
        fp.record(ProcId(0), 4, None);
        let sums: Vec<u64> = fp.iter_paths().map(|(_, s, _)| s).collect();
        assert_eq!(sums, vec![1, 4, 9]);
    }

    #[test]
    fn merge_adds_cells() {
        let mut a = FlowProfile::new(2);
        a.record(ProcId(0), 1, Some((10, 2)));
        let mut b = FlowProfile::new(2);
        b.record(ProcId(0), 1, Some((5, 1)));
        b.record(ProcId(1), 0, None);
        a.merge_from(&b);
        let c = a.get(ProcId(0), 1).unwrap();
        assert_eq!((c.freq, c.m0, c.m1), (2, 15, 3));
        assert_eq!(a.get(ProcId(1), 0).unwrap().freq, 1);
    }

    #[test]
    #[should_panic(expected = "different programs")]
    fn merge_rejects_mismatched_sizes() {
        let mut a = FlowProfile::new(1);
        a.merge_from(&FlowProfile::new(2));
    }

    #[test]
    fn binary_roundtrip() {
        let mut fp = FlowProfile::new(3);
        fp.record(ProcId(0), 5, Some((100, 7)));
        fp.record(ProcId(2), 0, None);
        fp.record(ProcId(2), 9, Some((1, 1)));
        let mut buf = Vec::new();
        fp.write_to(&mut buf).unwrap();
        let back = FlowProfile::read_from(&mut buf.as_slice()).unwrap();
        let a: Vec<_> = fp.iter_paths().collect();
        let b: Vec<_> = back.iter_paths().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn read_rejects_garbage() {
        let err = FlowProfile::read_from(&mut &b"NOTFLOW!"[..]).unwrap_err();
        assert!(matches!(err, SerializeError::Format(_)), "{err}");
        let err = FlowProfile::read_from(&mut &b"PPFLOW1\n"[..]).unwrap_err();
        assert!(
            matches!(err, SerializeError::UnsupportedVersion(_)),
            "{err}"
        );
    }

    #[test]
    fn truncation_at_every_offset_is_typed() {
        let mut fp = FlowProfile::new(2);
        fp.record(ProcId(0), 3, Some((9, 2)));
        fp.record(ProcId(1), 1, None);
        let mut buf = Vec::new();
        fp.write_to(&mut buf).unwrap();
        for cut in 0..buf.len() {
            let err = FlowProfile::read_from(&mut &buf[..cut]).unwrap_err();
            assert!(
                matches!(err, SerializeError::Truncated { .. }),
                "cut at {cut}: {err}"
            );
        }
        FlowProfile::read_from(&mut buf.as_slice()).unwrap();
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let mut fp = FlowProfile::new(1);
        fp.record(ProcId(0), 5, Some((100, 7)));
        let mut buf = Vec::new();
        fp.write_to(&mut buf).unwrap();
        for i in 0..buf.len() {
            for bit in 0..8 {
                let mut corrupt = buf.clone();
                corrupt[i] ^= 1 << bit;
                assert!(
                    FlowProfile::read_from(&mut corrupt.as_slice()).is_err(),
                    "flip at byte {i} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn missing_path_is_none() {
        let fp = FlowProfile::new(1);
        assert!(fp.get(ProcId(0), 7).is_none());
    }
}
