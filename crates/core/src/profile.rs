//! The collected flow profile.

use std::collections::HashMap;
use std::io::{self, Read, Write};

use pp_ir::ProcId;

/// Counters for one intraprocedural path.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct PathCell {
    /// Times the path executed.
    pub freq: u64,
    /// Accumulated first hardware metric (`%pic0` over the path).
    pub m0: u64,
    /// Accumulated second hardware metric (`%pic1` over the path).
    pub m1: u64,
}

/// Per-procedure path counter tables — what the paper's flow sensitive
/// profiling writes out.
#[derive(Clone, Debug, Default)]
pub struct FlowProfile {
    tables: Vec<HashMap<u64, PathCell>>,
}

impl FlowProfile {
    /// Creates empty tables for `num_procs` procedures.
    pub fn new(num_procs: usize) -> FlowProfile {
        FlowProfile {
            tables: vec![HashMap::new(); num_procs],
        }
    }

    /// Bumps the counter for (`proc`, `sum`), accumulating metric values
    /// when present.
    pub fn record(&mut self, proc: ProcId, sum: u64, metrics: Option<(u64, u64)>) {
        let cell = self.tables[proc.index()].entry(sum).or_default();
        cell.freq += 1;
        if let Some((m0, m1)) = metrics {
            cell.m0 += m0;
            cell.m1 += m1;
        }
    }

    /// The cell for (`proc`, `sum`), if the path ever executed.
    pub fn get(&self, proc: ProcId, sum: u64) -> Option<&PathCell> {
        self.tables[proc.index()].get(&sum)
    }

    /// Number of procedures.
    pub fn num_procs(&self) -> usize {
        self.tables.len()
    }

    /// Number of distinct paths executed in `proc`.
    pub fn paths_executed(&self, proc: ProcId) -> usize {
        self.tables[proc.index()].len()
    }

    /// Total distinct paths executed across all procedures.
    pub fn total_paths_executed(&self) -> usize {
        self.tables.iter().map(HashMap::len).sum()
    }

    /// Iterates `(proc, sum, cell)` over every executed path, procedure by
    /// procedure, path sums ascending within a procedure.
    pub fn iter_paths(&self) -> impl Iterator<Item = (ProcId, u64, PathCell)> + '_ {
        self.tables.iter().enumerate().flat_map(|(p, table)| {
            let mut entries: Vec<(u64, PathCell)> =
                table.iter().map(|(&s, &c)| (s, c)).collect();
            entries.sort_by_key(|&(s, _)| s);
            entries
                .into_iter()
                .map(move |(s, c)| (ProcId(p as u32), s, c))
        })
    }

    /// Merges another profile of the same program: cells add. Profilers
    /// use this to combine runs over several inputs.
    ///
    /// # Panics
    ///
    /// Panics if the procedure counts differ.
    pub fn merge_from(&mut self, other: &FlowProfile) {
        assert_eq!(
            self.tables.len(),
            other.tables.len(),
            "profiles cover different programs"
        );
        for (mine, theirs) in self.tables.iter_mut().zip(&other.tables) {
            for (&sum, cell) in theirs {
                let e = mine.entry(sum).or_default();
                e.freq += cell.freq;
                e.m0 += cell.m0;
                e.m1 += cell.m1;
            }
        }
    }

    /// Writes the profile in a compact binary format (magic, procedure
    /// count, then per procedure the entry count and `(sum, freq, m0, m1)`
    /// quadruples).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from `w`.
    pub fn write_to(&self, w: &mut impl Write) -> io::Result<()> {
        w.write_all(b"PPFLOW1\n")?;
        w.write_all(&(self.tables.len() as u32).to_le_bytes())?;
        for table in &self.tables {
            w.write_all(&(table.len() as u32).to_le_bytes())?;
            let mut entries: Vec<(&u64, &PathCell)> = table.iter().collect();
            entries.sort_by_key(|(&s, _)| s);
            for (&sum, cell) in entries {
                for v in [sum, cell.freq, cell.m0, cell.m1] {
                    w.write_all(&v.to_le_bytes())?;
                }
            }
        }
        Ok(())
    }

    /// Reads a profile written by [`FlowProfile::write_to`].
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` on a bad magic number and propagates read
    /// failures (including truncation).
    pub fn read_from(r: &mut impl Read) -> io::Result<FlowProfile> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != b"PPFLOW1\n" {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
        }
        let mut b4 = [0u8; 4];
        let mut b8 = [0u8; 8];
        r.read_exact(&mut b4)?;
        let nprocs = u32::from_le_bytes(b4) as usize;
        if nprocs > 10_000_000 {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "implausible size"));
        }
        let mut out = FlowProfile::new(nprocs);
        for table in &mut out.tables {
            r.read_exact(&mut b4)?;
            let n = u32::from_le_bytes(b4) as usize;
            for _ in 0..n {
                let mut vals = [0u64; 4];
                for v in &mut vals {
                    r.read_exact(&mut b8)?;
                    *v = u64::from_le_bytes(b8);
                }
                table.insert(
                    vals[0],
                    PathCell {
                        freq: vals[1],
                        m0: vals[2],
                        m1: vals[3],
                    },
                );
            }
        }
        Ok(out)
    }

    /// Sum of a projection over all cells (e.g. total misses).
    pub fn total(&self, f: impl Fn(&PathCell) -> u64) -> u64 {
        self.tables
            .iter()
            .flat_map(|t| t.values())
            .map(f)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_totals() {
        let mut fp = FlowProfile::new(2);
        fp.record(ProcId(0), 3, Some((100, 5)));
        fp.record(ProcId(0), 3, Some((50, 2)));
        fp.record(ProcId(1), 0, None);
        let c = fp.get(ProcId(0), 3).unwrap();
        assert_eq!(c.freq, 2);
        assert_eq!(c.m0, 150);
        assert_eq!(c.m1, 7);
        assert_eq!(fp.total_paths_executed(), 2);
        assert_eq!(fp.paths_executed(ProcId(0)), 1);
        assert_eq!(fp.total(|c| c.freq), 3);
        assert_eq!(fp.total(|c| c.m1), 7);
    }

    #[test]
    fn iter_is_sorted_within_proc() {
        let mut fp = FlowProfile::new(1);
        fp.record(ProcId(0), 9, None);
        fp.record(ProcId(0), 1, None);
        fp.record(ProcId(0), 4, None);
        let sums: Vec<u64> = fp.iter_paths().map(|(_, s, _)| s).collect();
        assert_eq!(sums, vec![1, 4, 9]);
    }

    #[test]
    fn merge_adds_cells() {
        let mut a = FlowProfile::new(2);
        a.record(ProcId(0), 1, Some((10, 2)));
        let mut b = FlowProfile::new(2);
        b.record(ProcId(0), 1, Some((5, 1)));
        b.record(ProcId(1), 0, None);
        a.merge_from(&b);
        let c = a.get(ProcId(0), 1).unwrap();
        assert_eq!((c.freq, c.m0, c.m1), (2, 15, 3));
        assert_eq!(a.get(ProcId(1), 0).unwrap().freq, 1);
    }

    #[test]
    #[should_panic(expected = "different programs")]
    fn merge_rejects_mismatched_sizes() {
        let mut a = FlowProfile::new(1);
        a.merge_from(&FlowProfile::new(2));
    }

    #[test]
    fn binary_roundtrip() {
        let mut fp = FlowProfile::new(3);
        fp.record(ProcId(0), 5, Some((100, 7)));
        fp.record(ProcId(2), 0, None);
        fp.record(ProcId(2), 9, Some((1, 1)));
        let mut buf = Vec::new();
        fp.write_to(&mut buf).unwrap();
        let back = FlowProfile::read_from(&mut buf.as_slice()).unwrap();
        let a: Vec<_> = fp.iter_paths().collect();
        let b: Vec<_> = back.iter_paths().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn read_rejects_garbage() {
        let err = FlowProfile::read_from(&mut &b"NOTFLOW!"[..]).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // Truncation surfaces as UnexpectedEof.
        let mut fp = FlowProfile::new(1);
        fp.record(ProcId(0), 0, None);
        let mut buf = Vec::new();
        fp.write_to(&mut buf).unwrap();
        buf.truncate(buf.len() - 4);
        let err = FlowProfile::read_from(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn missing_path_is_none() {
        let fp = FlowProfile::new(1);
        assert!(fp.get(ProcId(0), 7).is_none());
    }
}
