//! A deterministic chaos proxy: an in-repo TCP middlebox that injects
//! a *seeded, repeatable* fault plan between a `pp` client and a `pp
//! serve` daemon, so the transport hardening is proved against real
//! network pathologies instead of hoped about.
//!
//! The proxy listens on TCP and forwards to any upstream address (TCP
//! or the daemon's Unix socket). Faults apply to the **downstream**
//! direction (server → client) — the direction where a cut manifests
//! as the client-visible pathologies the failure matrix names: torn
//! reply frames, resets mid-stream, black-holed reads. The fault for
//! connection `i` (0-based accept order) is `plan[(i + seed) % len]`,
//! so a run is a pure function of (plan, seed, connection order): the
//! soak test can predict exactly which submission meets which fault.
//!
//! Fault vocabulary ([`Fault`], spelled `ok`, `delay:MS`, `throttle:N`,
//! `tear:K`, `reset:M`, `blackhole` in a plan string):
//!
//! * `ok` — forward untouched (the control connection).
//! * `delay:MS` — add `MS` milliseconds of latency to every downstream
//!   chunk.
//! * `throttle:N` — forward downstream in `N`-byte slices with a pause
//!   between each (a slow, lossy-feeling link).
//! * `tear:K` — forward exactly `K` downstream bytes, then cut both
//!   directions: the client holds a torn frame.
//! * `reset:M` — forward `M` complete NDJSON frames downstream, then
//!   cut: the class of mid-stream connection resets. (`std` exposes no
//!   stable `SO_LINGER`, so the cut is a shutdown — the client sees
//!   EOF-mid-stream, which it must treat exactly like a reset.)
//! * `blackhole` — accept the client and read its bytes forever,
//!   never connecting upstream and never replying: the absolute
//!   silence only a client-side deadline survives.

use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::transport::{BindAddr, Stream};

/// One per-connection fault. See the module docs for semantics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Forward untouched.
    Ok,
    /// Added latency per downstream chunk, in milliseconds.
    Delay(u64),
    /// Downstream slice size in bytes (with a pause between slices).
    Throttle(usize),
    /// Cut both directions after exactly this many downstream bytes.
    TearAt(usize),
    /// Cut both directions after this many complete downstream frames.
    ResetAfter(usize),
    /// Never connect upstream; swallow the client silently.
    Blackhole,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::Ok => write!(f, "ok"),
            Fault::Delay(ms) => write!(f, "delay:{ms}"),
            Fault::Throttle(n) => write!(f, "throttle:{n}"),
            Fault::TearAt(k) => write!(f, "tear:{k}"),
            Fault::ResetAfter(m) => write!(f, "reset:{m}"),
            Fault::Blackhole => write!(f, "blackhole"),
        }
    }
}

/// A cyclic list of faults assigned to connections by accept order.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// Parses a comma-separated plan, e.g.
    /// `ok,delay:25,throttle:256,tear:40,reset:2,blackhole`.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut faults = Vec::new();
        for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
            let (kind, arg) = match token.split_once(':') {
                Some((kind, arg)) => (kind, Some(arg)),
                None => (token, None),
            };
            let num = || -> Result<u64, String> {
                arg.ok_or_else(|| format!("fault `{token}` needs `:N`"))?
                    .parse()
                    .map_err(|_| format!("fault `{token}`: bad number"))
            };
            faults.push(match kind {
                "ok" => Fault::Ok,
                "delay" => Fault::Delay(num()?),
                "throttle" => Fault::Throttle((num()?).max(1) as usize),
                "tear" => Fault::TearAt(num()? as usize),
                "reset" => Fault::ResetAfter(num()? as usize),
                "blackhole" => Fault::Blackhole,
                other => {
                    return Err(format!(
                        "unknown fault `{other}` (ok|delay:MS|throttle:N|tear:K|reset:M|blackhole)"
                    ));
                }
            });
        }
        if faults.is_empty() {
            return Err("empty fault plan".to_string());
        }
        Ok(FaultPlan { faults })
    }

    /// The fault the `index`-th accepted connection (0-based) meets
    /// under `seed`: `plan[(index + seed) % len]`.
    pub fn fault_for(&self, index: u64, seed: u64) -> Fault {
        self.faults[((index.wrapping_add(seed)) % self.faults.len() as u64) as usize]
    }

    /// The plan's faults in order.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }
}

/// Read-poll tick for the pump loops, bounding every blocking read so
/// the stop flag is observed promptly.
const PUMP_TICK: Duration = Duration::from_millis(25);
/// Pause between throttled slices.
const THROTTLE_PAUSE: Duration = Duration::from_millis(2);

/// The running proxy: accept loop plus per-connection pump threads.
/// Stops (and cuts every live connection's pumps) on [`ChaosProxy::stop`]
/// or drop.
pub struct ChaosProxy {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accepted: Arc<AtomicUsize>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ChaosProxy {
    /// Binds `listen` (TCP, `host:port`, `:0` for ephemeral) and starts
    /// forwarding to `upstream` under `plan` and `seed`.
    pub fn start(
        listen: &str,
        upstream: BindAddr,
        plan: FaultPlan,
        seed: u64,
    ) -> io::Result<ChaosProxy> {
        let listener = TcpListener::bind(listen)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accepted = Arc::new(AtomicUsize::new(0));
        let loop_stop = Arc::clone(&stop);
        let loop_accepted = Arc::clone(&accepted);
        let thread = std::thread::spawn(move || {
            let mut index: u64 = 0;
            while !loop_stop.load(Ordering::SeqCst) {
                match listener.accept() {
                    Ok((client, _)) => {
                        let fault = plan.fault_for(index, seed);
                        index += 1;
                        loop_accepted.fetch_add(1, Ordering::SeqCst);
                        let upstream = upstream.clone();
                        let stop = Arc::clone(&loop_stop);
                        std::thread::spawn(move || serve_conn(client, &upstream, fault, &stop));
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(10));
                    }
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
        });
        Ok(ChaosProxy {
            addr,
            stop,
            accepted,
            thread: Some(thread),
        })
    }

    /// The proxy's bound TCP address (for `:0` ephemeral binds).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Connections accepted so far.
    pub fn accepted(&self) -> usize {
        self.accepted.load(Ordering::SeqCst)
    }

    /// Stops the accept loop and signals every pump to cut.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for ChaosProxy {
    fn drop(&mut self) {
        self.stop();
    }
}

/// One proxied connection: an upstream pump thread (client → server,
/// untouched) and the downstream pump (server → client, under the
/// fault) in this thread.
fn serve_conn(client: TcpStream, upstream: &BindAddr, fault: Fault, stop: &Arc<AtomicBool>) {
    let _ = client.set_nodelay(true);
    if fault == Fault::Blackhole {
        blackhole(client, stop);
        return;
    }
    let Ok(server) = Stream::connect(upstream) else {
        // Upstream refused: drop the client, which sees EOF — the
        // connect-refused row of the failure matrix, one hop removed.
        let _ = client.shutdown(Shutdown::Both);
        return;
    };
    let Ok(client_read) = client.try_clone() else {
        return;
    };
    let Ok(server_write) = server.try_clone() else {
        return;
    };
    let up_stop = Arc::clone(stop);
    let up = std::thread::spawn(move || {
        pump_plain(client_read, server_write, &up_stop);
    });
    pump_faulted(server, client, fault, stop);
    let _ = up.join();
}

/// Swallows a black-holed client: read and discard until it gives up
/// (its own deadline) or the proxy stops.
fn blackhole(mut client: TcpStream, stop: &Arc<AtomicBool>) {
    let _ = client.set_read_timeout(Some(PUMP_TICK));
    let mut buf = [0u8; 1024];
    while !stop.load(Ordering::SeqCst) {
        match client.read(&mut buf) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) => {}
            Err(_) => break,
        }
    }
    let _ = client.shutdown(Shutdown::Both);
}

/// The untouched client → server direction.
fn pump_plain(mut from: TcpStream, mut to: Stream, stop: &Arc<AtomicBool>) {
    let _ = from.set_read_timeout(Some(PUMP_TICK));
    let mut buf = [0u8; 4096];
    while !stop.load(Ordering::SeqCst) {
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => break,
        };
        if to.write_all(&buf[..n]).and_then(|()| to.flush()).is_err() {
            break;
        }
    }
    let _ = to.shutdown(Shutdown::Write);
}

/// The server → client direction, under the fault. Cutting means
/// shutting down both directions of both sockets so neither peer can
/// mistake the cut for a graceful end of just one stream.
fn pump_faulted(mut from: Stream, mut to: TcpStream, fault: Fault, stop: &Arc<AtomicBool>) {
    let _ = from.set_read_timeout(Some(PUMP_TICK));
    let mut forwarded: usize = 0; // downstream bytes already sent
    let mut frames: usize = 0; // complete downstream frames sent
    let mut buf = [0u8; 4096];
    let cut = |from: &Stream, to: &TcpStream| {
        let _ = to.shutdown(Shutdown::Both);
        let _ = from.shutdown(Shutdown::Both);
    };
    while !stop.load(Ordering::SeqCst) {
        let n = match from.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => n,
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue;
            }
            Err(_) => break,
        };
        let chunk = &buf[..n];
        let write_ok = match fault {
            Fault::Ok | Fault::Blackhole => to.write_all(chunk).is_ok(),
            Fault::Delay(ms) => {
                std::thread::sleep(Duration::from_millis(ms));
                to.write_all(chunk).is_ok()
            }
            Fault::Throttle(step) => {
                let mut ok = true;
                for slice in chunk.chunks(step) {
                    if to.write_all(slice).and_then(|()| to.flush()).is_err() {
                        ok = false;
                        break;
                    }
                    std::thread::sleep(THROTTLE_PAUSE);
                }
                ok
            }
            Fault::TearAt(k) => {
                if forwarded + n >= k {
                    let _ = to.write_all(&chunk[..k.saturating_sub(forwarded)]);
                    let _ = to.flush();
                    cut(&from, &to);
                    return;
                }
                to.write_all(chunk).is_ok()
            }
            Fault::ResetAfter(m) => {
                // Forward through the m-th newline, then cut.
                let mut cut_at = None;
                for (i, &b) in chunk.iter().enumerate() {
                    if b == b'\n' {
                        frames += 1;
                        if frames >= m {
                            cut_at = Some(i + 1);
                            break;
                        }
                    }
                }
                match cut_at {
                    Some(end) => {
                        let _ = to.write_all(&chunk[..end]);
                        let _ = to.flush();
                        cut(&from, &to);
                        return;
                    }
                    None => to.write_all(chunk).is_ok(),
                }
            }
        };
        if !write_ok || to.flush().is_err() {
            break;
        }
        forwarded += n;
    }
    let _ = to.shutdown(Shutdown::Write);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_parses_and_assigns_deterministically() {
        let plan = FaultPlan::parse("ok, delay:25,throttle:256,tear:40,reset:2,blackhole").unwrap();
        assert_eq!(
            plan.faults(),
            &[
                Fault::Ok,
                Fault::Delay(25),
                Fault::Throttle(256),
                Fault::TearAt(40),
                Fault::ResetAfter(2),
                Fault::Blackhole,
            ]
        );
        // Pure function of (index, seed), cyclic.
        assert_eq!(plan.fault_for(0, 0), Fault::Ok);
        assert_eq!(plan.fault_for(6, 0), Fault::Ok);
        assert_eq!(plan.fault_for(0, 2), Fault::Throttle(256));
        assert_eq!(plan.fault_for(10, 2), Fault::Ok);
        for bad in ["", "delay", "tear:x", "nuke:3"] {
            assert!(FaultPlan::parse(bad).is_err(), "`{bad}`");
        }
    }

    #[test]
    fn proxy_forwards_tears_and_blackholes() {
        use std::io::{BufRead, BufReader};
        use std::net::TcpListener;

        // A trivial upstream echo server: replies `hello N\n` per line.
        let upstream = TcpListener::bind("127.0.0.1:0").expect("bind upstream");
        let upstream_addr = upstream.local_addr().expect("addr");
        let echo = std::thread::spawn(move || {
            for (i, conn) in upstream.incoming().take(2).enumerate() {
                let mut conn = conn.expect("accept");
                let mut reader = BufReader::new(conn.try_clone().expect("clone"));
                let mut line = String::new();
                if reader.read_line(&mut line).is_ok() {
                    let _ = writeln!(conn, "hello {i} this reply is long enough to tear");
                }
            }
        });
        let plan = FaultPlan::parse("ok,tear:10,blackhole").expect("plan");
        let mut proxy = ChaosProxy::start(
            "127.0.0.1:0",
            BindAddr::Tcp(upstream_addr.to_string()),
            plan,
            0,
        )
        .expect("proxy starts");
        let addr = proxy.addr().to_string();

        // Conn 0: ok — full line arrives.
        let mut c0 = TcpStream::connect(&addr).expect("conn 0");
        c0.write_all(b"hi\n").expect("send");
        let mut line = String::new();
        BufReader::new(c0).read_line(&mut line).expect("reply");
        assert!(line.contains("hello 0"), "{line:?}");

        // Conn 1: torn after 10 bytes — partial line then EOF.
        let mut c1 = TcpStream::connect(&addr).expect("conn 1");
        c1.write_all(b"hi\n").expect("send");
        let mut got = Vec::new();
        c1.read_to_end(&mut got).expect("read to cut");
        assert_eq!(got.len(), 10, "exactly K bytes: {got:?}");
        assert!(!got.contains(&b'\n'), "torn before the newline");

        // Conn 2: black hole — a bounded read times out with no bytes.
        let c2 = TcpStream::connect(&addr).expect("conn 2");
        c2.set_read_timeout(Some(Duration::from_millis(100)))
            .expect("timeout");
        let mut c2 = c2;
        c2.write_all(b"hi\n").expect("send into the void");
        let mut buf = [0u8; 16];
        match c2.read(&mut buf) {
            Ok(0) => {} // proxy stopped first — still no payload
            Ok(n) => panic!("blackhole returned {n} bytes"),
            Err(e) => assert!(
                matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ),
                "{e}"
            ),
        }
        assert_eq!(proxy.accepted(), 3);
        proxy.stop();
        echo.join().expect("echo exits");
    }
}
