//! The crash-safe batch manifest.
//!
//! A batch campaign periodically snapshots its per-job completion state
//! into `manifest.ppb` inside the checkpoint directory, wrapped in the
//! same magic/length/payload/CRC-32 envelope as the PPCCT02/PPFLOW2
//! profile files. Every write is atomic — the bytes go to a temp file
//! that is fsynced and renamed over the manifest — so a `kill -9` at any
//! instant leaves either the previous manifest or the new one, never a
//! torn hybrid. A manifest that *does* fail validation (a deliberately
//! truncated file, flipped payload bytes, a stale magic) is reported as
//! a typed [`SerializeError`] rather than silently re-running the world.
//!
//! # On-disk format
//!
//! ```text
//! magic    8 bytes   b"PPBAT01\n"
//! length   u64 LE    payload byte count
//! payload:
//!   u64      jitter/backoff seed the campaign was started with
//!   string   campaign parameter tag (config, scale, limits, …)
//!   u32      number of jobs
//!   per job:
//!     string   job name
//!     u8       status (0 pending, 1 done, 2 failed)
//!     u32      attempts consumed
//!     u64      simulated cycles (partial when failed)
//!     u64      retired µops (partial when failed)
//!     string   failure detail ("" unless failed)
//!     u8       flow-profile ref present? + {string file, u64 len, u32 crc}
//!     u8       cct-profile ref present? + {string file, u64 len, u32 crc}
//! crc32    u32 LE    CRC-32 (IEEE) of the payload
//! ```
//!
//! where `string` is `u32 LE length + UTF-8 bytes`. Everything in the
//! payload is a function of the campaign's inputs — no timestamps, no
//! worker identities, no host state — so an interrupted-and-resumed
//! campaign converges to a manifest byte-identical to an uninterrupted
//! run with the same seed.

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use pp_cct::{fingerprint32, read_envelope, write_envelope, SerializeError};

const MAGIC: &[u8; 8] = b"PPBAT01\n";

/// File name of the manifest inside a checkpoint directory.
pub const MANIFEST_FILE: &str = "manifest.ppb";

/// Guard against allocating job tables from garbage length fields.
const MAX_JOBS: u32 = 1 << 20;
pub(crate) const MAX_STRING: u32 = 1 << 20;

/// Per-job completion state as persisted in the manifest.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum JobStatus {
    /// Not yet run (or was in flight when the campaign stopped).
    Pending,
    /// Ran to completion; profile refs may point at its serialized
    /// profiles.
    Done,
    /// Exhausted its retries or failed permanently.
    Failed,
}

impl JobStatus {
    fn to_u8(self) -> u8 {
        match self {
            JobStatus::Pending => 0,
            JobStatus::Done => 1,
            JobStatus::Failed => 2,
        }
    }

    fn from_u8(v: u8) -> Result<JobStatus, SerializeError> {
        match v {
            0 => Ok(JobStatus::Pending),
            1 => Ok(JobStatus::Done),
            2 => Ok(JobStatus::Failed),
            other => Err(SerializeError::Format(format!("bad job status {other}"))),
        }
    }
}

/// Reference to a profile file written next to the manifest: name,
/// length, and content fingerprint. Resume validates all three before
/// trusting a `Done` entry.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ProfileRef {
    /// File name relative to the checkpoint directory.
    pub file: String,
    /// Byte length of the file.
    pub len: u64,
    /// Content fingerprint of the file bytes. Deliberately
    /// [`fingerprint32`] rather than a whole-file CRC-32: envelope
    /// files end with the CRC of their own payload, which makes the
    /// whole-file CRC constant across equal-length valid files and
    /// therefore blind to exactly the swaps this ref exists to catch.
    pub crc: u32,
}

impl ProfileRef {
    /// Builds a ref for `file` containing `bytes`.
    pub fn for_bytes(file: impl Into<String>, bytes: &[u8]) -> ProfileRef {
        ProfileRef {
            file: file.into(),
            len: bytes.len() as u64,
            crc: fingerprint32(bytes),
        }
    }

    /// Whether the file under `dir` still matches this ref.
    pub fn validates(&self, dir: &Path) -> bool {
        match fs::read(dir.join(&self.file)) {
            Ok(bytes) => bytes.len() as u64 == self.len && fingerprint32(&bytes) == self.crc,
            Err(_) => false,
        }
    }
}

/// One job's row in the manifest.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct JobEntry {
    /// Workload name (unique within a campaign).
    pub name: String,
    /// Completion state.
    pub status: JobStatus,
    /// Attempts consumed so far (0 while pending).
    pub attempts: u32,
    /// Simulated cycles of the final attempt (partial when failed).
    pub cycles: u64,
    /// Retired µops of the final attempt (partial when failed).
    pub uops: u64,
    /// Failure description ("" unless failed).
    pub detail: String,
    /// Serialized flow profile, when the config produces one.
    pub flow: Option<ProfileRef>,
    /// Serialized CCT profile, when the config produces one.
    pub cct: Option<ProfileRef>,
}

impl JobEntry {
    /// A fresh pending entry for `name`.
    pub fn pending(name: impl Into<String>) -> JobEntry {
        JobEntry {
            name: name.into(),
            status: JobStatus::Pending,
            attempts: 0,
            cycles: 0,
            uops: 0,
            detail: String::new(),
            flow: None,
            cct: None,
        }
    }
}

/// The campaign manifest: jitter seed, parameter tag, and one
/// [`JobEntry`] per job in job order.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct BatchManifest {
    /// The seed the campaign's deterministic backoff jitter used.
    pub seed: u64,
    /// Opaque campaign-parameter tag (config, scale, limits). Resume
    /// refuses a manifest whose tag differs from the live campaign's.
    pub params: String,
    /// Per-job state, in job order.
    pub jobs: Vec<JobEntry>,
}

impl BatchManifest {
    /// Whether every job reached a final state (done or failed).
    pub fn is_complete(&self) -> bool {
        self.jobs.iter().all(|j| j.status != JobStatus::Pending)
    }

    /// Jobs in each state: `(pending, done, failed)`.
    pub fn counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for j in &self.jobs {
            match j.status {
                JobStatus::Pending => c.0 += 1,
                JobStatus::Done => c.1 += 1,
                JobStatus::Failed => c.2 += 1,
            }
        }
        c
    }

    /// Serializes the manifest (envelope included) into a byte vector.
    ///
    /// # Errors
    ///
    /// Only I/O errors from the in-memory writer, which cannot occur in
    /// practice.
    pub fn to_bytes(&self) -> Result<Vec<u8>, SerializeError> {
        let mut payload = Vec::new();
        put8(&mut payload, self.seed);
        put_str(&mut payload, &self.params);
        put4(&mut payload, self.jobs.len() as u32);
        for j in &self.jobs {
            put_str(&mut payload, &j.name);
            payload.push(j.status.to_u8());
            put4(&mut payload, j.attempts);
            put8(&mut payload, j.cycles);
            put8(&mut payload, j.uops);
            put_str(&mut payload, &j.detail);
            for r in [&j.flow, &j.cct] {
                match r {
                    None => payload.push(0),
                    Some(r) => {
                        payload.push(1);
                        put_str(&mut payload, &r.file);
                        put8(&mut payload, r.len);
                        put4(&mut payload, r.crc);
                    }
                }
            }
        }
        let mut out = Vec::new();
        write_envelope(&mut out, MAGIC, &payload)?;
        Ok(out)
    }

    /// Parses a manifest produced by [`BatchManifest::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`SerializeError`] for a bad magic, truncation, checksum
    /// mismatch, or an internally implausible payload — the torn/corrupt
    /// checkpoint cases resume must detect.
    pub fn from_bytes(mut bytes: &[u8]) -> Result<BatchManifest, SerializeError> {
        let payload = read_envelope(&mut bytes, MAGIC, &[])?;
        let mut cur = payload.as_slice();
        let seed = take8(&mut cur)?;
        let params = take_str(&mut cur)?;
        let njobs = take4(&mut cur)?;
        if njobs > MAX_JOBS {
            return Err(SerializeError::Format(format!(
                "implausible job count {njobs}"
            )));
        }
        let mut jobs = Vec::with_capacity(njobs as usize);
        for _ in 0..njobs {
            let name = take_str(&mut cur)?;
            let status = JobStatus::from_u8(take1(&mut cur)?)?;
            let attempts = take4(&mut cur)?;
            let cycles = take8(&mut cur)?;
            let uops = take8(&mut cur)?;
            let detail = take_str(&mut cur)?;
            let mut refs = [None, None];
            for slot in &mut refs {
                if take1(&mut cur)? != 0 {
                    *slot = Some(ProfileRef {
                        file: take_str(&mut cur)?,
                        len: take8(&mut cur)?,
                        crc: take4(&mut cur)?,
                    });
                }
            }
            let [flow, cct] = refs;
            jobs.push(JobEntry {
                name,
                status,
                attempts,
                cycles,
                uops,
                detail,
                flow,
                cct,
            });
        }
        if !cur.is_empty() {
            return Err(SerializeError::Format(format!(
                "{} trailing payload bytes",
                cur.len()
            )));
        }
        Ok(BatchManifest { seed, params, jobs })
    }

    /// Atomically writes the manifest to `dir/manifest.ppb` (temp file +
    /// fsync + rename).
    ///
    /// # Errors
    ///
    /// [`SerializeError::Io`] on any filesystem failure.
    pub fn save_atomic(&self, dir: &Path) -> Result<(), SerializeError> {
        let bytes = self.to_bytes()?;
        write_atomic(&dir.join(MANIFEST_FILE), &bytes)?;
        Ok(())
    }

    /// Loads and validates `dir/manifest.ppb`.
    ///
    /// # Errors
    ///
    /// [`SerializeError::Io`] when the file cannot be read; otherwise as
    /// for [`BatchManifest::from_bytes`].
    pub fn load(dir: &Path) -> Result<BatchManifest, SerializeError> {
        let bytes = fs::read(dir.join(MANIFEST_FILE))?;
        BatchManifest::from_bytes(&bytes)
    }

    /// Path of the manifest inside `dir`.
    pub fn path_in(dir: &Path) -> PathBuf {
        dir.join(MANIFEST_FILE)
    }
}

/// Atomically replaces `path` with `bytes`: write `path.tmp`, fsync it,
/// rename over `path`, then fsync the directory so the rename itself is
/// durable. A crash at any point leaves either the old file or the new
/// one.
///
/// # Errors
///
/// Any filesystem failure along the way.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent() {
        // Directory fsync makes the rename durable; best-effort on
        // filesystems that refuse to sync directories.
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Truncates `dir`'s manifest to `keep` bytes — the injected torn-write
/// fault (`kill -9` landing mid-write on a filesystem without atomic
/// rename). Used by the supervisor's fault plan and by tests.
///
/// # Errors
///
/// Any filesystem failure.
pub fn truncate_manifest(dir: &Path, keep: u64) -> std::io::Result<()> {
    let f = OpenOptions::new()
        .write(true)
        .open(dir.join(MANIFEST_FILE))?;
    f.set_len(keep)?;
    f.sync_all()?;
    Ok(())
}

/// Bounds a quarantine directory to at most `cap` attempt-sets (the
/// `<stem>.report.txt` + optional `<stem>.flow`/`<stem>.cct` written for
/// one failed verification), evicting the oldest sets first so a
/// repeatedly corrupt client cannot fill a long-running server's disk.
/// Age is modification time with the stem name as a deterministic
/// tiebreaker. Returns the number of attempt-sets removed. `cap` of 0
/// means unbounded (a no-op), as does a missing directory.
///
/// # Errors
///
/// Any filesystem failure while listing or removing files.
pub fn prune_quarantine(qdir: &Path, cap: usize) -> std::io::Result<u64> {
    if cap == 0 || !qdir.is_dir() {
        return Ok(0);
    }
    // Group files into attempt-sets by stem: everything before the
    // artifact suffix. Reports anchor the set; stray artifacts without
    // one still form a (prunable) set of their own.
    let mut sets: std::collections::BTreeMap<String, (std::time::SystemTime, Vec<PathBuf>)> =
        std::collections::BTreeMap::new();
    for entry in fs::read_dir(qdir)? {
        let entry = entry?;
        let path = entry.path();
        if !path.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().into_owned();
        let stem = [".report.txt", ".flow", ".cct"]
            .iter()
            .find_map(|suffix| name.strip_suffix(suffix))
            .unwrap_or(&name)
            .to_string();
        let mtime = entry
            .metadata()?
            .modified()
            .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
        let set = sets.entry(stem).or_insert_with(|| (mtime, Vec::new()));
        set.0 = set.0.max(mtime);
        set.1.push(path);
    }
    if sets.len() <= cap {
        return Ok(0);
    }
    let mut ordered: Vec<(std::time::SystemTime, String, Vec<PathBuf>)> = sets
        .into_iter()
        .map(|(stem, (mtime, files))| (mtime, stem, files))
        .collect();
    ordered.sort();
    let evict = ordered.len() - cap;
    let mut removed = 0u64;
    for (_, _, files) in ordered.into_iter().take(evict) {
        for f in files {
            fs::remove_file(f)?;
        }
        removed += 1;
    }
    Ok(removed)
}

// ----- little-endian cursor helpers -------------------------------------

pub(crate) fn put4(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put8(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(out: &mut Vec<u8>, s: &str) {
    put4(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

pub(crate) fn short(cur: &[u8], want: usize) -> SerializeError {
    SerializeError::Truncated {
        expected: want as u64,
        got: cur.len() as u64,
    }
}

pub(crate) fn take1(cur: &mut &[u8]) -> Result<u8, SerializeError> {
    if cur.is_empty() {
        return Err(short(cur, 1));
    }
    let b = cur[0];
    *cur = &cur[1..];
    Ok(b)
}

pub(crate) fn take4(cur: &mut &[u8]) -> Result<u32, SerializeError> {
    if cur.len() < 4 {
        return Err(short(cur, 4));
    }
    let (head, rest) = cur.split_at(4);
    *cur = rest;
    Ok(u32::from_le_bytes(head.try_into().expect("4 bytes")))
}

pub(crate) fn take8(cur: &mut &[u8]) -> Result<u64, SerializeError> {
    if cur.len() < 8 {
        return Err(short(cur, 8));
    }
    let (head, rest) = cur.split_at(8);
    *cur = rest;
    Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
}

pub(crate) fn take_str(cur: &mut &[u8]) -> Result<String, SerializeError> {
    let len = take4(cur)?;
    if len > MAX_STRING {
        return Err(SerializeError::Format(format!(
            "implausible string length {len}"
        )));
    }
    let len = len as usize;
    if cur.len() < len {
        return Err(short(cur, len));
    }
    let (head, rest) = cur.split_at(len);
    *cur = rest;
    String::from_utf8(head.to_vec())
        .map_err(|_| SerializeError::Format("non-UTF-8 string".to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> BatchManifest {
        BatchManifest {
            seed: 42,
            params: "config=combined scale=0.1".to_string(),
            jobs: vec![
                JobEntry {
                    name: "099.go".to_string(),
                    status: JobStatus::Done,
                    attempts: 1,
                    cycles: 123_456,
                    uops: 99_000,
                    detail: String::new(),
                    flow: None,
                    cct: Some(ProfileRef::for_bytes("job-000.cct", b"cctbytes")),
                },
                JobEntry {
                    name: "126.gcc".to_string(),
                    status: JobStatus::Failed,
                    attempts: 3,
                    cycles: 10,
                    uops: 7,
                    detail: "panicked: injected".to_string(),
                    flow: None,
                    cct: None,
                },
                JobEntry::pending("130.li"),
            ],
        }
    }

    #[test]
    fn round_trips_bytes() {
        let m = sample();
        let bytes = m.to_bytes().unwrap();
        let back = BatchManifest::from_bytes(&bytes).unwrap();
        assert_eq!(back, m);
        assert!(!m.is_complete());
        assert_eq!(m.counts(), (1, 1, 1));
    }

    #[test]
    fn truncation_and_corruption_are_typed() {
        let bytes = sample().to_bytes().unwrap();
        let torn = &bytes[..bytes.len() / 2];
        assert!(matches!(
            BatchManifest::from_bytes(torn),
            Err(SerializeError::Truncated { .. })
        ));
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            BatchManifest::from_bytes(&flipped),
            Err(SerializeError::ChecksumMismatch { .. })
        ));
        let mut bad_magic = bytes;
        bad_magic[0] = b'X';
        assert!(matches!(
            BatchManifest::from_bytes(&bad_magic),
            Err(SerializeError::Format(_))
        ));
    }

    #[test]
    fn atomic_save_and_load() {
        let dir = std::env::temp_dir().join(format!("pp-manifest-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let m = sample();
        m.save_atomic(&dir).unwrap();
        assert!(!BatchManifest::path_in(&dir).with_extension("tmp").exists());
        assert_eq!(BatchManifest::load(&dir).unwrap(), m);
        // A torn write (simulated truncation) is detected, not parsed.
        truncate_manifest(&dir, 9).unwrap();
        assert!(matches!(
            BatchManifest::load(&dir),
            Err(SerializeError::Truncated { .. })
        ));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn profile_ref_validates_bytes() {
        let dir = std::env::temp_dir().join(format!("pp-profref-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let r = ProfileRef::for_bytes("p.bin", b"payload");
        assert!(!r.validates(&dir), "missing file fails");
        fs::write(dir.join("p.bin"), b"payload").unwrap();
        assert!(r.validates(&dir));
        fs::write(dir.join("p.bin"), b"paYload").unwrap();
        assert!(!r.validates(&dir), "altered bytes fail");
        fs::remove_dir_all(&dir).ok();
    }
}
