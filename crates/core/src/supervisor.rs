//! Supervised batch profiling.
//!
//! The paper's experiments profile whole SPEC95 suites in long
//! unattended runs (§6); the production analog is a campaign of
//! profiling jobs that must survive runaway guests, crashing workers,
//! transient faults, and the supervising process itself being killed.
//! This module provides that harness:
//!
//! * a queue of [`JobSpec`]s executed on N worker threads, each attempt
//!   isolated with `catch_unwind` so a panicking job poisons nothing and
//!   becomes a typed [`JobFailure`];
//! * transient-vs-permanent [`FailureClass`]ification over the
//!   [`ExecError`] taxonomy, with capped exponential backoff and
//!   deterministic seeded jitter for transient retries;
//! * guest resource limits ([`GuestLimits`](pp_usim::GuestLimits)) imposed through the
//!   [`Profiler`], so an infinite-loop guest burns its fuel budget and
//!   comes back as a partial-profile failure instead of wedging a
//!   worker;
//! * crash-safe checkpointing: after completions the supervisor
//!   atomically rewrites a [`BatchManifest`] (plus the finished jobs'
//!   serialized profiles) in the checkpoint directory, and
//!   [`Supervisor::run`] with `resume` re-runs only jobs whose entries
//!   (and profile bytes) don't validate;
//! * cooperative shutdown: cancelling the supervisor's [`CancelToken`]
//!   stops job scheduling, drains in-flight jobs, and still writes a
//!   final manifest.
//!
//! The per-job attempt/retry state machine lives in [`JobExecutor`] so
//! other schedulers — notably the long-running
//! [`Service`](crate::service::Service) — can drive the same isolation,
//! classification, backoff, and quarantine behavior from their own
//! queues. The per-job state machine is `queued → running → (retrying →
//! running)* → done | failed`; only `queued` (as pending), `done`, and
//! `failed` are ever persisted. Everything persisted is a function of
//! the campaign inputs — same seed and jobs ⇒ byte-identical final
//! manifest, regardless of worker count, interleaving, or an
//! interruption-and-resume in between.

pub mod manifest;

use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::mpsc;
use std::sync::{Mutex, Once};
use std::time::Duration;

use pp_ir::Program;
use pp_obs::Recorder;
use pp_usim::{CancelToken, ExecError, FaultPlan, LimitKind};

use crate::error::PpError;
use crate::profiler::{ProfileError, Profiler, RunConfig, RunOutcome};
use manifest::{BatchManifest, JobEntry, JobStatus, ProfileRef};

/// Name prefix of supervisor worker threads (the panic hook suppresses
/// the default backtrace spew for injected/caught worker panics). The
/// service layer names its workers with the same prefix so they share
/// the suppression.
pub(crate) const WORKER_THREAD_PREFIX: &str = "pp-batch-worker";

/// Where an injected transient fault aborts the guest, in µops.
const TRANSIENT_ABORT_UOPS: u64 = 5_000;

/// Which counter read an injected profile-corruption fault clobbers
/// (`corrupt_on_job`). Planting near-wrap values mid-run makes the wide
/// shadow counters jump by ~2³², which post-run integrity verification
/// flags as an unreconcilable wrap. Only fires under a hardware-metric
/// [`RunConfig`] — frequency-only runs never read the counters.
const CORRUPT_CLOBBER_READ: u64 = 3;

/// The near-wrap counter values the corruption injection plants.
const CORRUPT_CLOBBER_VALUES: (u32, u32) = (u32::MAX - 10, u32::MAX - 5);

/// One profiling job in a campaign.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Unique name within the campaign (keys the manifest entry).
    pub name: String,
    /// The guest program to profile.
    pub program: Program,
    /// The profiling configuration to run it under.
    pub config: RunConfig,
}

impl JobSpec {
    /// Builds a job.
    pub fn new(name: impl Into<String>, program: Program, config: RunConfig) -> JobSpec {
        JobSpec {
            name: name.into(),
            program,
            config,
        }
    }
}

/// Whether a failed attempt is worth retrying.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FailureClass {
    /// Environmental or injected — a retry may succeed (worker panic,
    /// injected abort, missed wall-clock deadline).
    Transient,
    /// Deterministic — retrying reproduces it (fuel/memory/depth limits,
    /// machine faults, instrumentation failures, cancellation).
    Permanent,
}

impl FailureClass {
    /// The wire tag of this class (`transient` / `permanent`).
    pub fn as_str(&self) -> &'static str {
        match self {
            FailureClass::Transient => "transient",
            FailureClass::Permanent => "permanent",
        }
    }
}

/// What a failed attempt actually hit.
#[derive(Clone, Debug)]
pub enum FailureKind {
    /// The worker thread panicked; the payload message is preserved.
    Panic(String),
    /// The guest faulted or hit a limit.
    Exec(ExecError),
    /// Instrumentation (path analysis / rewriting) failed.
    Instrument(String),
    /// The run finished but its profile failed integrity verification;
    /// the offending artifacts were quarantined. The message is the
    /// first violated invariant.
    Integrity(String),
}

/// A typed job failure: what happened and whether it was retryable.
#[derive(Clone, Debug)]
pub struct JobFailure {
    /// Transient (retried) or permanent (final on first sight).
    pub class: FailureClass,
    /// The failure itself.
    pub kind: FailureKind,
}

impl JobFailure {
    fn from_exec(err: ExecError) -> JobFailure {
        JobFailure {
            class: classify_exec(&err),
            kind: FailureKind::Exec(err),
        }
    }

    fn from_panic(payload: Box<dyn std::any::Any + Send>) -> JobFailure {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "opaque panic payload".to_string());
        JobFailure {
            class: FailureClass::Transient,
            kind: FailureKind::Panic(msg),
        }
    }

    fn from_profile_error(err: ProfileError) -> JobFailure {
        match err {
            ProfileError::Exec(e) => JobFailure::from_exec(e),
            ProfileError::Instrument(e) => JobFailure {
                class: FailureClass::Permanent,
                kind: FailureKind::Instrument(e.to_string()),
            },
        }
    }

    /// Did the guest stop on a [`GuestLimits`](pp_usim::GuestLimits) bound?
    pub fn is_limit(&self) -> bool {
        matches!(self.kind, FailureKind::Exec(ExecError::LimitExceeded(_)))
    }

    /// Was this a caught worker panic?
    pub fn is_panic(&self) -> bool {
        matches!(self.kind, FailureKind::Panic(_))
    }

    /// Did post-run verification quarantine this job's profile?
    pub fn is_integrity(&self) -> bool {
        matches!(self.kind, FailureKind::Integrity(_))
    }
}

impl std::fmt::Display for JobFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            FailureKind::Panic(msg) => write!(f, "panicked: {msg}"),
            FailureKind::Exec(e) => write!(f, "{e}"),
            FailureKind::Instrument(e) => write!(f, "instrumentation failed: {e}"),
            FailureKind::Integrity(e) => write!(f, "integrity: {e}"),
        }
    }
}

/// Maps an [`ExecError`] onto a [`FailureClass`]. Injected aborts model
/// transient environmental faults; a missed wall-clock deadline may pass
/// on a less loaded host; everything else reproduces deterministically.
pub fn classify_exec(err: &ExecError) -> FailureClass {
    match err {
        ExecError::FaultAbort { .. } => FailureClass::Transient,
        ExecError::LimitExceeded(LimitKind::Deadline { .. }) => FailureClass::Transient,
        ExecError::LimitExceeded(_)
        | ExecError::StackOverflow { .. }
        | ExecError::InstructionLimit
        | ExecError::BadIndirectTarget { .. }
        | ExecError::BadJumpToken { .. } => FailureClass::Permanent,
    }
}

/// Supervisor-level fault injection, exercising the recovery paths the
/// machine-level [`FaultPlan`] cannot reach: worker panics, torn
/// checkpoint writes, and a simulated `kill -9` of the supervisor.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchFaultPlan {
    /// Panic the worker on job `.0` for its first `.1` attempts.
    pub panic_on_job: Option<(usize, u32)>,
    /// Inject a machine-level transient abort into job `.0` for its
    /// first `.1` attempts (retry-then-succeed when `.1 ≤ max_retries`).
    pub transient_on_job: Option<(usize, u32)>,
    /// After checkpoint write number `.0` (1-based), truncate the
    /// manifest to `.1` bytes — a torn write for resume to detect.
    pub truncate_checkpoint: Option<(u32, u64)>,
    /// Stop the campaign abruptly after checkpoint write number `.0`
    /// (1-based): no draining, no final manifest — the library-level
    /// stand-in for `kill -9`.
    pub halt_after_checkpoints: Option<u32>,
    /// Clobber the hardware counters mid-run on job `.0` for its first
    /// `.1` attempts, corrupting the profile in a way only post-run
    /// integrity verification catches (the run itself completes clean).
    pub corrupt_on_job: Option<(usize, u32)>,
}

impl BatchFaultPlan {
    /// Panic job `job`'s worker on its first `attempts` attempts.
    pub fn panic_on_job(mut self, job: usize, attempts: u32) -> BatchFaultPlan {
        self.panic_on_job = Some((job, attempts));
        self
    }

    /// Abort job `job` with a transient fault on its first `attempts`
    /// attempts.
    pub fn transient_on_job(mut self, job: usize, attempts: u32) -> BatchFaultPlan {
        self.transient_on_job = Some((job, attempts));
        self
    }

    /// Truncate the manifest to `keep` bytes right after checkpoint
    /// write `write` (1-based).
    pub fn truncate_checkpoint(mut self, write: u32, keep: u64) -> BatchFaultPlan {
        self.truncate_checkpoint = Some((write, keep));
        self
    }

    /// Halt the campaign abruptly after checkpoint write `write`
    /// (1-based).
    pub fn halt_after_checkpoints(mut self, write: u32) -> BatchFaultPlan {
        self.halt_after_checkpoints = Some(write);
        self
    }

    /// Corrupt job `job`'s profile (via a mid-run counter clobber) on
    /// its first `attempts` attempts.
    pub fn corrupt_on_job(mut self, job: usize, attempts: u32) -> BatchFaultPlan {
        self.corrupt_on_job = Some((job, attempts));
        self
    }

    /// The per-job fault slice of this plan for job `idx` — what a
    /// [`JobExecutor`] can inject on its own (the checkpoint-level
    /// injections stay with the coordinator).
    pub fn job_faults(&self, idx: usize) -> JobFaults {
        let pick = |o: Option<(usize, u32)>| o.map_or(0, |(j, n)| if j == idx { n } else { 0 });
        JobFaults {
            panic_attempts: pick(self.panic_on_job),
            transient_attempts: pick(self.transient_on_job),
            corrupt_attempts: pick(self.corrupt_on_job),
        }
    }
}

/// Fault injection scoped to one job execution: each kind fires on the
/// job's first N attempts (0 = never). This is the executor-level
/// remnant of [`BatchFaultPlan`] — pure per-attempt behavior, no
/// checkpoint hooks — and what the service layer uses for soak faults.
#[derive(Clone, Copy, Debug, Default)]
pub struct JobFaults {
    /// Panic the worker thread on the first N attempts.
    pub panic_attempts: u32,
    /// Inject a machine-level transient abort on the first N attempts.
    pub transient_attempts: u32,
    /// Clobber the hardware counters (profile corruption detectable
    /// only by post-run verification) on the first N attempts.
    pub corrupt_attempts: u32,
}

/// One classified retry decision: after `attempt` failed with `class`,
/// the executor slept `delay_ms` before the next attempt. The schedule
/// is a pure function of `(seed, job index, attempt)` — asserting it
/// across runs is how backoff determinism is tested.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryStep {
    /// The 1-based attempt that failed and was retried.
    pub attempt: u32,
    /// How the failure was classified (integrity retries record
    /// [`FailureClass::Transient`] — that is why they were retried).
    pub class: FailureClass,
    /// The backoff slept before the next attempt, in milliseconds.
    pub delay_ms: u64,
}

/// A live notification from inside [`JobExecutor::execute_observed`],
/// delivered on the worker thread *while the job is still running* —
/// the hook the service's event bus uses to stream `retrying` /
/// `quarantined` frames as they happen rather than after the terminal
/// state.
#[derive(Clone, Debug)]
pub enum ExecEvent {
    /// A failed attempt was classified and a retry scheduled; the
    /// executor sleeps `delay_ms` before re-running.
    Retrying {
        /// The 1-based attempt that failed.
        attempt: u32,
        /// The failure classification that justified the retry.
        class: FailureClass,
        /// The backoff about to be slept, in milliseconds.
        delay_ms: u64,
    },
    /// An attempt's profile failed post-run verification and its
    /// artifacts were quarantined.
    Quarantined {
        /// The 1-based attempt whose artifacts were quarantined.
        attempt: u32,
        /// The first violated invariant.
        reason: String,
    },
}

/// A [`RetryStep`] tagged with its job index — the campaign-level
/// schedule entry collected into [`BatchReport::retry_schedule`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobRetry {
    /// Index of the job in the campaign's job list.
    pub job: usize,
    /// The 1-based attempt that failed and was retried.
    pub attempt: u32,
    /// The failure classification that justified the retry.
    pub class: FailureClass,
    /// The backoff slept before the next attempt, in milliseconds.
    pub delay_ms: u64,
}

/// How one job execution ended.
#[derive(Clone, Debug)]
pub enum ExecOutcome {
    /// The job finished and its profile verified; the serialized bytes
    /// are present when the caller asked for them.
    Done {
        /// Serialized flow profile (envelope included), if collected.
        flow: Option<Vec<u8>>,
        /// Serialized CCT profile (envelope included), if collected.
        cct: Option<Vec<u8>>,
    },
    /// The job exhausted its retry budget (or failed permanently).
    Failed(JobFailure),
}

/// One verification-failed attempt, carried back for quarantining: the
/// serialized artifacts (present when profiles were requested) and the
/// typed report text.
#[derive(Clone, Debug)]
pub struct QuarantinedAttempt {
    /// The 1-based attempt whose profile failed verification.
    pub attempt: u32,
    /// The rejected flow profile bytes, if collected.
    pub flow: Option<Vec<u8>>,
    /// The rejected CCT profile bytes, if collected.
    pub cct: Option<Vec<u8>>,
    /// Human-readable report of the violated invariants.
    pub report: String,
}

/// Everything one [`JobExecutor::execute`] call did: the outcome, the
/// attempt accounting, the quarantined artifacts, and the classified
/// retry schedule.
#[derive(Clone, Debug)]
pub struct JobExecution {
    /// Attempts made (≥ 1).
    pub attempts: u32,
    /// Retries taken (attempts − 1 when any were).
    pub retries: u32,
    /// Worker panics caught.
    pub panics: u32,
    /// Attempts stopped by a guest-limit bound.
    pub limit_stops: u32,
    /// Guest cycles of the final attempt (0 when none ran to a count).
    pub cycles: u64,
    /// Guest µops of the final attempt.
    pub uops: u64,
    /// How the job ended.
    pub outcome: ExecOutcome,
    /// Verification-failed attempts awaiting quarantine persistence.
    pub quarantines: Vec<QuarantinedAttempt>,
    /// The classified retry schedule, in attempt order.
    pub retry_schedule: Vec<RetryStep>,
}

/// The per-job attempt/retry state machine, decoupled from the batch
/// [`Supervisor`] so any scheduler — the one-shot batch queue or the
/// long-running service intake — can execute jobs with identical panic
/// isolation, failure classification, deterministic backoff, and
/// integrity quarantine semantics.
#[derive(Clone, Debug)]
pub struct JobExecutor {
    profiler: Profiler,
    max_retries: u32,
    backoff_base_ms: u64,
    backoff_cap_ms: u64,
    seed: u64,
}

impl Default for JobExecutor {
    fn default() -> JobExecutor {
        JobExecutor {
            profiler: Profiler::default(),
            max_retries: 2,
            backoff_base_ms: 4,
            backoff_cap_ms: 250,
            seed: 0,
        }
    }
}

impl JobExecutor {
    /// An executor running jobs through `profiler` (which carries the
    /// machine configuration and any [`GuestLimits`](pp_usim::GuestLimits)).
    pub fn new(profiler: Profiler) -> JobExecutor {
        JobExecutor {
            profiler,
            ..JobExecutor::default()
        }
    }

    /// Retry budget for transient failures (attempts = retries + 1).
    pub fn with_max_retries(mut self, retries: u32) -> JobExecutor {
        self.max_retries = retries;
        self
    }

    /// Backoff base and cap, in milliseconds. Delay before retry `n`
    /// (1-based) is `min(cap, base·2ⁿ⁻¹) + jitter`, jitter seeded from
    /// `(seed, job, attempt)` — deterministic across runs.
    pub fn with_backoff_ms(mut self, base: u64, cap: u64) -> JobExecutor {
        self.backoff_base_ms = base;
        self.backoff_cap_ms = cap.max(base);
        self
    }

    /// Seed for backoff jitter.
    pub fn with_seed(mut self, seed: u64) -> JobExecutor {
        self.seed = seed;
        self
    }

    /// The profiler this executor runs jobs through.
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Capped exponential backoff with deterministic jitter: retrying
    /// `attempt` of job `idx` waits `min(cap, base·2^(attempt-1))` plus
    /// up to `base` extra milliseconds drawn from a splitmix64 stream
    /// seeded on `(seed, job, attempt)`.
    pub fn backoff(&self, idx: u64, attempt: u32) -> Duration {
        let exp = self
            .backoff_base_ms
            .saturating_mul(1u64 << (attempt - 1).min(16))
            .min(self.backoff_cap_ms);
        let jitter = if self.backoff_base_ms == 0 {
            0
        } else {
            splitmix64(self.seed ^ idx ^ (u64::from(attempt) << 32)) % self.backoff_base_ms
        };
        Duration::from_millis(exp + jitter)
    }

    /// Runs one job through the attempt/retry state machine. A clean
    /// attempt's profile is verified (in memory and, when
    /// `want_profiles`, as serialized bytes) before it counts as done; a
    /// verification failure quarantines the artifacts and earns exactly
    /// one re-run before the job is marked permanently failed.
    pub fn execute(
        &self,
        idx: u64,
        job: &JobSpec,
        faults: JobFaults,
        want_profiles: bool,
    ) -> JobExecution {
        self.execute_observed(idx, job, faults, want_profiles, &mut |_| {})
    }

    /// [`JobExecutor::execute`] with a live observer: `observer` is
    /// called *as* retries are scheduled and profiles quarantined (not
    /// after the fact from [`JobExecution`]), so the service layer can
    /// publish `retrying` / `quarantined` events while the job is still
    /// running. The observer runs on the worker thread; it must not
    /// block.
    pub fn execute_observed(
        &self,
        idx: u64,
        job: &JobSpec,
        faults: JobFaults,
        want_profiles: bool,
        observer: &mut dyn FnMut(ExecEvent),
    ) -> JobExecution {
        let _span = pp_obs::span!("batch.job");
        let mut attempt = 0u32;
        let mut retries = 0u32;
        let mut panics = 0u32;
        let mut limit_stops = 0u32;
        let mut integrity_retried = false;
        let mut quarantines: Vec<QuarantinedAttempt> = Vec::new();
        let mut retry_schedule: Vec<RetryStep> = Vec::new();
        loop {
            attempt += 1;
            let inject_panic = attempt <= faults.panic_attempts;
            let mut profiler = self.profiler.clone();
            if attempt <= faults.transient_attempts {
                profiler = profiler
                    .with_fault_plan(FaultPlan::default().abort_at_uops(TRANSIENT_ABORT_UOPS));
            }
            if attempt <= faults.corrupt_attempts {
                profiler = profiler.with_fault_plan(FaultPlan::default().clobber_pics_at_read(
                    CORRUPT_CLOBBER_READ,
                    CORRUPT_CLOBBER_VALUES.0,
                    CORRUPT_CLOBBER_VALUES.1,
                ));
            }
            let result = panic::catch_unwind(AssertUnwindSafe(|| {
                assert!(
                    !inject_panic,
                    "injected worker panic (job {idx}, attempt {attempt})"
                );
                profiler.run(&job.program, job.config)
            }));
            let (failure, partial) = match result {
                Ok(Ok(outcome)) => match outcome.fault.clone() {
                    None => {
                        let (flow, cct) = if want_profiles {
                            serialize_profiles(&outcome)
                        } else {
                            (None, None)
                        };
                        let mut verdict = crate::integrity::verify_outcome(&job.program, &outcome);
                        if let Some(bytes) = flow.as_deref() {
                            verdict.merge(crate::integrity::verify_flow_bytes(&job.program, bytes));
                        }
                        if let Some(bytes) = cct.as_deref() {
                            verdict.merge(crate::integrity::verify_cct_bytes(bytes));
                        }
                        if verdict.is_clean() {
                            return JobExecution {
                                attempts: attempt,
                                retries,
                                panics,
                                limit_stops,
                                cycles: outcome.cycles(),
                                uops: outcome.machine.uops,
                                outcome: ExecOutcome::Done { flow, cct },
                                quarantines,
                                retry_schedule,
                            };
                        }
                        let detail = verdict.first().expect("dirty report").to_string();
                        observer(ExecEvent::Quarantined {
                            attempt,
                            reason: detail.clone(),
                        });
                        quarantines.push(QuarantinedAttempt {
                            attempt,
                            flow,
                            cct,
                            report: quarantine_report(&job.name, idx, attempt, &verdict),
                        });
                        (
                            JobFailure {
                                class: if integrity_retried {
                                    FailureClass::Permanent
                                } else {
                                    FailureClass::Transient
                                },
                                kind: FailureKind::Integrity(detail),
                            },
                            Some((outcome.cycles(), outcome.machine.uops)),
                        )
                    }
                    Some(err) => (
                        JobFailure::from_exec(err),
                        Some((outcome.cycles(), outcome.machine.uops)),
                    ),
                },
                Ok(Err(e)) => (JobFailure::from_profile_error(e), None),
                Err(payload) => (JobFailure::from_panic(payload), None),
            };
            if failure.is_limit() {
                limit_stops += 1;
            }
            if failure.is_panic() {
                panics += 1;
            }
            if failure.is_integrity() && !integrity_retried {
                // A quarantined profile is retryable exactly once — the
                // corruption may have been environmental — independent
                // of the transient retry budget; a second verification
                // failure is permanent.
                integrity_retried = true;
                retries += 1;
                let delay = self.backoff(idx, attempt);
                observer(ExecEvent::Retrying {
                    attempt,
                    class: failure.class,
                    delay_ms: delay.as_millis() as u64,
                });
                retry_schedule.push(RetryStep {
                    attempt,
                    class: failure.class,
                    delay_ms: delay.as_millis() as u64,
                });
                std::thread::sleep(delay);
                continue;
            }
            if failure.class == FailureClass::Transient
                && !failure.is_integrity()
                && retries < self.max_retries
            {
                retries += 1;
                let delay = self.backoff(idx, attempt);
                observer(ExecEvent::Retrying {
                    attempt,
                    class: failure.class,
                    delay_ms: delay.as_millis() as u64,
                });
                retry_schedule.push(RetryStep {
                    attempt,
                    class: failure.class,
                    delay_ms: delay.as_millis() as u64,
                });
                std::thread::sleep(delay);
                continue;
            }
            let (cycles, uops) = partial.unwrap_or((0, 0));
            return JobExecution {
                attempts: attempt,
                retries,
                panics,
                limit_stops,
                cycles,
                uops,
                outcome: ExecOutcome::Failed(failure),
                quarantines,
                retry_schedule,
            };
        }
    }
}

/// What a finished campaign did. The manifest is the persistent truth;
/// the counters feed `supervisor.*` metrics.
#[derive(Clone, Debug)]
pub struct BatchReport {
    /// Final per-job state (also the last manifest written, when
    /// checkpointing was on).
    pub manifest: BatchManifest,
    /// Transient-failure retries across all jobs.
    pub retries: u64,
    /// Worker panics caught (injected or real).
    pub panics: u64,
    /// Attempts stopped by a [`GuestLimits`](pp_usim::GuestLimits) bound.
    pub limit_stops: u64,
    /// Checkpoint manifests written.
    pub checkpoint_writes: u64,
    /// Jobs skipped because a resumed manifest already had them done
    /// or failed.
    pub resumed_skips: u64,
    /// Finished attempts whose profiles failed integrity verification
    /// and were quarantined (each quarantined attempt counts once).
    pub quarantined: u64,
    /// Quarantined attempt-sets evicted by the oldest-first rotation
    /// (only when a quarantine cap is configured).
    pub quarantine_pruned: u64,
    /// Whether the campaign stopped before all jobs reached a final
    /// state (cancellation or an injected halt).
    pub interrupted: bool,
    /// Every classified retry across the campaign, sorted by
    /// `(job, attempt)` — a deterministic function of the campaign
    /// inputs regardless of worker count or interleaving.
    pub retry_schedule: Vec<JobRetry>,
}

impl BatchReport {
    /// Records the `supervisor.*` metric set into `recorder`.
    pub fn record_metrics<R: Recorder>(&self, recorder: &mut R) {
        let (pending, done, failed) = self.manifest.counts();
        recorder.counter("supervisor.jobs", self.manifest.jobs.len() as u64);
        recorder.counter("supervisor.jobs.done", done as u64);
        recorder.counter("supervisor.jobs.failed", failed as u64);
        recorder.counter("supervisor.jobs.pending", pending as u64);
        recorder.counter("supervisor.retries", self.retries);
        recorder.counter("supervisor.panics", self.panics);
        recorder.counter("supervisor.timeouts", self.limit_stops);
        recorder.counter("supervisor.checkpoint.writes", self.checkpoint_writes);
        recorder.counter("supervisor.resumed_skips", self.resumed_skips);
        recorder.counter("supervisor.quarantined", self.quarantined);
        recorder.counter("supervisor.quarantine.pruned", self.quarantine_pruned);
        recorder.counter("supervisor.interrupted", u64::from(self.interrupted));
    }
}

/// The batch supervisor. Configure with the builder methods, then call
/// [`Supervisor::run`].
#[derive(Clone, Debug)]
pub struct Supervisor {
    profiler: Profiler,
    workers: usize,
    max_retries: u32,
    backoff_base_ms: u64,
    backoff_cap_ms: u64,
    seed: u64,
    params: String,
    checkpoint_dir: Option<PathBuf>,
    checkpoint_every: u32,
    quarantine_cap: usize,
    cancel: CancelToken,
    fault_plan: BatchFaultPlan,
}

impl Default for Supervisor {
    fn default() -> Supervisor {
        Supervisor {
            profiler: Profiler::default(),
            workers: 2,
            max_retries: 2,
            backoff_base_ms: 4,
            backoff_cap_ms: 250,
            seed: 0,
            params: String::new(),
            checkpoint_dir: None,
            checkpoint_every: 1,
            quarantine_cap: 0,
            cancel: CancelToken::new(),
            fault_plan: BatchFaultPlan::default(),
        }
    }
}

impl Supervisor {
    /// A supervisor running jobs through `profiler` (which carries the
    /// machine configuration and any [`GuestLimits`](pp_usim::GuestLimits)).
    pub fn new(profiler: Profiler) -> Supervisor {
        Supervisor {
            profiler,
            ..Supervisor::default()
        }
    }

    /// Worker thread count (clamped to ≥ 1).
    pub fn with_workers(mut self, workers: usize) -> Supervisor {
        self.workers = workers.max(1);
        self
    }

    /// Retry budget for transient failures (attempts = retries + 1).
    pub fn with_max_retries(mut self, retries: u32) -> Supervisor {
        self.max_retries = retries;
        self
    }

    /// Backoff base and cap, in milliseconds. Delay before retry `n`
    /// (1-based) is `min(cap, base·2ⁿ⁻¹) + jitter`, jitter seeded from
    /// `(seed, job, attempt)` — deterministic across runs.
    pub fn with_backoff_ms(mut self, base: u64, cap: u64) -> Supervisor {
        self.backoff_base_ms = base;
        self.backoff_cap_ms = cap.max(base);
        self
    }

    /// Seed for backoff jitter; stored in the manifest.
    pub fn with_seed(mut self, seed: u64) -> Supervisor {
        self.seed = seed;
        self
    }

    /// Campaign-parameter tag stored in the manifest; resume refuses a
    /// checkpoint whose tag differs.
    pub fn with_params(mut self, params: impl Into<String>) -> Supervisor {
        self.params = params.into();
        self
    }

    /// Directory for the manifest and finished-job profiles. Without
    /// one, nothing persists (and resume is impossible).
    pub fn with_checkpoint_dir(mut self, dir: impl Into<PathBuf>) -> Supervisor {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// Completions between checkpoint writes (clamped to ≥ 1; a final
    /// manifest is always written on clean shutdown).
    pub fn with_checkpoint_every(mut self, every: u32) -> Supervisor {
        self.checkpoint_every = every.max(1);
        self
    }

    /// Cap on quarantined attempt-sets kept on disk (0 = unbounded).
    /// When a new quarantine write would exceed the cap, the oldest
    /// attempt-sets rotate out — a repeatedly corrupt job cannot fill
    /// the disk of a long campaign or server.
    pub fn with_quarantine_cap(mut self, cap: usize) -> Supervisor {
        self.quarantine_cap = cap;
        self
    }

    /// The token that requests graceful shutdown: scheduling stops,
    /// in-flight jobs drain, a final manifest is written. Cancelling is
    /// async-signal-safe, so a SIGINT handler may call it directly.
    pub fn with_cancel(mut self, cancel: CancelToken) -> Supervisor {
        self.cancel = cancel;
        self
    }

    /// Installs supervisor-level fault injection.
    pub fn with_fault_plan(mut self, plan: BatchFaultPlan) -> Supervisor {
        self.fault_plan = plan;
        self
    }

    /// The cancel token this supervisor watches.
    pub fn cancel_token(&self) -> CancelToken {
        self.cancel.clone()
    }

    /// The per-job executor this supervisor's workers run.
    fn executor(&self) -> JobExecutor {
        JobExecutor::new(self.profiler.clone())
            .with_max_retries(self.max_retries)
            .with_backoff_ms(self.backoff_base_ms, self.backoff_cap_ms)
            .with_seed(self.seed)
    }

    /// Runs the campaign. With `resume`, a valid manifest in the
    /// checkpoint directory pre-marks finished jobs (their profile bytes
    /// are re-validated against the stored CRCs; mismatches re-run); a
    /// torn or corrupt manifest is a typed [`PpError::Corrupt`] error.
    ///
    /// Job execution failures never abort the campaign — they land in
    /// the manifest as `failed` entries. The `Err` cases are
    /// campaign-level: unusable resume state or checkpoint I/O.
    ///
    /// # Errors
    ///
    /// [`PpError::Usage`] when `resume` is set without a checkpoint
    /// directory, or the manifest disagrees with the live campaign
    /// (params, seed, job list); [`PpError::Corrupt`] for a torn or
    /// altered manifest; [`PpError::Io`] when checkpoint writes fail.
    pub fn run(&self, jobs: &[JobSpec], resume: bool) -> Result<BatchReport, PpError> {
        let _span = pp_obs::span!("batch.run");
        suppress_worker_panic_output();
        if let Some(dir) = &self.checkpoint_dir {
            std::fs::create_dir_all(dir).map_err(|e| PpError::io(dir.display().to_string(), e))?;
        }

        let mut entries: Vec<JobEntry> = jobs.iter().map(|j| JobEntry::pending(&j.name)).collect();
        let mut resumed_skips = 0u64;
        if resume {
            let prior = self.load_resume_state(jobs)?;
            for (entry, old) in entries.iter_mut().zip(prior.jobs) {
                if old.status == JobStatus::Pending {
                    continue;
                }
                let dir = self.checkpoint_dir.as_deref().expect("resume has a dir");
                let profiles_ok = old
                    .flow
                    .iter()
                    .chain(old.cct.iter())
                    .all(|r| r.validates(dir));
                if old.status == JobStatus::Failed || profiles_ok {
                    *entry = old;
                    resumed_skips += 1;
                } else {
                    pp_obs::warn!(
                        "checkpoint: job {} profile bytes do not validate; re-running",
                        old.name
                    );
                }
            }
        }

        let queue: Mutex<VecDeque<usize>> = Mutex::new(
            entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.status == JobStatus::Pending)
                .map(|(i, _)| i)
                .collect(),
        );
        let (tx, rx) = mpsc::channel::<WorkerMsg>();
        let want_profiles = self.checkpoint_dir.is_some();

        let mut report = BatchReport {
            manifest: BatchManifest {
                seed: self.seed,
                params: self.params.clone(),
                jobs: Vec::new(),
            },
            retries: 0,
            panics: 0,
            limit_stops: 0,
            checkpoint_writes: 0,
            resumed_skips,
            quarantined: 0,
            quarantine_pruned: 0,
            interrupted: false,
            retry_schedule: Vec::new(),
        };

        let coordinator_result = std::thread::scope(|scope| -> Result<(), PpError> {
            for w in 0..self.workers {
                let tx = tx.clone();
                let queue = &queue;
                std::thread::Builder::new()
                    .name(format!("{WORKER_THREAD_PREFIX}-{w}"))
                    .spawn_scoped(scope, move || {
                        self.worker_loop(jobs, queue, &tx, want_profiles)
                    })
                    .expect("worker thread spawns");
            }
            drop(tx);

            let mut since_checkpoint = 0u32;
            let mut halted = false;
            for msg in rx.iter() {
                let exec = msg.execution;
                report.retries += u64::from(exec.retries);
                report.panics += u64::from(exec.panics);
                report.limit_stops += u64::from(exec.limit_stops);
                report
                    .retry_schedule
                    .extend(exec.retry_schedule.iter().map(|s| JobRetry {
                        job: msg.idx,
                        attempt: s.attempt,
                        class: s.class,
                        delay_ms: s.delay_ms,
                    }));
                if !exec.quarantines.is_empty() {
                    report.quarantined += exec.quarantines.len() as u64;
                    if let Some(dir) = &self.checkpoint_dir {
                        let stem = format!("job-{:03}", msg.idx);
                        write_quarantine(dir, &stem, &exec.quarantines)
                            .map_err(|e| PpError::io("quarantine", e))?;
                        if self.quarantine_cap > 0 {
                            report.quarantine_pruned += manifest::prune_quarantine(
                                &dir.join("quarantine"),
                                self.quarantine_cap,
                            )
                            .map_err(|e| PpError::io("quarantine rotation", e))?;
                        }
                    }
                }
                let entry = &mut entries[msg.idx];
                entry.attempts = exec.attempts;
                entry.cycles = exec.cycles;
                entry.uops = exec.uops;
                match exec.outcome {
                    ExecOutcome::Done { flow, cct } => {
                        entry.status = JobStatus::Done;
                        entry.detail.clear();
                        if let Some(dir) = &self.checkpoint_dir {
                            entry.flow = self
                                .persist_profile(dir, msg.idx, "flow", flow.as_deref())
                                .map_err(|e| PpError::io("profile checkpoint", e))?;
                            entry.cct = self
                                .persist_profile(dir, msg.idx, "cct", cct.as_deref())
                                .map_err(|e| PpError::io("profile checkpoint", e))?;
                        }
                    }
                    ExecOutcome::Failed(failure) => {
                        entry.status = JobStatus::Failed;
                        entry.detail = failure.to_string();
                        pp_obs::warn!(
                            "batch: job {} failed after {} attempts: {}",
                            entry.name,
                            entry.attempts,
                            entry.detail
                        );
                    }
                }
                since_checkpoint += 1;
                if self.checkpoint_dir.is_some() && since_checkpoint >= self.checkpoint_every {
                    since_checkpoint = 0;
                    self.write_checkpoint(&entries, &mut report)?;
                    if self
                        .fault_plan
                        .halt_after_checkpoints
                        .is_some_and(|n| report.checkpoint_writes >= u64::from(n))
                    {
                        // Simulated kill -9: stop consuming results and
                        // skip every end-of-run write.
                        halted = true;
                        self.cancel.cancel();
                        break;
                    }
                }
            }
            report.interrupted = halted || self.cancel.is_cancelled();
            if !halted {
                // Drain stragglers is unnecessary — the channel closing
                // means every worker exited — but a graceful stop still
                // writes the final manifest with pending entries intact.
                if self.checkpoint_dir.is_some() {
                    self.write_checkpoint(&entries, &mut report)?;
                }
            }
            Ok(())
        });
        coordinator_result?;

        report.retry_schedule.sort_by_key(|r| (r.job, r.attempt));
        report.manifest.jobs = entries;
        Ok(report)
    }

    /// Loads and cross-checks the resume manifest.
    fn load_resume_state(&self, jobs: &[JobSpec]) -> Result<BatchManifest, PpError> {
        let Some(dir) = &self.checkpoint_dir else {
            return Err(PpError::Usage(
                "resume requires a checkpoint directory".to_string(),
            ));
        };
        let prior = BatchManifest::load(dir)?;
        if prior.params != self.params || prior.seed != self.seed {
            return Err(PpError::Usage(format!(
                "checkpoint was written by a different campaign \
                 (stored seed {} params \"{}\", live seed {} params \"{}\")",
                prior.seed, prior.params, self.seed, self.params
            )));
        }
        if prior.jobs.len() != jobs.len()
            || prior.jobs.iter().zip(jobs).any(|(e, j)| e.name != j.name)
        {
            return Err(PpError::Usage(
                "checkpoint job list does not match the live campaign".to_string(),
            ));
        }
        Ok(prior)
    }

    /// One worker: pop → run with retries → report, until the queue is
    /// empty or the campaign is cancelled.
    fn worker_loop(
        &self,
        jobs: &[JobSpec],
        queue: &Mutex<VecDeque<usize>>,
        tx: &mpsc::Sender<WorkerMsg>,
        want_profiles: bool,
    ) {
        let executor = self.executor();
        loop {
            if self.cancel.is_cancelled() {
                return;
            }
            let Some(idx) = queue.lock().expect("queue lock").pop_front() else {
                return;
            };
            let execution = executor.execute(
                idx as u64,
                &jobs[idx],
                self.fault_plan.job_faults(idx),
                want_profiles,
            );
            // A send failure means the coordinator halted; nothing left
            // to report to.
            if tx.send(WorkerMsg { idx, execution }).is_err() {
                return;
            }
        }
    }

    /// Atomically writes `bytes` (when present) as job `idx`'s profile
    /// file and returns its manifest ref.
    fn persist_profile(
        &self,
        dir: &std::path::Path,
        idx: usize,
        ext: &str,
        bytes: Option<&[u8]>,
    ) -> std::io::Result<Option<ProfileRef>> {
        let Some(bytes) = bytes else {
            return Ok(None);
        };
        let file = format!("job-{idx:03}.{ext}");
        manifest::write_atomic(&dir.join(&file), bytes)?;
        Ok(Some(ProfileRef::for_bytes(file, bytes)))
    }

    /// Writes one checkpoint manifest (and applies the torn-write
    /// injection when the plan says so).
    fn write_checkpoint(
        &self,
        entries: &[JobEntry],
        report: &mut BatchReport,
    ) -> Result<(), PpError> {
        let _span = pp_obs::span!("batch.checkpoint");
        let dir = self.checkpoint_dir.as_deref().expect("checkpointing on");
        let snapshot = BatchManifest {
            seed: self.seed,
            params: self.params.clone(),
            jobs: entries.to_vec(),
        };
        snapshot.save_atomic(dir)?;
        report.checkpoint_writes += 1;
        if let Some((write, keep)) = self.fault_plan.truncate_checkpoint {
            if report.checkpoint_writes == u64::from(write) {
                manifest::truncate_manifest(dir, keep)
                    .map_err(|e| PpError::io("checkpoint truncation injection", e))?;
            }
        }
        Ok(())
    }
}

/// Serializes whichever profiles the outcome carries into byte vectors
/// (envelope included).
fn serialize_profiles(outcome: &RunOutcome) -> (Option<Vec<u8>>, Option<Vec<u8>>) {
    let flow = outcome.flow.as_ref().and_then(|f| {
        let mut buf = Vec::new();
        f.write_to(&mut buf).ok().map(|()| buf)
    });
    let cct = outcome.cct.as_ref().and_then(|c| {
        let mut buf = Vec::new();
        pp_cct::write_cct(c, &mut buf).ok().map(|()| buf)
    });
    (flow, cct)
}

struct WorkerMsg {
    idx: usize,
    execution: JobExecution,
}

/// Renders the quarantine report for one failed verification: every
/// violated invariant, the check count, and the disposition. A pure
/// function of the (deterministic) run, so an interrupted-and-resumed
/// campaign rewrites byte-identical reports.
fn quarantine_report(
    name: &str,
    idx: u64,
    attempt: u32,
    verdict: &crate::integrity::IntegrityReport,
) -> String {
    use std::fmt::Write as _;
    let mut s = format!(
        "quarantined profile: job {name} (index {idx}), attempt {attempt}\n\
         checks run: {}\nviolations: {}\n",
        verdict.checks,
        verdict.violations.len()
    );
    for v in &verdict.violations {
        let _ = writeln!(s, "  - {v}");
    }
    s.push_str("disposition: failed integrity verification (exit code 2)\n");
    s
}

/// Writes one job's quarantined artifacts and reports under
/// `<dir>/quarantine/`, one attempt-set per failed attempt, stems
/// `<stem_base>-attempt-<n>`.
pub(crate) fn write_quarantine(
    dir: &std::path::Path,
    stem_base: &str,
    quarantines: &[QuarantinedAttempt],
) -> std::io::Result<()> {
    let qdir = dir.join("quarantine");
    std::fs::create_dir_all(&qdir)?;
    for q in quarantines {
        let stem = format!("{stem_base}-attempt-{}", q.attempt);
        if let Some(bytes) = &q.flow {
            manifest::write_atomic(&qdir.join(format!("{stem}.flow")), bytes)?;
        }
        if let Some(bytes) = &q.cct {
            manifest::write_atomic(&qdir.join(format!("{stem}.cct")), bytes)?;
        }
        manifest::write_atomic(
            &qdir.join(format!("{stem}.report.txt")),
            q.report.as_bytes(),
        )?;
    }
    Ok(())
}

/// splitmix64 — the same generator the workloads crate uses for its
/// deterministic streams; inlined here so `pp-core` stays independent of
/// `pp-workloads`.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Wraps the global panic hook (once) so caught panics on supervisor
/// worker threads don't spew the default message/backtrace to stderr —
/// they surface as typed [`JobFailure`]s instead. Panics on every other
/// thread keep the previous hook's behavior.
pub(crate) fn suppress_worker_panic_output() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            let on_worker = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with(WORKER_THREAD_PREFIX));
            if !on_worker {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exec_errors_classify_by_determinism() {
        assert_eq!(
            classify_exec(&ExecError::FaultAbort { uops: 5 }),
            FailureClass::Transient
        );
        assert_eq!(
            classify_exec(&ExecError::LimitExceeded(LimitKind::Deadline {
                deadline_ms: 10
            })),
            FailureClass::Transient
        );
        assert_eq!(
            classify_exec(&ExecError::LimitExceeded(LimitKind::Fuel { budget: 1 })),
            FailureClass::Permanent
        );
        assert_eq!(
            classify_exec(&ExecError::InstructionLimit),
            FailureClass::Permanent
        );
    }

    #[test]
    fn backoff_is_capped_and_deterministic() {
        let x = JobExecutor::default().with_backoff_ms(4, 32).with_seed(7);
        let a = x.backoff(3, 2);
        let b = x.backoff(3, 2);
        assert_eq!(a, b, "same (seed, job, attempt) ⇒ same delay");
        for attempt in 1..12 {
            let d = x.backoff(0, attempt);
            assert!(d.as_millis() <= 32 + 4, "attempt {attempt}: {d:?}");
        }
        let zero = JobExecutor::default().with_backoff_ms(0, 0).backoff(1, 1);
        assert_eq!(zero, Duration::ZERO);
    }

    #[test]
    fn panic_payload_messages_survive() {
        let f = JobFailure::from_panic(Box::new("boom"));
        assert!(f.is_panic());
        assert_eq!(f.class, FailureClass::Transient);
        assert_eq!(f.to_string(), "panicked: boom");
        let f = JobFailure::from_panic(Box::new(format!("job {} died", 3)));
        assert_eq!(f.to_string(), "panicked: job 3 died");
        let f = JobFailure::from_panic(Box::new(17u32));
        assert_eq!(f.to_string(), "panicked: opaque panic payload");
    }

    #[test]
    fn job_faults_slice_by_index() {
        let plan = BatchFaultPlan::default()
            .panic_on_job(2, 1)
            .transient_on_job(3, 2)
            .corrupt_on_job(2, 1);
        let f2 = plan.job_faults(2);
        assert_eq!(
            (
                f2.panic_attempts,
                f2.transient_attempts,
                f2.corrupt_attempts
            ),
            (1, 0, 1)
        );
        let f3 = plan.job_faults(3);
        assert_eq!(
            (
                f3.panic_attempts,
                f3.transient_attempts,
                f3.corrupt_attempts
            ),
            (0, 2, 0)
        );
        let f0 = plan.job_faults(0);
        assert_eq!(
            (
                f0.panic_attempts,
                f0.transient_attempts,
                f0.corrupt_attempts
            ),
            (0, 0, 0)
        );
    }
}
