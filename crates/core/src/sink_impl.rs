//! The profiling sink wiring the machine to the profile structures.

use pp_cct::{CctRuntime, EnterOutcome};
use pp_ir::prof::PathTable;
use pp_ir::{CallSiteId, ProcId};
use pp_usim::{CctTransition, ProfSink};

use crate::profile::FlowProfile;

/// The real sink: flow counter tables plus (optionally) a CCT runtime.
#[derive(Debug, Default)]
pub(crate) struct PpSink {
    pub(crate) flow: Option<FlowProfile>,
    pub(crate) cct: Option<CctRuntime>,
}

fn widen(pics: Option<(u32, u32)>) -> Option<(u64, u64)> {
    pics.map(|(a, b)| (a as u64, b as u64))
}

impl ProfSink for PpSink {
    fn path_event(&mut self, table: PathTable, sum: u64, pics: Option<(u32, u32)>) {
        if let Some(flow) = &mut self.flow {
            flow.record(table.proc, sum, widen(pics));
        }
    }

    fn cct_enter(&mut self, proc: ProcId) -> CctTransition {
        let Some(cct) = &mut self.cct else {
            return CctTransition::default();
        };
        let eff = cct.enter(proc.0);
        let (extra_uops, slot_written, record_writes) = match eff.outcome {
            EnterOutcome::FastHit => (0, false, 0),
            EnterOutcome::ListHit { scanned } => (2 * scanned, true, 0),
            EnterOutcome::NewRecord { ancestors_walked } => (10 + 2 * ancestors_walked, true, 4),
            EnterOutcome::RecursiveBackedge { ancestors_walked } => (2 * ancestors_walked, true, 0),
            // Cap hit: the failed ancestor walk plus a hash probe for the
            // shared overflow record.
            EnterOutcome::Overflow { ancestors_walked } => (4 + 2 * ancestors_walked, true, 0),
        };
        CctTransition {
            extra_uops,
            slot_addr: eff.slot_addr,
            record_addr: eff.record_addr,
            slot_written,
            record_writes,
        }
    }

    fn cct_call(&mut self, site: CallSiteId, path_prefix: Option<u64>) {
        if let Some(cct) = &mut self.cct {
            cct.prepare_call(site.0, path_prefix);
        }
    }

    fn cct_exit(&mut self) {
        if let Some(cct) = &mut self.cct {
            cct.exit();
        }
    }

    fn cct_metric_enter(&mut self, pics: (u32, u32)) {
        if let Some(cct) = &mut self.cct {
            cct.metric_enter(pics);
        }
    }

    fn cct_metric_exit(&mut self, pics: (u32, u32)) -> u64 {
        match &mut self.cct {
            Some(cct) => cct.metric_exit(pics),
            None => 0,
        }
    }

    fn cct_metric_tick(&mut self, pics: (u32, u32)) -> u64 {
        match &mut self.cct {
            Some(cct) => cct.metric_tick(pics),
            None => 0,
        }
    }

    fn cct_path_event(&mut self, sum: u64, pics: Option<(u32, u32)>) -> u64 {
        match &mut self.cct {
            Some(cct) => cct.path_event(sum, widen(pics)),
            None => 0,
        }
    }

    fn unwind(&mut self, depth: usize) {
        if let Some(cct) = &mut self.cct {
            cct.unwind_to(depth);
        }
    }
}
