//! The profiling sink wiring the machine to the profile structures.
//!
//! `PpSink` is generic over a [`Recorder`] so the observability layer
//! can watch the CCT's enter-path behavior (fast hits vs. list scans
//! vs. new records, ancestor-walk depths, move-to-front promotions)
//! without touching the hot loop when it is off: the default
//! [`NoopRecorder`] monomorphizes every `recorder.*` call away, leaving
//! the unobserved sink byte-for-byte what it was before this layer
//! existed.

use pp_cct::{CctRuntime, EnterOutcome};
use pp_ir::prof::PathTable;
use pp_ir::{CallSiteId, ProcId};
use pp_obs::{NoopRecorder, Recorder};
use pp_usim::{CctTransition, ProfSink};

use crate::profile::FlowProfile;

/// The real sink: flow counter tables plus (optionally) a CCT runtime,
/// plus a (default no-op) recorder for internals metrics.
#[derive(Debug, Default)]
pub(crate) struct PpSink<R: Recorder = NoopRecorder> {
    pub(crate) flow: Option<FlowProfile>,
    pub(crate) cct: Option<CctRuntime>,
    pub(crate) recorder: R,
}

impl<R: Recorder> ProfSink for PpSink<R> {
    fn path_event(&mut self, table: PathTable, sum: u64, pics: Option<(u64, u64)>) {
        if let Some(flow) = &mut self.flow {
            self.recorder.counter("flow.path_events", 1);
            flow.record(table.proc, sum, pics);
        }
    }

    fn cct_enter(&mut self, proc: ProcId) -> CctTransition {
        let Some(cct) = &mut self.cct else {
            return CctTransition::default();
        };
        let eff = cct.enter(proc.0);
        let (extra_uops, slot_written, record_writes) = match eff.outcome {
            EnterOutcome::FastHit => {
                self.recorder.counter("cct.enter.fast_hit", 1);
                (0, false, 0)
            }
            EnterOutcome::ListHit { scanned } => {
                self.recorder.counter("cct.enter.list_hit", 1);
                self.recorder
                    .observe("cct.enter.list_scan", u64::from(scanned));
                // The hit cell is moved to the list head whenever it
                // wasn't already there.
                if scanned > 1 {
                    self.recorder.counter("cct.enter.mtf_promotions", 1);
                }
                (2 * scanned, true, 0)
            }
            EnterOutcome::NewRecord { ancestors_walked } => {
                self.recorder.counter("cct.enter.new_record", 1);
                self.recorder
                    .observe("cct.enter.ancestor_walk", u64::from(ancestors_walked));
                (10 + 2 * ancestors_walked, true, 4)
            }
            EnterOutcome::RecursiveBackedge { ancestors_walked } => {
                self.recorder.counter("cct.enter.recursive", 1);
                self.recorder
                    .observe("cct.enter.ancestor_walk", u64::from(ancestors_walked));
                (2 * ancestors_walked, true, 0)
            }
            // Cap hit: the failed ancestor walk plus a hash probe for the
            // shared overflow record.
            EnterOutcome::Overflow { ancestors_walked } => {
                self.recorder.counter("cct.enter.overflow", 1);
                self.recorder
                    .observe("cct.enter.ancestor_walk", u64::from(ancestors_walked));
                (4 + 2 * ancestors_walked, true, 0)
            }
        };
        CctTransition {
            extra_uops,
            slot_addr: eff.slot_addr,
            record_addr: eff.record_addr,
            slot_written,
            record_writes,
        }
    }

    fn cct_call(&mut self, site: CallSiteId, path_prefix: Option<u64>) {
        if let Some(cct) = &mut self.cct {
            cct.prepare_call(site.0, path_prefix);
        }
    }

    fn cct_exit(&mut self) {
        if let Some(cct) = &mut self.cct {
            cct.exit();
        }
    }

    fn cct_metric_enter(&mut self, pics: (u64, u64)) {
        if let Some(cct) = &mut self.cct {
            cct.metric_enter(pics);
        }
    }

    fn cct_metric_exit(&mut self, pics: (u64, u64)) -> u64 {
        match &mut self.cct {
            Some(cct) => cct.metric_exit(pics),
            None => 0,
        }
    }

    fn cct_metric_tick(&mut self, pics: (u64, u64)) -> u64 {
        match &mut self.cct {
            Some(cct) => cct.metric_tick(pics),
            None => 0,
        }
    }

    fn cct_path_event(&mut self, sum: u64, pics: Option<(u64, u64)>) -> u64 {
        match &mut self.cct {
            Some(cct) => {
                self.recorder.counter("cct.path_events", 1);
                cct.path_event(sum, pics)
            }
            None => 0,
        }
    }

    fn unwind(&mut self, depth: usize) {
        if let Some(cct) = &mut self.cct {
            self.recorder.counter("cct.unwinds", 1);
            cct.unwind_to(depth);
        }
    }

    #[inline(always)]
    fn obs_counter(&mut self, name: &'static str, delta: u64) {
        self.recorder.counter(name, delta);
    }
}
