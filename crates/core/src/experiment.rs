//! Harnesses regenerating the paper's tables from a benchmark suite.
//!
//! Each `tableN` function runs the required configurations over a slice of
//! [`BenchCase`]s and returns structured rows; each `render_tableN`
//! formats them the way the paper prints them (including the CINT / CFP /
//! SPEC average rows). The `pp-bench` crate owns the binaries that call
//! these with the synthetic SPEC95-analog suite.

use pp_cct::CctStats;
use pp_ir::{HwEvent, Program};

use crate::analysis::{self, HotPathReport, HotProcReport};
use crate::profiler::{ProfileError, Profiler, RunConfig};
use crate::report::{compact, pct, ratio1, ratio2, TextTable};

/// One benchmark in the suite.
#[derive(Clone, Debug)]
pub struct BenchCase {
    /// Display name (e.g. "099.go").
    pub name: String,
    /// True for integer-suite analogs (CINT95), false for CFP95 analogs.
    pub cint: bool,
    /// The program.
    pub program: Program,
}

/// The Table 4/5 runs measure instructions and D-cache misses per path.
pub const TABLE45_EVENTS: (HwEvent, HwEvent) = (HwEvent::Insts, HwEvent::DcMiss);

// ---------------------------------------------------------------------------
// Table 1: overhead of profiling
// ---------------------------------------------------------------------------

/// One row of Table 1.
#[derive(Clone, Debug)]
pub struct Table1Row {
    /// Benchmark name.
    pub name: String,
    /// Integer-suite analog?
    pub cint: bool,
    /// Uninstrumented cycles.
    pub base: u64,
    /// "Flow and HW" cycles.
    pub flow_hw: u64,
    /// "Context and HW" cycles.
    pub context_hw: u64,
    /// "Context and Flow" cycles.
    pub context_flow: u64,
}

impl Table1Row {
    /// Overhead of a configuration relative to base.
    pub fn overhead(&self, cycles: u64) -> f64 {
        cycles as f64 / self.base as f64
    }
}

/// Runs the three instrumented configurations plus base for every case.
///
/// # Errors
///
/// Propagates the first [`ProfileError`].
pub fn table1(profiler: &Profiler, cases: &[BenchCase]) -> Result<Vec<Table1Row>, ProfileError> {
    let events = TABLE45_EVENTS;
    cases
        .iter()
        .map(|case| {
            let base = profiler.run(&case.program, RunConfig::Base)?.cycles();
            let flow_hw = profiler
                .run(&case.program, RunConfig::FlowHw { events })?
                .cycles();
            let context_hw = profiler
                .run(&case.program, RunConfig::ContextHw { events })?
                .cycles();
            let context_flow = profiler
                .run(&case.program, RunConfig::ContextFlow)?
                .cycles();
            Ok(Table1Row {
                name: case.name.clone(),
                cint: case.cint,
                base,
                flow_hw,
                context_hw,
                context_flow,
            })
        })
        .collect()
}

fn avg(xs: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = xs.collect();
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// Renders Table 1 with CINT/CFP/SPEC average rows.
pub fn render_table1(rows: &[Table1Row]) -> TextTable {
    let mut t = TextTable::new([
        "Benchmark",
        "Base (cyc)",
        "Flow+HW (cyc)",
        "xBase",
        "Ctx+HW (cyc)",
        "xBase",
        "Ctx+Flow (cyc)",
        "xBase",
    ]);
    for r in rows {
        t.row([
            r.name.clone(),
            compact(r.base),
            compact(r.flow_hw),
            ratio1(r.overhead(r.flow_hw)),
            compact(r.context_hw),
            ratio1(r.overhead(r.context_hw)),
            compact(r.context_flow),
            ratio1(r.overhead(r.context_flow)),
        ]);
    }
    for (label, filter) in [
        ("CINT Avg", Some(true)),
        ("CFP Avg", Some(false)),
        ("SPEC Avg", None),
    ] {
        let sel: Vec<&Table1Row> = rows
            .iter()
            .filter(|r| filter.is_none_or(|c| r.cint == c))
            .collect();
        if sel.is_empty() {
            continue;
        }
        t.separator();
        t.row([
            label.to_string(),
            String::new(),
            String::new(),
            ratio1(avg(sel.iter().map(|r| r.overhead(r.flow_hw)))),
            String::new(),
            ratio1(avg(sel.iter().map(|r| r.overhead(r.context_hw)))),
            String::new(),
            ratio1(avg(sel.iter().map(|r| r.overhead(r.context_flow)))),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Table 2: perturbation of hardware metrics
// ---------------------------------------------------------------------------

/// Perturbation ratios for one benchmark: recorded metric / uninstrumented
/// metric, for flow (F) and context (C) profiling, for each of the eight
/// Table 2 events.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: String,
    /// Integer-suite analog?
    pub cint: bool,
    /// `(event, F ratio, C ratio)` for the eight Table 2 events.
    pub ratios: Vec<(HwEvent, f64, f64)>,
}

/// The event pairing used to cover all eight metrics in four runs.
pub const TABLE2_PAIRS: [(HwEvent, HwEvent); 4] = [
    (HwEvent::Cycles, HwEvent::Insts),
    (HwEvent::DcReadMiss, HwEvent::DcWriteMiss),
    (HwEvent::IcMiss, HwEvent::BranchMispredict),
    (HwEvent::StoreBufStall, HwEvent::FpStall),
];

/// Measures perturbation: for each event pair, a Flow+HW run (recorded =
/// sum over paths) and a Context+HW run (recorded = inclusive metrics of
/// the root's children), each divided by the uninstrumented total.
///
/// # Errors
///
/// Propagates the first [`ProfileError`].
pub fn table2(profiler: &Profiler, cases: &[BenchCase]) -> Result<Vec<Table2Row>, ProfileError> {
    cases
        .iter()
        .map(|case| table2_case(profiler, case))
        .collect()
}

/// The Table 2 measurement for a single benchmark — the unit of work
/// that `pp-bench`'s `par_map` hands to its worker threads (each worker
/// pulls one case at a time from a shared queue; see
/// `pp_bench::par_map`).
///
/// # Errors
///
/// Propagates the first [`ProfileError`].
pub fn table2_case(profiler: &Profiler, case: &BenchCase) -> Result<Table2Row, ProfileError> {
    let base = profiler.run(&case.program, RunConfig::Base)?;
    let mut ratios = Vec::new();
    for events in TABLE2_PAIRS {
        let flow_run = profiler.run(&case.program, RunConfig::FlowHw { events })?;
        let flow = flow_run.flow.as_ref().expect("flow profile present");
        let ctx_run = profiler.run(&case.program, RunConfig::ContextHw { events })?;
        let cct = ctx_run.cct.as_ref().expect("cct present");
        // Context recorded total: inclusive metrics of the root's
        // children (normally just the program entry).
        let mut ctx0 = 0u64;
        let mut ctx1 = 0u64;
        for id in cct.record_ids().skip(1) {
            let r = cct.record(id);
            if r.parent() == Some(pp_cct::RecordId::ROOT) {
                ctx0 += r.metrics().first().copied().unwrap_or(0);
                ctx1 += r.metrics().get(1).copied().unwrap_or(0);
            }
        }
        for (k, ev) in [events.0, events.1].into_iter().enumerate() {
            let ground = base.machine.metrics.get(ev).max(1) as f64;
            let f_rec = if k == 0 {
                flow.total(|c| c.m0)
            } else {
                flow.total(|c| c.m1)
            } as f64;
            let c_rec = if k == 0 { ctx0 } else { ctx1 } as f64;
            ratios.push((ev, f_rec / ground, c_rec / ground));
        }
    }
    Ok(Table2Row {
        name: case.name.clone(),
        cint: case.cint,
        ratios,
    })
}

/// Renders Table 2 (F and C columns per event).
pub fn render_table2(rows: &[Table2Row]) -> TextTable {
    let mut headers = vec!["Benchmark".to_string()];
    if let Some(first) = rows.first() {
        for (ev, _, _) in &first.ratios {
            headers.push(format!("{ev} F"));
            headers.push(format!("{ev} C"));
        }
    }
    let mut t = TextTable::new(headers);
    for r in rows {
        let mut cells = vec![r.name.clone()];
        for (_, f, c) in &r.ratios {
            cells.push(ratio2(*f));
            cells.push(ratio2(*c));
        }
        t.row(cells);
    }
    for (label, filter) in [
        ("CINT Avg", Some(true)),
        ("CFP Avg", Some(false)),
        ("SPEC Avg", None),
    ] {
        let sel: Vec<&Table2Row> = rows
            .iter()
            .filter(|r| filter.is_none_or(|c| r.cint == c))
            .collect();
        if sel.is_empty() || rows.is_empty() {
            continue;
        }
        t.separator();
        let nev = sel[0].ratios.len();
        let mut cells = vec![label.to_string()];
        for i in 0..nev {
            cells.push(ratio2(avg(sel.iter().map(|r| r.ratios[i].1))));
            cells.push(ratio2(avg(sel.iter().map(|r| r.ratios[i].2))));
        }
        t.row(cells);
    }
    t
}

// ---------------------------------------------------------------------------
// Table 3: CCT statistics
// ---------------------------------------------------------------------------

/// One row of Table 3.
#[derive(Clone, Debug)]
pub struct Table3Row {
    /// Benchmark name.
    pub name: String,
    /// Integer-suite analog?
    pub cint: bool,
    /// The computed statistics.
    pub stats: CctStats,
}

/// Builds a combined-mode CCT per case and computes its statistics.
///
/// # Errors
///
/// Propagates the first [`ProfileError`].
pub fn table3(profiler: &Profiler, cases: &[BenchCase]) -> Result<Vec<Table3Row>, ProfileError> {
    cases
        .iter()
        .map(|case| {
            let run = profiler.run(
                &case.program,
                RunConfig::CombinedHw {
                    events: TABLE45_EVENTS,
                },
            )?;
            let cct = run.cct.as_ref().expect("cct present");
            Ok(Table3Row {
                name: case.name.clone(),
                cint: case.cint,
                stats: CctStats::compute(cct),
            })
        })
        .collect()
}

/// Renders Table 3.
pub fn render_table3(rows: &[Table3Row]) -> TextTable {
    let mut t = TextTable::new([
        "Benchmark",
        "Size",
        "Nodes",
        "AvgNode",
        "OutDeg",
        "HtAvg",
        "HtMax",
        "MaxRepl",
        "Sites",
        "Used",
        "OnePath",
    ]);
    for r in rows {
        let s = &r.stats;
        t.row([
            r.name.clone(),
            compact(s.file_size),
            s.nodes.to_string(),
            format!("{:.1}", s.avg_node_size),
            format!("{:.1}", s.avg_out_degree),
            format!("{:.1}", s.height_avg),
            s.height_max.to_string(),
            s.max_replication.to_string(),
            s.call_sites_total.to_string(),
            s.call_sites_used.to_string(),
            s.call_sites_one_path.to_string(),
        ]);
    }
    t
}

// ---------------------------------------------------------------------------
// Tables 4 & 5: L1 D-cache misses by path / by procedure
// ---------------------------------------------------------------------------

/// One row of Table 4 plus the Section 6.4.3 statistic.
#[derive(Clone, Debug)]
pub struct Table4Row {
    /// Benchmark name.
    pub name: String,
    /// Integer-suite analog?
    pub cint: bool,
    /// Hot-path threshold used.
    pub threshold: f64,
    /// The analysis.
    pub report: HotPathReport,
    /// Average number of executed paths crossing each hot-path block.
    pub block_multiplicity: f64,
    /// Total potential Ball–Larus paths across all procedures — the
    /// paper's point that executed paths are "a miniscule fraction of
    /// potential paths" (saturates at `u64::MAX`).
    pub potential_paths: u64,
}

/// One row of Table 5.
#[derive(Clone, Debug)]
pub struct Table5Row {
    /// Benchmark name.
    pub name: String,
    /// Integer-suite analog?
    pub cint: bool,
    /// The analysis.
    pub report: HotProcReport,
}

/// Runs Flow+HW (instructions + misses) once per case and produces both
/// the path-level and procedure-level analyses. `low_threshold_for`
/// selects benchmarks measured at 0.1% instead of 1% (the paper's go and
/// gcc treatment).
///
/// # Errors
///
/// Propagates the first [`ProfileError`].
pub fn table45(
    profiler: &Profiler,
    cases: &[BenchCase],
    low_threshold_for: &[&str],
) -> Result<(Vec<Table4Row>, Vec<Table5Row>), ProfileError> {
    let mut t4 = Vec::new();
    let mut t5 = Vec::new();
    for case in cases {
        let run = profiler.run(
            &case.program,
            RunConfig::FlowHw {
                events: TABLE45_EVENTS,
            },
        )?;
        let flow = run.flow.as_ref().expect("flow profile present");
        let inst = run.instrumented.as_ref().expect("instrumented");
        let threshold = if low_threshold_for.iter().any(|n| case.name.contains(n)) {
            0.001
        } else {
            0.01
        };
        let report = analysis::hot_paths(flow, threshold);
        let block_multiplicity = analysis::block_path_multiplicity(inst, flow, &report);
        let potential_paths = inst
            .proc_paths
            .iter()
            .flatten()
            .fold(0u64, |acc, pp| acc.saturating_add(pp.num_paths()));
        t4.push(Table4Row {
            name: case.name.clone(),
            cint: case.cint,
            threshold,
            report,
            block_multiplicity,
            potential_paths,
        });
        t5.push(Table5Row {
            name: case.name.clone(),
            cint: case.cint,
            report: analysis::hot_procedures(flow, &case.program, threshold),
        });
    }
    Ok((t4, t5))
}

/// Renders Table 4.
pub fn render_table4(rows: &[Table4Row]) -> TextTable {
    let mut t = TextTable::new([
        "Benchmark",
        "Potential",
        "Paths",
        "Inst",
        "Miss",
        "Hot#",
        "HotInst",
        "HotMiss",
        "Dense#",
        "Sparse#",
        "Cold#",
        "ColdMiss",
        "Blk*Paths",
    ]);
    for r in rows {
        let rep = &r.report;
        let hot_n = rep.hot.len();
        t.row([
            format!(
                "{}{}",
                r.name,
                if r.threshold < 0.01 { " (0.1%)" } else { "" }
            ),
            compact(r.potential_paths),
            rep.executed.to_string(),
            compact(rep.total_inst),
            compact(rep.total_miss),
            hot_n.to_string(),
            pct(rep.hot_inst_fraction()),
            pct(rep.hot_miss_fraction()),
            rep.dense().count().to_string(),
            rep.sparse().count().to_string(),
            rep.cold_count.to_string(),
            pct(if rep.total_miss == 0 {
                0.0
            } else {
                rep.cold_miss as f64 / rep.total_miss as f64
            }),
            format!("{:.1}", r.block_multiplicity),
        ]);
    }
    for (label, filter) in [
        ("CINT Avg", Some(true)),
        ("CFP Avg", Some(false)),
        ("SPEC Avg", None),
    ] {
        let sel: Vec<&Table4Row> = rows
            .iter()
            .filter(|r| filter.is_none_or(|c| r.cint == c))
            .collect();
        if sel.is_empty() {
            continue;
        }
        t.separator();
        t.row([
            label.to_string(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            format!("{:.1}", avg(sel.iter().map(|r| r.report.hot.len() as f64))),
            pct(avg(sel.iter().map(|r| r.report.hot_inst_fraction()))),
            pct(avg(sel.iter().map(|r| r.report.hot_miss_fraction()))),
            format!(
                "{:.1}",
                avg(sel.iter().map(|r| r.report.dense().count() as f64))
            ),
            format!(
                "{:.1}",
                avg(sel.iter().map(|r| r.report.sparse().count() as f64))
            ),
            String::new(),
            String::new(),
            format!("{:.1}", avg(sel.iter().map(|r| r.block_multiplicity))),
        ]);
    }
    t
}

/// Renders Table 5.
pub fn render_table5(rows: &[Table5Row]) -> TextTable {
    let mut t = TextTable::new([
        "Benchmark",
        "Hot#",
        "HotPath/Proc",
        "HotMiss",
        "Dense#",
        "Sparse#",
        "Cold#",
        "ColdPath/Proc",
        "ColdMiss",
    ]);
    for r in rows {
        let rep = &r.report;
        let hot: Vec<&crate::analysis::ProcStat> = rep.hot.iter().collect();
        let cold: Vec<&crate::analysis::ProcStat> = rep.cold.iter().collect();
        t.row([
            r.name.clone(),
            hot.len().to_string(),
            format!("{:.1}", HotProcReport::avg_paths(&hot)),
            pct(rep.miss_fraction(&hot)),
            rep.dense().count().to_string(),
            rep.sparse().count().to_string(),
            cold.len().to_string(),
            format!("{:.1}", HotProcReport::avg_paths(&cold)),
            pct(rep.miss_fraction(&cold)),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_ir::build::ProgramBuilder;
    use pp_ir::Operand;

    fn tiny_case(name: &str, cint: bool) -> BenchCase {
        let mut pb = ProgramBuilder::new();
        let leaf = pb.declare("leaf");
        let mut m = pb.procedure("main");
        let e = m.entry_block();
        let h = m.new_block();
        let body = m.new_block();
        let x = m.new_block();
        let i = m.new_reg();
        let c = m.new_reg();
        let a = m.new_reg();
        let v = m.new_reg();
        m.block(e).mov(i, 0i64).jump(h);
        m.block(h).cmp_lt(c, i, 64i64).branch(c, body, x);
        m.block(body)
            .mul(a, i, 512i64) // strided loads: misses
            .add(a, a, 0x20_0000i64)
            .load(v, a, 0)
            .call(leaf, vec![Operand::Reg(i)], None)
            .add(i, i, 1i64)
            .jump(h);
        m.block(x).ret();
        let main = m.finish();
        let mut l = pb.procedure_for(leaf);
        let e = l.entry_block();
        l.reserve_regs(1);
        l.block(e).nop().ret();
        l.finish();
        BenchCase {
            name: name.to_string(),
            cint,
            program: pb.finish(main),
        }
    }

    #[test]
    fn table1_shows_positive_overheads() {
        let cases = vec![tiny_case("int.a", true), tiny_case("fp.b", false)];
        let rows = table1(&Profiler::default(), &cases).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.overhead(r.flow_hw) > 1.0);
            assert!(r.overhead(r.context_hw) > 1.0);
            assert!(r.overhead(r.context_flow) > 1.0);
        }
        let text = render_table1(&rows).to_string();
        assert!(text.contains("CINT Avg"));
        assert!(text.contains("SPEC Avg"));
    }

    #[test]
    fn table2_ratios_near_one_for_insts() {
        let cases = vec![tiny_case("int.a", true)];
        let rows = table2(&Profiler::default(), &cases).unwrap();
        let r = &rows[0];
        assert_eq!(r.ratios.len(), 8);
        let (ev, f, _c) = r.ratios[1];
        assert_eq!(ev, HwEvent::Insts);
        // Flow-recorded instructions should be within 2x of ground truth.
        assert!(f > 0.5 && f < 2.0, "F(insts) = {f}");
        let text = render_table2(&rows).to_string();
        assert!(text.contains("insts F"));
    }

    #[test]
    fn table3_counts_records() {
        let cases = vec![tiny_case("x", true)];
        let rows = table3(&Profiler::default(), &cases).unwrap();
        assert_eq!(rows[0].stats.nodes, 2); // main + leaf
        let text = render_table3(&rows).to_string();
        assert!(text.contains("MaxRepl"));
    }

    #[test]
    fn table45_produces_hot_paths() {
        let cases = vec![tiny_case("go.analog", true)];
        let (t4, t5) = table45(&Profiler::default(), &cases, &["go"]).unwrap();
        assert_eq!(t4[0].threshold, 0.001, "go analog uses the low threshold");
        assert!(t4[0].report.total_miss > 0);
        assert!(!t4[0].report.hot.is_empty());
        assert!(!t5[0].report.hot.is_empty());
        let text4 = render_table4(&t4).to_string();
        assert!(text4.contains("(0.1%)"));
        let text5 = render_table5(&t5).to_string();
        assert!(text5.contains("HotPath/Proc"));
    }
}
