//! Hot path and hot procedure analyses (Tables 4 and 5, Section 6.4).
//!
//! Conventions: these analyses expect a [`FlowProfile`] collected with
//! `%pic0 = Insts` and `%pic1 = DcMiss` (instructions and L1 data cache
//! misses per path), which is how the Table 4/5 harnesses run the
//! profiler. `m0` is therefore "instructions along the path" and `m1`
//! "misses along the path".

use std::collections::{HashMap, HashSet};

use pp_instrument::Instrumented;
use pp_ir::{ProcId, Program};

use crate::profile::{FlowProfile, PathCell};

/// Dense (above-average miss ratio) or sparse (below-average) — the
/// paper's split of hot paths and hot procedures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathClass {
    /// Miss ratio above the program average: likely a locality problem.
    Dense,
    /// Miss ratio below average: hot because it executes a lot.
    Sparse,
}

/// One path's measurements.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PathStat {
    /// Procedure containing the path.
    pub proc: ProcId,
    /// The Ball–Larus path sum.
    pub sum: u64,
    /// Execution count.
    pub freq: u64,
    /// Instructions executed along the path (all executions).
    pub inst: u64,
    /// L1 data cache misses along the path (all executions).
    pub miss: u64,
    /// Dense/sparse classification (hot paths only).
    pub class: PathClass,
}

/// The Table 4 analysis: hot / cold / dense / sparse paths.
#[derive(Clone, Debug)]
pub struct HotPathReport {
    /// Miss fraction a path needs to be hot (the paper uses 1%, and 0.1%
    /// for go/gcc).
    pub threshold: f64,
    /// Total instructions over all paths.
    pub total_inst: u64,
    /// Total misses over all paths.
    pub total_miss: u64,
    /// Number of distinct executed paths.
    pub executed: usize,
    /// Hot paths, sorted by misses descending.
    pub hot: Vec<PathStat>,
    /// Number of cold paths.
    pub cold_count: usize,
    /// Instructions on cold paths.
    pub cold_inst: u64,
    /// Misses on cold paths.
    pub cold_miss: u64,
}

impl HotPathReport {
    /// Hot paths with above-average miss ratios.
    pub fn dense(&self) -> impl Iterator<Item = &PathStat> {
        self.hot.iter().filter(|p| p.class == PathClass::Dense)
    }

    /// Hot paths with below-average miss ratios.
    pub fn sparse(&self) -> impl Iterator<Item = &PathStat> {
        self.hot.iter().filter(|p| p.class == PathClass::Sparse)
    }

    /// Fraction of all misses covered by the hot paths.
    pub fn hot_miss_fraction(&self) -> f64 {
        if self.total_miss == 0 {
            return 0.0;
        }
        self.hot.iter().map(|p| p.miss).sum::<u64>() as f64 / self.total_miss as f64
    }

    /// Fraction of all instructions executed on the hot paths.
    pub fn hot_inst_fraction(&self) -> f64 {
        if self.total_inst == 0 {
            return 0.0;
        }
        self.hot.iter().map(|p| p.inst).sum::<u64>() as f64 / self.total_inst as f64
    }
}

/// Classifies executed paths by miss contribution (Table 4).
///
/// ```
/// use pp_core::analysis::hot_paths;
/// use pp_core::FlowProfile;
/// use pp_ir::ProcId;
///
/// let mut flow = FlowProfile::new(1);
/// flow.record(ProcId(0), 0, Some((1000, 90))); // the hot, dense path
/// flow.record(ProcId(0), 1, Some((5000, 0)));  // busy but clean
/// let report = hot_paths(&flow, 0.01);
/// assert_eq!(report.hot.len(), 1);
/// assert!(report.hot_miss_fraction() > 0.98);
/// ```
pub fn hot_paths(flow: &FlowProfile, threshold: f64) -> HotPathReport {
    let total_inst = flow.total(|c| c.m0);
    let total_miss = flow.total(|c| c.m1);
    let avg_ratio = if total_inst > 0 {
        total_miss as f64 / total_inst as f64
    } else {
        0.0
    };
    let cut = total_miss as f64 * threshold;

    let mut hot = Vec::new();
    let mut cold_count = 0usize;
    let mut cold_inst = 0u64;
    let mut cold_miss = 0u64;
    let mut executed = 0usize;
    for (proc, sum, cell) in flow.iter_paths() {
        executed += 1;
        let is_hot = total_miss > 0 && cell.m1 as f64 >= cut && cell.m1 > 0;
        if is_hot {
            let ratio = if cell.m0 > 0 {
                cell.m1 as f64 / cell.m0 as f64
            } else {
                f64::INFINITY
            };
            hot.push(PathStat {
                proc,
                sum,
                freq: cell.freq,
                inst: cell.m0,
                miss: cell.m1,
                class: if ratio > avg_ratio {
                    PathClass::Dense
                } else {
                    PathClass::Sparse
                },
            });
        } else {
            cold_count += 1;
            cold_inst += cell.m0;
            cold_miss += cell.m1;
        }
    }
    hot.sort_by(|a, b| b.miss.cmp(&a.miss).then(a.sum.cmp(&b.sum)));
    HotPathReport {
        threshold,
        total_inst,
        total_miss,
        executed,
        hot,
        cold_count,
        cold_inst,
        cold_miss,
    }
}

/// One procedure's aggregated measurements (Table 5).
#[derive(Clone, PartialEq, Debug)]
pub struct ProcStat {
    /// The procedure.
    pub proc: ProcId,
    /// Its name.
    pub name: String,
    /// Instructions over all its paths.
    pub inst: u64,
    /// Misses over all its paths.
    pub miss: u64,
    /// Distinct paths executed in it.
    pub paths_executed: usize,
    /// Dense/sparse (hot procedures only; cold ones are `Sparse` by
    /// convention but reported separately).
    pub class: PathClass,
}

/// The Table 5 analysis: hot / cold / dense / sparse procedures.
#[derive(Clone, Debug)]
pub struct HotProcReport {
    /// Miss fraction threshold for a hot procedure.
    pub threshold: f64,
    /// Total misses.
    pub total_miss: u64,
    /// Hot procedures, sorted by misses descending.
    pub hot: Vec<ProcStat>,
    /// Cold procedures (those that executed at all).
    pub cold: Vec<ProcStat>,
}

impl HotProcReport {
    /// Dense hot procedures.
    pub fn dense(&self) -> impl Iterator<Item = &ProcStat> {
        self.hot.iter().filter(|p| p.class == PathClass::Dense)
    }

    /// Sparse hot procedures.
    pub fn sparse(&self) -> impl Iterator<Item = &ProcStat> {
        self.hot.iter().filter(|p| p.class == PathClass::Sparse)
    }

    /// Average executed paths per procedure over `set`.
    pub fn avg_paths(set: &[&ProcStat]) -> f64 {
        if set.is_empty() {
            return 0.0;
        }
        set.iter().map(|p| p.paths_executed as f64).sum::<f64>() / set.len() as f64
    }

    /// Miss fraction covered by a set of procedures.
    pub fn miss_fraction(&self, set: &[&ProcStat]) -> f64 {
        if self.total_miss == 0 {
            return 0.0;
        }
        set.iter().map(|p| p.miss).sum::<u64>() as f64 / self.total_miss as f64
    }
}

/// Aggregates the flow profile per procedure and classifies (Table 5).
pub fn hot_procedures(flow: &FlowProfile, program: &Program, threshold: f64) -> HotProcReport {
    let mut per_proc: HashMap<ProcId, (u64, u64, usize)> = HashMap::new();
    for (proc, _, cell) in flow.iter_paths() {
        let e = per_proc.entry(proc).or_insert((0, 0, 0));
        e.0 += cell.m0;
        e.1 += cell.m1;
        e.2 += 1;
    }
    let total_inst: u64 = per_proc.values().map(|e| e.0).sum();
    let total_miss: u64 = per_proc.values().map(|e| e.1).sum();
    let avg_ratio = if total_inst > 0 {
        total_miss as f64 / total_inst as f64
    } else {
        0.0
    };
    let cut = total_miss as f64 * threshold;

    let mut hot = Vec::new();
    let mut cold = Vec::new();
    for (proc, (inst, miss, paths_executed)) in per_proc {
        let ratio = if inst > 0 {
            miss as f64 / inst as f64
        } else {
            0.0
        };
        let stat = ProcStat {
            proc,
            name: program.procedure(proc).name.clone(),
            inst,
            miss,
            paths_executed,
            class: if ratio > avg_ratio {
                PathClass::Dense
            } else {
                PathClass::Sparse
            },
        };
        if total_miss > 0 && miss as f64 >= cut && miss > 0 {
            hot.push(stat);
        } else {
            cold.push(stat);
        }
    }
    hot.sort_by(|a, b| b.miss.cmp(&a.miss).then(a.proc.cmp(&b.proc)));
    cold.sort_by(|a, b| b.miss.cmp(&a.miss).then(a.proc.cmp(&b.proc)));
    HotProcReport {
        threshold,
        total_miss,
        hot,
        cold,
    }
}

/// The Section 6.4.3 statistic: for blocks that lie on hot paths, the
/// average number of distinct executed paths each block appears on
/// ("basic blocks along hot paths execute along an average of 16
/// different paths").
pub fn block_path_multiplicity(
    instrumented: &Instrumented,
    flow: &FlowProfile,
    report: &HotPathReport,
) -> f64 {
    // Blocks on hot paths.
    let mut hot_blocks: HashSet<(ProcId, u32)> = HashSet::new();
    for p in &report.hot {
        if let Some((blocks, _)) = instrumented.decode_path(p.proc, p.sum) {
            for b in blocks {
                hot_blocks.insert((p.proc, b.0));
            }
        }
    }
    if hot_blocks.is_empty() {
        return 0.0;
    }
    // Count, for every executed path, which of those blocks it crosses.
    let mut multiplicity: HashMap<(ProcId, u32), u64> = HashMap::new();
    for (proc, sum, _) in flow.iter_paths() {
        if let Some((blocks, _)) = instrumented.decode_path(proc, sum) {
            for b in blocks {
                let key = (proc, b.0);
                if hot_blocks.contains(&key) {
                    *multiplicity.entry(key).or_insert(0) += 1;
                }
            }
        }
    }
    multiplicity.values().map(|&n| n as f64).sum::<f64>() / hot_blocks.len() as f64
}

/// One (calling context, intraprocedural path) pair from a combined
/// profile — the unit of the paper's "efficient approximation to
/// interprocedural path profiling" (Section 1.1).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ContextPathStat {
    /// The call chain from the program entry, as procedure keys.
    pub context: Vec<u32>,
    /// The Ball–Larus path sum within the innermost procedure.
    pub sum: u64,
    /// Execution count.
    pub freq: u64,
    /// First metric total (instructions under the Table 4 convention).
    pub m0: u64,
    /// Second metric total (L1 D-misses under the Table 4 convention).
    pub m1: u64,
}

/// Extracts the hot (context, path) pairs from a combined-mode CCT: the
/// pairs carrying at least `threshold` of the second metric. This is the
/// view neither flow profiling (no context) nor context profiling (no
/// paths) can produce alone.
pub fn hot_context_paths(cct: &pp_cct::CctRuntime, threshold: f64) -> (Vec<ContextPathStat>, u64) {
    let mut all: Vec<ContextPathStat> = Vec::new();
    let mut total_m1 = 0u64;
    for id in cct.record_ids().skip(1) {
        let r = cct.record(id);
        let context = r.context();
        for (sum, counts) in r.paths() {
            total_m1 += counts.m1;
            all.push(ContextPathStat {
                context: context.clone(),
                sum,
                freq: counts.freq,
                m0: counts.m0,
                m1: counts.m1,
            });
        }
    }
    let cut = total_m1 as f64 * threshold;
    let mut hot: Vec<ContextPathStat> = all
        .into_iter()
        .filter(|s| s.m1 > 0 && s.m1 as f64 >= cut)
        .collect();
    hot.sort_by(|a, b| b.m1.cmp(&a.m1).then(a.sum.cmp(&b.sum)));
    (hot, total_m1)
}

/// Convenience: the average L1 miss ratio recorded in the profile.
pub fn overall_miss_ratio(flow: &FlowProfile) -> f64 {
    let inst = flow.total(|c: &PathCell| c.m0);
    if inst == 0 {
        return 0.0;
    }
    flow.total(|c| c.m1) as f64 / inst as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profile() -> FlowProfile {
        let mut fp = FlowProfile::new(2);
        // proc 0: one dominant dense path, one sparse-but-hot path, one cold.
        fp.record_n(ProcId(0), 0, 100, 10_000, 900); // dense: ratio 0.09
        fp.record_n(ProcId(0), 1, 1000, 80_000, 80); // sparse hot: ratio 0.001
        fp.record_n(ProcId(0), 2, 1, 100, 1); // cold
                                              // proc 1: cold noise.
        fp.record_n(ProcId(1), 0, 5, 500, 2);
        fp
    }

    impl FlowProfile {
        fn record_n(&mut self, proc: ProcId, sum: u64, freq: u64, inst: u64, miss: u64) {
            for _ in 0..freq - 1 {
                self.record(proc, sum, Some((0, 0)));
            }
            self.record(proc, sum, Some((inst, miss)));
        }
    }

    #[test]
    fn hot_path_classification() {
        let fp = profile();
        let r = hot_paths(&fp, 0.01);
        assert_eq!(r.total_miss, 983);
        assert_eq!(r.executed, 4);
        assert_eq!(r.hot.len(), 2);
        assert_eq!(r.cold_count, 2);
        assert_eq!(r.hot[0].miss, 900);
        assert_eq!(r.hot[0].class, PathClass::Dense);
        assert_eq!(r.hot[1].class, PathClass::Sparse);
        assert!(r.hot_miss_fraction() > 0.99);
    }

    #[test]
    fn threshold_moves_the_cut() {
        let fp = profile();
        // 10% threshold: only the 900-miss path qualifies (98.3 cut).
        let r = hot_paths(&fp, 0.10);
        assert_eq!(r.hot.len(), 1);
        // 0.01% threshold: everything with >0 misses qualifies.
        let r = hot_paths(&fp, 0.0001);
        assert_eq!(r.hot.len(), 4);
    }

    #[test]
    fn hot_procedures_aggregate() {
        let fp = profile();
        let mut pb = pp_ir::build::ProgramBuilder::new();
        let a = pb.procedure("alpha").finish();
        let mut b = pb.procedure("beta");
        b.entry_block();
        b.finish();
        let prog = pb.finish(a);
        let r = hot_procedures(&fp, &prog, 0.01);
        assert_eq!(r.hot.len(), 1);
        assert_eq!(r.hot[0].name, "alpha");
        assert_eq!(r.hot[0].paths_executed, 3);
        assert_eq!(r.cold.len(), 1);
        assert_eq!(r.cold[0].name, "beta");
        let hot_refs: Vec<&ProcStat> = r.hot.iter().collect();
        assert!(r.miss_fraction(&hot_refs) > 0.99);
        assert_eq!(HotProcReport::avg_paths(&hot_refs), 3.0);
    }

    #[test]
    fn zero_miss_profile_has_no_hot_paths() {
        let mut fp = FlowProfile::new(1);
        fp.record(ProcId(0), 0, Some((100, 0)));
        let r = hot_paths(&fp, 0.01);
        assert!(r.hot.is_empty());
        assert_eq!(r.hot_miss_fraction(), 0.0);
        assert_eq!(overall_miss_ratio(&fp), 0.0);
    }
}

#[cfg(test)]
mod context_path_tests {
    use super::*;
    use pp_cct::{CctConfig, CctRuntime, ProcInfo};

    #[test]
    fn hot_context_paths_split_by_context() {
        let procs = vec![
            ProcInfo::new("main", 2).with_paths(1),
            ProcInfo::new("a", 1).with_paths(1),
            ProcInfo::new("b", 1).with_paths(1),
            ProcInfo::new("leaf", 0).with_paths(4),
        ];
        let mut cct = CctRuntime::new(CctConfig::combined(true), procs);
        cct.enter(0);
        cct.prepare_call(0, None);
        cct.enter(1); // a
        cct.prepare_call(0, None);
        cct.enter(3); // leaf under a: path 0, heavy misses
        cct.path_event(0, Some((100, 90)));
        cct.exit();
        cct.exit();
        cct.prepare_call(1, None);
        cct.enter(2); // b
        cct.prepare_call(0, None);
        cct.enter(3); // leaf under b: path 2, few misses
        cct.path_event(2, Some((100, 10)));
        cct.exit();
        cct.exit();
        cct.exit();

        let (hot, total) = hot_context_paths(&cct, 0.05);
        assert_eq!(total, 100);
        assert_eq!(hot.len(), 2);
        assert_eq!(hot[0].context, vec![0, 1, 3]); // main -> a -> leaf
        assert_eq!(hot[0].sum, 0);
        assert_eq!(hot[0].m1, 90);
        assert_eq!(hot[1].context, vec![0, 2, 3]);
        assert_eq!(hot[1].sum, 2);
        // A flow profile would merge both into (leaf, path) totals; a
        // context profile would merge both paths per record. Only the
        // combination separates all four dimensions.
    }

    #[test]
    fn threshold_filters_cold_pairs() {
        let procs = vec![ProcInfo::new("main", 0).with_paths(8)];
        let mut cct = CctRuntime::new(CctConfig::combined(true), procs);
        cct.enter(0);
        cct.path_event(0, Some((10, 99)));
        cct.path_event(1, Some((10, 1)));
        cct.exit();
        let (hot, total) = hot_context_paths(&cct, 0.05);
        assert_eq!(total, 100);
        assert_eq!(hot.len(), 1);
        assert_eq!(hot[0].sum, 0);
    }
}
