//! Running programs under a profiling configuration.

use std::fmt;

use pp_cct::{CctConfig, CctRuntime, ProcInfo};
use pp_instrument::{instrument_program, InstrumentError, InstrumentOptions, Instrumented, Mode};
use pp_ir::{HwEvent, Program};
use pp_obs::{NoopRecorder, Recorder};
use pp_usim::{ExecError, FaultPlan, GuestLimits, Machine, MachineConfig, NullSink, RunResult};

use crate::profile::FlowProfile;
use crate::sink_impl::PpSink;

/// A profiling configuration — the paper's run configurations plus the
/// uninstrumented base.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunConfig {
    /// Uninstrumented execution.
    Base,
    /// CFG edge frequencies only (\[BL94\]) — the baseline the paper
    /// compares path profiling's cost against.
    EdgeFreq,
    /// Path frequencies only (\[BL96\]).
    FlowFreq,
    /// "Flow and HW": two metrics along intraprocedural paths.
    FlowHw {
        /// Events on `%pic0` / `%pic1`.
        events: (HwEvent, HwEvent),
    },
    /// "Context and HW": metric deltas in the CCT.
    ContextHw {
        /// Events on `%pic0` / `%pic1`.
        events: (HwEvent, HwEvent),
    },
    /// "Context and Flow": path frequencies per call record.
    ContextFlow,
    /// Paths and metrics per call record.
    CombinedHw {
        /// Events on `%pic0` / `%pic1`.
        events: (HwEvent, HwEvent),
    },
}

impl RunConfig {
    /// The instrumentation mode, or `None` for the base run.
    pub fn mode(self) -> Option<Mode> {
        match self {
            RunConfig::Base => None,
            RunConfig::EdgeFreq => Some(Mode::EdgeFreq),
            RunConfig::FlowFreq => Some(Mode::FlowFreq),
            RunConfig::FlowHw { .. } => Some(Mode::FlowHw),
            RunConfig::ContextHw { .. } => Some(Mode::ContextHw),
            RunConfig::ContextFlow => Some(Mode::ContextFlow),
            RunConfig::CombinedHw { .. } => Some(Mode::CombinedHw),
        }
    }

    fn events(self) -> (HwEvent, HwEvent) {
        match self {
            RunConfig::FlowHw { events }
            | RunConfig::ContextHw { events }
            | RunConfig::CombinedHw { events } => events,
            _ => (HwEvent::Insts, HwEvent::DcMiss),
        }
    }

    /// The paper's name for this configuration.
    pub fn paper_name(self) -> &'static str {
        match self {
            RunConfig::Base => "Base",
            RunConfig::EdgeFreq => "Edge (freq)",
            RunConfig::FlowFreq => "Flow (freq)",
            RunConfig::FlowHw { .. } => "Flow and HW",
            RunConfig::ContextHw { .. } => "Context and HW",
            RunConfig::ContextFlow => "Context and Flow",
            RunConfig::CombinedHw { .. } => "Combined",
        }
    }
}

impl fmt::Display for RunConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// Profiling failure.
#[derive(Debug)]
pub enum ProfileError {
    /// Instrumentation failed.
    Instrument(InstrumentError),
    /// The (possibly instrumented) program crashed or ran away.
    Exec(ExecError),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Instrument(e) => write!(f, "instrumentation failed: {e}"),
            ProfileError::Exec(e) => write!(f, "execution failed: {e}"),
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<InstrumentError> for ProfileError {
    fn from(e: InstrumentError) -> ProfileError {
        ProfileError::Instrument(e)
    }
}

impl From<ExecError> for ProfileError {
    fn from(e: ExecError) -> ProfileError {
        ProfileError::Exec(e)
    }
}

/// The outcome of one profiled run.
#[derive(Debug)]
pub struct RunReport {
    /// The configuration that produced this report.
    pub config: RunConfig,
    /// Machine-level outcome (ground-truth metrics, cycles, code size).
    pub machine: RunResult,
    /// Flow profile (modes with per-procedure counter tables).
    pub flow: Option<FlowProfile>,
    /// The calling context tree (context modes).
    pub cct: Option<CctRuntime>,
    /// The instrumentation manifest (absent for base runs) — carries the
    /// path analyses needed to decode path sums.
    pub instrumented: Option<Instrumented>,
}

impl RunReport {
    /// Simulated cycles — the paper's "Time".
    pub fn cycles(&self) -> u64 {
        self.machine.cycles()
    }
}

/// The outcome of a profiled run: the report plus, when execution was cut
/// short, the fault that ended it.
///
/// A faulted run is not discarded — `report` carries everything the
/// profile collected up to the fault (the paper's counters survive
/// interrupts; ours survive aborts). `RunOutcome` derefs to
/// [`RunReport`], so read access (`outcome.flow`, `outcome.cycles()`)
/// works unchanged whether or not the run completed.
#[derive(Debug)]
pub struct RunOutcome {
    /// The collected profile — complete, or partial up to `fault`.
    pub report: RunReport,
    /// The execution error that aborted the run, if any.
    pub fault: Option<ExecError>,
}

impl RunOutcome {
    /// Did the program run to completion?
    pub fn is_complete(&self) -> bool {
        self.fault.is_none()
    }

    /// The report, requiring a clean run.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Exec`] when the run was aborted (the
    /// partial profile is dropped — use `report` directly to keep it).
    pub fn into_complete(self) -> Result<RunReport, ProfileError> {
        match self.fault {
            None => Ok(self.report),
            Some(e) => Err(ProfileError::Exec(e)),
        }
    }

    /// The report of a run asserted to have completed.
    ///
    /// # Panics
    ///
    /// Panics if the run was aborted by an [`ExecError`].
    pub fn expect_complete(self) -> RunReport {
        match self.fault {
            None => self.report,
            Some(e) => panic!("run did not complete: {e}"),
        }
    }
}

impl std::ops::Deref for RunOutcome {
    type Target = RunReport;

    fn deref(&self) -> &RunReport {
        &self.report
    }
}

impl std::ops::DerefMut for RunOutcome {
    fn deref_mut(&mut self) -> &mut RunReport {
        &mut self.report
    }
}

/// The PP profiler: instruments and runs programs.
#[derive(Clone, Debug, Default)]
pub struct Profiler {
    machine_config: MachineConfig,
    fault_plan: FaultPlan,
    limits: GuestLimits,
    cct_max_records: u32,
}

impl Profiler {
    /// Creates a profiler whose runs use `machine_config`.
    pub fn new(machine_config: MachineConfig) -> Profiler {
        Profiler {
            machine_config,
            fault_plan: FaultPlan::default(),
            limits: GuestLimits::default(),
            cct_max_records: 0,
        }
    }

    /// Injects `plan` into every machine this profiler runs (fault
    /// testing: preloaded counters, read skew, forced aborts).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Profiler {
        self.fault_plan = plan;
        self
    }

    /// Imposes [`GuestLimits`] (fuel, memory cap, call-depth cap,
    /// deadline, cancellation) on every decoded-machine run. A tripped
    /// limit comes back as a [`RunOutcome`] whose fault is
    /// [`ExecError::LimitExceeded`] and whose report holds the partial
    /// profile. The tree-walking reference interpreter ignores limits
    /// (it is a differential oracle, never run unattended), so do not
    /// set limits on runs that will be compared differentially.
    pub fn with_limits(mut self, limits: GuestLimits) -> Profiler {
        self.limits = limits;
        self
    }

    /// The guest limits in effect.
    pub fn limits(&self) -> &GuestLimits {
        &self.limits
    }

    /// Caps the CCT record arena at `max_records` (0 = unlimited). Once
    /// full, new contexts collapse onto shared per-procedure overflow
    /// records — the profile degrades DCG-style instead of growing
    /// without bound (see [`CctConfig::max_records`]).
    pub fn with_cct_record_cap(mut self, max_records: u32) -> Profiler {
        self.cct_max_records = max_records;
        self
    }

    /// The machine configuration in use.
    pub fn machine_config(&self) -> &MachineConfig {
        &self.machine_config
    }

    /// Instruments (per `config`) and executes `program`.
    ///
    /// # Errors
    ///
    /// Returns [`ProfileError::Instrument`] when Ball–Larus analysis or
    /// rewriting fails. Machine-level failures (stack overflow,
    /// instruction limit, invalid indirect call, injected aborts) do
    /// *not* discard the run: they come back as a [`RunOutcome`] whose
    /// `fault` is set and whose report holds the profile collected up to
    /// the fault.
    pub fn run(&self, program: &Program, config: RunConfig) -> Result<RunOutcome, ProfileError> {
        self.run_observed(program, config, NoopRecorder)
    }

    /// Like [`Profiler::run`], but feeding internals metrics (CCT enter
    /// outcomes, list-scan lengths, path events, …) into `recorder` —
    /// typically `&mut pp_obs::Registry`. `pp stats` and the metrics
    /// determinism tests use this; [`Profiler::run`] itself passes
    /// [`NoopRecorder`], which monomorphizes the recording away.
    ///
    /// # Errors
    ///
    /// As for [`Profiler::run`].
    pub fn run_observed<R: Recorder>(
        &self,
        program: &Program,
        config: RunConfig,
        recorder: R,
    ) -> Result<RunOutcome, ProfileError> {
        let Some(mode) = config.mode() else {
            let mut machine = {
                let _span = pp_obs::span!("decode");
                Machine::new(program, self.machine_config)
            };
            machine.inject_faults(self.fault_plan);
            machine.set_limits(self.limits.clone());
            let _span = pp_obs::span!("simulate");
            let (machine, fault) = match machine.run(&mut NullSink) {
                Ok(r) => (r, None),
                Err(e) => (machine.partial_result(), Some(e)),
            };
            return Ok(RunOutcome {
                report: RunReport {
                    config,
                    machine,
                    flow: None,
                    cct: None,
                    instrumented: None,
                },
                fault,
            });
        };

        let (pic0, pic1) = config.events();
        let options = InstrumentOptions::new(mode).with_events(pic0, pic1);
        self.run_with(program, config, options, None, recorder)
    }

    /// Like [`Profiler::run`] but with full control over instrumentation
    /// options (placement strategy, hash threshold, backedge ticks) — used
    /// by the ablation benchmarks.
    ///
    /// # Errors
    ///
    /// As for [`Profiler::run`].
    pub fn run_instrumented(
        &self,
        program: &Program,
        config: RunConfig,
        options: InstrumentOptions,
    ) -> Result<RunOutcome, ProfileError> {
        self.run_full(program, config, options, None)
    }

    /// The fully general entry point: explicit instrumentation options
    /// plus an optional CCT configuration override (used by the
    /// call-site-vs-procedure-slot ablation).
    ///
    /// # Errors
    ///
    /// As for [`Profiler::run`].
    pub fn run_full(
        &self,
        program: &Program,
        config: RunConfig,
        options: InstrumentOptions,
        cct_override: Option<CctConfig>,
    ) -> Result<RunOutcome, ProfileError> {
        self.run_with(program, config, options, cct_override, NoopRecorder)
    }

    fn run_with<R: Recorder>(
        &self,
        program: &Program,
        config: RunConfig,
        options: InstrumentOptions,
        cct_override: Option<CctConfig>,
        recorder: R,
    ) -> Result<RunOutcome, ProfileError> {
        let (inst, mut sink) = self.profile_parts(program, options, cct_override, recorder)?;
        let mut machine = {
            let _span = pp_obs::span!("decode");
            Machine::new(&inst.program, self.machine_config)
        };
        machine.inject_faults(self.fault_plan);
        machine.set_limits(self.limits.clone());
        // On a machine fault the sink still holds everything collected up
        // to the fault; recover it rather than discarding the run.
        let _span = pp_obs::span!("simulate");
        let (machine, fault) = match machine.run(&mut sink) {
            Ok(r) => (r, None),
            Err(e) => (machine.partial_result(), Some(e)),
        };
        Ok(RunOutcome {
            report: RunReport {
                config,
                machine,
                flow: sink.flow,
                cct: sink.cct,
                instrumented: Some(inst),
            },
            fault,
        })
    }

    /// Instruments `program` and allocates the profile state the sink
    /// will populate — everything a run needs except the machine itself.
    fn profile_parts<R: Recorder>(
        &self,
        program: &Program,
        options: InstrumentOptions,
        cct_override: Option<CctConfig>,
        recorder: R,
    ) -> Result<(Instrumented, PpSink<R>), ProfileError> {
        let mode = options.mode;
        let _span = pp_obs::span!("instrument");
        let inst = instrument_program(program, options)?;

        let flow = matches!(mode, Mode::FlowFreq | Mode::FlowHw | Mode::EdgeFreq)
            .then(|| FlowProfile::new(program.procedures().len()));
        let cct = mode.tracks_context().then(|| {
            let procs: Vec<ProcInfo> = inst
                .proc_meta
                .iter()
                .map(|m| {
                    let mut info = ProcInfo::new(&m.name, m.num_call_sites).with_paths(m.num_paths);
                    for (site, &ind) in m.indirect_sites.iter().enumerate() {
                        if ind {
                            info = info.with_indirect_site(site as u32);
                        }
                    }
                    info
                })
                .collect();
            let mut cct_config = cct_override.unwrap_or(match mode {
                Mode::ContextHw => CctConfig::with_hw_metrics(),
                Mode::ContextFlow => CctConfig::combined(false),
                Mode::CombinedHw => CctConfig::combined(true),
                _ => unreachable!("context modes only"),
            });
            if self.cct_max_records != 0 {
                cct_config.max_records = self.cct_max_records;
            }
            CctRuntime::new(cct_config, procs)
        });

        Ok((
            inst,
            PpSink {
                flow,
                cct,
                recorder,
            },
        ))
    }

    /// Like [`Profiler::run`], but executing on the pre-predecoding
    /// tree-walking [`ReferenceMachine`](pp_usim::reference::ReferenceMachine)
    /// instead of the micro-op-arena [`Machine`]. Instrumentation, sink
    /// state, and fault injection are identical, so the two profiles must
    /// agree bit for bit — the differential tests assert exactly that,
    /// and `pp bench` times the two pipelines against each other.
    ///
    /// # Errors
    ///
    /// As for [`Profiler::run`].
    #[cfg(feature = "reference")]
    pub fn run_reference(
        &self,
        program: &Program,
        config: RunConfig,
    ) -> Result<RunOutcome, ProfileError> {
        self.run_reference_observed(program, config, NoopRecorder)
    }

    /// [`Profiler::run_reference`] with internals metrics fed into
    /// `recorder`, mirroring [`Profiler::run_observed`] — the metrics
    /// determinism test drives both and asserts identical snapshots.
    ///
    /// # Errors
    ///
    /// As for [`Profiler::run`].
    #[cfg(feature = "reference")]
    pub fn run_reference_observed<R: Recorder>(
        &self,
        program: &Program,
        config: RunConfig,
        recorder: R,
    ) -> Result<RunOutcome, ProfileError> {
        use pp_usim::reference::ReferenceMachine;

        let Some(mode) = config.mode() else {
            let mut machine = ReferenceMachine::new(program, self.machine_config);
            machine.inject_faults(self.fault_plan);
            let _span = pp_obs::span!("simulate.reference");
            let (machine, fault) = match machine.run(&mut NullSink) {
                Ok(r) => (r, None),
                Err(e) => (machine.partial_result(), Some(e)),
            };
            return Ok(RunOutcome {
                report: RunReport {
                    config,
                    machine,
                    flow: None,
                    cct: None,
                    instrumented: None,
                },
                fault,
            });
        };

        let (pic0, pic1) = config.events();
        let options = InstrumentOptions::new(mode).with_events(pic0, pic1);
        let (inst, mut sink) = self.profile_parts(program, options, None, recorder)?;
        let mut machine = ReferenceMachine::new(&inst.program, self.machine_config);
        machine.inject_faults(self.fault_plan);
        let _span = pp_obs::span!("simulate.reference");
        let (machine, fault) = match machine.run(&mut sink) {
            Ok(r) => (r, None),
            Err(e) => (machine.partial_result(), Some(e)),
        };
        Ok(RunOutcome {
            report: RunReport {
                config,
                machine,
                flow: sink.flow,
                cct: sink.cct,
                instrumented: Some(inst),
            },
            fault,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_ir::build::ProgramBuilder;
    use pp_ir::Operand;

    /// main calls leaf in a loop; leaf branches on its argument's parity.
    fn sample_program() -> Program {
        let mut pb = ProgramBuilder::new();
        let leaf = pb.declare("leaf");
        let mut m = pb.procedure("main");
        let e = m.entry_block();
        let h = m.new_block();
        let body = m.new_block();
        let x = m.new_block();
        let i = m.new_reg();
        let c = m.new_reg();
        m.block(e).mov(i, 0i64).jump(h);
        m.block(h).cmp_lt(c, i, 20i64).branch(c, body, x);
        m.block(body)
            .call(leaf, vec![Operand::Reg(i)], None)
            .add(i, i, 1i64)
            .jump(h);
        m.block(x).ret();
        let main = m.finish();

        let mut l = pb.procedure_for(leaf);
        let e = l.entry_block();
        let odd = l.new_block();
        let even = l.new_block();
        let x = l.new_block();
        l.reserve_regs(1);
        let p = l.new_reg();
        let arg = pp_ir::Reg(0);
        l.block(e)
            .bin(pp_ir::instr::BinOp::And, p, arg, 1i64)
            .branch(p, odd, even);
        l.block(odd).nop().jump(x);
        l.block(even).nop().nop().jump(x);
        l.block(x).ret();
        l.finish();
        pb.finish(main)
    }

    #[test]
    fn base_run_collects_no_profile() {
        let prog = sample_program();
        let r = Profiler::default().run(&prog, RunConfig::Base).unwrap();
        assert!(r.flow.is_none());
        assert!(r.cct.is_none());
        assert!(r.cycles() > 0);
    }

    #[test]
    fn flow_freq_counts_paths_exactly() {
        let prog = sample_program();
        let r = Profiler::default().run(&prog, RunConfig::FlowFreq).unwrap();
        let flow = r.flow.as_ref().unwrap();
        // leaf executes 20 times: 10 odd paths, 10 even paths.
        let leaf = prog.find_procedure("leaf").unwrap();
        assert_eq!(flow.paths_executed(leaf), 2);
        let total_leaf: u64 = (0..flow.num_procs() as u32)
            .filter(|&p| pp_ir::ProcId(p) == leaf)
            .map(|p| {
                flow.iter_paths()
                    .filter(|(pr, _, _)| *pr == pp_ir::ProcId(p))
                    .map(|(_, _, c)| c.freq)
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(total_leaf, 20);
        // main: 20 loop iterations + entry/exit paths.
        let main = prog.find_procedure("main").unwrap();
        let main_total: u64 = flow
            .iter_paths()
            .filter(|(p, _, _)| *p == main)
            .map(|(_, _, c)| c.freq)
            .sum();
        assert_eq!(main_total, 21); // 20 backedge events + 1 final
    }

    #[test]
    fn flow_hw_measures_instructions_per_path() {
        let prog = sample_program();
        let r = Profiler::default()
            .run(
                &prog,
                RunConfig::FlowHw {
                    events: (HwEvent::Insts, HwEvent::DcMiss),
                },
            )
            .unwrap();
        let flow = r.flow.as_ref().unwrap();
        let leaf = prog.find_procedure("leaf").unwrap();
        // The "even" path executes one more nop than the "odd" path; the
        // recorded per-path instruction totals must differ accordingly.
        let cells: Vec<(u64, crate::profile::PathCell)> = flow
            .iter_paths()
            .filter(|(p, _, _)| *p == leaf)
            .map(|(_, s, c)| (s, c))
            .collect();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].1.freq, 10);
        assert_eq!(cells[1].1.freq, 10);
        let per_exec: Vec<u64> = cells.iter().map(|(_, c)| c.m0 / c.freq).collect();
        assert_ne!(per_exec[0], per_exec[1], "paths have different lengths");
        // One extra nop, plus up to two instrumentation instructions that
        // land on one path but not the other (measured perturbation —
        // exactly the Section 3.2 effect).
        let diff = per_exec[0].abs_diff(per_exec[1]);
        assert!((1..=3).contains(&diff), "diff = {diff}");
    }

    #[test]
    fn context_flow_builds_cct_with_path_tables() {
        let prog = sample_program();
        let r = Profiler::default()
            .run(&prog, RunConfig::ContextFlow)
            .unwrap();
        let cct = r.cct.as_ref().unwrap();
        assert_eq!(cct.num_records(), 2); // main + leaf under main
        let leaf_rec = cct
            .record_ids()
            .find(|&id| cct.record(id).proc_name() == "leaf")
            .unwrap();
        let paths = cct.record(leaf_rec).paths();
        assert_eq!(paths.len(), 2);
        assert_eq!(paths.iter().map(|(_, c)| c.freq).sum::<u64>(), 20);
    }

    #[test]
    fn context_hw_records_inclusive_deltas() {
        let prog = sample_program();
        let r = Profiler::default()
            .run(
                &prog,
                RunConfig::ContextHw {
                    events: (HwEvent::Insts, HwEvent::Cycles),
                },
            )
            .unwrap();
        let cct = r.cct.as_ref().unwrap();
        let main_rec = cct
            .record_ids()
            .find(|&id| cct.record(id).proc_name() == "main")
            .unwrap();
        let leaf_rec = cct
            .record_ids()
            .find(|&id| cct.record(id).proc_name() == "leaf")
            .unwrap();
        let m = cct.record(main_rec).metrics()[0];
        let l = cct.record(leaf_rec).metrics()[0];
        assert!(m > l, "main's inclusive instructions exceed leaf's");
        assert!(l > 0);
    }

    #[test]
    fn overhead_ordering_base_cheapest() {
        let prog = sample_program();
        let p = Profiler::default();
        let base = p.run(&prog, RunConfig::Base).unwrap().cycles();
        let flow = p
            .run(
                &prog,
                RunConfig::FlowHw {
                    events: (HwEvent::Insts, HwEvent::DcMiss),
                },
            )
            .unwrap()
            .cycles();
        assert!(flow > base, "instrumentation must cost cycles");
    }

    #[test]
    fn combined_mode_distinguishes_contexts_of_paths() {
        // Two callers of leaf -> two leaf records, each with its own path
        // table.
        let mut pb = ProgramBuilder::new();
        let leaf = pb.declare("leaf");
        let a = pb.declare("a");
        let b = pb.declare("b");
        let mut m = pb.procedure("main");
        let e = m.entry_block();
        m.block(e).call(a, vec![], None).call(b, vec![], None).ret();
        let main = m.finish();
        for (id, arg) in [(a, 0i64), (b, 1i64)] {
            let mut p = pb.procedure_for(id);
            let e = p.entry_block();
            p.block(e).call(leaf, vec![Operand::Imm(arg)], None).ret();
            p.finish();
        }
        let mut l = pb.procedure_for(leaf);
        let e = l.entry_block();
        let odd = l.new_block();
        let even = l.new_block();
        let x = l.new_block();
        l.reserve_regs(1);
        l.block(e).branch(pp_ir::Reg(0), odd, even);
        l.block(odd).nop().jump(x);
        l.block(even).nop().jump(x);
        l.block(x).ret();
        l.finish();
        let prog = pb.finish(main);

        let r = Profiler::default()
            .run(
                &prog,
                RunConfig::CombinedHw {
                    events: (HwEvent::Insts, HwEvent::DcMiss),
                },
            )
            .unwrap();
        let cct = r.cct.as_ref().unwrap();
        let leaf_records: Vec<_> = cct
            .record_ids()
            .filter(|&id| cct.record(id).proc_name() == "leaf")
            .collect();
        assert_eq!(leaf_records.len(), 2, "one record per calling context");
        // Each context executed a different path.
        let sums: Vec<Vec<u64>> = leaf_records
            .iter()
            .map(|&id| cct.record(id).paths().iter().map(|&(s, _)| s).collect())
            .collect();
        assert_ne!(sums[0], sums[1]);
    }
}
