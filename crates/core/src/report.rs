//! Plain-text table rendering for the experiment harnesses.

use std::fmt;

/// A fixed-width text table: headers plus rows, columns padded to fit.
/// The first column is left-aligned, the rest right-aligned (the layout of
/// the paper's tables).
///
/// ```
/// use pp_core::TextTable;
///
/// let mut t = TextTable::new(["Benchmark", "Overhead"]);
/// t.row(["099.go", "3.0"]);
/// let rendered = t.to_string();
/// assert!(rendered.contains("099.go"));
/// ```
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    separators_before: Vec<usize>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: impl IntoIterator<Item = S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            separators_before: Vec::new(),
        }
    }

    /// Appends a row; short rows are padded with empty cells.
    ///
    /// # Panics
    ///
    /// Panics if the row has more cells than there are headers.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut TextTable {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert!(
            row.len() <= self.headers.len(),
            "row has {} cells but table has {} columns",
            row.len(),
            self.headers.len()
        );
        row.resize(self.headers.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Inserts a horizontal separator before the next row (used before
    /// the CINT/CFP/SPEC average rows).
    pub fn separator(&mut self) -> &mut TextTable {
        self.separators_before.push(self.rows.len());
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ncols = self.headers.len();
        let mut width = vec![0usize; ncols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = width[i].max(h.len());
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.len());
            }
        }
        let total: usize = width.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));

        let write_row = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    f.write_str("  ")?;
                }
                if i == 0 {
                    write!(f, "{c:<w$}", w = width[i])?;
                } else {
                    write!(f, "{c:>w$}", w = width[i])?;
                }
            }
            writeln!(f)
        };

        write_row(f, &self.headers)?;
        writeln!(f, "{}", "-".repeat(total))?;
        for (r, row) in self.rows.iter().enumerate() {
            if self.separators_before.contains(&r) {
                writeln!(f, "{}", "-".repeat(total))?;
            }
            write_row(f, row)?;
        }
        Ok(())
    }
}

/// Formats a ratio the way the paper does (one decimal for overheads).
pub fn ratio1(x: f64) -> String {
    format!("{x:.1}")
}

/// Formats a ratio with two decimals (Table 2 perturbations).
pub fn ratio2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", 100.0 * x)
}

/// Formats a large count in scientific-ish notation like the paper's
/// "1.1e7" size column when it exceeds five digits, plainly otherwise.
pub fn compact(n: u64) -> String {
    if n >= 100_000 {
        let exp = (n as f64).log10().floor() as u32;
        let mant = n as f64 / 10f64.powi(exp as i32);
        format!("{mant:.1}e{exp}")
    } else {
        n.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_padded_columns() {
        let mut t = TextTable::new(["Benchmark", "Time", "Overhead"]);
        t.row(["099.go", "850.9", "3.0"]);
        t.row(["126.gcc", "330.9", "4.4"]);
        t.separator();
        t.row(["Avg", "590.9", "3.7"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert!(lines[0].starts_with("Benchmark"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].contains("099.go"));
        // Separator inserted before the average row.
        assert!(lines[4].chars().all(|c| c == '-'));
        assert!(lines[5].contains("Avg"));
        // Right alignment of numeric columns: all rows end at same width.
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn too_wide_row_panics() {
        let mut t = TextTable::new(["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ratio1(2.96), "3.0");
        assert_eq!(ratio2(1.234), "1.23");
        assert_eq!(pct(0.5951), "59.5%");
        assert_eq!(compact(42), "42");
        assert_eq!(compact(11_000_000), "1.1e7");
        assert_eq!(compact(99_999), "99999");
    }
}
