//! Post-run derivation of internals metrics from a finished profile.
//!
//! The hot path records only what it must (see `sink_impl`); everything
//! derivable after the run — simulator rates, CCT shape, path-table
//! occupancy, serialized profile sizes, which injected faults fired —
//! is computed here from the [`RunOutcome`] and pushed into a
//! [`Recorder`]. Every metric recorded by this module is a function of
//! simulated state only, so two identical runs (on either interpreter)
//! produce byte-identical [`Registry`](pp_obs::Registry) snapshots; the
//! differential suite asserts exactly that. Wall-clock quantities live
//! in the tracing layer instead.

use pp_ir::HwEvent;
use pp_obs::Recorder;

use crate::profiler::RunOutcome;

/// Records the full post-run metric set for `outcome` into `recorder`:
/// simulator counters and rates, CCT shape, path-table occupancy,
/// serialized profile sizes, and the run's fault log.
pub fn record_outcome<R: Recorder>(recorder: &mut R, outcome: &RunOutcome) {
    record_machine(recorder, outcome);
    record_profile(recorder, outcome);
    record_faults(recorder, outcome);
}

/// Simulator internals: retired µops, cycle count, cache hit rates,
/// predictor accuracy, stall cycles, code and memory footprint.
fn record_machine<R: Recorder>(recorder: &mut R, outcome: &RunOutcome) {
    let m = &outcome.machine.metrics;
    recorder.counter("sim.uops", outcome.machine.uops);
    recorder.counter("sim.cycles", m.get(HwEvent::Cycles));
    recorder.counter("sim.store_buf_stall_cycles", m.get(HwEvent::StoreBufStall));
    recorder.counter("sim.fp_stall_cycles", m.get(HwEvent::FpStall));
    recorder.gauge("sim.code_bytes", outcome.machine.code_bytes as f64);
    recorder.gauge("sim.resident_pages", outcome.machine.resident_pages as f64);

    let rate = |hit: u64, total: u64| {
        if total == 0 {
            1.0
        } else {
            hit as f64 / total as f64
        }
    };
    let dc_accesses = m.get(HwEvent::DcRead) + m.get(HwEvent::DcWrite);
    recorder.gauge(
        "sim.dcache.hit_rate",
        rate(
            dc_accesses.saturating_sub(m.get(HwEvent::DcMiss)),
            dc_accesses,
        ),
    );
    // The I-cache has no access counter; misses per retired µop is the
    // stable normalization.
    recorder.gauge(
        "sim.icache.miss_per_uop",
        rate(m.get(HwEvent::IcMiss), outcome.machine.uops.max(1)).min(1.0),
    );
    recorder.gauge(
        "sim.predictor.accuracy",
        rate(
            m.get(HwEvent::Branches)
                .saturating_sub(m.get(HwEvent::BranchMispredict)),
            m.get(HwEvent::Branches),
        ),
    );
}

/// Profile-structure shape: flow table fill, CCT size and degradation
/// counters, dense-vs-hashed path-table occupancy, and serialized
/// profile sizes (byte counts are deterministic; serialization *time*
/// is a tracing span, not a metric).
fn record_profile<R: Recorder>(recorder: &mut R, outcome: &RunOutcome) {
    if let Some(flow) = &outcome.flow {
        recorder.gauge("flow.procs", flow.num_procs() as f64);
        recorder.counter("flow.paths_recorded", flow.iter_paths().count() as u64);
        let mut bytes = Vec::new();
        if flow.write_to(&mut bytes).is_ok() {
            recorder.counter("serialize.flow.bytes", bytes.len() as u64);
        }
    }
    if let Some(cct) = &outcome.cct {
        recorder.counter("cct.records", cct.num_records() as u64);
        recorder.counter("cct.overflow_enters", cct.overflow_enters());
        recorder.counter("cct.overflow_records", cct.num_overflow_records() as u64);
        recorder.counter("cct.heap_bytes", cct.heap_bytes());
        let p = cct.path_table_stats();
        recorder.counter("path.dense.tables", p.dense_tables);
        recorder.counter("path.dense.capacity", p.dense_capacity);
        recorder.counter("path.dense.touched", p.dense_touched);
        if p.dense_capacity > 0 {
            recorder.gauge(
                "path.dense.occupancy",
                p.dense_touched as f64 / p.dense_capacity as f64,
            );
        }
        recorder.counter("path.hashed.tables", p.hashed_tables);
        recorder.counter("path.hashed.entries", p.hashed_entries);
        recorder.counter("path.hashed.buckets_used", p.hashed_buckets_used);
        recorder.counter("path.hashed.max_chain", p.hashed_max_chain);
        if p.hashed_buckets_used > 0 {
            recorder.gauge(
                "path.hashed.avg_chain",
                p.hashed_entries as f64 / p.hashed_buckets_used as f64,
            );
        }
        let mut bytes = Vec::new();
        if pp_cct::write_cct(cct, &mut bytes).is_ok() {
            recorder.counter("serialize.cct.bytes", bytes.len() as u64);
        }
    }
}

/// Which injected faults actually fired (satellite of the fault-injection
/// harness: tests assert *which* fault fired, not just the degraded
/// outcome).
fn record_faults<R: Recorder>(recorder: &mut R, outcome: &RunOutcome) {
    let log = outcome.machine.fault_log;
    if log.pics_preloaded {
        recorder.counter("fault.pics_preloaded", 1);
    }
    if log.skewed_reads > 0 {
        recorder.counter("fault.skewed_reads", log.skewed_reads);
    }
    if log.pics_clobbered {
        recorder.counter("fault.pics_clobbered", 1);
    }
    if let Some(uops) = log.aborted_at {
        recorder.counter("fault.aborted", 1);
        recorder.gauge("fault.aborted_at_uops", uops as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{Profiler, RunConfig};
    use pp_obs::Registry;

    fn workload() -> pp_ir::Program {
        let spec = pp_workloads::spec_for("099.go")
            .expect("known")
            .scaled(0.05);
        pp_workloads::build(&spec)
    }

    #[test]
    fn observed_run_fills_registry() {
        let prog = workload();
        let profiler = Profiler::default();
        let mut reg = Registry::new();
        let outcome = profiler
            .run_observed(
                &prog,
                RunConfig::CombinedHw {
                    events: (pp_ir::HwEvent::Insts, pp_ir::HwEvent::DcMiss),
                },
                &mut reg,
            )
            .expect("run");
        record_outcome(&mut reg, &outcome);
        assert!(reg.counter_value("sim.uops") > 0);
        assert!(reg.counter_value("cct.records") > 0);
        assert!(
            reg.counter_value("cct.enter.fast_hit") + reg.counter_value("cct.enter.new_record") > 0
        );
        assert!(reg.counter_value("serialize.cct.bytes") > 0);
        let dc = reg.gauge_value("sim.dcache.hit_rate").expect("gauge");
        assert!((0.0..=1.0).contains(&dc));
        assert_eq!(reg.counter_value("fault.aborted"), 0);
    }

    #[test]
    fn fault_log_surfaces_as_metrics() {
        let prog = workload();
        let plan = pp_usim::FaultPlan::default()
            .preload_pics(u32::MAX - 10, u32::MAX - 5)
            .abort_at_uops(20_000);
        let profiler = Profiler::default().with_fault_plan(plan);
        let mut reg = Registry::new();
        let outcome = profiler
            .run_observed(&prog, RunConfig::FlowFreq, &mut reg)
            .expect("instrumentation succeeds");
        record_outcome(&mut reg, &outcome);
        assert!(!outcome.is_complete());
        assert_eq!(reg.counter_value("fault.pics_preloaded"), 1);
        assert_eq!(reg.counter_value("fault.aborted"), 1);
        assert_eq!(
            reg.gauge_value("fault.aborted_at_uops"),
            Some(outcome.machine.fault_log.aborted_at.unwrap() as f64)
        );
    }
}
