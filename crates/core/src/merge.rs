//! Fleet-scale deterministic CCT merge.
//!
//! The paper's profiles are per-run artifacts; the fleet we serve folds
//! millions of them. This module turns N serialized CCT shards into one
//! fleet profile with three headline properties:
//!
//! * **Associative and byte-deterministic.** A merge is the keyed union
//!   of calling contexts with saturating-summed counters — commutative
//!   and associative by construction — followed by
//!   [`CctRuntime::canonicalize`], which makes the serialized bytes a
//!   pure function of tree *content*. Any shard order, any pairwise
//!   association, and any interrupted-and-resumed schedule therefore
//!   produce `cmp`-identical output. The Section 4.2 dense→hashed path
//!   table decision is re-taken on the merged table during the canonical
//!   rebuild, so the merged profile obeys the same representation rule
//!   as a live run.
//! * **Corruption-tolerant.** Every shard is envelope/CRC-validated on
//!   ingest. A bad shard is *quarantined* with a typed [`MergeError`]
//!   and recorded in the [`MergeReport`]; by default the merge degrades
//!   to a partial fleet profile that states exactly which shards were
//!   excluded, while `--strict` fails fast on the first bad shard.
//! * **Resumable.** With a checkpoint directory, the merge periodically
//!   persists the partial fleet profile (`merged.cct`) plus a `PPMRG01`
//!   manifest (`merge.ppm`) — both written atomically (temp file, fsync,
//!   rename) like the batch manifest, so `kill -9` at any instant leaves
//!   either the old checkpoint or the new one. Resume validates every
//!   recorded shard against its stored length/CRC and converges on bytes
//!   identical to an uninterrupted run.
//!
//! # `merge.ppm` on-disk format
//!
//! ```text
//! magic    8 bytes   b"PPMRG01\n"
//! length   u64 LE    payload byte count
//! payload:
//!   u8       strict-mode flag
//!   u32      number of shards
//!   per shard:
//!     string   shard path (as collected, in canonical sorted order)
//!     u8       disposition (0 pending, 1 merged, 2 quarantined)
//!     u8       error kind (0 none, 1 truncated, 2 checksum mismatch,
//!              3 schema skew, 4 incompatible config)
//!     u64 ×2   error numerics (expected/got or stored/computed; else 0)
//!     string   error detail ("" unless skew/config)
//!     u64      shard byte length as ingested (0 while pending)
//!     u32      shard CRC-32 as ingested (0 while pending)
//!   u8       partial-profile ref present? + {string file, u64 len, u32 crc}
//! crc32    u32 LE    CRC-32 (IEEE) of the payload
//! ```
//!
//! where `string` is `u32 LE length + UTF-8 bytes`. Like the batch
//! manifest, the payload holds no timestamps or host state, so resumed
//! and uninterrupted merges write identical bytes.

use std::fs;
use std::path::{Path, PathBuf};

use pp_cct::{
    fingerprint32, read_cct, read_envelope, write_cct, write_envelope, CctRuntime, SerializeError,
};
use pp_obs::Recorder;

use crate::error::PpError;
use crate::supervisor::manifest::{
    put4, put8, put_str, take1, take4, take8, take_str, write_atomic, BatchManifest, ProfileRef,
    MANIFEST_FILE,
};

const MAGIC: &[u8; 8] = b"PPMRG01\n";

/// File name of the merge manifest inside a checkpoint directory.
pub const MERGE_MANIFEST_FILE: &str = "merge.ppm";

/// File name of the (partial or final) fleet profile inside a checkpoint
/// or service state directory.
pub const MERGED_PROFILE_FILE: &str = "merged.cct";

/// Subdirectory of the checkpoint directory where quarantined shards are
/// copied for offline inspection.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Guard against allocating shard tables from garbage length fields.
const MAX_SHARDS: u32 = 1 << 20;

/// Why one shard could not be folded into the fleet profile. Exactly the
/// failure classes a fleet of independently-written shard files can
/// exhibit; every variant quarantines the shard (default) or fails the
/// merge (`--strict`, exit code 3).
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum MergeError {
    /// The shard ends before its declared payload and trailer — a torn
    /// or mid-write file.
    Truncated {
        /// Bytes the envelope promised.
        expected: u64,
        /// Bytes actually present.
        got: u64,
    },
    /// The shard's payload fails its CRC-32 trailer — bit rot or a
    /// partially overwritten file.
    ChecksumMismatch {
        /// Checksum stored in the shard.
        stored: u32,
        /// Checksum computed over the payload read.
        computed: u32,
    },
    /// The shard is structurally alien: unknown or cross-version magic,
    /// malformed payload, or a procedure table that does not match the
    /// fleet's (it profiles a different program or build).
    SchemaSkew(String),
    /// The shard was produced under a different [`pp_cct::CctConfig`]
    /// (metrics, call-site mode, path-table threshold, record cap …), so
    /// its counters are not unit-compatible with the fleet profile.
    IncompatibleConfig(String),
}

impl MergeError {
    /// Short machine-readable class name (used in reports and metrics).
    pub fn kind(&self) -> &'static str {
        match self {
            MergeError::Truncated { .. } => "truncated",
            MergeError::ChecksumMismatch { .. } => "checksum-mismatch",
            MergeError::SchemaSkew(_) => "schema-skew",
            MergeError::IncompatibleConfig(_) => "incompatible-config",
        }
    }

    fn to_wire(&self) -> (u8, u64, u64, &str) {
        match self {
            MergeError::Truncated { expected, got } => (1, *expected, *got, ""),
            MergeError::ChecksumMismatch { stored, computed } => {
                (2, u64::from(*stored), u64::from(*computed), "")
            }
            MergeError::SchemaSkew(m) => (3, 0, 0, m),
            MergeError::IncompatibleConfig(m) => (4, 0, 0, m),
        }
    }

    fn from_wire(kind: u8, a: u64, b: u64, detail: String) -> Result<MergeError, SerializeError> {
        Ok(match kind {
            1 => MergeError::Truncated {
                expected: a,
                got: b,
            },
            2 => MergeError::ChecksumMismatch {
                stored: a as u32,
                computed: b as u32,
            },
            3 => MergeError::SchemaSkew(detail),
            4 => MergeError::IncompatibleConfig(detail),
            other => {
                return Err(SerializeError::Format(format!(
                    "bad merge error kind {other}"
                )))
            }
        })
    }
}

impl std::fmt::Display for MergeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MergeError::Truncated { expected, got } => {
                write!(f, "truncated shard: expected {expected} bytes, got {got}")
            }
            MergeError::ChecksumMismatch { stored, computed } => write!(
                f,
                "shard checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            MergeError::SchemaSkew(m) => write!(f, "schema skew: {m}"),
            MergeError::IncompatibleConfig(m) => write!(f, "incompatible config: {m}"),
        }
    }
}

impl std::error::Error for MergeError {}

impl From<MergeError> for PpError {
    /// Strict-mode escalation: a quarantine-class failure becomes the
    /// corruption exit code (3), preserving the typed class in the
    /// message.
    fn from(e: MergeError) -> PpError {
        PpError::Corrupt(match e {
            MergeError::Truncated { expected, got } => SerializeError::Truncated { expected, got },
            MergeError::ChecksumMismatch { stored, computed } => {
                SerializeError::ChecksumMismatch { stored, computed }
            }
            MergeError::SchemaSkew(m) => SerializeError::Format(format!("schema skew: {m}")),
            MergeError::IncompatibleConfig(m) => {
                SerializeError::Format(format!("incompatible config: {m}"))
            }
        })
    }
}

/// Where one shard stands in the merge.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ShardStatus {
    /// Not yet ingested.
    Pending,
    /// Validated and folded into the fleet profile.
    Merged,
    /// Excluded from the fleet profile for the recorded reason.
    Quarantined(MergeError),
}

/// One shard's row in the merge manifest / report.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ShardRecord {
    /// Shard path as collected (canonical sorted order).
    pub path: String,
    /// Disposition.
    pub status: ShardStatus,
    /// Byte length as ingested (0 while pending).
    pub len: u64,
    /// Content fingerprint ([`pp_cct::fingerprint32`]) of the bytes as
    /// ingested (0 while pending). A whole-file CRC-32 would be
    /// constant across equal-length valid shards — see the fingerprint
    /// docs — and so blind to the shard swaps resume must detect.
    pub crc: u32,
}

/// The `PPMRG01` checkpoint manifest: shard dispositions plus a ref to
/// the partial fleet profile written alongside it. See the module docs
/// for the on-disk format.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MergeManifest {
    /// Whether the merge runs in strict (fail-fast) mode.
    pub strict: bool,
    /// Every shard in canonical order with its disposition.
    pub shards: Vec<ShardRecord>,
    /// The partial `merged.cct` written with this checkpoint, if any
    /// shard has been folded yet.
    pub merged: Option<ProfileRef>,
}

impl MergeManifest {
    /// Serializes to the `PPMRG01` envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut p = Vec::new();
        p.push(u8::from(self.strict));
        put4(&mut p, self.shards.len() as u32);
        for s in &self.shards {
            put_str(&mut p, &s.path);
            let (disp, kind, a, b, detail) = match &s.status {
                ShardStatus::Pending => (0u8, 0u8, 0u64, 0u64, ""),
                ShardStatus::Merged => (1, 0, 0, 0, ""),
                ShardStatus::Quarantined(e) => {
                    let (k, a, b, d) = e.to_wire();
                    (2, k, a, b, d)
                }
            };
            p.push(disp);
            p.push(kind);
            put8(&mut p, a);
            put8(&mut p, b);
            put_str(&mut p, detail);
            put8(&mut p, s.len);
            put4(&mut p, s.crc);
        }
        match &self.merged {
            None => p.push(0),
            Some(r) => {
                p.push(1);
                put_str(&mut p, &r.file);
                put8(&mut p, r.len);
                put4(&mut p, r.crc);
            }
        }
        let mut out = Vec::new();
        write_envelope(&mut out, MAGIC, &p).expect("vec write cannot fail");
        out
    }

    /// Parses bytes written by [`MergeManifest::to_bytes`].
    ///
    /// # Errors
    ///
    /// Typed [`SerializeError`]s for truncation, checksum mismatch, bad
    /// magic, or a malformed payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<MergeManifest, SerializeError> {
        let payload = read_envelope(&mut &bytes[..], MAGIC, &[])?;
        let cur = &mut &payload[..];
        let strict = take1(cur)? != 0;
        let n = take4(cur)?;
        if n > MAX_SHARDS {
            return Err(SerializeError::Format(format!(
                "implausible shard count {n}"
            )));
        }
        let mut shards = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let path = take_str(cur)?;
            let disp = take1(cur)?;
            let kind = take1(cur)?;
            let a = take8(cur)?;
            let b = take8(cur)?;
            let detail = take_str(cur)?;
            let len = take8(cur)?;
            let crc = take4(cur)?;
            let status = match disp {
                0 => ShardStatus::Pending,
                1 => ShardStatus::Merged,
                2 => ShardStatus::Quarantined(MergeError::from_wire(kind, a, b, detail)?),
                other => {
                    return Err(SerializeError::Format(format!(
                        "bad shard disposition {other}"
                    )))
                }
            };
            shards.push(ShardRecord {
                path,
                status,
                len,
                crc,
            });
        }
        let merged = match take1(cur)? {
            0 => None,
            _ => Some(ProfileRef {
                file: take_str(cur)?,
                len: take8(cur)?,
                crc: take4(cur)?,
            }),
        };
        if !cur.is_empty() {
            return Err(SerializeError::Format(format!(
                "{} trailing payload bytes",
                cur.len()
            )));
        }
        Ok(MergeManifest {
            strict,
            shards,
            merged,
        })
    }

    /// Atomically writes the manifest as `merge.ppm` under `dir` (temp
    /// file, fsync, rename — the same torn-tail rule as the batch
    /// manifest).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures.
    pub fn save_atomic(&self, dir: &Path) -> Result<(), SerializeError> {
        write_atomic(&dir.join(MERGE_MANIFEST_FILE), &self.to_bytes())?;
        Ok(())
    }

    /// Loads and validates `merge.ppm` from `dir`.
    ///
    /// # Errors
    ///
    /// [`SerializeError::Io`] when the file is unreadable (including
    /// not-found), or a typed corruption error.
    pub fn load(dir: &Path) -> Result<MergeManifest, SerializeError> {
        let bytes = fs::read(dir.join(MERGE_MANIFEST_FILE))?;
        MergeManifest::from_bytes(&bytes)
    }
}

/// Tuning knobs for [`run_merge`].
#[derive(Clone, Debug)]
pub struct MergeOptions {
    /// Fail fast on the first bad shard instead of quarantining it.
    pub strict: bool,
    /// Directory for `merge.ppm` / partial `merged.cct` checkpoints and
    /// the shard quarantine. `None` disables checkpointing.
    pub checkpoint_dir: Option<PathBuf>,
    /// Shards to fold between checkpoints (minimum 1).
    pub checkpoint_every: u32,
    /// Adopt a valid checkpoint in `checkpoint_dir` instead of starting
    /// over.
    pub resume: bool,
    /// Test/fault-injection hook: stop after writing this many
    /// checkpoints and return [`MergeOutcome::Halted`] (0 = never). The
    /// CLI turns this into a hard abort to simulate `kill -9`.
    pub halt_after_checkpoints: u32,
}

impl Default for MergeOptions {
    fn default() -> MergeOptions {
        MergeOptions {
            strict: false,
            checkpoint_dir: None,
            checkpoint_every: 8,
            resume: false,
            halt_after_checkpoints: 0,
        }
    }
}

/// What [`run_merge`] did: per-shard dispositions plus fold statistics.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct MergeReport {
    /// Every shard in canonical order with its final disposition.
    pub shards: Vec<ShardRecord>,
    /// Duplicate input paths dropped during collection.
    pub dedup_dropped: u64,
    /// Shards adopted from a resume checkpoint instead of re-folding.
    pub resumed: u64,
    /// Checkpoints written during this run.
    pub checkpoints: u64,
}

impl MergeReport {
    /// Shards folded into the fleet profile.
    pub fn merged_count(&self) -> usize {
        self.shards
            .iter()
            .filter(|s| s.status == ShardStatus::Merged)
            .count()
    }

    /// Shards excluded from the fleet profile.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined().count()
    }

    /// The excluded shards, in canonical order.
    pub fn quarantined(&self) -> impl Iterator<Item = &ShardRecord> {
        self.shards
            .iter()
            .filter(|s| matches!(s.status, ShardStatus::Quarantined(_)))
    }
}

/// How [`run_merge`] ended.
#[derive(Debug)]
pub enum MergeOutcome {
    /// All shards resolved; `bytes` is the canonical fleet profile.
    Complete {
        /// Serialized canonical `PPCCT02` fleet profile.
        bytes: Vec<u8>,
        /// Dispositions and fold statistics.
        report: MergeReport,
    },
    /// [`MergeOptions::halt_after_checkpoints`] tripped; the state lives
    /// in the checkpoint directory and a resumed run will converge on
    /// the same final bytes.
    Halted {
        /// Dispositions at the instant of the halt.
        report: MergeReport,
    },
}

/// Expands `inputs` (shard files, or directories holding a `PPBAT01`
/// batch / service checkpoint) into a deduplicated, canonically sorted
/// shard list. Directory inputs contribute every job's CCT artifact;
/// the merge's own ingest validation decides whether each one is
/// usable, so a half-written artifact quarantines instead of failing
/// collection. Returns the shard paths and the number of duplicate
/// paths dropped.
///
/// # Errors
///
/// [`PpError::Io`] when an input does not exist, and [`PpError::Corrupt`]
/// when a directory input's batch manifest is unreadable — the container
/// being broken is an input error, not a shard fault.
pub fn collect_shards(inputs: &[String]) -> Result<(Vec<PathBuf>, u64), PpError> {
    let mut shards: Vec<PathBuf> = Vec::new();
    for input in inputs {
        let path = Path::new(input);
        let meta = fs::metadata(path).map_err(|e| PpError::io(input.clone(), e))?;
        if meta.is_dir() {
            let manifest = BatchManifest::load(path).map_err(|e| match e {
                SerializeError::Io(source) => {
                    PpError::io(format!("{input}/{MANIFEST_FILE}"), source)
                }
                other => PpError::Corrupt(other),
            })?;
            for job in &manifest.jobs {
                if let Some(r) = &job.cct {
                    shards.push(path.join(&r.file));
                }
            }
        } else {
            shards.push(path.to_path_buf());
        }
    }
    shards.sort();
    let before = shards.len();
    shards.dedup();
    let dropped = (before - shards.len()) as u64;
    Ok((shards, dropped))
}

/// Classifies a shard decode failure. I/O errors are *not* shard faults
/// — the filesystem failing mid-merge aborts the run rather than
/// silently shrinking the fleet profile.
fn classify(path: &Path, e: SerializeError) -> Result<MergeError, PpError> {
    Ok(match e {
        SerializeError::Io(source) => {
            return Err(PpError::io(path.display().to_string(), source));
        }
        SerializeError::Truncated { expected, got } => MergeError::Truncated { expected, got },
        SerializeError::ChecksumMismatch { stored, computed } => {
            MergeError::ChecksumMismatch { stored, computed }
        }
        SerializeError::Format(m) => MergeError::SchemaSkew(m),
        SerializeError::UnsupportedVersion(m) => {
            MergeError::SchemaSkew(format!("cross-version shard: {m}"))
        }
    })
}

/// Checks that `shard` is unit-compatible with the fleet accumulator
/// before folding: identical [`pp_cct::CctConfig`] and identical
/// procedure table (same program, same build).
fn compatible(acc: &CctRuntime, shard: &CctRuntime) -> Result<(), MergeError> {
    if acc.config() != shard.config() {
        return Err(MergeError::IncompatibleConfig(format!(
            "shard built under {:?}, fleet under {:?}",
            shard.config(),
            acc.config()
        )));
    }
    if acc.procs() != shard.procs() {
        let detail = if acc.procs().len() != shard.procs().len() {
            format!(
                "procedure table has {} entries, fleet has {}",
                shard.procs().len(),
                acc.procs().len()
            )
        } else {
            let i = acc
                .procs()
                .iter()
                .zip(shard.procs())
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            format!(
                "procedure table diverges at index {i} ({:?} vs {:?})",
                shard.procs()[i].name,
                acc.procs()[i].name
            )
        };
        return Err(MergeError::SchemaSkew(detail));
    }
    Ok(())
}

/// Copies a quarantined shard and its reason into
/// `<checkpoint>/quarantine/` for offline inspection (best-effort:
/// quarantine bookkeeping never fails the merge).
fn quarantine_copy(dir: &Path, index: usize, path: &Path, bytes: &[u8], err: &MergeError) {
    let qdir = dir.join(QUARANTINE_DIR);
    if fs::create_dir_all(&qdir).is_err() {
        return;
    }
    let base = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "shard".to_string());
    let name = format!("{index:04}-{base}");
    let _ = fs::write(qdir.join(&name), bytes);
    let _ = fs::write(
        qdir.join(format!("{name}.reason")),
        format!("{}: {err}\n", err.kind()),
    );
}

/// Writes one checkpoint: the canonical partial fleet profile first,
/// then the manifest that references it (the manifest rename is the
/// commit point, so a crash between the two leaves the previous
/// checkpoint intact and valid).
fn write_checkpoint(
    dir: &Path,
    strict: bool,
    shards: &[ShardRecord],
    acc: Option<&CctRuntime>,
) -> Result<(), PpError> {
    fs::create_dir_all(dir).map_err(|e| PpError::io(dir.display().to_string(), e))?;
    let merged = match acc {
        None => None,
        Some(acc) => {
            let mut bytes = Vec::new();
            write_cct(&acc.canonicalize(), &mut bytes)?;
            write_atomic(&dir.join(MERGED_PROFILE_FILE), &bytes)
                .map_err(|e| PpError::io(format!("{}/{MERGED_PROFILE_FILE}", dir.display()), e))?;
            Some(ProfileRef::for_bytes(MERGED_PROFILE_FILE, &bytes))
        }
    };
    let manifest = MergeManifest {
        strict,
        shards: shards.to_vec(),
        merged,
    };
    manifest.save_atomic(dir).map_err(PpError::from)
}

/// Attempts to adopt a checkpoint from `dir`: returns the recorded
/// dispositions and the decoded partial profile when everything still
/// validates, or `None` (with a reason logged) when the checkpoint is
/// absent, torn, or stale — in which case the merge just starts over
/// and still converges on the same bytes.
fn adopt_checkpoint(
    dir: &Path,
    strict: bool,
    shards: &[ShardRecord],
) -> Option<(Vec<ShardRecord>, Option<CctRuntime>)> {
    let manifest = match MergeManifest::load(dir) {
        Ok(m) => m,
        Err(SerializeError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => return None,
        Err(e) => {
            pp_obs::warn!("merge: ignoring unusable checkpoint ({e}); starting fresh");
            return None;
        }
    };
    if manifest.strict != strict {
        pp_obs::warn!("merge: checkpoint was written in a different strict mode; starting fresh");
        return None;
    }
    if manifest.shards.len() != shards.len()
        || manifest
            .shards
            .iter()
            .zip(shards)
            .any(|(a, b)| a.path != b.path)
    {
        pp_obs::warn!("merge: checkpoint covers a different shard set; starting fresh");
        return None;
    }
    // Every already-resolved shard must still hold the exact bytes the
    // checkpoint saw: a swapped or repaired shard invalidates the
    // checkpoint (starting over is always correct, just slower).
    for s in &manifest.shards {
        if s.status == ShardStatus::Pending {
            continue;
        }
        match fs::read(&s.path) {
            Ok(bytes) if bytes.len() as u64 == s.len && fingerprint32(&bytes) == s.crc => {}
            _ => {
                pp_obs::warn!(
                    "merge: shard {} changed since the checkpoint; starting fresh",
                    s.path
                );
                return None;
            }
        }
    }
    let any_merged = manifest
        .shards
        .iter()
        .any(|s| s.status == ShardStatus::Merged);
    let acc = if any_merged {
        let r = match &manifest.merged {
            Some(r) => r,
            None => {
                pp_obs::warn!("merge: checkpoint lacks its partial profile; starting fresh");
                return None;
            }
        };
        let bytes = match fs::read(dir.join(&r.file)) {
            Ok(b) if b.len() as u64 == r.len && fingerprint32(&b) == r.crc => b,
            _ => {
                pp_obs::warn!("merge: partial fleet profile fails its checksum; starting fresh");
                return None;
            }
        };
        match read_cct(&mut &bytes[..]) {
            Ok(cct) => Some(cct),
            Err(e) => {
                pp_obs::warn!("merge: partial fleet profile unreadable ({e}); starting fresh");
                return None;
            }
        }
    } else {
        None
    };
    Some((manifest.shards, acc))
}

/// Folds every shard named by `inputs` into one canonical fleet profile.
/// See the module docs for the determinism, quarantine, and resume
/// contracts; `recorder` receives `merge.*` metrics (shards ok /
/// quarantined per class, dedup collisions, checkpoint count, output
/// size).
///
/// # Errors
///
/// * [`PpError::Usage`] — no inputs.
/// * [`PpError::Io`] — an input is missing or the filesystem failed.
/// * [`PpError::Corrupt`] — a directory input's batch manifest is
///   corrupt; in `--strict` mode, the first bad shard (typed by its
///   [`MergeError`] class); or every shard quarantined, leaving nothing
///   to write.
pub fn run_merge(
    inputs: &[String],
    opts: &MergeOptions,
    recorder: &mut impl Recorder,
) -> Result<MergeOutcome, PpError> {
    if inputs.is_empty() {
        return Err(PpError::Usage(
            "pp merge needs at least one shard file or checkpoint dir".to_string(),
        ));
    }
    let _span = pp_obs::span!("merge.run");
    let (paths, dedup_dropped) = collect_shards(inputs)?;
    if paths.is_empty() {
        return Err(PpError::Usage(
            "no CCT shards found in the given inputs".to_string(),
        ));
    }
    recorder.counter("merge.dedup_collisions", dedup_dropped);

    let mut shards: Vec<ShardRecord> = paths
        .iter()
        .map(|p| ShardRecord {
            path: p.display().to_string(),
            status: ShardStatus::Pending,
            len: 0,
            crc: 0,
        })
        .collect();
    let mut acc: Option<CctRuntime> = None;
    let mut report = MergeReport {
        shards: Vec::new(),
        dedup_dropped,
        resumed: 0,
        checkpoints: 0,
    };

    if opts.resume {
        let dir = opts.checkpoint_dir.as_deref().ok_or_else(|| {
            PpError::Usage("--resume requires a merge checkpoint directory".to_string())
        })?;
        if let Some((recorded, adopted)) = adopt_checkpoint(dir, opts.strict, &shards) {
            report.resumed = recorded
                .iter()
                .filter(|s| s.status != ShardStatus::Pending)
                .count() as u64;
            shards = recorded;
            acc = adopted;
            recorder.counter("merge.shards_resumed", report.resumed);
        }
    }

    let mut since_checkpoint = 0u32;
    for i in 0..shards.len() {
        match &shards[i].status {
            ShardStatus::Pending => {}
            ShardStatus::Merged => {
                recorder.counter("merge.shards_ok", 1);
                continue;
            }
            ShardStatus::Quarantined(_) => {
                recorder.counter("merge.shards_quarantined", 1);
                continue;
            }
        }
        let path = PathBuf::from(&shards[i].path);
        let bytes = fs::read(&path).map_err(|e| PpError::io(path.display().to_string(), e))?;
        shards[i].len = bytes.len() as u64;
        shards[i].crc = fingerprint32(&bytes);
        recorder.observe("merge.shard_bytes", bytes.len() as u64);

        let verdict: Result<CctRuntime, MergeError> = match read_cct(&mut &bytes[..]) {
            Ok(shard) => match &acc {
                Some(fleet) => compatible(fleet, &shard).map(|()| shard),
                None => Ok(shard),
            },
            Err(e) => Err(classify(&path, e)?),
        };
        match verdict {
            Ok(shard) => {
                match acc.as_mut() {
                    Some(fleet) => fleet.merge_from(&shard),
                    None => acc = Some(shard),
                }
                shards[i].status = ShardStatus::Merged;
                recorder.counter("merge.shards_ok", 1);
            }
            Err(e) => {
                if opts.strict {
                    return Err(e.into());
                }
                pp_obs::warn!("merge: quarantined {}: {e}", shards[i].path);
                if let Some(dir) = &opts.checkpoint_dir {
                    quarantine_copy(dir, i, &path, &bytes, &e);
                }
                recorder.counter("merge.shards_quarantined", 1);
                match &e {
                    MergeError::Truncated { .. } => {
                        recorder.counter("merge.quarantine.truncated", 1);
                    }
                    MergeError::ChecksumMismatch { .. } => {
                        recorder.counter("merge.quarantine.checksum_mismatch", 1);
                    }
                    MergeError::SchemaSkew(_) => {
                        recorder.counter("merge.quarantine.schema_skew", 1);
                    }
                    MergeError::IncompatibleConfig(_) => {
                        recorder.counter("merge.quarantine.incompatible_config", 1);
                    }
                }
                shards[i].status = ShardStatus::Quarantined(e);
            }
        }

        since_checkpoint += 1;
        if let Some(dir) = &opts.checkpoint_dir {
            if since_checkpoint >= opts.checkpoint_every.max(1) {
                since_checkpoint = 0;
                let _span = pp_obs::span!("merge.checkpoint");
                write_checkpoint(dir, opts.strict, &shards, acc.as_ref())?;
                report.checkpoints += 1;
                recorder.counter("merge.checkpoints", 1);
                if opts.halt_after_checkpoints != 0
                    && report.checkpoints >= u64::from(opts.halt_after_checkpoints)
                {
                    report.shards = shards;
                    return Ok(MergeOutcome::Halted { report });
                }
            }
        }
    }

    let acc = match acc {
        Some(acc) => acc,
        None => {
            return Err(PpError::Corrupt(SerializeError::Format(format!(
                "every shard quarantined ({} of {}); nothing to merge",
                shards.len(),
                shards.len()
            ))));
        }
    };
    let canonical = {
        let _span = pp_obs::span!("merge.canonicalize");
        acc.canonicalize()
    };
    let mut bytes = Vec::new();
    write_cct(&canonical, &mut bytes)?;
    recorder.gauge("merge.records", canonical.num_records() as f64);
    recorder.gauge("merge.out_bytes", bytes.len() as f64);

    if let Some(dir) = &opts.checkpoint_dir {
        // Final checkpoint: a resume of a finished merge adopts
        // everything and rewrites identical bytes.
        write_checkpoint(dir, opts.strict, &shards, Some(&canonical))?;
        report.checkpoints += 1;
        recorder.counter("merge.checkpoints", 1);
    }
    report.shards = shards;
    Ok(MergeOutcome::Complete { bytes, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_cct::{CctConfig, CctRuntime, ProcInfo};
    use pp_obs::NoopRecorder;

    fn procs() -> Vec<ProcInfo> {
        vec![
            ProcInfo::new("main", 2),
            ProcInfo::new("a", 1),
            ProcInfo::new("b", 0),
        ]
    }

    fn shard(order: &[(u32, u32)]) -> Vec<u8> {
        // Each (site, callee) pair is one call from main.
        let mut cct = CctRuntime::new(CctConfig::default(), procs());
        cct.enter(0);
        for &(site, callee) in order {
            cct.prepare_call(site, None);
            cct.enter(callee);
            cct.exit();
        }
        cct.exit();
        let mut bytes = Vec::new();
        write_cct(&cct, &mut bytes).unwrap();
        bytes
    }

    fn tmpdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pp-merge-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn manifest_round_trips_all_dispositions() {
        let m = MergeManifest {
            strict: true,
            shards: vec![
                ShardRecord {
                    path: "a.cct".into(),
                    status: ShardStatus::Merged,
                    len: 10,
                    crc: 0xDEAD,
                },
                ShardRecord {
                    path: "b.cct".into(),
                    status: ShardStatus::Quarantined(MergeError::Truncated {
                        expected: 100,
                        got: 7,
                    }),
                    len: 7,
                    crc: 1,
                },
                ShardRecord {
                    path: "c.cct".into(),
                    status: ShardStatus::Quarantined(MergeError::SchemaSkew("other prog".into())),
                    len: 9,
                    crc: 2,
                },
                ShardRecord {
                    path: "d.cct".into(),
                    status: ShardStatus::Pending,
                    len: 0,
                    crc: 0,
                },
            ],
            merged: Some(ProfileRef {
                file: MERGED_PROFILE_FILE.into(),
                len: 42,
                crc: 0xBEEF,
            }),
        };
        let bytes = m.to_bytes();
        assert_eq!(MergeManifest::from_bytes(&bytes).unwrap(), m);
    }

    #[test]
    fn manifest_corruption_is_typed() {
        let m = MergeManifest {
            strict: false,
            shards: vec![],
            merged: None,
        };
        let bytes = m.to_bytes();
        let truncated = &bytes[..bytes.len() - 3];
        assert!(matches!(
            MergeManifest::from_bytes(truncated),
            Err(SerializeError::Truncated { .. })
        ));
        let mut flipped = bytes.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        assert!(MergeManifest::from_bytes(&flipped).is_err());
    }

    #[test]
    fn merge_error_maps_to_exit_code_3() {
        for e in [
            MergeError::Truncated {
                expected: 2,
                got: 1,
            },
            MergeError::ChecksumMismatch {
                stored: 1,
                computed: 2,
            },
            MergeError::SchemaSkew("x".into()),
            MergeError::IncompatibleConfig("y".into()),
        ] {
            assert_eq!(PpError::from(e).exit_code(), 3);
        }
    }

    #[test]
    fn collect_sorts_and_dedups() {
        let dir = tmpdir("collect");
        for name in ["z.cct", "a.cct"] {
            fs::write(dir.join(name), b"x").unwrap();
        }
        let inputs = vec![
            dir.join("z.cct").display().to_string(),
            dir.join("a.cct").display().to_string(),
            dir.join("z.cct").display().to_string(),
        ];
        let (paths, dropped) = collect_shards(&inputs).unwrap();
        assert_eq!(dropped, 1);
        assert_eq!(paths.len(), 2);
        assert!(paths[0] < paths[1], "canonically sorted");
        let missing = vec![dir.join("nope.cct").display().to_string()];
        assert!(matches!(collect_shards(&missing), Err(PpError::Io { .. })));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fold_is_order_invariant() {
        let dir = tmpdir("order");
        let a = shard(&[(0, 1), (1, 2)]);
        let b = shard(&[(1, 2)]);
        let c = shard(&[(0, 1), (0, 1)]);
        for (name, bytes) in [("a.cct", &a), ("b.cct", &b), ("c.cct", &c)] {
            fs::write(dir.join(name), bytes).unwrap();
        }
        let run = |names: &[&str]| -> Vec<u8> {
            let inputs: Vec<String> = names
                .iter()
                .map(|n| dir.join(n).display().to_string())
                .collect();
            match run_merge(&inputs, &MergeOptions::default(), &mut NoopRecorder).unwrap() {
                MergeOutcome::Complete { bytes, .. } => bytes,
                MergeOutcome::Halted { .. } => panic!("no halt configured"),
            }
        };
        let forward = run(&["a.cct", "b.cct", "c.cct"]);
        let shuffled = run(&["c.cct", "a.cct", "b.cct"]);
        assert_eq!(forward, shuffled, "input order must not change a byte");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_shard_quarantines_by_class_and_strict_fails_fast() {
        let dir = tmpdir("quarantine");
        let good = shard(&[(0, 1)]);
        fs::write(dir.join("good.cct"), &good).unwrap();
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xFF;
        fs::write(dir.join("flipped.cct"), &flipped).unwrap();
        fs::write(dir.join("torn.cct"), &good[..good.len() - 5]).unwrap();
        let inputs: Vec<String> = ["flipped.cct", "good.cct", "torn.cct"]
            .iter()
            .map(|n| dir.join(n).display().to_string())
            .collect();
        let report = match run_merge(&inputs, &MergeOptions::default(), &mut NoopRecorder).unwrap()
        {
            MergeOutcome::Complete { report, .. } => report,
            MergeOutcome::Halted { .. } => panic!("no halt configured"),
        };
        assert_eq!(report.merged_count(), 1);
        assert_eq!(report.quarantined_count(), 2);
        let classes: Vec<&'static str> = report
            .quarantined()
            .map(|s| match &s.status {
                ShardStatus::Quarantined(e) => e.kind(),
                _ => unreachable!(),
            })
            .collect();
        assert!(classes.contains(&"checksum-mismatch"), "{classes:?}");
        assert!(classes.contains(&"truncated"), "{classes:?}");

        let strict = MergeOptions {
            strict: true,
            ..MergeOptions::default()
        };
        let err = match run_merge(&inputs, &strict, &mut NoopRecorder) {
            Err(e) => e,
            Ok(_) => panic!("strict mode must fail fast"),
        };
        assert_eq!(err.exit_code(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incompatible_shards_quarantine_with_the_right_classes() {
        let dir = tmpdir("skew");
        fs::write(dir.join("a-fleet.cct"), shard(&[(0, 1)])).unwrap();
        // Same tree shape, different config (hardware metrics on).
        let mut other_config = CctRuntime::new(CctConfig::with_hw_metrics(), procs());
        other_config.enter(0);
        other_config.exit();
        let mut bytes = Vec::new();
        write_cct(&other_config, &mut bytes).unwrap();
        fs::write(dir.join("config.cct"), &bytes).unwrap();
        // Different procedure table (another program).
        let mut other_prog =
            CctRuntime::new(CctConfig::default(), vec![ProcInfo::new("elsewhere", 0)]);
        other_prog.enter(0);
        other_prog.exit();
        let mut bytes = Vec::new();
        write_cct(&other_prog, &mut bytes).unwrap();
        fs::write(dir.join("prog.cct"), &bytes).unwrap();

        let inputs: Vec<String> = ["a-fleet.cct", "config.cct", "prog.cct"]
            .iter()
            .map(|n| dir.join(n).display().to_string())
            .collect();
        let report = match run_merge(&inputs, &MergeOptions::default(), &mut NoopRecorder).unwrap()
        {
            MergeOutcome::Complete { report, .. } => report,
            MergeOutcome::Halted { .. } => panic!("no halt configured"),
        };
        let mut classes: Vec<&'static str> = report
            .quarantined()
            .map(|s| match &s.status {
                ShardStatus::Quarantined(e) => e.kind(),
                _ => unreachable!(),
            })
            .collect();
        classes.sort_unstable();
        assert_eq!(classes, vec!["incompatible-config", "schema-skew"]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn all_bad_shards_is_an_error_not_a_panic() {
        let dir = tmpdir("allbad");
        fs::write(dir.join("junk.cct"), b"not a profile at all").unwrap();
        let inputs = vec![dir.join("junk.cct").display().to_string()];
        let err = run_merge(&inputs, &MergeOptions::default(), &mut NoopRecorder).unwrap_err();
        assert_eq!(err.exit_code(), 3);
        assert!(run_merge(&[], &MergeOptions::default(), &mut NoopRecorder).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn halt_and_resume_converge_on_identical_bytes() {
        let dir = tmpdir("resume");
        let ckpt = dir.join("ckpt");
        let names = ["a.cct", "b.cct", "c.cct", "d.cct"];
        let shards = [
            shard(&[(0, 1)]),
            shard(&[(1, 2)]),
            shard(&[(0, 1), (1, 2)]),
            shard(&[(1, 2), (1, 2)]),
        ];
        for (name, bytes) in names.iter().zip(&shards) {
            fs::write(dir.join(name), bytes).unwrap();
        }
        let inputs: Vec<String> = names
            .iter()
            .map(|n| dir.join(n).display().to_string())
            .collect();
        let uninterrupted =
            match run_merge(&inputs, &MergeOptions::default(), &mut NoopRecorder).unwrap() {
                MergeOutcome::Complete { bytes, .. } => bytes,
                MergeOutcome::Halted { .. } => panic!("no halt configured"),
            };

        let halted = MergeOptions {
            checkpoint_dir: Some(ckpt.clone()),
            checkpoint_every: 1,
            halt_after_checkpoints: 2,
            ..MergeOptions::default()
        };
        match run_merge(&inputs, &halted, &mut NoopRecorder).unwrap() {
            MergeOutcome::Halted { report } => assert_eq!(report.checkpoints, 2),
            MergeOutcome::Complete { .. } => panic!("halt must trip"),
        }
        assert!(ckpt.join(MERGE_MANIFEST_FILE).exists());

        let resumed_opts = MergeOptions {
            checkpoint_dir: Some(ckpt.clone()),
            checkpoint_every: 1,
            resume: true,
            ..MergeOptions::default()
        };
        let (resumed_bytes, report) =
            match run_merge(&inputs, &resumed_opts, &mut NoopRecorder).unwrap() {
                MergeOutcome::Complete { bytes, report } => (bytes, report),
                MergeOutcome::Halted { .. } => panic!("no halt configured"),
            };
        assert_eq!(report.resumed, 2, "two shards adopted from the checkpoint");
        assert_eq!(
            resumed_bytes, uninterrupted,
            "resume must converge on identical bytes"
        );
        // Resuming a *finished* merge adopts everything and still writes
        // the same bytes.
        let again = match run_merge(&inputs, &resumed_opts, &mut NoopRecorder).unwrap() {
            MergeOutcome::Complete { bytes, report } => {
                assert_eq!(report.resumed, 4);
                bytes
            }
            MergeOutcome::Halted { .. } => panic!("no halt configured"),
        };
        assert_eq!(again, uninterrupted);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_checkpoint_manifest_restarts_cleanly() {
        let dir = tmpdir("torn-ckpt");
        let ckpt = dir.join("ckpt");
        fs::create_dir_all(&ckpt).unwrap();
        fs::write(dir.join("a.cct"), shard(&[(0, 1)])).unwrap();
        let inputs = vec![dir.join("a.cct").display().to_string()];
        // A torn manifest (half the envelope) must not stop a resume —
        // the merge warns and starts fresh.
        fs::write(ckpt.join(MERGE_MANIFEST_FILE), b"PPMRG01\n\x10\x00").unwrap();
        let opts = MergeOptions {
            checkpoint_dir: Some(ckpt.clone()),
            resume: true,
            ..MergeOptions::default()
        };
        match run_merge(&inputs, &opts, &mut NoopRecorder).unwrap() {
            MergeOutcome::Complete { report, .. } => {
                assert_eq!(report.resumed, 0, "nothing adopted from a torn checkpoint");
                assert_eq!(report.merged_count(), 1);
            }
            MergeOutcome::Halted { .. } => panic!("no halt configured"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantined_shards_are_copied_for_inspection() {
        let dir = tmpdir("qcopy");
        let ckpt = dir.join("ckpt");
        fs::write(dir.join("good.cct"), shard(&[(0, 1)])).unwrap();
        fs::write(dir.join("bad.cct"), b"garbage").unwrap();
        let inputs: Vec<String> = ["good.cct", "bad.cct"]
            .iter()
            .map(|n| dir.join(n).display().to_string())
            .collect();
        let opts = MergeOptions {
            checkpoint_dir: Some(ckpt.clone()),
            ..MergeOptions::default()
        };
        match run_merge(&inputs, &opts, &mut NoopRecorder).unwrap() {
            MergeOutcome::Complete { report, .. } => {
                assert_eq!(report.quarantined_count(), 1);
            }
            MergeOutcome::Halted { .. } => panic!("no halt configured"),
        }
        let entries: Vec<String> = fs::read_dir(ckpt.join(QUARANTINE_DIR))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert!(
            entries.iter().any(|n| n.ends_with("bad.cct")),
            "{entries:?}"
        );
        assert!(
            entries.iter().any(|n| n.ends_with(".reason")),
            "{entries:?}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
