//! The unified error taxonomy of the PP tool.
//!
//! Every failure a user of the profiler (in particular the `pp` CLI) can
//! hit maps onto one [`PpError`] variant, and every variant maps onto one
//! process exit code:
//!
//! | variant | meaning | exit code |
//! |---|---|---|
//! | — | clean run | 0 |
//! | [`PpError::Usage`] | bad arguments / bad input program | 1 |
//! | [`PpError::Instrument`] | Ball–Larus analysis or rewriting failed | 1 |
//! | [`PpError::Aborted`] | execution cut short; a partial profile was still reported | 2 |
//! | [`PpError::Integrity`] | a profile violated a checkable invariant (`pp verify`) | 2 |
//! | [`PpError::Io`] | file I/O failed | 3 |
//! | [`PpError::Corrupt`] | a profile file failed version/length/CRC validation | 3 |
//! | [`PpError::Unavailable`] | the profiling service refused the request (overloaded, quota, draining) | 4 |

use std::fmt;
use std::io;

use pp_cct::SerializeError;
use pp_instrument::InstrumentError;
use pp_usim::ExecError;

use crate::integrity::IntegrityError;
use crate::profiler::ProfileError;

/// Everything that can go wrong when profiling — see the module docs for
/// the exit-code mapping.
#[derive(Debug)]
pub enum PpError {
    /// Bad command-line arguments or an unusable input program.
    Usage(String),
    /// Instrumentation (path analysis or rewriting) failed.
    Instrument(InstrumentError),
    /// Execution was cut short by a machine fault; callers should have
    /// reported the partial profile before surfacing this.
    Aborted(ExecError),
    /// An I/O operation failed; `context` names the file or stream.
    Io {
        /// What was being read or written.
        context: String,
        /// The underlying failure.
        source: io::Error,
    },
    /// A profile file failed validation (wrong version, truncated,
    /// checksum mismatch, or internally inconsistent).
    Corrupt(SerializeError),
    /// A profile violated a semantic integrity invariant (flow
    /// conservation, CCT structure, counter sanity). Like
    /// [`PpError::Aborted`], the data existed but cannot be fully
    /// trusted — exit code 2.
    Integrity(IntegrityError),
    /// The profiling service refused to take the request: admission
    /// queue full, per-client quota exhausted, or the server draining
    /// for shutdown. Retryable by policy, hence its own exit code (4)
    /// so callers can distinguish "back off and resubmit" from a
    /// failed run.
    Unavailable(crate::service::AdmitError),
}

impl PpError {
    /// The process exit code this error maps onto (1 usage, 2 aborted
    /// run with partial profile, 3 I/O or corruption, 4 service
    /// unavailable).
    pub fn exit_code(&self) -> u8 {
        match self {
            PpError::Usage(_) | PpError::Instrument(_) => 1,
            PpError::Aborted(_) | PpError::Integrity(_) => 2,
            PpError::Io { .. } | PpError::Corrupt(_) => 3,
            PpError::Unavailable(_) => 4,
        }
    }

    /// Convenience constructor tagging an [`io::Error`] with its file.
    pub fn io(context: impl Into<String>, source: io::Error) -> PpError {
        PpError::Io {
            context: context.into(),
            source,
        }
    }
}

impl fmt::Display for PpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PpError::Usage(m) => write!(f, "{m}"),
            PpError::Instrument(e) => write!(f, "instrumentation failed: {e}"),
            PpError::Aborted(e) => write!(f, "run aborted: {e} (partial profile reported)"),
            PpError::Io { context, source } => write!(f, "{context}: {source}"),
            PpError::Corrupt(e) => write!(f, "{e}"),
            PpError::Integrity(e) => write!(f, "{e}"),
            PpError::Unavailable(e) => write!(f, "service unavailable: {e}"),
        }
    }
}

impl std::error::Error for PpError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PpError::Io { source, .. } => Some(source),
            PpError::Corrupt(e) => Some(e),
            PpError::Integrity(e) => Some(e),
            _ => None,
        }
    }
}

impl From<InstrumentError> for PpError {
    fn from(e: InstrumentError) -> PpError {
        PpError::Instrument(e)
    }
}

impl From<ExecError> for PpError {
    fn from(e: ExecError) -> PpError {
        PpError::Aborted(e)
    }
}

impl From<SerializeError> for PpError {
    fn from(e: SerializeError) -> PpError {
        // An envelope I/O failure is an I/O problem, not corruption.
        match e {
            SerializeError::Io(source) => PpError::Io {
                context: "profile file".to_string(),
                source,
            },
            other => PpError::Corrupt(other),
        }
    }
}

impl From<IntegrityError> for PpError {
    fn from(e: IntegrityError) -> PpError {
        PpError::Integrity(e)
    }
}

impl From<ProfileError> for PpError {
    fn from(e: ProfileError) -> PpError {
        match e {
            ProfileError::Instrument(e) => PpError::Instrument(e),
            ProfileError::Exec(e) => PpError::Aborted(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_follow_the_taxonomy() {
        assert_eq!(PpError::Usage("x".into()).exit_code(), 1);
        assert_eq!(
            PpError::Aborted(ExecError::StackOverflow { depth: 9 }).exit_code(),
            2
        );
        assert_eq!(
            PpError::io("f", io::Error::new(io::ErrorKind::NotFound, "gone")).exit_code(),
            3
        );
        assert_eq!(
            PpError::Corrupt(SerializeError::ChecksumMismatch {
                stored: 1,
                computed: 2
            })
            .exit_code(),
            3
        );
    }

    #[test]
    fn serialize_io_maps_to_io_not_corruption() {
        let e: PpError =
            SerializeError::Io(io::Error::new(io::ErrorKind::UnexpectedEof, "short")).into();
        assert!(matches!(e, PpError::Io { .. }), "{e}");
        let e: PpError = SerializeError::Truncated {
            expected: 10,
            got: 4,
        }
        .into();
        assert!(matches!(e, PpError::Corrupt(_)), "{e}");
    }

    #[test]
    fn profile_error_maps_by_kind() {
        let e: PpError = ProfileError::Exec(ExecError::InstructionLimit).into();
        assert_eq!(e.exit_code(), 2);
    }
}
