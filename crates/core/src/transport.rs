//! Network transport for the profile service: one `Listener`/`Stream`
//! seam over Unix-domain sockets and TCP, plus the shared retrying
//! [`Client`] every CLI verb speaks through.
//!
//! The NDJSON protocol itself (frames, ops, refusals) is defined in
//! [`crate::server`]; this module only moves bytes. The seam exists so
//! `pp serve` can bind both a Unix socket and a `--listen <addr:port>`
//! TCP endpoint and serve `submit`/`status`/`watch`/`fetch`/`subscribe`
//! unchanged over either — and so every failure mode a real network
//! adds (connect refused, half-open peers, mid-stream resets, slow
//! reads) surfaces as a *typed* outcome, never a hang:
//!
//! * every read is tick-bounded ([`Client`] polls with a short read
//!   timeout and accounts the elapsed wait against an explicit
//!   deadline), so a black-holed connection ends in a typed timeout;
//! * connect failures and mid-stream resets retry under a
//!   deterministic jittered backoff ([`RetryPolicy`], the closed form
//!   mirrors `JobExecutor::backoff`), bounded by the attempt budget;
//! * server refusals that carry a `retry_after_ms` hint (`overloaded`,
//!   `draining`) are honored: the client sleeps the hinted delay and
//!   resubmits — refusals are safe to retry because a refused request
//!   was, by definition, not admitted;
//! * non-idempotent requests ([`Client::request_once`], i.e. `submit`)
//!   are never resent once their bytes have left the socket: a reset
//!   between send and ack means the server may have admitted the job,
//!   and a duplicate would double-count it.
//!
//! Exhausting the budget maps to
//! [`PpError::Unavailable`]([`AdmitError::Transport`]) — exit code 4 on
//! both transports, the same "back off and come back" answer an
//! `Overloaded` refusal earns.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use pp_obs::json::{self, Json};

use crate::error::PpError;
use crate::service::AdmitError;

/// Bound on one NDJSON frame in either direction; longer lines earn a
/// typed `frame-too-large` reply server-side and are discarded up to
/// the next newline.
pub const MAX_FRAME_BYTES: usize = 64 * 1024;

// ---------------------------------------------------------------------
// Addresses
// ---------------------------------------------------------------------

/// Where a daemon listens / a client connects: a Unix-domain socket
/// path or a TCP `host:port`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BindAddr {
    /// A Unix-domain socket path.
    #[cfg(unix)]
    Unix(PathBuf),
    /// A TCP endpoint, `host:port`.
    Tcp(String),
}

impl BindAddr {
    /// Parses an address the way the CLI flags spell it: `tcp:HOST:PORT`
    /// or a bare `HOST:PORT` (no slashes, numeric port) is TCP;
    /// `unix:PATH` or anything else is a socket path. The prefixes make
    /// the intent explicit when a filename could be mistaken for an
    /// endpoint (`./odd:1`).
    pub fn parse(s: &str) -> BindAddr {
        if let Some(rest) = s.strip_prefix("tcp:") {
            return BindAddr::Tcp(rest.to_string());
        }
        #[cfg(unix)]
        if let Some(rest) = s.strip_prefix("unix:") {
            return BindAddr::Unix(PathBuf::from(rest));
        }
        if looks_like_host_port(s) {
            return BindAddr::Tcp(s.to_string());
        }
        #[cfg(unix)]
        {
            BindAddr::Unix(PathBuf::from(s))
        }
        #[cfg(not(unix))]
        {
            BindAddr::Tcp(s.to_string())
        }
    }
}

/// `HOST:PORT` with a numeric port and no path separators?
fn looks_like_host_port(s: &str) -> bool {
    if s.contains('/') || s.contains('\\') {
        return false;
    }
    match s.rsplit_once(':') {
        Some((host, port)) => !host.is_empty() && port.parse::<u16>().is_ok(),
        None => false,
    }
}

impl std::fmt::Display for BindAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            #[cfg(unix)]
            BindAddr::Unix(p) => write!(f, "{}", p.display()),
            BindAddr::Tcp(a) => write!(f, "tcp://{a}"),
        }
    }
}

// ---------------------------------------------------------------------
// Listener / Stream
// ---------------------------------------------------------------------

/// A bound server socket on either transport.
pub enum Listener {
    /// A Unix-domain listener.
    #[cfg(unix)]
    Unix(UnixListener),
    /// A TCP listener.
    Tcp(TcpListener),
}

impl Listener {
    /// Binds `addr`. A stale Unix socket file left by a killed daemon
    /// is removed first; TCP accepts `host:0` and reports the
    /// kernel-chosen port via [`Listener::local_display`].
    pub fn bind(addr: &BindAddr) -> io::Result<Listener> {
        match addr {
            #[cfg(unix)]
            BindAddr::Unix(path) => {
                if path.exists() {
                    std::fs::remove_file(path)?;
                }
                Ok(Listener::Unix(UnixListener::bind(path)?))
            }
            BindAddr::Tcp(spec) => Ok(Listener::Tcp(TcpListener::bind(spec.as_str())?)),
        }
    }

    /// Puts the listener in non-blocking accept mode (the daemon's
    /// accept loop polls several listeners plus a stop token).
    pub fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
        }
    }

    /// Accepts one connection. Accepted streams are returned in
    /// blocking mode with Nagle disabled on TCP (the protocol is
    /// request/response over short lines).
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                Ok(Stream::Unix(stream))
            }
            Listener::Tcp(l) => {
                let (stream, _) = l.accept()?;
                stream.set_nonblocking(false)?;
                let _ = stream.set_nodelay(true);
                Ok(Stream::Tcp(stream))
            }
        }
    }

    /// The bound address, as printed in the daemon banner — for TCP
    /// this is the *actual* address, so `--listen 127.0.0.1:0` reports
    /// the ephemeral port tests and scripts need to discover.
    pub fn local_display(&self) -> String {
        match self {
            #[cfg(unix)]
            Listener::Unix(l) => l
                .local_addr()
                .ok()
                .and_then(|a| a.as_pathname().map(|p| p.display().to_string()))
                .unwrap_or_else(|| "<unix>".to_string()),
            Listener::Tcp(l) => l
                .local_addr()
                .map(|a| format!("tcp://{a}"))
                .unwrap_or_else(|_| "tcp://?".to_string()),
        }
    }
}

/// One accepted or dialed connection on either transport.
pub enum Stream {
    /// A Unix-domain stream.
    #[cfg(unix)]
    Unix(UnixStream),
    /// A TCP stream.
    Tcp(TcpStream),
}

macro_rules! on_stream {
    ($self:expr, $s:ident => $body:expr) => {
        match $self {
            #[cfg(unix)]
            Stream::Unix($s) => $body,
            Stream::Tcp($s) => $body,
        }
    };
}

impl Stream {
    /// Dials `addr` (one attempt; retry policy lives in [`Client`]).
    pub fn connect(addr: &BindAddr) -> io::Result<Stream> {
        match addr {
            #[cfg(unix)]
            BindAddr::Unix(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
            BindAddr::Tcp(spec) => {
                let stream = TcpStream::connect(spec.as_str())?;
                let _ = stream.set_nodelay(true);
                Ok(Stream::Tcp(stream))
            }
        }
    }

    /// Clones the handle (one side reads, the other writes).
    pub fn try_clone(&self) -> io::Result<Stream> {
        match self {
            #[cfg(unix)]
            Stream::Unix(s) => Ok(Stream::Unix(s.try_clone()?)),
            Stream::Tcp(s) => Ok(Stream::Tcp(s.try_clone()?)),
        }
    }

    /// Bounds every read; `None` blocks forever.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        on_stream!(self, s => s.set_read_timeout(timeout))
    }

    /// Bounds every write; `None` blocks forever.
    pub fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        on_stream!(self, s => s.set_write_timeout(timeout))
    }

    /// Half- or full-closes the stream.
    pub fn shutdown(&self, how: Shutdown) -> io::Result<()> {
        on_stream!(self, s => s.shutdown(how))
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        on_stream!(self, s => s.read(buf))
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        on_stream!(self, s => s.write(buf))
    }
    fn flush(&mut self) -> io::Result<()> {
        on_stream!(self, s => s.flush())
    }
}

// ---------------------------------------------------------------------
// Retry policy
// ---------------------------------------------------------------------

/// splitmix64 — the same deterministic stream the supervisor's backoff
/// jitter draws from, so retry schedules are a closed-form function of
/// (seed, attempt) and tests can assert them exactly.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Deterministic jittered exponential backoff for client reconnects,
/// mirroring `JobExecutor::backoff`: attempt `a` (1-based) sleeps
/// `min(base · 2^(a−1), cap) + splitmix64(seed ⊕ (a << 32)) % base`
/// milliseconds. Same `(seed, attempt)` → same delay, on every host.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 = fail fast).
    pub attempts: u32,
    /// Backoff base in milliseconds; 0 disables sleeping entirely.
    pub base_ms: u64,
    /// Cap on the exponential term, in milliseconds.
    pub cap_ms: u64,
    /// Jitter seed.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 2,
            base_ms: 25,
            cap_ms: 2_000,
            seed: 0,
        }
    }
}

impl RetryPolicy {
    /// The closed-form delay before retry `attempt` (1-based).
    pub fn delay(&self, attempt: u32) -> Duration {
        if self.base_ms == 0 {
            return Duration::ZERO;
        }
        let exp = self
            .base_ms
            .saturating_mul(1u64 << (attempt.saturating_sub(1)).min(16))
            .min(self.cap_ms);
        let jitter = splitmix64(self.seed ^ (u64::from(attempt) << 32)) % self.base_ms;
        Duration::from_millis(exp + jitter)
    }
}

// ---------------------------------------------------------------------
// Client
// ---------------------------------------------------------------------

/// Client knobs beyond the retry policy.
#[derive(Clone, Copy, Debug)]
pub struct ClientConfig {
    /// Per-request read deadline: how long one reply (or one streamed
    /// frame, for `fetch`) may take before the request fails typed.
    pub op_timeout: Duration,
    /// Poll tick bounding every blocking read, so deadlines are
    /// observed even when the peer goes completely silent.
    pub tick: Duration,
    /// Reconnect/retry schedule.
    pub retry: RetryPolicy,
}

impl Default for ClientConfig {
    fn default() -> ClientConfig {
        ClientConfig {
            op_timeout: Duration::from_secs(30),
            tick: Duration::from_millis(250),
            retry: RetryPolicy::default(),
        }
    }
}

/// One live connection: a buffered reader half, a writer half, and the
/// partial-line carry buffer that survives read-timeout ticks.
struct Wire {
    reader: BufReader<Stream>,
    writer: Stream,
    buf: Vec<u8>,
}

/// How one low-level read ended.
enum WireRead {
    /// A complete frame line.
    Frame(Json),
    /// The read deadline elapsed with no complete frame.
    TimedOut,
    /// The peer closed (EOF) or reset the connection.
    Gone(String),
}

/// The shared NDJSON client: every `pp` client verb (`submit`,
/// `status`, `wait`, `watch`, `fetch`, `metrics`) speaks through this
/// one implementation, over either transport. See the module docs for
/// the retry semantics.
pub struct Client {
    addr: BindAddr,
    config: ClientConfig,
    wire: Option<Wire>,
}

impl Client {
    /// A client for `addr` (not yet connected; the first request
    /// dials).
    pub fn new(addr: BindAddr, config: ClientConfig) -> Client {
        Client {
            addr,
            config,
            wire: None,
        }
    }

    /// The address this client dials.
    pub fn addr(&self) -> &BindAddr {
        &self.addr
    }

    fn unavailable(&self, detail: impl std::fmt::Display) -> PpError {
        PpError::Unavailable(AdmitError::Transport(format!("{}: {detail}", self.addr)))
    }

    /// One dial attempt.
    fn dial(&self) -> io::Result<Wire> {
        let stream = Stream::connect(&self.addr)?;
        stream.set_read_timeout(Some(self.config.tick))?;
        stream.set_write_timeout(Some(self.config.op_timeout.max(Duration::from_secs(1))))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Wire {
            reader,
            writer: stream,
            buf: Vec::new(),
        })
    }

    /// Connects (with the retry schedule) without sending anything —
    /// `pp watch` dials first so a refused subscribe is distinguishable
    /// from an absent daemon.
    pub fn connect(&mut self) -> Result<(), PpError> {
        if self.wire.is_some() {
            return Ok(());
        }
        let mut attempt = 0u32;
        loop {
            match self.dial() {
                Ok(wire) => {
                    self.wire = Some(wire);
                    return Ok(());
                }
                Err(e) => {
                    if attempt >= self.config.retry.attempts {
                        return Err(self.unavailable(format_args!("connect failed: {e}")));
                    }
                    attempt += 1;
                    std::thread::sleep(self.config.retry.delay(attempt));
                }
            }
        }
    }

    /// Reads one frame line within `deadline`, carrying partial bytes
    /// across tick timeouts so a slow-trickling frame is finished, not
    /// lost.
    fn read_frame_deadline(&mut self, deadline: Duration) -> Result<WireRead, PpError> {
        let started = Instant::now();
        let wire = self.wire.as_mut().expect("connected");
        loop {
            match wire.reader.read_until(b'\n', &mut wire.buf) {
                Ok(0) => return Ok(WireRead::Gone("peer closed the connection".into())),
                Ok(_) if wire.buf.last() != Some(&b'\n') => {} // torn, keep reading
                Ok(_) => {
                    let line = String::from_utf8_lossy(&wire.buf).trim().to_string();
                    wire.buf.clear();
                    if line.is_empty() {
                        continue;
                    }
                    let frame = json::parse(&line).map_err(|e| {
                        PpError::Corrupt(pp_cct::SerializeError::Format(format!(
                            "unparsable server frame: {e}"
                        )))
                    })?;
                    return Ok(WireRead::Frame(frame));
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock
                            | io::ErrorKind::TimedOut
                            | io::ErrorKind::Interrupted
                    ) => {}
                Err(e) => return Ok(WireRead::Gone(e.to_string())),
            }
            if started.elapsed() >= deadline {
                return Ok(WireRead::TimedOut);
            }
        }
    }

    /// Sends one request and reads one reply, retrying per the policy.
    /// `resend_on_reset` is the idempotency switch: when `false`
    /// (submit), a transport failure *after the request bytes left*
    /// is terminal — the server may have acted on them.
    fn request_with(
        &mut self,
        request: &Json,
        resend_on_reset: bool,
        deadline: Duration,
    ) -> Result<Json, PpError> {
        let line = format!("{}\n", request.render());
        let mut attempt = 0u32;
        let mut budget = |client: &mut Client, after: Option<Duration>| -> Result<(), PpError> {
            client.wire = None;
            if attempt >= client.config.retry.attempts {
                return Err(PpError::Usage(String::new())); // replaced by caller
            }
            attempt += 1;
            std::thread::sleep(after.unwrap_or_else(|| client.config.retry.delay(attempt)));
            Ok(())
        };
        loop {
            if self.wire.is_none() {
                match self.dial() {
                    Ok(wire) => self.wire = Some(wire),
                    Err(e) => {
                        // Connect failures are always safe to retry —
                        // nothing was sent.
                        if budget(self, None).is_err() {
                            return Err(self.unavailable(format_args!("connect failed: {e}")));
                        }
                        continue;
                    }
                }
            }
            let sent = {
                let wire = self.wire.as_mut().expect("connected");
                wire.writer
                    .write_all(line.as_bytes())
                    .and_then(|()| wire.writer.flush())
            };
            if let Err(e) = sent {
                // The request may or may not have reached the peer.
                if resend_on_reset {
                    if budget(self, None).is_err() {
                        return Err(self.unavailable(format_args!("send failed: {e}")));
                    }
                    continue;
                }
                self.wire = None;
                return Err(self.unavailable(format_args!(
                    "send failed after the request left the socket: {e} \
                     (not retried: the request is not idempotent)"
                )));
            }
            match self.read_frame_deadline(deadline)? {
                WireRead::Frame(reply) => {
                    // Shed refusals carrying a retry hint are safe to
                    // retry for every op: a refused request was not
                    // admitted. Honor the server's pacing.
                    if let Some(after) = retry_after(&reply) {
                        if budget(self, Some(after)).is_ok() {
                            continue;
                        }
                    }
                    return Ok(reply);
                }
                WireRead::TimedOut => {
                    self.wire = None;
                    if resend_on_reset && budget(self, None).is_ok() {
                        continue;
                    }
                    return Err(self.unavailable(format_args!(
                        "no reply within {:.1}s",
                        deadline.as_secs_f64()
                    )));
                }
                WireRead::Gone(detail) => {
                    if resend_on_reset {
                        if budget(self, None).is_err() {
                            return Err(
                                self.unavailable(format_args!("connection reset: {detail}"))
                            );
                        }
                        continue;
                    }
                    self.wire = None;
                    return Err(self.unavailable(format_args!(
                        "connection reset after the request was sent ({detail}); \
                         not retried — the server may have admitted it"
                    )));
                }
            }
        }
    }

    /// One idempotent request/response (status, ping, metrics, wait,
    /// fetch acks, subscribe acks): reconnects and resends on resets.
    pub fn request(&mut self, request: &Json) -> Result<Json, PpError> {
        self.request_with(request, true, self.config.op_timeout)
    }

    /// An idempotent request whose *reply* may legitimately take longer
    /// than the op timeout (`wait`, `wait-idle`): the caller supplies
    /// the read deadline.
    pub fn request_deadline(
        &mut self,
        request: &Json,
        deadline: Duration,
    ) -> Result<Json, PpError> {
        self.request_with(request, true, deadline)
    }

    /// One NON-idempotent request (`submit`): connect failures and
    /// typed shed refusals retry, but once the request bytes have left
    /// the socket a transport failure is terminal — never a duplicate
    /// submission after a (possibly lost) ack.
    pub fn request_once(&mut self, request: &Json) -> Result<Json, PpError> {
        self.request_with(request, false, self.config.op_timeout)
    }

    /// One tick-bounded poll of a streaming connection (`subscribe`,
    /// the chunk frames of `fetch`). `Ok(None)` is a quiet tick; the
    /// caller decides when quiet means dead.
    pub fn poll_stream_frame(&mut self) -> Result<Option<Json>, PpError> {
        if self.wire.is_none() {
            return Err(self.unavailable("not connected"));
        }
        match self.read_frame_deadline(Duration::ZERO)? {
            WireRead::Frame(frame) => Ok(Some(frame)),
            WireRead::TimedOut => Ok(None),
            WireRead::Gone(_) => {
                self.wire = None;
                Ok(None)
            }
        }
    }

    /// Is the streaming connection still up? (`poll_stream_frame`
    /// clears the wire on EOF/reset.)
    pub fn stream_open(&self) -> bool {
        self.wire.is_some()
    }

    /// One streamed frame within the op timeout, or a typed failure —
    /// the `fetch` chunk reader.
    fn stream_frame_deadline(&mut self) -> Result<Json, PpError> {
        if self.wire.is_none() {
            return Err(self.unavailable("stream closed"));
        }
        match self.read_frame_deadline(self.config.op_timeout)? {
            WireRead::Frame(frame) => Ok(frame),
            WireRead::TimedOut => Err(self.unavailable(format_args!(
                "stream stalled beyond {:.1}s",
                self.config.op_timeout.as_secs_f64()
            ))),
            WireRead::Gone(detail) => {
                self.wire = None;
                Err(self.unavailable(format_args!("stream reset: {detail}")))
            }
        }
    }

    /// Fetches a stored artifact: ack, base64 chunk frames, done frame,
    /// then length + CRC verification of the reassembled bytes. Returns
    /// `(file name, bytes)`. The ack leg retries like any idempotent
    /// request; once chunks are streaming, a failure is terminal (the
    /// caller can rerun the whole fetch — it is read-only).
    pub fn fetch(&mut self, name: Option<&str>) -> Result<(String, Vec<u8>), PpError> {
        let mut request = vec![("op".to_string(), Json::Str("fetch".to_string()))];
        if let Some(name) = name {
            request.push(("file".to_string(), Json::Str(name.to_string())));
        }
        let ack = self.request(&Json::Obj(request))?;
        if ack.get("ok").and_then(Json::as_bool) != Some(true) {
            return Err(refusal_error(&ack));
        }
        let file = ack
            .get("file")
            .and_then(Json::as_str)
            .unwrap_or("artifact")
            .to_string();
        let len = ack.get("len").and_then(Json::as_f64).unwrap_or(0.0) as u64;
        let crc = ack.get("crc").and_then(Json::as_f64).unwrap_or(0.0) as u32;
        let chunks = ack.get("chunks").and_then(Json::as_f64).unwrap_or(0.0) as usize;
        let corrupt = |detail: String| {
            PpError::Corrupt(pp_cct::SerializeError::Format(format!(
                "fetch {file}: {detail}"
            )))
        };
        let mut bytes: Vec<u8> = Vec::with_capacity(len as usize);
        for i in 0..chunks {
            let frame = self.stream_frame_deadline()?;
            if frame.get("chunk").and_then(Json::as_f64) != Some(i as f64) {
                return Err(corrupt(format!(
                    "expected chunk {i}, got {}",
                    frame.render()
                )));
            }
            let data = frame.get("data").and_then(Json::as_str).unwrap_or("");
            let chunk = b64_decode(data)
                .ok_or_else(|| corrupt(format!("chunk {i} is not valid base64")))?;
            bytes.extend_from_slice(&chunk);
        }
        let done = self.stream_frame_deadline()?;
        if done.get("done").and_then(Json::as_bool) != Some(true) {
            return Err(corrupt("stream ended without a done frame".to_string()));
        }
        let got = crate::supervisor::manifest::ProfileRef::for_bytes(file.clone(), &bytes);
        if got.len != len || got.crc != crc {
            return Err(corrupt(format!(
                "advertised {len} bytes fingerprint {crc:#010x}, \
                 received {} bytes fingerprint {:#010x}",
                got.len, got.crc
            )));
        }
        Ok((file, bytes))
    }
}

/// The `retry_after_ms` hint of a shed refusal (`overloaded`,
/// `draining`), when the server sent one.
fn retry_after(reply: &Json) -> Option<Duration> {
    if reply.get("ok").and_then(Json::as_bool) != Some(false) {
        return None;
    }
    match reply.get("error").and_then(Json::as_str) {
        Some("overloaded" | "draining") => reply
            .get("retry_after_ms")
            .and_then(Json::as_f64)
            .filter(|ms| *ms >= 0.0)
            .map(|ms| Duration::from_millis(ms as u64)),
        _ => None,
    }
}

// ---------------------------------------------------------------------
// Refusal mapping + base64
// ---------------------------------------------------------------------

/// Maps a refusal reply back onto the typed error taxonomy: admission
/// refusals become [`PpError::Unavailable`] (exit 4), an unusable spec
/// is a usage error (exit 1).
pub fn refusal_error(reply: &Json) -> PpError {
    let kind = reply.get("error").and_then(Json::as_str).unwrap_or("?");
    let detail = reply
        .get("detail")
        .and_then(Json::as_str)
        .unwrap_or("no detail")
        .to_string();
    let num = |key: &str| reply.get(key).and_then(Json::as_f64).unwrap_or(0.0) as usize;
    match kind {
        "overloaded" => PpError::Unavailable(AdmitError::Overloaded {
            capacity: num("capacity"),
        }),
        "quota-exceeded" => PpError::Unavailable(AdmitError::QuotaExceeded {
            client: String::new(),
            quota: num("quota"),
        }),
        "draining" => PpError::Unavailable(AdmitError::Draining),
        "stopped" => PpError::Unavailable(AdmitError::Stopped),
        "io" => PpError::Unavailable(AdmitError::Io(detail)),
        "idle-timeout" | "slow-frame" => PpError::Unavailable(AdmitError::Transport(detail)),
        "bad-spec" | "bad-request" => PpError::Usage(detail),
        other => PpError::Usage(format!("server refused ({other}): {detail}")),
    }
}

/// The standard base64 alphabet, hand-rolled because artifact bytes
/// must cross a line-oriented JSON protocol and the toolchain carries
/// no dependencies.
const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Standard base64 with `=` padding.
pub fn b64_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let n = (u32::from(chunk[0]) << 16)
            | (u32::from(chunk.get(1).copied().unwrap_or(0)) << 8)
            | u32::from(chunk.get(2).copied().unwrap_or(0));
        out.push(B64_ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(B64_ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            B64_ALPHABET[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            B64_ALPHABET[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

/// Inverse of [`b64_encode`]; `None` on any malformed input (bad
/// length, alien characters, interior padding).
pub fn b64_decode(s: &str) -> Option<Vec<u8>> {
    let val = |c: u8| -> Option<u32> {
        Some(match c {
            b'A'..=b'Z' => u32::from(c - b'A'),
            b'a'..=b'z' => u32::from(c - b'a') + 26,
            b'0'..=b'9' => u32::from(c - b'0') + 52,
            b'+' => 62,
            b'/' => 63,
            _ => return None,
        })
    };
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return None;
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for (i, q) in bytes.chunks(4).enumerate() {
        let last = (i + 1) * 4 == bytes.len();
        let pad = q.iter().filter(|&&c| c == b'=').count();
        // Padding is only legal in the final quad's tail positions.
        if pad > 0
            && (!last || pad > 2 || q[0] == b'=' || q[1] == b'=' || q[2] == b'=' && q[3] != b'=')
        {
            return None;
        }
        let n = (val(q[0])? << 18)
            | (val(q[1])? << 12)
            | if q[2] == b'=' { 0 } else { val(q[2])? << 6 }
            | if q[3] == b'=' { 0 } else { val(q[3])? };
        out.push((n >> 16) as u8);
        if q[2] != b'=' {
            out.push((n >> 8) as u8);
        }
        if q[3] != b'=' {
            out.push(n as u8);
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_addr_parses_every_form() {
        assert_eq!(
            BindAddr::parse("tcp:127.0.0.1:7070"),
            BindAddr::Tcp("127.0.0.1:7070".to_string())
        );
        assert_eq!(
            BindAddr::parse("localhost:9999"),
            BindAddr::Tcp("localhost:9999".to_string()),
            "bare host:port with a numeric port is TCP"
        );
        #[cfg(unix)]
        {
            use std::path::PathBuf;
            assert_eq!(
                BindAddr::parse("unix:/tmp/pp.sock"),
                BindAddr::Unix(PathBuf::from("/tmp/pp.sock"))
            );
            assert_eq!(
                BindAddr::parse("pp.sock"),
                BindAddr::Unix(PathBuf::from("pp.sock"))
            );
            assert_eq!(
                BindAddr::parse("./state/pp.sock:1"),
                BindAddr::Unix(PathBuf::from("./state/pp.sock:1")),
                "a path separator keeps it a socket path, whatever the suffix"
            );
            assert_eq!(
                BindAddr::parse("host:99999"),
                BindAddr::Unix(PathBuf::from("host:99999")),
                "an impossible port number is not a TCP address"
            );
        }
        assert_eq!(
            BindAddr::Tcp("1.2.3.4:5".to_string()).to_string(),
            "tcp://1.2.3.4:5"
        );
    }

    /// The backoff schedule is closed-form and host-independent — the
    /// same guarantee `JobExecutor::backoff` makes, asserted the same
    /// way: recompute each delay from the formula and demand equality.
    #[test]
    fn retry_schedule_is_deterministic_and_closed_form() {
        let policy = RetryPolicy {
            attempts: 6,
            base_ms: 25,
            cap_ms: 2_000,
            seed: 42,
        };
        for attempt in 1..=6u32 {
            let exp = (25u64 << (attempt - 1).min(16)).min(2_000);
            let jitter = splitmix64(42 ^ (u64::from(attempt) << 32)) % 25;
            assert_eq!(
                policy.delay(attempt),
                Duration::from_millis(exp + jitter),
                "attempt {attempt}"
            );
            // And a second evaluation is bit-identical.
            assert_eq!(policy.delay(attempt), policy.delay(attempt));
        }
        // Different seeds shear the jitter apart (with these values).
        let other = RetryPolicy { seed: 43, ..policy };
        assert_ne!(policy.delay(1), other.delay(1));
        // The exponential term saturates at the cap.
        assert!(policy.delay(40) < Duration::from_millis(2_000 + 25));
        // base 0 = no sleeping, ever.
        let eager = RetryPolicy {
            base_ms: 0,
            ..policy
        };
        assert_eq!(eager.delay(3), Duration::ZERO);
    }

    #[test]
    fn b64_round_trips_and_rejects_malformed_input() {
        for len in [0usize, 1, 2, 3, 4, 57, 255, 1024] {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 + len) as u8).collect();
            let text = b64_encode(&data);
            assert_eq!(b64_decode(&text).as_deref(), Some(&data[..]), "len {len}");
        }
        for bad in ["A", "AB=A", "====", "AA=AAAAA", "A!AA"] {
            assert_eq!(b64_decode(bad), None, "`{bad}`");
        }
    }

    #[test]
    fn refusal_errors_carry_the_typed_taxonomy() {
        let mk = |kind: &str| {
            Json::Obj(vec![
                ("ok".to_string(), Json::Bool(false)),
                ("error".to_string(), Json::Str(kind.to_string())),
                ("detail".to_string(), Json::Str("x".to_string())),
            ])
        };
        assert_eq!(refusal_error(&mk("overloaded")).exit_code(), 4);
        assert_eq!(refusal_error(&mk("quota-exceeded")).exit_code(), 4);
        assert_eq!(refusal_error(&mk("draining")).exit_code(), 4);
        assert_eq!(refusal_error(&mk("idle-timeout")).exit_code(), 4);
        assert_eq!(refusal_error(&mk("slow-frame")).exit_code(), 4);
        assert_eq!(refusal_error(&mk("bad-spec")).exit_code(), 1);
        assert_eq!(refusal_error(&mk("unknown-op")).exit_code(), 1);
    }
}
