//! Block-level attribution — the *statement-level* view the paper argues
//! against (Section 6.4.3).
//!
//! A flow profile knows metrics per *path*; a conventional profiler
//! reports them per block/statement, which requires smearing each path's
//! metric over the blocks it crosses. This module implements that
//! projection (so PP can also print classic annotated listings) and
//! quantifies the information loss: how much of a block's misses can be
//! assigned to a single responsible path.

use std::collections::HashMap;

use pp_instrument::Instrumented;
use pp_ir::{BlockId, ProcId, Procedure};

use crate::profile::FlowProfile;

/// Per-block attribution projected from a path profile.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct BlockAttribution {
    /// Times the block executed.
    pub freq: u64,
    /// Instructions attributed to the block (each path's instructions
    /// split evenly over its blocks — the smear a statement profiler
    /// reports).
    pub inst_est: f64,
    /// Misses attributed to the block, smeared the same way.
    pub miss_est: f64,
    /// Number of distinct executed paths crossing the block.
    pub paths: u32,
    /// Largest share of the block's smeared misses owed to one path
    /// (1.0 = a single path explains the block; low values = the
    /// block-level number cannot identify the behaviour).
    pub top_path_share: f64,
}

/// Computes block attributions for every block of every procedure.
pub fn block_attribution(
    instrumented: &Instrumented,
    flow: &FlowProfile,
) -> HashMap<(ProcId, BlockId), BlockAttribution> {
    let mut out: HashMap<(ProcId, BlockId), BlockAttribution> = HashMap::new();
    let mut top: HashMap<(ProcId, BlockId), f64> = HashMap::new();
    for (proc, sum, cell) in flow.iter_paths() {
        let Some((blocks, _)) = instrumented.decode_path(proc, sum) else {
            continue;
        };
        if blocks.is_empty() {
            continue;
        }
        let share_inst = cell.m0 as f64 / blocks.len() as f64;
        let share_miss = cell.m1 as f64 / blocks.len() as f64;
        for b in blocks {
            let e = out.entry((proc, b)).or_default();
            e.freq += cell.freq;
            e.inst_est += share_inst;
            e.miss_est += share_miss;
            e.paths += 1;
            let t = top.entry((proc, b)).or_insert(0.0);
            if share_miss > *t {
                *t = share_miss;
            }
        }
    }
    for (key, e) in &mut out {
        if e.miss_est > 0.0 {
            e.top_path_share = top.get(key).copied().unwrap_or(0.0) / e.miss_est;
        }
    }
    out
}

/// An annotated listing of one procedure: each block's text with its
/// attribution, the classic profiler output format.
pub fn annotated_listing(
    proc: &Procedure,
    pid: ProcId,
    attributions: &HashMap<(ProcId, BlockId), BlockAttribution>,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "proc {}:  (freq / est.misses / paths crossing)",
        proc.name
    );
    for (bid, block) in proc.iter_blocks() {
        let a = attributions.get(&(pid, bid)).copied().unwrap_or_default();
        let _ = writeln!(
            out,
            "  b{:<4} {:>10} {:>12.1} {:>6}",
            bid.0, a.freq, a.miss_est, a.paths
        );
        for instr in &block.instrs {
            let _ = writeln!(out, "         | {instr}");
        }
        let _ = writeln!(out, "         | {}", block.term);
    }
    out
}

/// The Section 6.4.3 measurement over an entire profile: the average (over
/// blocks with misses) of the largest single-path share of each block's
/// misses. A value near 1 would mean block-level numbers identify paths;
/// the paper's point is that it is far below 1 on hot code.
pub fn avg_top_path_share(attributions: &HashMap<(ProcId, BlockId), BlockAttribution>) -> f64 {
    let with_misses: Vec<&BlockAttribution> = attributions
        .values()
        .filter(|a| a.miss_est > 0.0 && a.paths > 1)
        .collect();
    if with_misses.is_empty() {
        return 1.0;
    }
    with_misses.iter().map(|a| a.top_path_share).sum::<f64>() / with_misses.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{Profiler, RunConfig};
    use pp_ir::build::ProgramBuilder;
    use pp_ir::{HwEvent, Program};

    fn diamond_loop() -> Program {
        let mut pb = ProgramBuilder::new();
        let mut f = pb.procedure("main");
        let e = f.entry_block();
        let h = f.new_block();
        let sel = f.new_block();
        let hot = f.new_block();
        let cold = f.new_block();
        let x = f.new_block();
        let i = f.new_reg();
        let c = f.new_reg();
        let p = f.new_reg();
        let a = f.new_reg();
        let v = f.new_reg();
        f.block(e).mov(i, 0i64).jump(h);
        f.block(h).cmp_lt(c, i, 64i64).branch(c, sel, x);
        f.block(sel)
            .bin(pp_ir::instr::BinOp::And, p, i, 3i64)
            .cmp_lt(p, p, 3i64)
            .branch(p, hot, cold);
        f.block(hot)
            .mul(a, i, 512i64)
            .add(a, a, 0x30_0000i64)
            .load(v, a, 0)
            .add(i, i, 1i64)
            .jump(h);
        f.block(cold).add(i, i, 1i64).jump(h);
        f.block(x).ret();
        let id = f.finish();
        pb.finish(id)
    }

    #[test]
    fn attribution_counts_block_frequencies() {
        let prog = diamond_loop();
        let run = Profiler::default()
            .run(
                &prog,
                RunConfig::FlowHw {
                    events: (HwEvent::Insts, HwEvent::DcMiss),
                },
            )
            .unwrap();
        let attr = block_attribution(
            run.instrumented.as_ref().unwrap(),
            run.flow.as_ref().unwrap(),
        );
        let p = prog.entry();
        // Header executes 65 times, hot arm 48, cold arm 16.
        assert_eq!(attr[&(p, pp_ir::BlockId(1))].freq, 65);
        assert_eq!(attr[&(p, pp_ir::BlockId(3))].freq, 48);
        assert_eq!(attr[&(p, pp_ir::BlockId(4))].freq, 16);
        // Misses concentrate in the hot arm's attribution.
        assert!(attr[&(p, pp_ir::BlockId(3))].miss_est > attr[&(p, pp_ir::BlockId(4))].miss_est);
        // The header is crossed by several distinct paths.
        assert!(attr[&(p, pp_ir::BlockId(1))].paths >= 3);
    }

    #[test]
    fn listing_renders_every_block() {
        let prog = diamond_loop();
        let run = Profiler::default().run(&prog, RunConfig::FlowFreq).unwrap();
        // FlowFreq has no metrics; attribution still counts freq/paths.
        let attr = block_attribution(
            run.instrumented.as_ref().unwrap(),
            run.flow.as_ref().unwrap(),
        );
        let listing = annotated_listing(prog.procedure(prog.entry()), prog.entry(), &attr);
        assert!(listing.contains("proc main"), "{listing}");
        assert_eq!(listing.matches("\n  b").count(), 6, "{listing}");
        assert!(listing.contains("br "), "{listing}");
    }

    #[test]
    fn top_path_share_low_on_shared_blocks() {
        let prog = diamond_loop();
        let run = Profiler::default()
            .run(
                &prog,
                RunConfig::FlowHw {
                    events: (HwEvent::Insts, HwEvent::DcMiss),
                },
            )
            .unwrap();
        let attr = block_attribution(
            run.instrumented.as_ref().unwrap(),
            run.flow.as_ref().unwrap(),
        );
        let p = prog.entry();
        // The loop header's misses come from several paths: no single
        // path explains them.
        let header = attr[&(p, pp_ir::BlockId(1))];
        assert!(header.top_path_share < 0.9, "{header:?}");
        let avg = avg_top_path_share(&attr);
        assert!(avg < 0.95, "avg share {avg}");
    }
}
